#include "sat/inprocess.hpp"

#include <algorithm>

#include "sat/drat.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::sat {

namespace {
/// Per-session pass budgets (literal-visit / resolution / clause counts):
/// generous for the model checker's formula sizes, hard caps for anything
/// pathological a fuzzer or external CNF might feed in.
constexpr std::uint64_t kSubsumeBudget = 4'000'000;
constexpr std::uint64_t kResolutionBudget = 1'000'000;
constexpr std::size_t kMaxOccSide = 12;         // BVE: occurrences per polarity
constexpr std::size_t kMaxResolventLits = 24;   // BVE: resolvent size cap
constexpr std::size_t kVivifyClauseLimit = 1000;
constexpr std::size_t kMaxVivifySize = 32;
}  // namespace

void Inprocessor::clear_level0_reasons() {
  // Level-0 assignments are permanent facts; their reason pointers are never
  // dereferenced by analysis (which skips level 0) but would dangle once the
  // session deletes or shrinks clauses. Null them.
  for (const Lit p : s_.trail_) s_.reason_[static_cast<std::size_t>(var(p))] = nullptr;
}

void Inprocessor::run() {
  GENFV_TRACE_SPAN("sat", "inprocess");
  GENFV_ASSERT(s_.decision_level() == 0, "inprocessing requires decision level 0");
  if (s_.propagate() != nullptr) {
    s_.mark_unsat();
    return;
  }
  clear_level0_reasons();
  top_level_simplify();
  if (s_.ok_) {
    build_occurrence_lists();
    subsume_all();
  }
  if (s_.ok_) eliminate_vars();
  sweep();
  occ_.clear();
  if (s_.ok_) vivify();
  sweep();
  clear_level0_reasons();
  ++s_.stats_.inprocessings;
  GENFV_ASSERT(s_.qhead_ == s_.trail_.size() || !s_.ok_,
               "inprocessing must leave propagation saturated");
}

void Inprocessor::kill(Clause* c) {
  GENFV_ASSERT(!c->dead, "double kill");
  s_.detach_clause(c);
  c->dead = true;
  if (c->learnt && s_.drat_ != nullptr) s_.drat_->remove(c->lits);
}

void Inprocessor::sweep() {
  const auto dead = [](const std::unique_ptr<Clause>& c) { return c->dead; };
  s_.clauses_.erase(std::remove_if(s_.clauses_.begin(), s_.clauses_.end(), dead),
                    s_.clauses_.end());
  s_.learnts_.erase(std::remove_if(s_.learnts_.begin(), s_.learnts_.end(), dead),
                    s_.learnts_.end());
}

void Inprocessor::top_level_simplify() {
  const auto satisfied = [this](const Clause* c) {
    for (const Lit p : c->lits) {
      if (s_.value(p) == LBool::True) return true;
    }
    return false;
  };

  // Learnts: drop the satisfied ones (false-literal stripping there buys
  // little and would cost proof traffic).
  for (const auto& c : s_.learnts_) {
    if (!c->dead && satisfied(c.get())) kill(c.get());
  }

  // Originals: drop satisfied clauses, strip level-0-false literals. The
  // stripped version needs no proof line — the checker derives the same
  // facts from the still-active units.
  for (std::size_t i = 0; i < s_.clauses_.size(); ++i) {
    Clause* c = s_.clauses_[i].get();
    if (c->dead) continue;
    if (satisfied(c)) {
      kill(c);
      continue;
    }
    bool has_false = false;
    for (const Lit p : c->lits) {
      if (s_.value(p) == LBool::False) {
        has_false = true;
        break;
      }
    }
    if (!has_false) continue;
    s_.detach_clause(c);
    c->lits.erase(std::remove_if(c->lits.begin(), c->lits.end(),
                                 [this](Lit p) { return s_.value(p) == LBool::False; }),
                  c->lits.end());
    GENFV_ASSERT(!c->lits.empty(), "an all-false clause would have conflicted");
    if (c->lits.size() == 1) {
      const Lit unit = c->lits[0];
      c->dead = true;
      s_.unchecked_enqueue(unit);
      if (s_.propagate() != nullptr) {
        s_.mark_unsat();
        return;
      }
      clear_level0_reasons();
      continue;
    }
    s_.attach_clause(c);
  }
}

void Inprocessor::build_occurrence_lists() {
  occ_.assign(static_cast<std::size_t>(s_.num_vars()), {});
  const auto reg = [this](const std::unique_ptr<Clause>& c) {
    if (c->dead) return;
    c->sig = signature(c->lits);
    for (const Lit p : c->lits) occ_[static_cast<std::size_t>(var(p))].push_back(c.get());
  };
  for (const auto& c : s_.clauses_) reg(c);
  for (const auto& c : s_.learnts_) reg(c);
}

Inprocessor::Subsumes Inprocessor::subsumes(const Clause* c, const Clause* d,
                                            Lit* strengthen_out,
                                            std::uint64_t* budget) const {
  if (c->lits.size() > d->lits.size()) return Subsumes::kNo;
  if ((c->sig & ~d->sig) != 0) return Subsumes::kNo;
  const std::uint64_t cost = c->lits.size() * d->lits.size();
  *budget -= std::min(*budget, cost);
  Lit flipped = kUndefLit;
  for (const Lit p : c->lits) {
    bool found = false;
    for (const Lit q : d->lits) {
      if (q == p) {
        found = true;
        break;
      }
      if (q == ~p) {
        if (flipped != kUndefLit) return Subsumes::kNo;  // two flips: no relation
        flipped = q;
        found = true;
        break;
      }
    }
    if (!found) return Subsumes::kNo;
  }
  if (flipped == kUndefLit) return Subsumes::kSubsumes;
  *strengthen_out = flipped;
  return Subsumes::kStrengthens;
}

void Inprocessor::strengthen(Clause* d, Lit rem) {
  ++s_.stats_.strengthened_clauses;
  std::vector<Lit> new_lits;
  new_lits.reserve(d->lits.size() - 1);
  for (const Lit p : d->lits) {
    if (p != rem) new_lits.push_back(p);
  }
  if (s_.drat_ != nullptr) {
    s_.drat_->add(new_lits);
    if (d->learnt) s_.drat_->remove(d->lits);
  }
  s_.detach_clause(d);
  if (new_lits.size() == 1) {
    d->dead = true;
    const Lit unit = new_lits[0];
    if (s_.value(unit) == LBool::False) {
      s_.mark_unsat();
      return;
    }
    if (s_.value(unit) == LBool::Undef) {
      s_.unchecked_enqueue(unit);
      if (s_.propagate() != nullptr) {
        s_.mark_unsat();
        return;
      }
      clear_level0_reasons();
    }
    return;
  }
  d->lits = std::move(new_lits);
  d->sig = signature(d->lits);
  s_.attach_clause(d);
}

void Inprocessor::subsume_all() {
  // Originals act as subsumers; victims may be originals or learnts.
  std::vector<Clause*> queue;
  queue.reserve(s_.clauses_.size());
  for (const auto& c : s_.clauses_) {
    if (!c->dead) queue.push_back(c.get());
  }
  std::uint64_t budget = kSubsumeBudget;

  for (std::size_t qi = 0; qi < queue.size() && budget > 0 && s_.ok_; ++qi) {
    Clause* c = queue[qi];
    if (c->dead || c->lits.empty()) continue;
    // Scan the occurrence list of c's rarest variable.
    Var best = var(c->lits[0]);
    for (const Lit p : c->lits) {
      if (occ_[static_cast<std::size_t>(var(p))].size() <
          occ_[static_cast<std::size_t>(best)].size()) {
        best = var(p);
      }
    }
    // Copy: strengthen() and kill() may mutate the list we iterate.
    const std::vector<Clause*> candidates = occ_[static_cast<std::size_t>(best)];
    for (Clause* d : candidates) {
      if (d == c || d->dead || c->dead || budget == 0 || !s_.ok_) continue;
      Lit rem = kUndefLit;
      switch (subsumes(c, d, &rem, &budget)) {
        case Subsumes::kNo:
          break;
        case Subsumes::kSubsumes:
          ++s_.stats_.subsumed_clauses;
          kill(d);
          break;
        case Subsumes::kStrengthens:
          strengthen(d, rem);
          // A strengthened original can now subsume further clauses.
          if (!d->dead && !d->learnt) queue.push_back(d);
          break;
      }
    }
  }
}

bool Inprocessor::resolve(const Clause* p, const Clause* n, Var v,
                          std::vector<Lit>* out) const {
  out->clear();
  for (const Lit q : p->lits) {
    if (var(q) != v) out->push_back(q);
  }
  for (const Lit q : n->lits) {
    if (var(q) != v) out->push_back(q);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  for (std::size_t i = 1; i < out->size(); ++i) {
    if ((*out)[i] == ~(*out)[i - 1]) return false;  // tautology
  }
  return true;
}

void Inprocessor::eliminate_vars() {
  std::uint64_t budget = kResolutionBudget;
  std::vector<Lit> resolvent;
  for (Var v = 0; v < s_.num_vars() && budget > 0 && s_.ok_; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (s_.frozen_[vi] != 0 || s_.eliminated_[vi] != 0) continue;
    if (s_.value(v) != LBool::Undef) continue;

    // Partition the live occurrences: originals by polarity (resolvent
    // sources), learnts separately (dropped outright on elimination).
    std::vector<Clause*> pos;
    std::vector<Clause*> neg;
    std::vector<Clause*> learnts;
    bool oversize = false;
    for (Clause* c : occ_[vi]) {
      if (c->dead) continue;
      bool mentions = false;
      bool positive = false;
      bool satisfied = false;
      for (const Lit q : c->lits) {
        if (var(q) == v) {
          mentions = true;
          positive = !sign(q);
        }
        if (s_.value(q) == LBool::True) satisfied = true;
      }
      if (!mentions) continue;  // stale entry after strengthening
      if (c->learnt) {
        learnts.push_back(c);
        continue;
      }
      if (satisfied) {
        // Satisfied originals still mention v; they must leave the database
        // with it (no live clause may reference an eliminated variable).
        kill(c);
        ++s_.stats_.subsumed_clauses;
        continue;
      }
      (positive ? pos : neg).push_back(c);
      if (pos.size() > kMaxOccSide || neg.size() > kMaxOccSide) {
        oversize = true;
        break;
      }
    }
    if (oversize) continue;
    if (pos.empty() && neg.empty() && learnts.empty()) continue;  // unused var

    // Count the non-tautological resolvents; bail out on growth.
    std::vector<std::vector<Lit>> resolvents;
    bool abort = false;
    for (const Clause* cp : pos) {
      for (const Clause* cn : neg) {
        budget -= std::min<std::uint64_t>(budget, cp->lits.size() + cn->lits.size());
        if (!resolve(cp, cn, v, &resolvent)) continue;
        if (resolvent.size() > kMaxResolventLits ||
            resolvents.size() >= pos.size() + neg.size() || budget == 0) {
          abort = true;
          break;
        }
        resolvents.push_back(resolvent);
      }
      if (abort) break;
    }
    if (abort) continue;

    // Commit: record the originals for restore/model-extension, log the
    // resolvents as proof adds, swap the clause sets.
    Solver::ElimEntry entry;
    entry.v = v;
    entry.was_decision = s_.decision_[vi] != 0;
    for (const Clause* c : pos) entry.clauses.push_back(c->lits);
    for (const Clause* c : neg) entry.clauses.push_back(c->lits);
    for (Clause* c : pos) kill(c);
    for (Clause* c : neg) kill(c);
    for (Clause* c : learnts) kill(c);
    s_.eliminated_[vi] = 1;
    s_.decision_[vi] = 0;
    s_.elim_stack_.push_back(std::move(entry));
    ++s_.stats_.eliminated_vars;

    for (std::vector<Lit>& r : resolvents) {
      Clause* nc = s_.add_clause_impl(std::move(r), Solver::ClauseOrigin::kDerived);
      if (!s_.ok_) return;
      if (nc != nullptr) {
        nc->sig = signature(nc->lits);
        for (const Lit q : nc->lits) {
          occ_[static_cast<std::size_t>(var(q))].push_back(nc);
        }
      } else {
        // The resolvent collapsed to a unit or was absorbed; new level-0
        // facts may have appeared.
        clear_level0_reasons();
      }
    }
  }
}

void Inprocessor::vivify() {
  std::vector<Clause*> candidates;
  for (const auto& c : s_.clauses_) {
    if (!c->dead && c->lits.size() >= 3 && c->lits.size() <= kMaxVivifySize) {
      candidates.push_back(c.get());
    }
  }
  if (candidates.empty()) return;
  const std::size_t count = std::min(candidates.size(), kVivifyClauseLimit);
  const std::size_t start = s_.vivify_cursor_ % candidates.size();
  s_.vivify_cursor_ += count;

  std::vector<Lit> lits;
  std::vector<Lit> kept;
  for (std::size_t n = 0; n < count && s_.ok_; ++n) {
    Clause* c = candidates[(start + n) % candidates.size()];
    if (c->dead) continue;

    // Pre-clean against level-0 facts accumulated this session.
    bool satisfied = false;
    lits.clear();
    for (const Lit p : c->lits) {
      const LBool val = s_.value(p);
      if (val == LBool::True) {
        satisfied = true;
        break;
      }
      if (val != LBool::False) lits.push_back(p);
    }
    if (satisfied) {
      kill(c);
      continue;
    }
    const bool precleaned = lits.size() < c->lits.size();
    if (lits.size() < 3) {
      // Too short to probe; just apply the pre-clean if it shrank.
      if (!precleaned) continue;
      s_.detach_clause(c);
      GENFV_ASSERT(!lits.empty(), "an all-false clause would have conflicted");
      if (lits.size() == 1) {
        c->dead = true;
        if (c->learnt && s_.drat_ != nullptr) s_.drat_->remove(c->lits);
        s_.unchecked_enqueue(lits[0]);
        if (s_.propagate() != nullptr) {
          s_.mark_unsat();
          return;
        }
        clear_level0_reasons();
      } else {
        c->lits = lits;
        s_.attach_clause(c);
      }
      continue;
    }

    // Probe: assume the negation literal by literal. A conflict or an
    // implied literal proves the kept prefix (plus that literal) is itself
    // a clause of the formula — shorter than c when it drops anything.
    s_.detach_clause(c);
    kept.clear();
    bool changed = precleaned;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      const Lit l = lits[i];
      const LBool val = s_.value(l);
      if (val == LBool::True) {
        // ¬kept implies l: clause := kept ∪ {l}.
        kept.push_back(l);
        if (i + 1 < lits.size()) changed = true;
        break;
      }
      if (val == LBool::False) {
        // ¬kept implies ¬l: l is redundant in c.
        changed = true;
        continue;
      }
      if (i + 1 == lits.size()) {
        // Nothing to learn from probing the last literal.
        kept.push_back(l);
        break;
      }
      s_.new_decision_level();
      s_.unchecked_enqueue(~l);
      if (s_.propagate() != nullptr) {
        // ¬(kept ∪ {l}) is contradictory: clause := kept ∪ {l} (RUP).
        kept.push_back(l);
        if (i + 1 < lits.size()) changed = true;
        break;
      }
      kept.push_back(l);
    }
    s_.cancel_until(0);

    if (!changed) {
      s_.attach_clause(c);
      continue;
    }
    ++s_.stats_.vivified_clauses;
    GENFV_ASSERT(!kept.empty(), "vivification cannot empty a clause");
    if (s_.drat_ != nullptr) {
      s_.drat_->add(kept);
      if (c->learnt) s_.drat_->remove(c->lits);
    }
    if (kept.size() == 1) {
      c->dead = true;
      if (s_.value(kept[0]) == LBool::False) {
        s_.mark_unsat();
        return;
      }
      if (s_.value(kept[0]) == LBool::Undef) {
        s_.unchecked_enqueue(kept[0]);
        if (s_.propagate() != nullptr) {
          s_.mark_unsat();
          return;
        }
        clear_level0_reasons();
      }
      continue;
    }
    c->lits = kept;
    s_.attach_clause(c);
  }
}

}  // namespace genfv::sat
