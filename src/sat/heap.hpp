#pragma once

/// \file heap.hpp
/// Indexed binary max-heap over variable activities — the VSIDS decision
/// order. Supports decrease-key style updates when a variable's activity is
/// bumped while it sits in the heap.

#include <vector>

#include "sat/types.hpp"
#include "util/status.hpp"

namespace genfv::sat {

class VarOrderHeap {
 public:
  explicit VarOrderHeap(const std::vector<double>& activity) : activity_(activity) {}

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  bool contains(Var v) const noexcept {
    return v < static_cast<Var>(pos_.size()) && pos_[static_cast<std::size_t>(v)] >= 0;
  }

  /// Make room for variables up to `v`.
  void grow_to(Var v) {
    if (static_cast<std::size_t>(v) >= pos_.size()) {
      pos_.resize(static_cast<std::size_t>(v) + 1, -1);
    }
  }

  void insert(Var v) {
    grow_to(v);
    if (contains(v)) return;
    pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    percolate_up(heap_.size() - 1);
  }

  /// Re-establish heap order after `v`'s activity increased.
  void increased(Var v) {
    if (contains(v)) percolate_up(static_cast<std::size_t>(pos_[static_cast<std::size_t>(v)]));
  }

  Var pop_max() {
    GENFV_ASSERT(!heap_.empty(), "pop from empty VarOrderHeap");
    const Var top = heap_[0];
    heap_[0] = heap_.back();
    pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_.pop_back();
    pos_[static_cast<std::size_t>(top)] = -1;
    if (!heap_.empty()) percolate_down(0);
    return top;
  }

 private:
  bool before(Var a, Var b) const noexcept {
    return activity_[static_cast<std::size_t>(a)] > activity_[static_cast<std::size_t>(b)];
  }

  void percolate_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 1;
      if (!before(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
      i = parent;
    }
    heap_[i] = v;
    pos_[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }

  void percolate_down(std::size_t i) {
    const Var v = heap_[i];
    while (true) {
      const std::size_t left = 2 * i + 1;
      if (left >= heap_.size()) break;
      const std::size_t right = left + 1;
      const std::size_t best =
          (right < heap_.size() && before(heap_[right], heap_[left])) ? right : left;
      if (!before(heap_[best], v)) break;
      heap_[i] = heap_[best];
      pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
      i = best;
    }
    heap_[i] = v;
    pos_[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }

  std::vector<Var> heap_;
  std::vector<int> pos_;  // var -> heap slot, -1 when absent
  const std::vector<double>& activity_;
};

}  // namespace genfv::sat
