#include "sat/drat.hpp"

namespace genfv::sat {

DratWriter::DratWriter(std::string base) : base_(std::move(base)) {
  drat_.open(base_ + ".drat", std::ios::out | std::ios::trunc);
  // Probe the .cnf path too, so a bad directory surfaces immediately
  // instead of at flush time.
  std::ofstream probe(base_ + ".cnf", std::ios::out | std::ios::trunc);
  ok_ = drat_.is_open() && probe.is_open();
}

DratWriter::~DratWriter() { flush(); }

void DratWriter::append_clause(std::ostream& os, const std::vector<Lit>& lits) {
  for (const Lit p : lits) {
    const int v = var(p) + 1;  // DIMACS is 1-based
    if (v > max_var_) max_var_ = v;
    os << (sign(p) ? -v : v) << ' ';
  }
  os << "0\n";
}

void DratWriter::input_clause(const std::vector<Lit>& lits) {
  if (!ok_) return;
  append_clause(cnf_body_, lits);
  ++cnf_clauses_;
}

void DratWriter::add(const std::vector<Lit>& lits) {
  if (!ok_) return;
  append_clause(drat_, lits);
}

void DratWriter::remove(const std::vector<Lit>& lits) {
  if (!ok_) return;
  drat_ << "d ";
  append_clause(drat_, lits);
}

void DratWriter::flush() {
  if (!ok_) return;
  std::ofstream cnf(base_ + ".cnf", std::ios::out | std::ios::trunc);
  if (cnf.is_open()) {
    cnf << "p cnf " << max_var_ << ' ' << cnf_clauses_ << '\n';
    cnf << cnf_body_.str();
  }
  drat_.flush();
}

}  // namespace genfv::sat
