#pragma once

/// \file types.hpp
/// Core SAT types: variables, literals and the three-valued LBool.
///
/// The encoding follows MiniSat: a literal is `2*var + sign` where
/// `sign == 1` means the negated literal. This gives literals a dense
/// integer `index()` usable to address watch lists.

#include <cstdint>
#include <functional>

namespace genfv::sat {

using Var = std::int32_t;
inline constexpr Var kUndefVar = -1;

/// A propositional literal (a variable or its negation).
struct Lit {
  std::int32_t code = -2;  // kUndefLit by default

  friend bool operator==(Lit a, Lit b) noexcept { return a.code == b.code; }
  friend bool operator!=(Lit a, Lit b) noexcept { return a.code != b.code; }
  friend bool operator<(Lit a, Lit b) noexcept { return a.code < b.code; }
};

inline constexpr Lit kUndefLit{-2};

/// Build the literal for `v`, negated when `negated` is true.
inline constexpr Lit mk_lit(Var v, bool negated = false) noexcept {
  return Lit{v + v + (negated ? 1 : 0)};
}

inline constexpr Lit operator~(Lit p) noexcept { return Lit{p.code ^ 1}; }
/// Flip the literal iff `flip` is true.
inline constexpr Lit operator^(Lit p, bool flip) noexcept {
  return Lit{p.code ^ (flip ? 1 : 0)};
}

inline constexpr bool sign(Lit p) noexcept { return (p.code & 1) != 0; }
inline constexpr Var var(Lit p) noexcept { return p.code >> 1; }
/// Dense index for watch/activity arrays.
inline constexpr std::int32_t index(Lit p) noexcept { return p.code; }

/// Three-valued logic for partial assignments.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline constexpr LBool lbool_from(bool b) noexcept {
  return b ? LBool::True : LBool::False;
}

inline constexpr LBool operator!(LBool b) noexcept {
  switch (b) {
    case LBool::False: return LBool::True;
    case LBool::True: return LBool::False;
    case LBool::Undef: break;
  }
  return LBool::Undef;
}

/// Value of LBool `b` under literal sign `s` (xor semantics).
inline constexpr LBool xor_sign(LBool b, bool s) noexcept {
  if (b == LBool::Undef) return LBool::Undef;
  return lbool_from((b == LBool::True) != s);
}

}  // namespace genfv::sat

template <>
struct std::hash<genfv::sat::Lit> {
  std::size_t operator()(genfv::sat::Lit p) const noexcept {
    return std::hash<std::int32_t>{}(p.code);
  }
};
