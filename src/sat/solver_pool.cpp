#include "sat/solver_pool.hpp"

#include <utility>

#include "util/lock_order.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::sat {

SolverPool::SolverPool(SolverConfig config) : config_(std::move(config)) {}

std::unique_ptr<Backend> SolverPool::make_solver(std::size_t handle) const {
  auto solver = make_backend(config_.backend);
  solver->set_conflict_budget(config_.conflict_budget);
  solver->set_stop_flag(config_.stop);
  solver->set_inprocessing(config_.inprocess);
  if (!config_.drat_base.empty()) {
    // Proof logging must start on a pristine solver; uniquify per handle and
    // per rebuild generation so concurrent/successive solvers never collide.
    std::string base = config_.drat_base;
    if (handle != 0) base += "-p" + std::to_string(handle);
    std::uint64_t generation = 0;
    {
      util::MutexLock lock(mu_);
      generation = rebuilds_;
    }
    if (generation != 0) base += "-r" + std::to_string(generation);
    solver->start_proof(base);
  }
  return solver;
}

std::size_t SolverPool::acquire() {
  solvers_.push_back(make_solver(solvers_.size()));
  return solvers_.size() - 1;
}

Backend& SolverPool::at(std::size_t handle) {
  GENFV_ASSERT(handle < solvers_.size(), "solver handle out of range");
  return *solvers_[handle];
}

const Backend& SolverPool::at(std::size_t handle) const {
  GENFV_ASSERT(handle < solvers_.size(), "solver handle out of range");
  return *solvers_[handle];
}

Backend& SolverPool::rebuild(std::size_t handle) {
  GENFV_ASSERT(handle < solvers_.size(), "solver handle out of range");
  GENFV_TRACE_SPAN("sat", "pool_rebuild");
  // Rebuild invalidates the handle's solver and takes the accumulator lock;
  // entering it with any engine mutex held risks deadlock and mid-swap
  // observation. Debug lockdep records a hazard if that ever happens.
  util::lockdep::check_no_locks_held("sat::SolverPool::rebuild");
  if (util::telemetry_on()) {
    static util::Counter& rebuilds = util::metrics().counter("sat.pool_rebuilds");
    rebuilds.increment();
  }
  {
    util::MutexLock lock(mu_);
    retired_ += solvers_[handle]->stats();
    ++rebuilds_;
  }
  solvers_[handle] = make_solver(handle);
  return *solvers_[handle];
}

std::uint64_t SolverPool::rebuilds() const {
  util::MutexLock lock(mu_);
  return rebuilds_;
}

SolverStats SolverPool::total_stats() const {
  util::MutexLock lock(mu_);
  SolverStats total = retired_;
  for (const auto& solver : solvers_) total += solver->stats();
  return total;
}

}  // namespace genfv::sat
