#pragma once

/// \file backend.hpp
/// The pluggable SAT-backend interface every engine solves through.
///
/// `sat::Backend` is the incremental-solver contract the model checker is
/// written against: variables, clauses, solve-under-assumptions with model
/// and failed-assumption-core extraction, conflict budgets and cooperative
/// cancellation — exactly the surface `sat::Solver` (the in-tree CDCL core,
/// the default backend) has always exposed. Extracting it lets an external
/// MiniSat/CaDiCaL-style solver be dropped in per `SolverPool` worker and
/// raced inside the portfolio without touching any engine code.
///
/// Optional capabilities degrade gracefully: a backend without inprocessing
/// ignores `set_inprocessing` and may treat `freeze` as a no-op; a backend
/// without proof support returns false from `start_proof` (callers then
/// simply get no certificate). The in-tree solver implements all of them.
///
/// Backends are constructed through `make_backend(name)`; `"internal"` is
/// the in-tree solver and the default everywhere.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace genfv::sat {

/// Aggregate search statistics, cumulative over a backend's lifetime.
struct SolverStats {
  std::uint64_t solves = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t deleted_clauses = 0;
  // Inprocessing (sessions between restarts; see sat/inprocess.hpp).
  std::uint64_t inprocessings = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t strengthened_clauses = 0;
  std::uint64_t eliminated_vars = 0;
  std::uint64_t restored_vars = 0;
  std::uint64_t vivified_clauses = 0;

  SolverStats& operator+=(const SolverStats& other) noexcept {
    solves += other.solves;
    decisions += other.decisions;
    propagations += other.propagations;
    conflicts += other.conflicts;
    restarts += other.restarts;
    learnt_clauses += other.learnt_clauses;
    learnt_literals += other.learnt_literals;
    minimized_literals += other.minimized_literals;
    deleted_clauses += other.deleted_clauses;
    inprocessings += other.inprocessings;
    subsumed_clauses += other.subsumed_clauses;
    strengthened_clauses += other.strengthened_clauses;
    eliminated_vars += other.eliminated_vars;
    restored_vars += other.restored_vars;
    vivified_clauses += other.vivified_clauses;
    return *this;
  }
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Create a fresh variable and return it. `decision` controls whether the
  /// search may branch on it.
  virtual Var new_var(bool decision = true) = 0;

  virtual int num_vars() const noexcept = 0;

  /// Add a clause (consumed). Returns false iff the formula is now known
  /// UNSAT at level 0. Must be called between solves.
  virtual bool add_clause(std::vector<Lit> lits) = 0;
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

  /// Solve under `assumptions`. Returns True (SAT: model available),
  /// False (UNSAT: failed-assumption core available), or Undef when the
  /// conflict budget / stop flag cut the search short.
  virtual LBool solve(const std::vector<Lit>& assumptions = {}) = 0;

  /// Value of `p` in the most recent satisfying model.
  virtual LBool model_value(Lit p) const noexcept = 0;
  virtual LBool model_value(Var v) const noexcept = 0;

  /// Current assignment (partial during search; level-0 facts between
  /// solves). Exposed for the bit-blaster's constant-literal handling.
  virtual LBool value(Lit p) const noexcept = 0;
  virtual LBool value(Var v) const noexcept = 0;

  /// After an UNSAT answer: a subset of the assumptions whose conjunction is
  /// inconsistent with the clause database.
  virtual const std::vector<Lit>& failed_assumptions() const noexcept = 0;

  /// Limit the next solve() calls to roughly `budget` conflicts; -1 removes
  /// the limit.
  virtual void set_conflict_budget(std::int64_t budget) noexcept = 0;

  /// Cooperative cancellation — see Solver::set_stop_flag for the contract.
  virtual void set_stop_flag(const std::atomic<bool>* stop) noexcept = 0;

  /// True iff the clause database has been proven UNSAT outright.
  virtual bool inconsistent() const noexcept = 0;

  virtual const SolverStats& stats() const noexcept = 0;

  /// Pin `v` against variable elimination: anything the caller will ever
  /// reference again (assumption literals, activation gates, unroller
  /// outputs) must be frozen. Backends without inprocessing may no-op.
  virtual void freeze(Var v) { (void)v; }
  void freeze_all(const std::vector<Lit>& lits) {
    for (const Lit p : lits) freeze(var(p));
  }

  /// Toggle inprocessing (and the LBD-tiered clause-DB policy). Off pins
  /// the backend to the plain-CDCL behavior; default is on. No-op for
  /// backends without inprocessing.
  virtual void set_inprocessing(bool on) { (void)on; }

  /// Begin DRAT proof logging to `<path_base>.cnf` / `<path_base>.drat`.
  /// Must be called before any variable or clause exists. Returns false if
  /// the backend cannot produce proofs or the files could not be opened.
  virtual bool start_proof(const std::string& path_base) {
    (void)path_base;
    return false;
  }

  /// Literal constrained true in every model (lazily created). Lets callers
  /// encode constants without special cases.
  Lit true_lit();

 private:
  Var true_var_ = kUndefVar;
};

/// Construct a backend by registry name. `"internal"` is the in-tree CDCL
/// solver. Throws util::UsageError for unknown names, listing the registry.
std::unique_ptr<Backend> make_backend(const std::string& name = "internal");

/// Names accepted by make_backend.
std::vector<std::string> backend_names();

}  // namespace genfv::sat
