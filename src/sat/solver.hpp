#pragma once

/// \file solver.hpp
/// A from-scratch CDCL SAT solver in the MiniSat lineage — the in-tree
/// `sat::Backend` implementation and the default everywhere.
///
/// Features:
///  * two-watched-literal unit propagation with blocker literals,
///  * first-UIP conflict analysis with (local) clause minimization,
///  * VSIDS variable activities with phase saving,
///  * Luby restarts,
///  * learnt-clause database reduction — LBD-tiered (glue clauses are
///    immortal, the rest ranked by LBD then activity) when inprocessing is
///    enabled, the legacy activity order when it is off,
///  * inprocessing between restarts (sat/inprocess.hpp): top-level
///    simplification, clause subsumption + self-subsuming strengthening,
///    bounded variable elimination and vivification, scheduled on a
///    conflict-count cadence and cooperative with incremental use through
///    frozen variables and restore-on-import,
///  * incremental solving under assumptions with final-conflict
///    (unsat-core-over-assumptions) extraction,
///  * optional conflict budget for best-effort queries,
///  * optional DRAT proof logging (sat/drat.hpp).
///
/// The model checker keeps one live `Solver` per unrolling and extends it
/// with new frames between `solve()` calls; clauses may be added whenever the
/// solver is at decision level 0 (which it always is between calls).
///
/// `set_inprocessing(false)` pins the solver bit-for-bit to the plain-CDCL
/// behavior: no inprocessing sessions, legacy reduce_db order, no freezing
/// side effects on the search.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/backend.hpp"
#include "sat/heap.hpp"
#include "sat/types.hpp"

namespace genfv::sat {

class DratWriter;
class Inprocessor;

class Solver final : public Backend {
 public:
  Solver();
  ~Solver() override;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Create a fresh variable and return it. `decision` controls whether the
  /// search may branch on it (auxiliary Tseitin variables still may).
  Var new_var(bool decision = true) override;

  int num_vars() const noexcept override { return static_cast<int>(assigns_.size()); }
  std::size_t num_clauses() const noexcept { return clauses_.size(); }
  std::size_t num_learnts() const noexcept { return learnts_.size(); }

  /// Add a clause (consumed). Returns false iff the formula is now known
  /// UNSAT at level 0. Must be called at decision level 0. A clause
  /// mentioning an eliminated variable first restores the whole elimination
  /// stack (restore-on-import).
  using Backend::add_clause;
  bool add_clause(std::vector<Lit> lits) override;

  /// Solve under `assumptions`. Returns True (SAT: model available),
  /// False (UNSAT: failed-assumption core available), or Undef when the
  /// conflict budget ran out. Assumption variables are implicitly frozen
  /// for the rest of the solver's life.
  LBool solve(const std::vector<Lit>& assumptions = {}) override;

  /// Value of `p` in the most recent satisfying model. Models cover
  /// eliminated variables (extended through the elimination stack).
  LBool model_value(Lit p) const noexcept override;
  LBool model_value(Var v) const noexcept override;

  /// After an UNSAT answer: a subset of the assumptions whose conjunction is
  /// inconsistent with the clause database.
  const std::vector<Lit>& failed_assumptions() const noexcept override { return core_; }

  /// Limit the next solve() calls to roughly `budget` conflicts; -1 removes
  /// the limit.
  void set_conflict_budget(std::int64_t budget) noexcept override {
    conflict_budget_ = budget;
  }

  /// Cooperative cancellation: while `*stop` reads true, solve() abandons the
  /// search and returns Undef (indistinguishable from budget exhaustion, and
  /// handled identically by every engine). The solver only ever *reads* the
  /// flag, with relaxed ordering, so any number of solvers may share one flag
  /// and any thread may set it. The pointee must outlive the solver or be
  /// detached with `set_stop_flag(nullptr)` first; nullptr (the default)
  /// disables the check.
  void set_stop_flag(const std::atomic<bool>* stop) noexcept override { stop_ = stop; }

  /// True iff the clause database has been proven UNSAT outright.
  bool inconsistent() const noexcept override { return !ok_; }

  const SolverStats& stats() const noexcept override { return stats_; }

  /// Current assignment of `p` (partial during search; level-0 facts between
  /// solves). Exposed for the bit-blaster's constant-literal handling.
  LBool value(Lit p) const noexcept override {
    return xor_sign(assigns_[static_cast<std::size_t>(var(p))], sign(p));
  }
  LBool value(Var v) const noexcept override {
    return assigns_[static_cast<std::size_t>(v)];
  }

  /// Pin `v` against variable elimination. Freezing is permanent and has no
  /// effect on the search itself.
  void freeze(Var v) override { frozen_[static_cast<std::size_t>(v)] = 1; }
  bool is_frozen(Var v) const noexcept { return frozen_[static_cast<std::size_t>(v)] != 0; }
  bool is_eliminated(Var v) const noexcept {
    return eliminated_[static_cast<std::size_t>(v)] != 0;
  }

  /// Toggle inprocessing + the LBD-tiered clause-DB policy (default on).
  void set_inprocessing(bool on) override { inprocess_on_ = on; }
  bool inprocessing() const noexcept { return inprocess_on_; }

  /// Begin DRAT logging to `<path_base>.cnf` / `<path_base>.drat`. Must be
  /// called on a pristine solver (no variables or clauses yet).
  bool start_proof(const std::string& path_base) override;

  /// Run one inprocessing session immediately (level 0, between solves).
  /// Exposed for presimplification (`genfv_cli sat`) and the soundness
  /// fuzz tests; the scheduled sessions inside solve() use the same path.
  void simplify_now();

 private:
  friend class Inprocessor;

  LBool solve_core(const std::vector<Lit>& assumptions);

  struct Clause {
    float activity = 0.0f;
    std::uint32_t lbd = 0;  // glue: distinct decision levels at learn time,
                            // aged down when the clause re-enters analysis
    bool learnt = false;
    bool dead = false;           // inprocessing scratch: detached, awaiting sweep
    std::uint64_t sig = 0;       // inprocessing scratch: variable signature
    std::vector<Lit> lits;
  };

  struct Watcher {
    Clause* clause = nullptr;
    Lit blocker = kUndefLit;
  };

  /// One variable-elimination record: the original clauses that mentioned
  /// `v`, kept for restore-on-import and model extension.
  struct ElimEntry {
    Var v = kUndefVar;
    bool was_decision = false;
    std::vector<std::vector<Lit>> clauses;
  };

  /// DRAT disposition of a clause entering the database.
  enum class ClauseOrigin {
    kInput,    // caller-added: logged to the .cnf
    kDerived,  // inprocessing resolvent/strengthening: logged as a proof add
    kRestored  // re-import of an eliminated var's clause: already on file
  };

  // --- propagation ---------------------------------------------------------
  Clause* propagate();
  void attach_clause(Clause* c);
  void detach_clause(Clause* c);
  void unchecked_enqueue(Lit p, Clause* from = nullptr);

  // --- conflict analysis ---------------------------------------------------
  void analyze(Clause* conflict, std::vector<Lit>& out_learnt, int& out_btlevel);
  bool literal_redundant(Lit p) const;
  void analyze_final(Lit failed_assumption);
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);

  // --- search --------------------------------------------------------------
  LBool search(int conflicts_before_restart, const std::vector<Lit>& assumptions);
  Lit pick_branch_lit();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  int decision_level() const noexcept { return static_cast<int>(trail_lim_.size()); }
  void cancel_until(int level);

  // --- activities / clause DB ----------------------------------------------
  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ *= (1.0 / kVarDecay); }
  void cla_bump_activity(Clause& c);
  void cla_decay_activity() { cla_inc_ *= (1.0f / kClaDecay); }
  void reduce_db();
  bool locked(const Clause* c) const noexcept;

  // --- inprocessing support -------------------------------------------------
  /// Shared clause-entry path; returns the attached clause (nullptr when the
  /// clause was absorbed: satisfied, tautological, unit or empty).
  Clause* add_clause_impl(std::vector<Lit> lits, ClauseOrigin origin);
  /// Re-add every eliminated variable's clauses (reverse stack order) so a
  /// clause or assumption may mention them again.
  void restore_eliminated();
  /// Extend `model_` over eliminated variables (reverse stack order).
  void extend_model();
  /// Mark the database UNSAT and log the empty clause (once).
  void mark_unsat();

  int level_of(Var v) const noexcept { return level_[static_cast<std::size_t>(v)]; }
  Clause* reason_of(Var v) const noexcept { return reason_[static_cast<std::size_t>(v)]; }

  static constexpr double kVarDecay = 0.95;
  static constexpr float kClaDecay = 0.999f;
  /// Floor on the conflicts between inprocessing sessions; the effective
  /// interval is max(this, clauses/4) so session cost stays proportional to
  /// the solving done between sessions. Tuned on the shootout's SAT-heavy
  /// rows: 1000 barely fires inside PDR's short budgeted queries, 250 cuts
  /// fifo_ctrl conflicts ~35% and dual_accumulator ~98% against the
  /// inprocessing-off ablation; 150 starts to thrash, and a shallower size
  /// scaling (clauses/8) fires zero-payoff sessions on the big low-conflict
  /// BMC-style CNFs (sdiv_props).
  static constexpr std::uint64_t kInprocessInterval = 250;
  /// Learnt clauses with LBD at or below this are never deleted.
  static constexpr std::uint32_t kCoreLbd = 2;

  bool ok_ = true;

  std::vector<std::unique_ptr<Clause>> clauses_;
  std::vector<std::unique_ptr<Clause>> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal index

  std::vector<LBool> assigns_;
  std::vector<char> polarity_;   // saved phase (true = assign negative first)
  std::vector<char> decision_;
  std::vector<char> frozen_;
  std::vector<char> eliminated_;
  std::vector<Clause*> reason_;
  std::vector<int> level_;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  float cla_inc_ = 1.0f;
  VarOrderHeap order_heap_;

  std::vector<char> seen_;
  std::vector<Lit> analyze_toclear_;
  std::vector<std::uint64_t> lbd_seen_;  // per-level stamp for compute_lbd
  std::uint64_t lbd_stamp_ = 0;

  std::vector<LBool> model_;
  std::vector<Lit> core_;

  std::vector<ElimEntry> elim_stack_;

  bool interrupted() const noexcept {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  double max_learnts_ = 0.0;
  std::int64_t conflict_budget_ = -1;
  const std::atomic<bool>* stop_ = nullptr;
  std::uint64_t conflicts_at_solve_start_ = 0;

  bool inprocess_on_ = true;
  std::uint64_t last_inprocess_conflicts_ = 0;
  std::size_t vivify_cursor_ = 0;  // round-robin start for vivification

  std::unique_ptr<DratWriter> drat_;
  bool empty_clause_logged_ = false;

  SolverStats stats_;
};

}  // namespace genfv::sat
