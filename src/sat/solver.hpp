#pragma once

/// \file solver.hpp
/// A from-scratch CDCL SAT solver in the MiniSat lineage.
///
/// Features:
///  * two-watched-literal unit propagation with blocker literals,
///  * first-UIP conflict analysis with (local) clause minimization,
///  * VSIDS variable activities with phase saving,
///  * Luby restarts,
///  * activity-driven learnt-clause database reduction,
///  * incremental solving under assumptions with final-conflict
///    (unsat-core-over-assumptions) extraction,
///  * optional conflict budget for best-effort queries.
///
/// The model checker keeps one live `Solver` per unrolling and extends it
/// with new frames between `solve()` calls; clauses may be added whenever the
/// solver is at decision level 0 (which it always is between calls).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/heap.hpp"
#include "sat/types.hpp"

namespace genfv::sat {

/// Aggregate search statistics, cumulative over the solver's lifetime.
struct SolverStats {
  std::uint64_t solves = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t deleted_clauses = 0;

  SolverStats& operator+=(const SolverStats& other) noexcept {
    solves += other.solves;
    decisions += other.decisions;
    propagations += other.propagations;
    conflicts += other.conflicts;
    restarts += other.restarts;
    learnt_clauses += other.learnt_clauses;
    learnt_literals += other.learnt_literals;
    minimized_literals += other.minimized_literals;
    deleted_clauses += other.deleted_clauses;
    return *this;
  }
};

class Solver {
 public:
  Solver();
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Create a fresh variable and return it. `decision` controls whether the
  /// search may branch on it (auxiliary Tseitin variables still may).
  Var new_var(bool decision = true);

  int num_vars() const noexcept { return static_cast<int>(assigns_.size()); }
  std::size_t num_clauses() const noexcept { return clauses_.size(); }
  std::size_t num_learnts() const noexcept { return learnts_.size(); }

  /// Add a clause (consumed). Returns false iff the formula is now known
  /// UNSAT at level 0. Must be called at decision level 0.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

  /// Solve under `assumptions`. Returns True (SAT: model available),
  /// False (UNSAT: failed-assumption core available), or Undef when the
  /// conflict budget ran out.
  LBool solve(const std::vector<Lit>& assumptions = {});

  /// Value of `p` in the most recent satisfying model.
  LBool model_value(Lit p) const noexcept;
  LBool model_value(Var v) const noexcept;

  /// After an UNSAT answer: a subset of the assumptions whose conjunction is
  /// inconsistent with the clause database.
  const std::vector<Lit>& failed_assumptions() const noexcept { return core_; }

  /// Limit the next solve() calls to roughly `budget` conflicts; -1 removes
  /// the limit.
  void set_conflict_budget(std::int64_t budget) noexcept { conflict_budget_ = budget; }

  /// Cooperative cancellation: while `*stop` reads true, solve() abandons the
  /// search and returns Undef (indistinguishable from budget exhaustion, and
  /// handled identically by every engine). The solver only ever *reads* the
  /// flag, with relaxed ordering, so any number of solvers may share one flag
  /// and any thread may set it. The pointee must outlive the solver or be
  /// detached with `set_stop_flag(nullptr)` first; nullptr (the default)
  /// disables the check.
  void set_stop_flag(const std::atomic<bool>* stop) noexcept { stop_ = stop; }

  /// True iff the clause database has been proven UNSAT outright.
  bool inconsistent() const noexcept { return !ok_; }

  const SolverStats& stats() const noexcept { return stats_; }

  /// Current assignment of `p` (partial during search; level-0 facts between
  /// solves). Exposed for the bit-blaster's constant-literal handling.
  LBool value(Lit p) const noexcept { return xor_sign(assigns_[static_cast<std::size_t>(var(p))], sign(p)); }
  LBool value(Var v) const noexcept { return assigns_[static_cast<std::size_t>(v)]; }

  /// Literal that is constrained to be true in every model (lazily created).
  /// Lets callers encode constants without special cases.
  Lit true_lit();

 private:
  LBool solve_core(const std::vector<Lit>& assumptions);

  struct Clause {
    float activity = 0.0f;
    bool learnt = false;
    std::vector<Lit> lits;
  };

  struct Watcher {
    Clause* clause = nullptr;
    Lit blocker = kUndefLit;
  };

  // --- propagation ---------------------------------------------------------
  Clause* propagate();
  void attach_clause(Clause* c);
  void detach_clause(Clause* c);
  void unchecked_enqueue(Lit p, Clause* from = nullptr);

  // --- conflict analysis ---------------------------------------------------
  void analyze(Clause* conflict, std::vector<Lit>& out_learnt, int& out_btlevel);
  bool literal_redundant(Lit p) const;
  void analyze_final(Lit failed_assumption);

  // --- search --------------------------------------------------------------
  LBool search(int conflicts_before_restart, const std::vector<Lit>& assumptions);
  Lit pick_branch_lit();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  int decision_level() const noexcept { return static_cast<int>(trail_lim_.size()); }
  void cancel_until(int level);

  // --- activities / clause DB ----------------------------------------------
  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ *= (1.0 / kVarDecay); }
  void cla_bump_activity(Clause& c);
  void cla_decay_activity() { cla_inc_ *= (1.0f / kClaDecay); }
  void reduce_db();
  bool locked(const Clause* c) const noexcept;

  int level_of(Var v) const noexcept { return level_[static_cast<std::size_t>(v)]; }
  Clause* reason_of(Var v) const noexcept { return reason_[static_cast<std::size_t>(v)]; }

  static constexpr double kVarDecay = 0.95;
  static constexpr float kClaDecay = 0.999f;

  bool ok_ = true;

  std::vector<std::unique_ptr<Clause>> clauses_;
  std::vector<std::unique_ptr<Clause>> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal index

  std::vector<LBool> assigns_;
  std::vector<char> polarity_;   // saved phase (true = assign negative first)
  std::vector<char> decision_;
  std::vector<Clause*> reason_;
  std::vector<int> level_;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  float cla_inc_ = 1.0f;
  VarOrderHeap order_heap_;

  std::vector<char> seen_;
  std::vector<Lit> analyze_toclear_;

  std::vector<LBool> model_;
  std::vector<Lit> core_;

  bool interrupted() const noexcept {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  double max_learnts_ = 0.0;
  std::int64_t conflict_budget_ = -1;
  const std::atomic<bool>* stop_ = nullptr;
  std::uint64_t conflicts_at_solve_start_ = 0;

  Var true_var_ = kUndefVar;

  SolverStats stats_;
};

}  // namespace genfv::sat
