#pragma once

/// \file dimacs.hpp
/// DIMACS CNF import/export, used by the test-suite (cross-checking the CDCL
/// solver against brute force on random formulas) and handy for debugging
/// bit-blasted queries offline.

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace genfv::sat {

class Backend;

/// A raw CNF: clauses over 1-based DIMACS variables (negative = negated).
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

/// Parse DIMACS text. Throws ParseError on malformed input.
Cnf parse_dimacs(const std::string& text);

/// Serialize to DIMACS text.
std::string to_dimacs(const Cnf& cnf);

/// Load `cnf` into `solver` (creates variables as needed); the literal
/// mapping is implicit: DIMACS var i -> solver var i-1.
/// Returns false if the solver became UNSAT while loading.
bool load_cnf(const Cnf& cnf, Backend& solver);

}  // namespace genfv::sat
