#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "sat/drat.hpp"
#include "sat/inprocess.hpp"
#include "sat/luby.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::sat {

Solver::Solver() : order_heap_(activity_) {}
Solver::~Solver() = default;

Var Solver::new_var(bool decision) {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  polarity_.push_back(1);  // like MiniSat: first branch assigns "false"
  decision_.push_back(decision ? 1 : 0);
  frozen_.push_back(0);
  eliminated_.push_back(0);
  reason_.push_back(nullptr);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();  // index for mk_lit(v, false)
  watches_.emplace_back();  // index for mk_lit(v, true)
  order_heap_.grow_to(v);
  if (decision) order_heap_.insert(v);
  return v;
}

bool Solver::start_proof(const std::string& path_base) {
  GENFV_ASSERT(num_vars() == 0 && clauses_.empty() && learnts_.empty(),
               "start_proof requires a pristine solver");
  drat_ = std::make_unique<DratWriter>(path_base);
  if (!drat_->ok()) {
    drat_.reset();
    return false;
  }
  return true;
}

void Solver::mark_unsat() {
  ok_ = false;
  if (drat_ != nullptr && !empty_clause_logged_) {
    drat_->add_empty();
    empty_clause_logged_ = true;
    // The derivation is complete at this point — make the certificate
    // durable now rather than at solver teardown.
    drat_->flush();
  }
}

bool Solver::add_clause(std::vector<Lit> lits) {
  add_clause_impl(std::move(lits), ClauseOrigin::kInput);
  return ok_;
}

Solver::Clause* Solver::add_clause_impl(std::vector<Lit> lits, ClauseOrigin origin) {
  GENFV_ASSERT(decision_level() == 0, "clauses may only be added at level 0");
  if (drat_ != nullptr) {
    if (origin == ClauseOrigin::kInput) {
      drat_->input_clause(lits);
    } else if (origin == ClauseOrigin::kDerived) {
      drat_->add(lits);
    }
  }
  if (origin != ClauseOrigin::kRestored && !elim_stack_.empty()) {
    for (const Lit p : lits) {
      if (is_eliminated(var(p))) {
        restore_eliminated();
        break;
      }
    }
  }
  if (!ok_) return nullptr;

  // Normalize: sort, drop duplicates and false literals, detect tautologies
  // and already-satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> cleaned;
  cleaned.reserve(lits.size());
  Lit prev = kUndefLit;
  for (const Lit p : lits) {
    GENFV_ASSERT(var(p) >= 0 && var(p) < num_vars(), "literal out of range");
    if (value(p) == LBool::True || p == ~prev) return nullptr;  // satisfied / tautology
    if (value(p) != LBool::False && p != prev) {
      cleaned.push_back(p);
      prev = p;
    }
  }

  if (cleaned.empty()) {
    mark_unsat();
    return nullptr;
  }
  if (cleaned.size() == 1) {
    unchecked_enqueue(cleaned[0]);
    if (propagate() != nullptr) mark_unsat();
    return nullptr;
  }

  auto clause = std::make_unique<Clause>();
  clause->lits = std::move(cleaned);
  attach_clause(clause.get());
  clauses_.push_back(std::move(clause));
  return clauses_.back().get();
}

void Solver::restore_eliminated() {
  if (elim_stack_.empty()) return;
  GENFV_ASSERT(decision_level() == 0, "restore runs between solves");
  stats_.restored_vars += elim_stack_.size();
  std::vector<ElimEntry> stack;
  stack.swap(elim_stack_);
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const auto v = static_cast<std::size_t>(it->v);
    eliminated_[v] = 0;
    decision_[v] = it->was_decision ? 1 : 0;
    if (decision_[v] != 0 && value(it->v) == LBool::Undef && !order_heap_.contains(it->v)) {
      order_heap_.insert(it->v);
    }
  }
  // The stored clauses are already part of the proof's active set (they were
  // never deleted from it), so re-adding emits no DRAT traffic.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    for (auto& cl : it->clauses) {
      if (!ok_) return;
      add_clause_impl(std::move(cl), ClauseOrigin::kRestored);
    }
  }
}

void Solver::extend_model() {
  const auto lit_true = [this](Lit p) {
    return xor_sign(model_[static_cast<std::size_t>(var(p))], sign(p)) == LBool::True;
  };
  // Reverse stack order: an entry's clauses only mention variables that were
  // never eliminated or that a later entry (already processed) covers.
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    LBool val = LBool::False;
    for (const auto& cl : it->clauses) {
      bool satisfied = false;
      Lit mine = kUndefLit;
      for (const Lit p : cl) {
        if (var(p) == it->v) {
          mine = p;
          continue;
        }
        if (lit_true(p)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && mine != kUndefLit) {
        // BVE kept every resolvent, so all clauses unsatisfied-by-others
        // agree on the polarity they need from the eliminated variable.
        val = sign(mine) ? LBool::False : LBool::True;
        break;
      }
    }
    model_[static_cast<std::size_t>(it->v)] = val;
  }
}

void Solver::attach_clause(Clause* c) {
  GENFV_ASSERT(c->lits.size() >= 2, "attach requires a binary-or-larger clause");
  watches_[static_cast<std::size_t>(index(~c->lits[0]))].push_back({c, c->lits[1]});
  watches_[static_cast<std::size_t>(index(~c->lits[1]))].push_back({c, c->lits[0]});
}

void Solver::detach_clause(Clause* c) {
  auto remove_from = [c](std::vector<Watcher>& ws) {
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].clause == c) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
    GENFV_ASSERT(false, "detach: watcher not found");
  };
  remove_from(watches_[static_cast<std::size_t>(index(~c->lits[0]))]);
  remove_from(watches_[static_cast<std::size_t>(index(~c->lits[1]))]);
}

void Solver::unchecked_enqueue(Lit p, Clause* from) {
  GENFV_ASSERT(value(p) == LBool::Undef, "enqueue of an assigned literal");
  const auto v = static_cast<std::size_t>(var(p));
  assigns_[v] = lbool_from(!sign(p));
  reason_[v] = from;
  level_[v] = decision_level();
  trail_.push_back(p);
}

Solver::Clause* Solver::propagate() {
  Clause* conflict = nullptr;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p became true; visit clauses watching ~p
    ++stats_.propagations;
    auto& ws = watches_[static_cast<std::size_t>(index(p))];
    std::size_t keep = 0;
    std::size_t i = 0;
    for (; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = *w.clause;
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      // Invariant: c.lits[1] == false_lit.
      const Lit first = c.lits[0];
      if (first != w.blocker && value(first) == LBool::True) {
        ws[keep++] = {w.clause, first};
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>(index(~c.lits[1]))].push_back({w.clause, first});
          found = true;
          break;
        }
      }
      if (found) continue;  // watcher moved; do not keep here
      // Clause is unit or conflicting under the current assignment.
      ws[keep++] = {w.clause, first};
      if (value(first) == LBool::False) {
        conflict = w.clause;
        qhead_ = trail_.size();
        // Copy the remaining watchers before aborting the scan.
        for (++i; i < ws.size(); ++i) ws[keep++] = ws[i];
        break;
      }
      unchecked_enqueue(first, w.clause);
    }
    ws.resize(keep);
    if (conflict != nullptr) break;
  }
  return conflict;
}

void Solver::var_bump_activity(Var v) {
  auto& act = activity_[static_cast<std::size_t>(v)];
  act += var_inc_;
  if (act > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.increased(v);
}

void Solver::cla_bump_activity(Clause& c) {
  c.activity += cla_inc_;
  if (c.activity > 1e20f) {
    for (auto& learnt : learnts_) learnt->activity *= 1e-20f;
    cla_inc_ *= 1e-20f;
  }
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& lits) {
  ++lbd_stamp_;
  if (lbd_seen_.size() <= static_cast<std::size_t>(decision_level())) {
    lbd_seen_.resize(static_cast<std::size_t>(decision_level()) + 1, 0);
  }
  std::uint32_t count = 0;
  for (const Lit p : lits) {
    const int l = level_of(var(p));
    if (l > 0 && lbd_seen_[static_cast<std::size_t>(l)] != lbd_stamp_) {
      lbd_seen_[static_cast<std::size_t>(l)] = lbd_stamp_;
      ++count;
    }
  }
  return count;
}

void Solver::analyze(Clause* conflict, std::vector<Lit>& out_learnt, int& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // slot for the asserting literal

  int path_count = 0;
  Lit p = kUndefLit;
  int idx = static_cast<int>(trail_.size()) - 1;

  Clause* c = conflict;
  do {
    GENFV_ASSERT(c != nullptr, "conflict analysis walked past a decision");
    if (c->learnt) {
      cla_bump_activity(*c);
      // Age the glue: a learnt clause re-entering analysis gets its LBD
      // recomputed and keeps the minimum (glucose-style aging).
      if (inprocess_on_ && c->lbd > kCoreLbd) {
        const std::uint32_t lbd = compute_lbd(c->lits);
        if (lbd < c->lbd) c->lbd = lbd;
      }
    }
    for (std::size_t j = (p == kUndefLit) ? 0 : 1; j < c->lits.size(); ++j) {
      const Lit q = c->lits[j];
      const auto vq = static_cast<std::size_t>(var(q));
      if (seen_[vq] == 0 && level_[vq] > 0) {
        var_bump_activity(var(q));
        seen_[vq] = 1;
        analyze_toclear_.push_back(q);
        if (level_[vq] >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    while (seen_[static_cast<std::size_t>(var(trail_[static_cast<std::size_t>(idx)]))] == 0) {
      --idx;
    }
    p = trail_[static_cast<std::size_t>(idx)];
    --idx;
    c = reason_of(var(p));
    seen_[static_cast<std::size_t>(var(p))] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Local clause minimization: a literal is redundant when its reason clause
  // is fully covered by the remaining learnt literals (or level-0 facts).
  stats_.learnt_literals += out_learnt.size();
  std::size_t kept = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason_of(var(out_learnt[i])) == nullptr || !literal_redundant(out_learnt[i])) {
      out_learnt[kept++] = out_learnt[i];
    }
  }
  stats_.minimized_literals += out_learnt.size() - kept;
  out_learnt.resize(kept);

  // Determine the backtrack level and move its literal to slot 1 so that
  // both watches are correct after backjumping.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_of(var(out_learnt[i])) > level_of(var(out_learnt[max_i]))) max_i = i;
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_of(var(out_learnt[1]));
  }

  for (const Lit q : analyze_toclear_) seen_[static_cast<std::size_t>(var(q))] = 0;
  analyze_toclear_.clear();
}

bool Solver::literal_redundant(Lit p) const {
  const Clause* reason = reason_of(var(p));
  GENFV_ASSERT(reason != nullptr, "redundancy check needs a reason clause");
  for (std::size_t j = 1; j < reason->lits.size(); ++j) {
    const Lit q = reason->lits[j];
    const auto vq = static_cast<std::size_t>(var(q));
    if (seen_[vq] == 0 && level_[vq] > 0) return false;
  }
  return true;
}

void Solver::analyze_final(Lit failed_assumption) {
  core_.clear();
  core_.push_back(failed_assumption);
  if (decision_level() == 0) return;

  seen_[static_cast<std::size_t>(var(failed_assumption))] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[0]; --i) {
    const Lit t = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(var(t));
    if (seen_[v] == 0) continue;
    if (reason_[v] == nullptr) {
      // A decision inside the assumption prefix: it is an assumption literal.
      core_.push_back(t);
    } else {
      const Clause& c = *reason_[v];
      for (std::size_t j = 1; j < c.lits.size(); ++j) {
        const auto vq = static_cast<std::size_t>(var(c.lits[j]));
        if (level_[vq] > 0) seen_[vq] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[static_cast<std::size_t>(var(failed_assumption))] = 0;

  // The negated core is RUP (propagating the core assumptions replays the
  // trail into this conflict), so UNSAT-under-assumption answers are
  // certifiable lemmas too.
  if (drat_ != nullptr) {
    std::vector<Lit> clause;
    clause.reserve(core_.size());
    for (const Lit p : core_) clause.push_back(~p);
    drat_->add(clause);
  }
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  const int bound = trail_lim_[static_cast<std::size_t>(level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const auto v = static_cast<std::size_t>(var(p));
    assigns_[v] = LBool::Undef;
    polarity_[v] = sign(p) ? 1 : 0;  // phase saving
    reason_[v] = nullptr;
    if (decision_[v] != 0 && !order_heap_.contains(var(p))) order_heap_.insert(var(p));
  }
  qhead_ = static_cast<std::size_t>(bound);
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(level));
}

Lit Solver::pick_branch_lit() {
  while (!order_heap_.empty()) {
    const Var v = order_heap_.pop_max();
    if (value(v) == LBool::Undef && decision_[static_cast<std::size_t>(v)] != 0) {
      return mk_lit(v, polarity_[static_cast<std::size_t>(v)] != 0);
    }
  }
  return kUndefLit;
}

bool Solver::locked(const Clause* c) const noexcept {
  const Var v = var(c->lits[0]);
  return reason_of(v) == c && value(c->lits[0]) == LBool::True;
}

void Solver::reduce_db() {
  std::vector<Clause*> sorted;
  sorted.reserve(learnts_.size());
  const std::size_t target = learnts_.size() / 2;
  std::size_t doomed = 0;

  if (inprocess_on_) {
    // LBD tiers: core clauses (lbd <= kCoreLbd) and binaries are immortal;
    // the rest die worst-glue-first, activity as the tie-break.
    for (const auto& c : learnts_) {
      if (c->lits.size() > 2 && c->lbd > kCoreLbd && !locked(c.get())) {
        sorted.push_back(c.get());
      }
    }
    std::sort(sorted.begin(), sorted.end(), [](const Clause* a, const Clause* b) {
      if (a->lbd != b->lbd) return a->lbd > b->lbd;  // worst glue first
      return a->activity < b->activity;
    });
    for (Clause* c : sorted) {
      if (doomed >= target) break;
      c->dead = true;
      ++doomed;
    }
  } else {
    // Legacy order: sort learnts by (size > 2, activity); glue-ish survive.
    for (const auto& c : learnts_) sorted.push_back(c.get());
    std::sort(sorted.begin(), sorted.end(), [](const Clause* a, const Clause* b) {
      const bool a_big = a->lits.size() > 2;
      const bool b_big = b->lits.size() > 2;
      if (a_big != b_big) return a_big;  // big clauses first (delete candidates)
      return a->activity < b->activity;
    });
    for (Clause* c : sorted) {
      if (doomed >= target) break;
      if (c->lits.size() > 2 && !locked(c)) {
        c->dead = true;
        ++doomed;
      }
    }
  }

  for (const auto& c : learnts_) {
    if (!c->dead) continue;
    if (drat_ != nullptr) drat_->remove(c->lits);
    detach_clause(c.get());
  }
  learnts_.erase(std::remove_if(learnts_.begin(), learnts_.end(),
                                [](const std::unique_ptr<Clause>& c) { return c->dead; }),
                 learnts_.end());
  stats_.deleted_clauses += doomed;
}

LBool Solver::search(int conflicts_before_restart, const std::vector<Lit>& assumptions) {
  int conflict_count = 0;
  std::vector<Lit> learnt;

  while (true) {
    Clause* conflict = propagate();
    if (conflict != nullptr) {
      ++stats_.conflicts;
      ++conflict_count;
      if (decision_level() == 0) {
        mark_unsat();
        return LBool::False;
      }
      int backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      const std::uint32_t lbd = compute_lbd(learnt);
      if (drat_ != nullptr) drat_->add(learnt);
      if (util::telemetry_on()) {
        static util::Histogram& lbd_hist =
            util::metrics().histogram("sat.lbd", /*first_bound=*/1, /*buckets=*/16);
        lbd_hist.observe(lbd);
      }
      // Never backjump into the assumption prefix below a still-needed
      // assumption decision: cancel_until handles replay because the
      // decision loop below re-enqueues assumptions in order.
      cancel_until(backtrack_level);
      ++stats_.learnt_clauses;
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0]);
      } else {
        auto clause = std::make_unique<Clause>();
        clause->learnt = true;
        clause->lbd = lbd;
        clause->lits = learnt;
        attach_clause(clause.get());
        cla_bump_activity(*clause);
        unchecked_enqueue(learnt[0], clause.get());
        learnts_.push_back(std::move(clause));
      }
      var_decay_activity();
      cla_decay_activity();
      continue;
    }

    // No conflict.
    const bool budget_exhausted =
        conflict_budget_ >= 0 &&
        stats_.conflicts - conflicts_at_solve_start_ >=
            static_cast<std::uint64_t>(conflict_budget_);
    if (conflict_count >= conflicts_before_restart || budget_exhausted ||
        interrupted()) {
      ++stats_.restarts;
      cancel_until(0);
      return LBool::Undef;
    }
    if (static_cast<double>(learnts_.size()) - static_cast<double>(trail_.size()) >=
        max_learnts_) {
      reduce_db();
    }

    Lit next = kUndefLit;
    while (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit p = assumptions[static_cast<std::size_t>(decision_level())];
      if (value(p) == LBool::True) {
        new_decision_level();  // dummy level keeps indices aligned
      } else if (value(p) == LBool::False) {
        analyze_final(p);
        return LBool::False;
      } else {
        next = p;
        break;
      }
    }
    if (next == kUndefLit) {
      ++stats_.decisions;
      next = pick_branch_lit();
      if (next == kUndefLit) return LBool::True;  // all variables assigned
    }
    new_decision_level();
    unchecked_enqueue(next);
  }
}

LBool Solver::solve(const std::vector<Lit>& assumptions) {
  GENFV_TRACE_SPAN("sat", "solve");
  if (!util::telemetry_on()) return solve_core(assumptions);
  // Publish per-call deltas to the registry so the heartbeat and
  // --metrics-out see live solver effort, not just end-of-run stats.
  static util::Counter& solves = util::metrics().counter("sat.solves");
  static util::Counter& conflicts = util::metrics().counter("sat.conflicts");
  static util::Counter& decisions = util::metrics().counter("sat.decisions");
  static util::Counter& propagations = util::metrics().counter("sat.propagations");
  static util::Counter& restarts = util::metrics().counter("sat.restarts");
  static util::Counter& solve_ns = util::metrics().counter("sat.solve_ns");
  static util::Histogram& latency =
      util::metrics().histogram("sat.solve_latency_ns", /*first_bound=*/1024, /*buckets=*/28);
  const SolverStats before = stats_;
  const std::uint64_t t0 = util::telemetry_now_ns();
  const LBool status = solve_core(assumptions);
  const std::uint64_t elapsed = util::telemetry_now_ns() - t0;
  solves.increment();
  conflicts.add(stats_.conflicts - before.conflicts);
  decisions.add(stats_.decisions - before.decisions);
  propagations.add(stats_.propagations - before.propagations);
  restarts.add(stats_.restarts - before.restarts);
  solve_ns.add(elapsed);
  latency.observe(elapsed);
  return status;
}

void Solver::simplify_now() {
  GENFV_ASSERT(decision_level() == 0, "inprocessing runs between restarts, at level 0");
  if (!ok_) return;
  Inprocessor(*this).run();
  last_inprocess_conflicts_ = stats_.conflicts;
}

LBool Solver::solve_core(const std::vector<Lit>& assumptions) {
  model_.clear();
  core_.clear();
  ++stats_.solves;

  // Assumption variables become part of the caller-visible interface: pin
  // them against elimination for good, restoring first if a previous session
  // already eliminated one.
  if (!elim_stack_.empty()) {
    for (const Lit p : assumptions) {
      if (is_eliminated(var(p))) {
        restore_eliminated();
        break;
      }
    }
  }
  for (const Lit p : assumptions) freeze(var(p));

  if (!ok_) return LBool::False;

  cancel_until(0);
  if (propagate() != nullptr) {
    mark_unsat();
    return LBool::False;
  }

  conflicts_at_solve_start_ = stats_.conflicts;
  max_learnts_ = std::max(static_cast<double>(clauses_.size()) / 3.0, 4000.0);

  LBool status = LBool::Undef;
  for (int restarts = 0; status == LBool::Undef; ++restarts) {
    const bool budget_exhausted =
        conflict_budget_ >= 0 &&
        stats_.conflicts - conflicts_at_solve_start_ >=
            static_cast<std::uint64_t>(conflict_budget_);
    if (budget_exhausted || interrupted()) break;
    // A session's cost scales with the database (occurrence lists over
    // every clause, BVE over every variable), so the conflict interval
    // between sessions scales with it too: the huge low-conflict CNFs of
    // deep BMC unrollings would otherwise spend more time simplifying than
    // solving, while the small hot databases of PDR queries want the short
    // fixed floor.
    const std::uint64_t inprocess_interval = std::max(
        kInprocessInterval, static_cast<std::uint64_t>(clauses_.size()) / 4);
    if (inprocess_on_ &&
        stats_.conflicts - last_inprocess_conflicts_ >= inprocess_interval) {
      simplify_now();
      if (!ok_) {
        status = LBool::False;
        break;
      }
    }
    const double base = luby(2.0, restarts) * 100.0;
    status = search(static_cast<int>(base), assumptions);
  }

  if (status == LBool::True) {
    model_ = assigns_;
    if (!elim_stack_.empty()) extend_model();
  }
  cancel_until(0);
  return status;
}

LBool Solver::model_value(Lit p) const noexcept {
  const auto v = static_cast<std::size_t>(var(p));
  if (v >= model_.size()) return LBool::Undef;
  return xor_sign(model_[v], sign(p));
}

LBool Solver::model_value(Var v) const noexcept {
  const auto i = static_cast<std::size_t>(v);
  return i < model_.size() ? model_[i] : LBool::Undef;
}

}  // namespace genfv::sat
