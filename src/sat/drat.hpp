#pragma once

/// \file drat.hpp
/// DRAT proof logging for the CDCL core.
///
/// A proof run produces two files from one `base` path:
///  * `<base>.cnf`  — every clause the caller added, verbatim, as a DIMACS
///    CNF (the formula the proof is *about*);
///  * `<base>.drat` — the derivation: one `add` line per clause the solver
///    derived (learnt clauses, inprocessing resolvents, strengthened and
///    vivified clauses, failed-assumption cores, and — on a global UNSAT —
///    the empty clause), plus `d` deletion lines for retired *learnt*
///    clauses only.
///
/// Deletion discipline: original clauses removed by inprocessing
/// (subsumption, variable elimination) are never deleted from the proof.
/// They stay in the checker's active set — harmless extra clauses — which
/// keeps the log a plain DRAT stream (no extension lines) and means
/// restoring an eliminated variable on re-import needs no proof traffic at
/// all. Every emitted `add` is RUP, so the standard forward checker
/// (`scripts/check_drat.py`, or drat-trim) validates the log.
///
/// The `.cnf` header needs the final variable/clause counts, so the input
/// clauses are buffered and the file is (re)written on flush; the `.drat`
/// stream is written through directly.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace genfv::sat {

class DratWriter {
 public:
  /// Opens `<base>.drat` for streaming; `<base>.cnf` is written on flush().
  explicit DratWriter(std::string base);
  ~DratWriter();

  DratWriter(const DratWriter&) = delete;
  DratWriter& operator=(const DratWriter&) = delete;

  /// False when either file could not be opened; the writer then drops
  /// every line silently (callers keep solving, they just get no proof).
  bool ok() const noexcept { return ok_; }

  /// Record a caller-supplied clause into `<base>.cnf`.
  void input_clause(const std::vector<Lit>& lits);

  /// Record a derived (RUP) clause into `<base>.drat`.
  void add(const std::vector<Lit>& lits);
  void add_unit(Lit p) { add(std::vector<Lit>{p}); }
  void add_empty() { add(std::vector<Lit>{}); }

  /// Record the deletion of a (learnt) clause.
  void remove(const std::vector<Lit>& lits);

  /// Write `<base>.cnf` (header + buffered clauses) and flush the proof
  /// stream. Called from the destructor; idempotent.
  void flush();

 private:
  void append_clause(std::ostream& os, const std::vector<Lit>& lits);

  std::string base_;
  bool ok_ = false;
  std::ostringstream cnf_body_;
  std::size_t cnf_clauses_ = 0;
  int max_var_ = 0;  // 1-based DIMACS
  std::ofstream drat_;
};

}  // namespace genfv::sat
