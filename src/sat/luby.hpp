#pragma once

/// \file luby.hpp
/// The Luby restart sequence (1,1,2,1,1,2,4,...) scaled by a base factor —
/// the standard universally-optimal restart policy for CDCL search.

namespace genfv::sat {

inline double luby(double y, int x) noexcept {
  // Find the finite subsequence that contains index x, and the size of it.
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  double result = 1.0;
  for (int i = 0; i < seq; ++i) result *= y;
  return result;
}

}  // namespace genfv::sat
