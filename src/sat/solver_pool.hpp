#pragma once

/// \file solver_pool.hpp
/// A pool of CDCL solvers with uniform configuration, built for engines that
/// run one query context per worker (the sharded PDR engine being the first
/// client). The pool owns every solver it hands out, applies the same
/// conflict budget and stop flag to each, and supports *in-place rebuild*:
/// replacing one handle's solver with a fresh instance while folding the
/// retired solver's lifetime statistics into a pool-level accumulator, so
/// `total_stats()` stays monotone across rebuilds.
///
/// Rebuild exists because incremental query engines litter their solver with
/// retired one-shot artefacts — PDR's per-query activation gates become
/// permanently-satisfied clauses plus a unit literal each, and they
/// accumulate without bound on long runs. Discarding the solver and
/// re-encoding the live facts is the classic IC3 "solver cleanup" move; the
/// pool provides the mechanism, the owning query context decides when and
/// re-encodes what is still live.
///
/// Thread-safety: handles follow the portfolio's clone discipline — acquire
/// every handle on the owning thread before workers start, then give each
/// worker exclusive use of its handle(s) during a parallel phase (`at()` is
/// unsynchronized; distinct handles never alias). The pool-level
/// accumulators are the exception: concurrent workers may each trigger
/// `rebuild()` on their own handle, so folding into the retired-stats
/// accumulator and the rebuild counter is mutex-guarded, as are the
/// `total_stats()` / `rebuilds()` reads.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sat/backend.hpp"
#include "util/thread_safety.hpp"

namespace genfv::sat {

/// Configuration stamped onto every solver the pool creates (including
/// rebuilt replacements).
struct SolverConfig {
  /// Best-effort conflict cap per solve(); -1 = unlimited.
  std::int64_t conflict_budget = -1;
  /// Cooperative cancellation flag (read-only, relaxed); may be nullptr.
  /// Must outlive the pool — see Backend::set_stop_flag.
  const std::atomic<bool>* stop = nullptr;
  /// Enable inprocessing on backends that support it (default on).
  bool inprocess = true;
  /// Backend to construct (see sat::make_backend); "internal" = in-tree CDCL.
  std::string backend = "internal";
  /// When non-empty, every solver the pool creates logs a DRAT proof to
  /// `<drat_base>-p<handle>[-r<rebuild#>]`. Meant for single-solver runs;
  /// the suffixes keep multi-handle pools from clobbering one file.
  std::string drat_base;
};

class SolverPool {
 public:
  explicit SolverPool(SolverConfig config = {});

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  /// Create a fresh configured solver owned by the pool; returns its handle.
  /// Handles are dense indices and stay valid for the pool's lifetime.
  std::size_t acquire();

  std::size_t size() const noexcept { return solvers_.size(); }

  Backend& at(std::size_t handle);
  const Backend& at(std::size_t handle) const;

  /// Replace `handle`'s solver with a fresh configured instance. The retired
  /// solver's lifetime stats are folded into the pool accumulator first, so
  /// they are never lost; its clauses, variables and models are dropped.
  /// References to the old solver are invalidated. Safe to call from the
  /// worker owning `handle` while other workers use theirs.
  Backend& rebuild(std::size_t handle);

  /// Number of rebuild() calls over the pool's lifetime.
  std::uint64_t rebuilds() const;

  /// Lifetime statistics: every live solver plus everything retired through
  /// rebuild(). Monotone across rebuilds. Live solvers' counters are read
  /// unsynchronized, so call only while no worker is solving (in practice:
  /// after the parallel phases have joined).
  SolverStats total_stats() const;

 private:
  std::unique_ptr<Backend> make_solver(std::size_t handle) const;

  SolverConfig config_;
  std::vector<std::unique_ptr<Backend>> solvers_;
  /// Guards the cross-handle accumulators below (several workers may retire
  /// their solvers concurrently); per-handle solver access is unguarded.
  mutable util::Mutex mu_{"sat.solver_pool"};
  SolverStats retired_ GENFV_GUARDED_BY(mu_);
  std::uint64_t rebuilds_ GENFV_GUARDED_BY(mu_) = 0;
};

}  // namespace genfv::sat
