#include "sat/dimacs.hpp"

#include <cstdlib>
#include <sstream>

#include "sat/solver.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::sat {

Cnf parse_dimacs(const std::string& text) {
  Cnf cnf;
  int declared_clauses = -1;
  std::istringstream in(text);
  std::string line;
  std::vector<int> current;
  while (std::getline(in, line)) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == 'c') continue;
    if (trimmed[0] == 'p') {
      const auto fields = util::split_ws(trimmed);
      if (fields.size() != 4 || fields[1] != "cnf") {
        throw ParseError("dimacs: malformed problem line: " + trimmed);
      }
      cnf.num_vars = std::atoi(fields[2].c_str());
      declared_clauses = std::atoi(fields[3].c_str());
      continue;
    }
    for (const auto& token : util::split_ws(trimmed)) {
      const int lit = std::atoi(token.c_str());
      if (lit == 0 && token != "0") {
        throw ParseError("dimacs: bad literal token: " + token);
      }
      if (lit == 0) {
        cnf.clauses.push_back(current);
        current.clear();
      } else {
        if (std::abs(lit) > cnf.num_vars) {
          throw ParseError("dimacs: literal exceeds declared variable count");
        }
        current.push_back(lit);
      }
    }
  }
  if (!current.empty()) throw ParseError("dimacs: unterminated clause");
  if (declared_clauses >= 0 &&
      cnf.clauses.size() != static_cast<std::size_t>(declared_clauses)) {
    throw ParseError("dimacs: clause count mismatch");
  }
  return cnf;
}

std::string to_dimacs(const Cnf& cnf) {
  std::ostringstream out;
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const int lit : clause) out << lit << ' ';
    out << "0\n";
  }
  return out.str();
}

bool load_cnf(const Cnf& cnf, Backend& solver) {
  while (solver.num_vars() < cnf.num_vars) solver.new_var();
  for (const auto& clause : cnf.clauses) {
    std::vector<Lit> lits;
    lits.reserve(clause.size());
    for (const int lit : clause) {
      lits.push_back(mk_lit(std::abs(lit) - 1, lit < 0));
    }
    if (!solver.add_clause(std::move(lits))) return false;
  }
  return true;
}

}  // namespace genfv::sat
