#include "sat/backend.hpp"

#include "sat/solver.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::sat {

Lit Backend::true_lit() {
  if (true_var_ == kUndefVar) {
    true_var_ = new_var(/*decision=*/false);
    freeze(true_var_);
    const bool ok = add_clause(mk_lit(true_var_));
    GENFV_ASSERT(ok, "asserting the constant-true literal cannot fail");
  }
  return mk_lit(true_var_);
}

std::unique_ptr<Backend> make_backend(const std::string& name) {
  if (name == "internal") return std::make_unique<Solver>();
  throw UsageError("unknown SAT backend '" + name + "' (known: " +
                   util::join(backend_names(), ", ") + ")");
}

std::vector<std::string> backend_names() { return {"internal"}; }

}  // namespace genfv::sat
