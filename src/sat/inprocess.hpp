#pragma once

/// \file inprocess.hpp
/// Inprocessing for the in-tree CDCL core: formula simplification run
/// between restarts, inside `Solver::solve`, on a conflict-count cadence.
///
/// One session runs, in order:
///  1. top-level simplification — satisfied clauses are removed and
///     level-0-false literals stripped from the originals;
///  2. forward subsumption + self-subsuming strengthening over
///     variable-indexed occurrence lists with signature prefiltering
///     (originals subsume/strengthen both originals and learnts);
///  3. bounded variable elimination (BVE): an unfrozen variable is
///     resolved away when its non-tautological resolvent set is no larger
///     than the clause set it replaces; the removed clauses are stored on
///     an elimination stack for model extension and restore-on-import;
///  4. vivification: original clauses are shortened by asserting their
///     literals' negations one by one and propagating — a conflict or an
///     implied literal proves a shorter clause (a rotating cursor spreads
///     the work across sessions).
///
/// Cooperation with incremental use: frozen variables (assumption
/// literals, activation gates, unroller outputs — anything the caller may
/// reference again) are never eliminated, and a clause or assumption that
/// does re-import an eliminated variable restores the whole elimination
/// stack first (`Solver::restore_eliminated`). Models are extended over
/// eliminated variables, so SAT answers stay complete.
///
/// Proof discipline (see sat/drat.hpp): every derived clause — resolvent,
/// strengthening, vivified shortening — is emitted as a DRAT add; deleted
/// *learnt* clauses get `d` lines; removed *original* clauses are left in
/// the checker's active set, which is why restore needs no proof traffic.
///
/// Every pass is budgeted, so a session's cost stays a small slice of the
/// search effort that scheduled it.

#include <cstdint>
#include <vector>

#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace genfv::sat {

class Inprocessor {
 public:
  explicit Inprocessor(Solver& s) : s_(s) {}

  /// Run one full session. Requires decision level 0; leaves the solver at
  /// decision level 0 with consistent watches (or marked UNSAT).
  void run();

 private:
  using Clause = Solver::Clause;

  static std::uint64_t signature(const std::vector<Lit>& lits) noexcept {
    std::uint64_t sig = 0;
    for (const Lit p : lits) sig |= std::uint64_t{1} << (var(p) & 63);
    return sig;
  }

  void clear_level0_reasons();
  void top_level_simplify();
  void build_occurrence_lists();
  void subsume_all();
  void eliminate_vars();
  void vivify();
  void sweep();

  /// Detach + mark dead; learnt deletions are recorded in the proof.
  void kill(Clause* c);
  /// Remove `rem` from `d` (proof lines included); may derive a unit or
  /// mark the solver UNSAT.
  void strengthen(Clause* d, Lit rem);
  /// Subsumption relation: 0 = none, 1 = c subsumes d, else the literal of
  /// `d` whose removal c justifies (self-subsumption).
  enum class Subsumes : std::uint8_t { kNo, kSubsumes, kStrengthens };
  Subsumes subsumes(const Clause* c, const Clause* d, Lit* strengthen_out,
                    std::uint64_t* budget) const;

  /// Resolvent of `p` and `n` on `v`; false when tautological.
  bool resolve(const Clause* p, const Clause* n, Var v, std::vector<Lit>* out) const;

  Solver& s_;
  /// Variable-indexed occurrence lists over live clauses (originals and
  /// learnts). Entries go stale on strengthening/removal; every consumer
  /// re-checks membership and liveness.
  std::vector<std::vector<Clause*>> occ_;
};

}  // namespace genfv::sat
