#include "mc/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "ir/clone.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"
#include "util/thread_safety.hpp"

namespace genfv::mc {

namespace {

bool conclusive(Verdict v) noexcept { return v != Verdict::Unknown; }

/// Span/thread names must be immortal strings (trace events store raw
/// pointers), so members map to literals rather than to_string() copies.
const char* member_span_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::Bmc: return "member:bmc";
    case EngineKind::KInduction: return "member:k-induction";
    case EngineKind::Pdr: return "member:pdr";
    case EngineKind::Portfolio: break;  // never a member (ctor rejects it)
  }
  return "member:?";
}

/// Rebuild a trace produced over a clone against the original system. Trace
/// frames bind only Input/State leaves, which the clone maps one-to-one.
sim::Trace translate_trace(const sim::Trace& trace, ir::SystemClone& clone,
                           const ir::TransitionSystem& original) {
  sim::Trace out(&original);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim::Assignment env;
    env.reserve(trace.frame(i).size());
    for (const auto& [node, value] : trace.frame(i)) {
      env.emplace(clone.to_original(node), value);
    }
    out.append(std::move(env));
  }
  return out;
}

}  // namespace

PortfolioEngine::PortfolioEngine(const ir::TransitionSystem& ts, EngineOptions options)
    : ts_(ts), options_(std::move(options)) {
  members_ = options_.portfolio_engines;
  if (members_.empty()) {
    members_ = {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr};
  }
  for (const EngineKind kind : members_) {
    if (kind == EngineKind::Portfolio) {
      throw UsageError("portfolio cannot contain itself as a member");
    }
  }
}

EngineResult PortfolioEngine::prove_all(const std::vector<ir::NodeRef>& properties) {
  if (options_.max_steps == 0) {
    // A zero step budget buys no exploration in any member. Report Unknown
    // uniformly instead of letting the time-sliced mode build a {0} budget
    // schedule (and the threaded mode race three no-op engines).
    EngineResult out;
    for (const EngineKind kind : members_) {
      EngineBreakdown b;
      b.engine = to_string(kind);
      b.note = "zero step budget";
      out.breakdown.push_back(std::move(b));
    }
    return out;
  }
  return options_.portfolio_threads ? run_threaded(properties)
                                    : run_time_sliced(properties);
}

namespace {

/// Member engines get the portfolio's options wholesale — copying fields one
/// by one silently dropped every knob added after the copy was written (and
/// would have dropped the exchange wiring too). Only the genuinely
/// per-member fields are overridden afterwards.
EngineOptions member_options(const EngineOptions& portfolio,
                             const std::shared_ptr<LemmaMailbox>& mailbox,
                             std::size_t slot) {
  EngineOptions opts = portfolio;
  opts.portfolio_engines.clear();  // members never recurse into a portfolio
  opts.exchange_mailbox = mailbox;
  opts.exchange_slot = slot;
  return opts;
}

}  // namespace

EngineResult PortfolioEngine::run_threaded(const std::vector<ir::NodeRef>& properties) {
  util::Stopwatch watch;
  const std::size_t n = members_.size();

  // Clone the system once per member and translate every input expression —
  // all on this thread, before any worker exists (NodeManager is not
  // thread-safe; each worker then touches only its own clone).
  std::vector<std::unique_ptr<ir::SystemClone>> clones;
  std::vector<std::vector<ir::NodeRef>> member_props(n);
  std::vector<std::vector<ir::NodeRef>> member_lemmas(n);
  std::vector<std::vector<ir::NodeRef>> member_candidates(n);
  for (std::size_t i = 0; i < n; ++i) {
    clones.push_back(std::make_unique<ir::SystemClone>(ts_));
    for (const ir::NodeRef p : properties) {
      member_props[i].push_back(clones[i]->to_clone(p));
    }
    for (const ir::NodeRef l : options_.lemmas) {
      member_lemmas[i].push_back(clones[i]->to_clone(l));
    }
    for (const ir::NodeRef c : options_.pdr_candidate_lemmas) {
      member_candidates[i].push_back(clones[i]->to_clone(c));
    }
  }

  // Shared race state. The first conclusive member records itself as the
  // winner and raises `cancel`, which every other member's engine polls.
  // The mailbox is the only other cross-thread state: it carries clauses in
  // a manager-neutral form, so no NodeManager is ever shared (exchange.hpp).
  const std::shared_ptr<LemmaMailbox> mailbox =
      options_.exchange && n > 1 ? std::make_shared<LemmaMailbox>(n) : nullptr;
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  struct RaceState {
    explicit RaceState(std::size_t members) {
      util::MutexLock lock(mu);
      results.resize(members);
      notes.resize(members);
    }
    util::Mutex mu{"mc.portfolio"};
    util::CondVar cv;
    std::size_t done GENFV_GUARDED_BY(mu) = 0;
    std::ptrdiff_t winner GENFV_GUARDED_BY(mu) = -1;
    std::vector<EngineResult> results GENFV_GUARDED_BY(mu);
    std::vector<std::string> notes GENFV_GUARDED_BY(mu);
  };
  RaceState race(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers.emplace_back([&, i] {
      if (util::tracing_on()) {
        util::set_trace_thread_name(std::string("portfolio-") + to_string(members_[i]));
      }
      GENFV_TRACE_SPAN("portfolio", member_span_name(members_[i]));
      EngineResult r;
      std::string note;
      try {
        EngineOptions opts = member_options(options_, mailbox, i);
        opts.lemmas = member_lemmas[i];  // translated into this member's clone
        opts.pdr_candidate_lemmas = member_candidates[i];
        opts.stop = cancel;
        auto engine = make_engine(members_[i], clones[i]->system(), opts);
        r = engine->prove_all(member_props[i]);
      } catch (const std::exception& e) {
        // Anything escaping the thread body would std::terminate the whole
        // process; degrade the member to Unknown instead. Covers UsageError
        // (e.g. PDR rejecting input-dependent init values) as well as
        // resource failures like std::bad_alloc from a deep unrolling.
        note = e.what();
      }
      util::MutexLock lock(race.mu);
      race.results[i] = std::move(r);
      race.notes[i] = std::move(note);
      if (conclusive(race.results[i].verdict) && race.winner < 0) {
        race.winner = static_cast<std::ptrdiff_t>(i);
        cancel->store(true, std::memory_order_relaxed);
        GENFV_TRACE_INSTANT("portfolio", "winner");
      }
      ++race.done;
      race.cv.notify_all();
    });
  }

  // Wait for everyone (losers exit quickly once `cancel` is up), forwarding
  // an external cancellation request into the members' flag.
  {
    util::MutexLock lock(race.mu);
    while (race.done < n) {
      if (options_.stop != nullptr &&
          options_.stop->load(std::memory_order_relaxed)) {
        cancel->store(true, std::memory_order_relaxed);
      }
      race.cv.wait_for(race.mu, std::chrono::milliseconds(10));
    }
  }
  for (std::thread& t : workers) t.join();

  // Every worker has joined; move the race outputs into locals so the merge
  // below reads plain single-threaded data (and needs no lock).
  std::vector<EngineResult> results;
  std::vector<std::string> notes;
  std::ptrdiff_t winner = -1;
  {
    util::MutexLock lock(race.mu);
    results = std::move(race.results);
    notes = std::move(race.notes);
    winner = race.winner;
  }

  // Merge — single-threaded again, so translating back into the original
  // system's NodeManager is safe.
  EngineResult out;
  for (std::size_t i = 0; i < n; ++i) {
    EngineBreakdown b;
    b.engine = to_string(members_[i]);
    b.verdict = results[i].verdict;
    b.depth = results[i].depth;
    b.stats = results[i].stats;
    b.note = notes[i];
    if (mailbox != nullptr) {
      b.lemmas_published = mailbox->published_by(i);
      b.lemmas_absorbed = mailbox->absorbed_by(i);
    }
    out.stats += b.stats;
    out.breakdown.push_back(std::move(b));
  }
  if (winner >= 0) {
    const std::size_t w = static_cast<std::size_t>(winner);
    EngineResult& won = results[w];
    out.verdict = won.verdict;
    out.depth = won.depth;
    out.winner = to_string(members_[w]);
    if (won.cex.has_value()) {
      out.cex = translate_trace(*won.cex, *clones[w], ts_);
    }
    for (const ir::NodeRef clause : won.invariant) {
      out.invariant.push_back(clones[w]->to_original(clause));
    }
  } else {
    out.verdict = Verdict::Unknown;
    for (std::size_t i = 0; i < n; ++i) {
      out.depth = std::max(out.depth, results[i].depth);
      // Keep the repair loop fed: forward a step CEX if some member (in
      // practice k-induction) produced one before stalling.
      if (!out.step_cex.has_value() && results[i].step_cex.has_value()) {
        out.step_cex = translate_trace(*results[i].step_cex, *clones[i], ts_);
      }
    }
  }
  out.stats.seconds = watch.seconds();
  return out;
}

EngineResult PortfolioEngine::run_time_sliced(const std::vector<ir::NodeRef>& properties) {
  util::Stopwatch watch;
  const std::size_t n = members_.size();

  // Iterative deepening: every member gets a slice at each budget before any
  // member gets a deeper one, so a cheap conclusive verdict at a small bound
  // beats an expensive one at a large bound — deterministically. The guard
  // before the final push_back is defensive: the strict `<` walk never lands
  // on max_steps today, but a duplicated final budget would silently re-run
  // every member, so the invariant is worth pinning against future edits.
  // (prove_all short-circuits `max_steps == 0`, which used to degenerate
  // into a {0} schedule here.)
  std::vector<std::size_t> budgets;
  for (std::size_t b = 1; b < options_.max_steps; b *= 2) budgets.push_back(b);
  if (budgets.empty() || budgets.back() != options_.max_steps) {
    budgets.push_back(options_.max_steps);
  }

  // One mailbox across every slice: a member's fresh engine instance at the
  // next budget re-reads the whole backlog (consumer cursors are per engine
  // run), so clauses PDR proved at budget b reach k-induction at budget 2b.
  const std::shared_ptr<LemmaMailbox> mailbox =
      options_.exchange && n > 1 ? std::make_shared<LemmaMailbox>(n) : nullptr;

  EngineResult out;
  std::vector<EngineBreakdown> breakdown(n);
  for (std::size_t i = 0; i < n; ++i) breakdown[i].engine = to_string(members_[i]);

  auto finish = [&](std::ptrdiff_t winner, EngineResult member_result) {
    if (winner >= 0) {
      const std::size_t w = static_cast<std::size_t>(winner);
      out.verdict = member_result.verdict;
      out.depth = member_result.depth;
      out.cex = std::move(member_result.cex);
      out.invariant = std::move(member_result.invariant);
      out.winner = to_string(members_[w]);
      out.step_cex.reset();  // stale artefact from an earlier, shallower slice
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.stats += breakdown[i].stats;
      if (winner < 0) out.depth = std::max(out.depth, breakdown[i].depth);
      if (mailbox != nullptr) {
        breakdown[i].lemmas_published = mailbox->published_by(i);
        breakdown[i].lemmas_absorbed = mailbox->absorbed_by(i);
      }
    }
    out.breakdown = std::move(breakdown);
    out.stats.seconds = watch.seconds();
    return out;
  };

  for (const std::size_t budget : budgets) {
    for (std::size_t i = 0; i < n; ++i) {
      if (options_.stop != nullptr &&
          options_.stop->load(std::memory_order_relaxed)) {
        return finish(-1, {});
      }
      EngineResult r;
      GENFV_TRACE_SPAN("portfolio", member_span_name(members_[i]));
      try {
        EngineOptions opts = member_options(options_, mailbox, i);
        opts.max_steps = budget;
        auto engine = make_engine(members_[i], ts_, opts);
        r = engine->prove_all(properties);
      } catch (const std::exception& e) {
        breakdown[i].note = e.what();
        continue;
      }
      breakdown[i].verdict = r.verdict;
      breakdown[i].depth = std::max(breakdown[i].depth, r.depth);
      breakdown[i].stats += r.stats;
      // Keep the *deepest* step CEX: each slice's artefact supersedes the
      // shallower one from the previous budget, matching what the threaded
      // mode (one full-depth run) hands the repair loop.
      if (r.step_cex.has_value()) out.step_cex = std::move(r.step_cex);
      if (conclusive(r.verdict)) return finish(static_cast<std::ptrdiff_t>(i), std::move(r));
    }
  }
  return finish(-1, {});
}

}  // namespace genfv::mc
