#pragma once

/// \file exchange.hpp
/// Live in-flight lemma exchange between portfolio members.
///
/// `LemmaMailbox` is the first (and only) cross-thread data path in the
/// engine stack. Portfolio members publish clauses they have established
/// mid-run and poll for clauses published by the other members, so e.g. the
/// k-induction member can absorb PDR's freshly proven invariant clauses
/// while both are still racing — the synergetic lemma sharing of the
/// helper-invariant loop, applied *inside* one portfolio call.
///
/// Thread-safety / ownership rules (the contract that keeps TSan quiet):
///  * `NodeManager` is not thread-safe and is never shared. The mailbox
///    stores clauses in a manager-neutral form (`ExchangedClause`: state
///    declaration index + bit + polarity per literal) that carries no
///    `NodeRef`. Publishers serialize out of their own clone; consumers call
///    `materialize()` to re-create nodes exclusively in *their* clone's
///    manager. `ir::SystemClone` preserves state declaration order, so the
///    indices mean the same thing in every member's clone.
///  * Every mailbox method is internally synchronized by one mutex; any
///    thread may publish or fetch at any time.
///  * Consumers own their read cursor (`fetch`'s in/out parameter), so a
///    fresh engine instance (e.g. a new time slice of the deterministic
///    portfolio) starts at 0 and sees the full backlog — and dedupes it
///    through an `AbsorbFilter`, because re-publishing slices can load the
///    board with many copies of the same fact.
///
/// Soundness rules for absorbing a clause:
///  * `proven()` clauses are invariants — they hold in every reachable
///    state. Consumers may assert them on every frame of every query
///    (exactly like `EngineOptions::lemmas`).
///  * Level-tagged clauses (level = k) only over-approximate the states
///    reachable in at most k steps (PDR's frame F_k). They may be asserted
///    only on *init-rooted* frames f <= k (BMC frames, the k-induction base
///    case): a state at such a frame is reachable in exactly f steps, hence
///    inside F_k. They must never reach the k-induction *step* case, whose
///    frames start from an arbitrary state of unbounded reachability depth.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "ir/transition_system.hpp"
#include "util/thread_safety.hpp"

namespace genfv::mc {

/// Level tag of a clause that holds in every reachable state (F_∞).
inline constexpr std::size_t kExchangeProvenLevel =
    std::numeric_limits<std::size_t>::max();

/// One cube literal in manager-neutral form: bit `bit` of the state variable
/// at declaration index `state`; `negated` means the cube requires 0. The
/// shared fact is the clause ¬cube.
struct ExchangedLit {
  std::uint32_t state = 0;
  std::uint32_t bit = 0;
  bool negated = false;
};

/// A clause published into the mailbox, as the cube it blocks.
struct ExchangedClause {
  std::vector<ExchangedLit> lits;
  /// `kExchangeProvenLevel`: holds in every reachable state. Otherwise the
  /// clause holds in PDR's frame F_level (all states reachable in <= level
  /// steps) — see the soundness rules above.
  std::size_t level = kExchangeProvenLevel;

  bool proven() const noexcept { return level == kExchangeProvenLevel; }
};

/// Re-create the clause ¬cube as a width-1 expression over `ts`, creating
/// nodes only in `ts`'s NodeManager — call from the thread that owns it.
/// Returns nullptr when the clause does not fit `ts` (state index or bit out
/// of range), which a consumer treats as "skip, do not absorb".
ir::NodeRef materialize(const ExchangedClause& clause,
                        const ir::TransitionSystem& ts);

/// Canonical key of a clause's manager-neutral form (literals + level).
/// Equal keys ⇔ the clauses assert the same fact with the same soundness
/// scope, no matter which member published them or how often.
///
/// This template is the *single* encoder of the `{state-index, bit,
/// polarity}` currency: `ExchangedLit` ranges (the mailbox / AbsorbFilter)
/// and `pdr::StateLit` cubes (the FrameDb's may-clause bookkeeping) both key
/// through it, so an encoding change can never desynchronize the two sides.
/// `LitRange` is any range of structs exposing `state`, `bit` and `negated`.
template <typename LitRange>
std::string exchange_key(const LitRange& lits, std::size_t level) {
  std::string key = std::to_string(level);
  for (const auto& lit : lits) {
    key += '|';
    key += std::to_string(lit.state);
    key += '.';
    key += std::to_string(lit.bit);
    key += lit.negated ? '-' : '+';
  }
  return key;
}

inline std::string exchange_key(const ExchangedClause& clause) {
  return exchange_key(clause.lits, clause.level);
}

/// Consumer-side duplicate filter. The mailbox backlog may carry the same
/// clause many times — a time-sliced PDR member re-proves and re-publishes
/// its F_∞ clauses at every budget, and several members can publish the
/// same fact independently — so a consumer that asserted every fetched
/// clause would do quadratic re-assert work across slices. `admit` returns
/// true exactly once per distinct manager-neutral form; consumers skip (and
/// do not count as absorbed) everything else. One filter lives per engine
/// *run*: a fresh run has fresh solvers and genuinely needs each distinct
/// clause once more.
class AbsorbFilter {
 public:
  /// True iff `clause` has not been admitted by this filter before.
  bool admit(const ExchangedClause& clause) {
    return seen_.insert(exchange_key(clause)).second;
  }

 private:
  std::unordered_set<std::string> seen_;
};

/// Thread-safe multi-producer multi-consumer clause board, one slot per
/// portfolio member. Publishing appends; fetching returns every clause
/// published by *other* members since the caller's cursor. Per-slot
/// published/absorbed counters feed `EngineBreakdown`.
class LemmaMailbox {
 public:
  explicit LemmaMailbox(std::size_t member_count);

  std::size_t member_count() const noexcept { return members_; }

  /// Append `clause` on behalf of `member` and bump its published counter.
  void publish(std::size_t member, ExchangedClause clause);

  /// Append a whole batch under one lock. Use for sets whose members are
  /// only *jointly* inductive (PDR's F_∞ fixpoint survivors): fetch() also
  /// holds the lock, so no consumer can ever observe half a batch — which
  /// is what keeps an absorbing PDR run's exported certificate inductive
  /// (docs/lemmas.md, "Absorbed proven clauses").
  void publish_batch(std::size_t member, std::vector<ExchangedClause> clauses);

  /// Everything published by members other than `member` since `*cursor`;
  /// advances `*cursor` past the end. The cursor is caller-owned state (a
  /// fresh consumer passes 0 and receives the full backlog).
  std::vector<ExchangedClause> fetch(std::size_t member, std::size_t* cursor) const;

  /// Record that `member` asserted `count` fetched clauses into its solvers.
  void note_absorbed(std::size_t member, std::size_t count);

  std::size_t published_by(std::size_t member) const;
  std::size_t absorbed_by(std::size_t member) const;
  /// Total clauses on the board (all publishers).
  std::size_t size() const;

 private:
  struct Entry {
    ExchangedClause clause;
    std::size_t publisher;
  };
  struct Counters {
    std::size_t published = 0;
    std::size_t absorbed = 0;
  };

  const std::size_t members_;
  mutable util::Mutex mu_{"mc.mailbox"};
  std::vector<Entry> entries_ GENFV_GUARDED_BY(mu_);
  std::vector<Counters> counters_ GENFV_GUARDED_BY(mu_);
};

}  // namespace genfv::mc
