#pragma once

/// \file unroller.hpp
/// Incremental time-frame expansion of a transition system into a SAT
/// solver, using functional unrolling: the state bits of frame f+1 *are* the
/// blasted next-state expressions of frame f (no fresh variables or equality
/// clauses for registers).
///
/// Frame-0 state bits are fresh variables; `assert_init()` optionally pins
/// them to the init expressions (BMC / induction base case), while the
/// induction step leaves them free. Environment constraints are asserted at
/// every created frame.

#include <vector>

#include "bitblast/bitblaster.hpp"
#include "mc/result.hpp"
#include "sim/trace.hpp"

namespace genfv::mc {

class Unroller {
 public:
  Unroller(const ir::TransitionSystem& ts, sat::Backend& solver);

  const ir::TransitionSystem& system() const noexcept { return ts_; }
  sat::Backend& solver() noexcept { return solver_; }
  bitblast::BitBlaster& blaster() noexcept { return blaster_; }

  /// Number of frames currently materialized (frame indices 0..count-1).
  std::size_t frame_count() const noexcept { return frames_.size(); }

  /// Materialize frames up to and including `frame`.
  void extend_to(std::size_t frame);

  /// Constrain frame-0 states to their init expressions. Idempotent.
  void assert_init();

  /// Literal/bits of an arbitrary expression evaluated at `frame`
  /// (the frame must already exist). Returned bits are frozen: the caller
  /// holds them as handles it may re-reference (assumptions, new clauses),
  /// so the backend must never eliminate them.
  sat::Lit lit_at(ir::NodeRef expr, std::size_t frame);
  const bitblast::Bits& bits_at(ir::NodeRef expr, std::size_t frame);

  /// Permanently assert a width-1 expression at `frame`.
  void assert_at(ir::NodeRef expr, std::size_t frame);

  /// Assert that the state vectors of two frames differ in at least one bit
  /// (simple-path / uniqueness constraint for k-induction).
  void assert_states_differ(std::size_t frame_a, std::size_t frame_b);

  /// After a SAT answer: extract the trace over frames [0, frames).
  sim::Trace extract_trace(std::size_t frames);

  /// Model value of a leaf (input/state) at `frame`.
  std::uint64_t model_value(ir::NodeRef leaf, std::size_t frame);

 private:
  void build_frame(std::size_t frame);
  void freeze_bits(const bitblast::Bits& bits);

  const ir::TransitionSystem& ts_;
  sat::Backend& solver_;
  bitblast::BitBlaster blaster_;
  /// Per-frame blast cache; leaf bindings seeded at frame construction.
  std::vector<bitblast::BlastCache> frames_;
  bool init_asserted_ = false;
};

}  // namespace genfv::mc
