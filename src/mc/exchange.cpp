#include "mc/exchange.hpp"

#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace {
genfv::util::Counter& published_counter() {
  static genfv::util::Counter& c = genfv::util::metrics().counter("exchange.published");
  return c;
}
genfv::util::Counter& absorbed_counter() {
  static genfv::util::Counter& c = genfv::util::metrics().counter("exchange.absorbed");
  return c;
}
}  // namespace

namespace genfv::mc {

ir::NodeRef materialize(const ExchangedClause& clause, const ir::TransitionSystem& ts) {
  if (clause.lits.empty()) return nullptr;
  auto nm = ts.nm_ptr();
  ir::NodeRef expr = nm->mk_false();
  for (const ExchangedLit& lit : clause.lits) {
    if (lit.state >= ts.states().size()) return nullptr;
    const ir::NodeRef var = ts.states()[lit.state].var;
    if (lit.bit >= var->width()) return nullptr;
    const ir::NodeRef bit = nm->mk_bit(var, lit.bit);
    // The clause literal is the negation of the cube literal.
    expr = nm->mk_or(expr, lit.negated ? bit : nm->mk_not(bit));
  }
  return expr;
}

LemmaMailbox::LemmaMailbox(std::size_t member_count)
    : members_(member_count), counters_(member_count) {
  GENFV_ASSERT(member_count >= 1, "a mailbox needs at least one member slot");
}

void LemmaMailbox::publish(std::size_t member, ExchangedClause clause) {
  GENFV_ASSERT(member < members_, "mailbox slot out of range");
  if (util::telemetry_on()) published_counter().increment();
  GENFV_TRACE_INSTANT("exchange", "publish");
  util::MutexLock lock(mu_);
  entries_.push_back({std::move(clause), member});
  ++counters_[member].published;
}

void LemmaMailbox::publish_batch(std::size_t member,
                                 std::vector<ExchangedClause> clauses) {
  GENFV_ASSERT(member < members_, "mailbox slot out of range");
  if (clauses.empty()) return;
  if (util::telemetry_on()) published_counter().add(clauses.size());
  GENFV_TRACE_INSTANT("exchange", "publish_batch");
  util::MutexLock lock(mu_);
  for (ExchangedClause& clause : clauses) {
    entries_.push_back({std::move(clause), member});
    ++counters_[member].published;
  }
}

std::vector<ExchangedClause> LemmaMailbox::fetch(std::size_t member,
                                                 std::size_t* cursor) const {
  GENFV_ASSERT(member < members_, "mailbox slot out of range");
  GENFV_ASSERT(cursor != nullptr, "fetch needs a caller-owned cursor");
  util::MutexLock lock(mu_);
  std::vector<ExchangedClause> out;
  for (std::size_t i = *cursor; i < entries_.size(); ++i) {
    if (entries_[i].publisher != member) out.push_back(entries_[i].clause);
  }
  *cursor = entries_.size();
  return out;
}

void LemmaMailbox::note_absorbed(std::size_t member, std::size_t count) {
  GENFV_ASSERT(member < members_, "mailbox slot out of range");
  if (count == 0) return;
  if (util::telemetry_on()) absorbed_counter().add(count);
  util::MutexLock lock(mu_);
  counters_[member].absorbed += count;
}

std::size_t LemmaMailbox::published_by(std::size_t member) const {
  GENFV_ASSERT(member < members_, "mailbox slot out of range");
  util::MutexLock lock(mu_);
  return counters_[member].published;
}

std::size_t LemmaMailbox::absorbed_by(std::size_t member) const {
  GENFV_ASSERT(member < members_, "mailbox slot out of range");
  util::MutexLock lock(mu_);
  return counters_[member].absorbed;
}

std::size_t LemmaMailbox::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace genfv::mc
