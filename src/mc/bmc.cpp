#include "mc/bmc.hpp"

#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"

namespace genfv::mc {

BmcEngine::BmcEngine(const ir::TransitionSystem& ts, BmcOptions options)
    : ts_(ts), options_(std::move(options)) {}

BmcResult BmcEngine::check(ir::NodeRef property) {
  GENFV_TRACE_SPAN("mc", "bmc_check");
  util::Stopwatch watch;
  BmcResult result;

  const std::unique_ptr<sat::Backend> solver_ptr = sat::make_backend(options_.sat_backend);
  sat::Backend& solver = *solver_ptr;
  solver.set_conflict_budget(options_.conflict_budget);
  solver.set_stop_flag(options_.stop.get());
  solver.set_inprocessing(options_.sat_inprocess);
  if (!options_.drat_path.empty()) solver.start_proof(options_.drat_path);
  Unroller unroller(ts_, solver);
  unroller.assert_init();

  // Invariants (seeded lemmas + absorbed proven exchange clauses) asserted
  // at every frame; level-tagged exchange clauses only at frames <= level.
  // Both are sound here — every BMC frame is init-rooted, so frame f only
  // holds states reachable in exactly f steps.
  std::vector<ir::NodeRef> invariants = options_.lemmas;
  std::vector<std::pair<ir::NodeRef, std::size_t>> bounded;
  std::size_t exchange_cursor = 0;
  // The backlog may carry the same clause many times (re-publishing slices,
  // independent members); assert each distinct fact once per run.
  AbsorbFilter absorb_filter;
  auto poll_exchange = [&](std::size_t depth) {
    if (options_.exchange == nullptr) return;
    std::size_t absorbed = 0;
    for (const ExchangedClause& clause :
         options_.exchange->fetch(options_.exchange_slot, &exchange_cursor)) {
      if (!absorb_filter.admit(clause)) continue;
      const ir::NodeRef expr = materialize(clause, ts_);
      if (expr == nullptr) continue;
      // Back-fill the frames materialized before this clause arrived; the
      // per-depth loop below covers the current and future frames.
      if (clause.proven()) {
        invariants.push_back(expr);
        for (std::size_t f = 0; f < depth; ++f) unroller.assert_at(expr, f);
      } else {
        bounded.emplace_back(expr, clause.level);
        for (std::size_t f = 0; f < depth && f <= clause.level; ++f) {
          unroller.assert_at(expr, f);
        }
      }
      ++absorbed;
    }
    options_.exchange->note_absorbed(options_.exchange_slot, absorbed);
  };

  for (std::size_t depth = 0; depth <= options_.max_depth; ++depth) {
    if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed)) {
      result.verdict = Verdict::Unknown;
      break;
    }
    unroller.extend_to(depth);
    poll_exchange(depth);
    for (const ir::NodeRef inv : invariants) {
      unroller.assert_at(inv, depth);
    }
    for (const auto& [expr, level] : bounded) {
      if (depth <= level) unroller.assert_at(expr, depth);
    }

    // Query: can the property fail exactly at `depth`?
    const sat::Lit bad = ~unroller.lit_at(property, depth);
    const sat::LBool answer = solver.solve({bad});

    if (answer == sat::LBool::True) {
      result.verdict = Verdict::Falsified;
      result.depth = depth;
      result.cex = unroller.extract_trace(depth + 1);
      break;
    }
    if (answer == sat::LBool::Undef) {  // budget exhausted
      result.verdict = Verdict::Unknown;
      result.depth = depth;
      break;
    }
    // UNSAT at this depth: the property holds at `depth`; pin it down so
    // later frames benefit and move on.
    solver.add_clause(~bad);
    result.depth = depth;
  }

  result.stats.absorb(solver.stats());
  result.stats.seconds = watch.seconds();
  return result;
}

}  // namespace genfv::mc
