#include "mc/bmc.hpp"

#include "util/stopwatch.hpp"

namespace genfv::mc {

BmcEngine::BmcEngine(const ir::TransitionSystem& ts, BmcOptions options)
    : ts_(ts), options_(std::move(options)) {}

BmcResult BmcEngine::check(ir::NodeRef property) {
  util::Stopwatch watch;
  BmcResult result;

  sat::Solver solver;
  solver.set_conflict_budget(options_.conflict_budget);
  solver.set_stop_flag(options_.stop.get());
  Unroller unroller(ts_, solver);
  unroller.assert_init();

  for (std::size_t depth = 0; depth <= options_.max_depth; ++depth) {
    if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed)) {
      result.verdict = Verdict::Unknown;
      break;
    }
    unroller.extend_to(depth);
    for (const ir::NodeRef lemma : options_.lemmas) {
      unroller.assert_at(lemma, depth);
    }

    // Query: can the property fail exactly at `depth`?
    const sat::Lit bad = ~unroller.lit_at(property, depth);
    const sat::LBool answer = solver.solve({bad});

    if (answer == sat::LBool::True) {
      result.verdict = Verdict::Falsified;
      result.depth = depth;
      result.cex = unroller.extract_trace(depth + 1);
      break;
    }
    if (answer == sat::LBool::Undef) {  // budget exhausted
      result.verdict = Verdict::Unknown;
      result.depth = depth;
      break;
    }
    // UNSAT at this depth: the property holds at `depth`; pin it down so
    // later frames benefit and move on.
    solver.add_clause(~bad);
    result.depth = depth;
  }

  result.stats.absorb(solver.stats());
  result.stats.seconds = watch.seconds();
  return result;
}

}  // namespace genfv::mc
