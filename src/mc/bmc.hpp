#pragma once

/// \file bmc.hpp
/// Bounded model checking: search for a property violation reachable from
/// the initial states within a growing bound. BMC "can find bugs in large
/// designs, [but] the correctness of a property is guaranteed only for the
/// analysis bound" (paper §II-A) — the E6 bench demonstrates exactly that
/// contrast against k-induction.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mc/exchange.hpp"
#include "mc/result.hpp"
#include "mc/unroller.hpp"

namespace genfv::mc {

struct BmcOptions {
  std::size_t max_depth = 64;
  /// Proven invariants assumed at every frame (sound, they restrict nothing
  /// reachable); used when re-checking targets under lemmas.
  std::vector<ir::NodeRef> lemmas;
  /// Best-effort cap on SAT conflicts per solve; -1 = unlimited.
  std::int64_t conflict_budget = -1;
  /// Cooperative cancellation: polled at every depth and at SAT restart
  /// boundaries; when it reads true the run returns Unknown. See
  /// EngineOptions::stop for the full contract.
  std::shared_ptr<std::atomic<bool>> stop;
  /// Portfolio lemma exchange: polled once per depth; proven clauses are
  /// asserted on every frame, level-tagged clauses only on frames <= level
  /// (every BMC frame is init-rooted, so both are sound). nullptr = off.
  std::shared_ptr<LemmaMailbox> exchange;
  std::size_t exchange_slot = 0;
  /// SAT backend name (see sat::make_backend) and inprocessing toggle.
  std::string sat_backend = "internal";
  bool sat_inprocess = true;
  /// When non-empty, log a DRAT proof to `<drat_path>.cnf`/`.drat`.
  std::string drat_path;
};

class BmcEngine {
 public:
  BmcEngine(const ir::TransitionSystem& ts, BmcOptions options = {});

  /// Check `property` up to the configured bound.
  ///  * Falsified: returns the shortest counterexample trace.
  ///  * Unknown: no violation within max_depth (BMC can never return Proven).
  BmcResult check(ir::NodeRef property);

 private:
  const ir::TransitionSystem& ts_;
  BmcOptions options_;
};

}  // namespace genfv::mc
