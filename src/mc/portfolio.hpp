#pragma once

/// \file portfolio.hpp
/// Portfolio scheduling over `mc::Engine`: run BMC, k-induction and IC3/PDR
/// on the same properties and adopt the first conclusive verdict
/// (Proven/Falsified). Soundness makes this race safe — conclusive verdicts
/// cannot disagree, so whichever engine finishes first speaks for all.
///
/// Two scheduling modes (EngineOptions::portfolio_threads):
///  * Threaded: one std::thread per member. NodeManager is not thread-safe,
///    so every member runs over a private `ir::SystemClone`; properties and
///    lemmas are translated into each clone before the threads start, and
///    the winner's counterexample/invariant are translated back after every
///    thread has been joined. The first conclusive member sets the shared
///    stop flag (EngineOptions::stop machinery), which cancels the losers
///    cooperatively at their next poll.
///  * Time-sliced: a deterministic single-threaded round-robin over doubling
///    step budgets (1, 2, 4, …, max_steps) directly on the caller's system.
///    Reproducible run-to-run; intended for CI and debugging.
///
/// Live lemma exchange (EngineOptions::exchange, default on): members share
/// a `mc::LemmaMailbox` carrying clauses in a manager-neutral form. PDR
/// publishes clauses the moment its mutual-induction fixpoint pushes them to
/// F_∞; BMC and k-induction poll each solve-loop iteration and re-create the
/// clauses in their own clone. In the threaded mode this is the codebase's
/// only cross-thread data path besides the stop flag; in the time-sliced
/// mode the mailbox persists across slices, so clauses PDR proved at budget
/// b reach the other members' budget-2b slices — still deterministic.
///
/// The merged `EngineResult` names the winner, sums every member's
/// `EngineStats`, and carries a per-member `EngineBreakdown` (including
/// published/absorbed exchange counters) so reports can show who did what.
/// An inconclusive portfolio (every member Unknown) forwards a k-induction
/// step CEX when one was produced, keeping the GenAI repair loop fed even
/// when no engine concluded.

#include "mc/engine.hpp"

namespace genfv::mc {

class PortfolioEngine final : public Engine {
 public:
  /// `ts` must outlive the engine. Throws UsageError when
  /// `options.portfolio_engines` contains EngineKind::Portfolio.
  PortfolioEngine(const ir::TransitionSystem& ts, EngineOptions options);

  EngineKind kind() const noexcept override { return EngineKind::Portfolio; }
  std::string name() const override { return "portfolio"; }

  EngineResult prove_all(const std::vector<ir::NodeRef>& properties) override;

 private:
  EngineResult run_threaded(const std::vector<ir::NodeRef>& properties);
  EngineResult run_time_sliced(const std::vector<ir::NodeRef>& properties);

  const ir::TransitionSystem& ts_;
  EngineOptions options_;
  std::vector<EngineKind> members_;
};

}  // namespace genfv::mc
