#include "mc/engine.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "mc/bmc.hpp"
#include "mc/kinduction.hpp"
#include "mc/pdr/pdr.hpp"
#include "mc/portfolio.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::mc {

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::Bmc: return "bmc";
    case EngineKind::KInduction: return "k-induction";
    case EngineKind::Pdr: return "pdr";
    case EngineKind::Portfolio: return "portfolio";
  }
  return "?";
}

std::optional<EngineKind> engine_kind_from_string(const std::string& name) {
  if (name == "bmc") return EngineKind::Bmc;
  if (name == "kind" || name == "kinduction" || name == "k-induction") {
    return EngineKind::KInduction;
  }
  if (name == "pdr" || name == "ic3") return EngineKind::Pdr;
  if (name == "portfolio") return EngineKind::Portfolio;
  return std::nullopt;
}

std::size_t auto_pdr_workers(const ir::TransitionSystem& ts) noexcept {
  // Sharding pays for its thread + system-clone + solver-context setup only
  // when the design promises enough blocking work. The real driver
  // (obligation volume) is unknowable upfront, so gate on the cheapest
  // static proxy available: word-level node count. The zoo calibrates the
  // threshold — sync_counters (15 nodes) solves in ~2.4 ms and regresses to
  // ~5.2 ms under w=4, while updown_pair (22 nodes) gains ~1.7x — so the
  // cut sits between the two. Misclassification costs milliseconds of
  // wall-clock, never a verdict.
  constexpr std::size_t kMinNodesForSharding = 20;
  if (ts.nm().num_nodes() < kMinNodesForSharding) return 1;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, hw == 0 ? 1 : hw);
}

std::string EngineResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " (depth=" << depth << ", " << stats.sat_calls
      << " SAT calls, " << stats.conflicts << " conflicts, "
      << util::format_duration(stats.seconds) << ")";
  if (!winner.empty()) out << " [winner=" << winner << "]";
  if (step_cex.has_value()) out << " [induction-step CEX available]";
  if (!invariant.empty()) out << " [" << invariant.size() << "-clause invariant]";
  return out.str();
}

EngineOptions to_engine_options(const KInductionOptions& options) {
  EngineOptions out;
  out.max_steps = options.max_k;
  out.simple_path = options.simple_path;
  out.lemmas = options.lemmas;
  out.conflict_budget = options.conflict_budget;
  out.stop = options.stop;
  out.sat_backend = options.sat_backend;
  out.sat_inprocess = options.sat_inprocess;
  out.drat_path = options.drat_path;
  return out;
}

InductionResult to_induction_result(const EngineResult& result) {
  InductionResult out;
  out.verdict = result.verdict;
  out.k = result.depth;
  out.base_cex = result.cex;
  out.step_cex = result.step_cex;
  out.invariant = result.invariant;
  out.stats = result.stats;
  return out;
}

namespace {

class BmcEngineAdapter final : public Engine {
 public:
  BmcEngineAdapter(const ir::TransitionSystem& ts, const EngineOptions& options)
      : ts_(ts), options_(options) {}

  EngineKind kind() const noexcept override { return EngineKind::Bmc; }
  std::string name() const override { return "bmc"; }

  EngineResult prove_all(const std::vector<ir::NodeRef>& properties) override {
    BmcOptions opts;
    opts.max_depth = options_.max_steps;
    opts.lemmas = options_.lemmas;
    opts.conflict_budget = options_.conflict_budget;
    opts.stop = options_.stop;
    opts.exchange = options_.exchange_mailbox;
    opts.exchange_slot = options_.exchange_slot;
    opts.sat_backend = options_.sat_backend;
    opts.sat_inprocess = options_.sat_inprocess;
    opts.drat_path = options_.drat_path;
    BmcEngine engine(ts_, std::move(opts));
    BmcResult r = engine.check(conjoin_properties(ts_, properties));
    EngineResult out;
    out.verdict = r.verdict;
    out.depth = r.depth;
    out.cex = std::move(r.cex);
    out.stats = r.stats;
    return out;
  }

 private:
  const ir::TransitionSystem& ts_;
  EngineOptions options_;
};

class KInductionEngineAdapter final : public Engine {
 public:
  KInductionEngineAdapter(const ir::TransitionSystem& ts, const EngineOptions& options)
      : ts_(ts), options_(options) {}

  EngineKind kind() const noexcept override { return EngineKind::KInduction; }
  std::string name() const override { return "k-induction"; }

  EngineResult prove_all(const std::vector<ir::NodeRef>& properties) override {
    KInductionOptions opts;
    opts.max_k = options_.max_steps;
    opts.simple_path = options_.simple_path;
    opts.lemmas = options_.lemmas;
    opts.conflict_budget = options_.conflict_budget;
    opts.stop = options_.stop;
    opts.exchange = options_.exchange_mailbox;
    opts.exchange_slot = options_.exchange_slot;
    opts.sat_backend = options_.sat_backend;
    opts.sat_inprocess = options_.sat_inprocess;
    opts.drat_path = options_.drat_path;
    KInductionEngine engine(ts_, std::move(opts));
    InductionResult r = engine.prove_all(properties);
    EngineResult out;
    out.verdict = r.verdict;
    out.depth = r.k;
    out.cex = std::move(r.base_cex);
    out.step_cex = std::move(r.step_cex);
    out.invariant = std::move(r.invariant);
    out.stats = r.stats;
    return out;
  }

 private:
  const ir::TransitionSystem& ts_;
  EngineOptions options_;
};

class PdrEngineAdapter final : public Engine {
 public:
  PdrEngineAdapter(const ir::TransitionSystem& ts, const EngineOptions& options)
      : ts_(ts), options_(options) {}

  EngineKind kind() const noexcept override { return EngineKind::Pdr; }
  std::string name() const override { return "pdr"; }

  EngineResult prove_all(const std::vector<ir::NodeRef>& properties) override {
    pdr::PdrOptions opts;
    opts.max_frames = options_.max_steps;
    opts.lemmas = options_.lemmas;
    opts.conflict_budget = options_.conflict_budget;
    opts.stop = options_.stop;
    opts.exchange = options_.exchange_mailbox;
    opts.exchange_slot = options_.exchange_slot;
    opts.publish_frame_clauses = options_.exchange_frame_clauses;
    opts.workers = options_.pdr_workers == 0 ? auto_pdr_workers(ts_)
                                             : options_.pdr_workers;
    opts.rebuild_gate_limit = options_.pdr_rebuild_gate_limit;
    opts.ternary_lifting = options_.pdr_ternary_lifting;
    opts.seed_candidates = options_.pdr_seed_candidates;
    opts.candidate_lemmas = options_.pdr_candidate_lemmas;
    opts.candidate_strikes = options_.pdr_candidate_strikes;
    opts.sat_backend = options_.sat_backend;
    opts.sat_inprocess = options_.sat_inprocess;
    opts.drat_path = options_.drat_path;
    pdr::PdrEngine engine(ts_, std::move(opts));
    pdr::PdrResult r = engine.prove_all(properties);
    EngineResult out;
    out.verdict = r.verdict;
    out.depth = r.depth;
    out.cex = std::move(r.cex);
    out.invariant = std::move(r.invariant);
    out.stats = r.stats;
    return out;
  }

 private:
  const ir::TransitionSystem& ts_;
  EngineOptions options_;
};

}  // namespace

std::unique_ptr<Engine> make_engine(EngineKind kind, const ir::TransitionSystem& ts,
                                    const EngineOptions& options) {
  switch (kind) {
    case EngineKind::Bmc: return std::make_unique<BmcEngineAdapter>(ts, options);
    case EngineKind::KInduction:
      return std::make_unique<KInductionEngineAdapter>(ts, options);
    case EngineKind::Pdr: return std::make_unique<PdrEngineAdapter>(ts, options);
    case EngineKind::Portfolio: return std::make_unique<PortfolioEngine>(ts, options);
  }
  throw UsageError("unknown engine kind");
}

}  // namespace genfv::mc
