#include "mc/unroller.hpp"

#include "util/status.hpp"

namespace genfv::mc {

Unroller::Unroller(const ir::TransitionSystem& ts, sat::Backend& solver)
    : ts_(ts), solver_(solver), blaster_(solver) {
  ts_.validate();
  extend_to(0);
}

void Unroller::freeze_bits(const bitblast::Bits& bits) {
  for (const sat::Lit p : bits) solver_.freeze(sat::var(p));
}

void Unroller::build_frame(std::size_t frame) {
  GENFV_ASSERT(frame == frames_.size(), "frames must be built in order");
  bitblast::BlastCache cache;

  // Leaf bits are the engines' durable handles into the solver — trace
  // extraction, induction clauses and PDR cubes all reference them across
  // many solves — so they are frozen against variable elimination.

  // Inputs: fresh variables every frame.
  for (const ir::NodeRef in : ts_.inputs()) {
    const auto [it, inserted] = cache.emplace(in, blaster_.fresh_vector(in->width()));
    freeze_bits(it->second);
  }

  if (frame == 0) {
    // Frame-0 states: fresh, unconstrained until assert_init().
    for (const auto& s : ts_.states()) {
      const auto [it, inserted] =
          cache.emplace(s.var, blaster_.fresh_vector(s.var->width()));
      freeze_bits(it->second);
    }
  } else {
    // Functional unrolling: next-state expressions of the previous frame.
    auto& prev = frames_[frame - 1];
    for (const auto& s : ts_.states()) {
      const bitblast::Bits bits = blaster_.blast(s.next, prev);
      freeze_bits(bits);
      cache.emplace(s.var, std::move(bits));
    }
  }
  frames_.push_back(std::move(cache));

  // Environment constraints hold at every frame.
  for (const ir::NodeRef c : ts_.constraints()) {
    assert_at(c, frame);
  }
}

void Unroller::extend_to(std::size_t frame) {
  while (frames_.size() <= frame) build_frame(frames_.size());
}

void Unroller::assert_init() {
  if (init_asserted_) return;
  init_asserted_ = true;
  auto& cache = frames_[0];
  for (const auto& s : ts_.states()) {
    if (s.init == nullptr) continue;  // unconstrained register
    const bitblast::Bits init_bits = blaster_.blast(s.init, cache);
    const bitblast::Bits state_bits = cache.at(s.var);
    blaster_.assert_equal(state_bits, init_bits);
  }
}

sat::Lit Unroller::lit_at(ir::NodeRef expr, std::size_t frame) {
  GENFV_ASSERT(expr->width() == 1, "lit_at requires a width-1 expression");
  return bits_at(expr, frame)[0];
}

const bitblast::Bits& Unroller::bits_at(ir::NodeRef expr, std::size_t frame) {
  GENFV_ASSERT(frame < frames_.size(), "frame not materialized");
  const bitblast::Bits& bits = blaster_.blast(expr, frames_[frame]);
  freeze_bits(bits);
  return bits;
}

void Unroller::assert_at(ir::NodeRef expr, std::size_t frame) {
  solver_.add_clause(lit_at(expr, frame));
}

void Unroller::assert_states_differ(std::size_t frame_a, std::size_t frame_b) {
  std::vector<sat::Lit> diffs;
  for (const auto& s : ts_.states()) {
    // Copy: the second bits_at call may rehash the frame cache.
    const bitblast::Bits a = bits_at(s.var, frame_a);
    const bitblast::Bits b_bits = bits_at(s.var, frame_b);
    for (std::size_t i = 0; i < a.size(); ++i) {
      diffs.push_back(blaster_.gate_xor(a[i], b_bits[i]));
    }
  }
  solver_.add_clause(std::move(diffs));
}

std::uint64_t Unroller::model_value(ir::NodeRef leaf, std::size_t frame) {
  const auto& bits = bits_at(leaf, frame);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (solver_.model_value(bits[i]) == sat::LBool::True) value |= (1ULL << i);
  }
  return value;
}

sim::Trace Unroller::extract_trace(std::size_t frames) {
  sim::Trace trace(&ts_);
  for (std::size_t f = 0; f < frames; ++f) {
    sim::Assignment env;
    for (const ir::NodeRef in : ts_.inputs()) env[in] = model_value(in, f);
    for (const auto& s : ts_.states()) env[s.var] = model_value(s.var, f);
    trace.append(std::move(env));
  }
  return trace;
}

}  // namespace genfv::mc
