#include "mc/kinduction.hpp"

#include "util/status.hpp"
#include "util/stopwatch.hpp"

namespace genfv::mc {

KInductionEngine::KInductionEngine(const ir::TransitionSystem& ts, KInductionOptions options)
    : ts_(ts), options_(std::move(options)) {}

InductionResult KInductionEngine::prove(ir::NodeRef property) {
  return prove_all({property});
}

InductionResult KInductionEngine::prove_all(const std::vector<ir::NodeRef>& properties) {
  util::Stopwatch watch;
  InductionResult result;

  // The conjunction of all properties (and it is what gets assumed on
  // earlier frames, making this *mutual* induction).
  const ir::NodeRef prop = conjoin_properties(ts_, properties);

  sat::Solver base_solver;
  base_solver.set_conflict_budget(options_.conflict_budget);
  base_solver.set_stop_flag(options_.stop.get());
  Unroller base(ts_, base_solver);
  base.assert_init();

  sat::Solver step_solver;
  step_solver.set_conflict_budget(options_.conflict_budget);
  step_solver.set_stop_flag(options_.stop.get());
  Unroller step(ts_, step_solver);  // no init: arbitrary start state

  // Lemmas are invariants: assert them on every materialized frame.
  std::size_t base_lemma_frames = 0;
  std::size_t step_lemma_frames = 0;
  auto assert_lemmas = [this](Unroller& u, std::size_t& upto, std::size_t frame) {
    for (; upto <= frame; ++upto) {
      for (const ir::NodeRef lemma : options_.lemmas) u.assert_at(lemma, upto);
    }
  };

  auto finish = [&](Verdict verdict, std::size_t k) {
    result.verdict = verdict;
    result.k = k;
    result.stats.absorb(base_solver.stats());
    result.stats.absorb(step_solver.stats());
    result.stats.seconds = watch.seconds();
    return result;
  };

  for (std::size_t k = 1; k <= options_.max_k; ++k) {
    if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed)) {
      return finish(Verdict::Unknown, k - 1);
    }
    // ---- Base case: no violation at depth k-1 from the initial states.
    base.extend_to(k - 1);
    assert_lemmas(base, base_lemma_frames, k - 1);
    const sat::Lit bad_base = ~base.lit_at(prop, k - 1);
    const sat::LBool base_answer = base_solver.solve({bad_base});
    if (base_answer == sat::LBool::True) {
      result.base_cex = base.extract_trace(k);
      return finish(Verdict::Falsified, k);
    }
    if (base_answer == sat::LBool::Undef) {
      return finish(Verdict::Unknown, k);
    }
    base_solver.add_clause(~bad_base);  // property holds at frame k-1 for good

    // ---- Inductive step: P on frames 0..k-1 forces P at frame k.
    step.extend_to(k);
    assert_lemmas(step, step_lemma_frames, k);
    if (options_.simple_path) {
      // New frame k must differ from every earlier frame.
      for (std::size_t i = 0; i < k; ++i) step.assert_states_differ(i, k);
    }
    step_solver.add_clause(step.lit_at(prop, k - 1));  // assume P at frame k-1
    const sat::Lit bad_step = ~step.lit_at(prop, k);
    const sat::LBool step_answer = step_solver.solve({bad_step});
    if (step_answer == sat::LBool::False) {
      return finish(Verdict::Proven, k);
    }
    if (step_answer == sat::LBool::Undef) {
      return finish(Verdict::Unknown, k);
    }
    // Step failed: remember the spurious trace (frames 0..k) for analysis.
    result.step_cex = step.extract_trace(k + 1);
  }

  return finish(Verdict::Unknown, options_.max_k);
}

}  // namespace genfv::mc
