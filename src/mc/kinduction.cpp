#include "mc/kinduction.hpp"

#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"

namespace genfv::mc {

KInductionEngine::KInductionEngine(const ir::TransitionSystem& ts, KInductionOptions options)
    : ts_(ts), options_(std::move(options)) {}

InductionResult KInductionEngine::prove(ir::NodeRef property) {
  return prove_all({property});
}

InductionResult KInductionEngine::prove_all(const std::vector<ir::NodeRef>& properties) {
  GENFV_TRACE_SPAN("mc", "kinduction_prove");
  util::Stopwatch watch;
  InductionResult result;

  // The conjunction of all properties (and it is what gets assumed on
  // earlier frames, making this *mutual* induction).
  const ir::NodeRef prop = conjoin_properties(ts_, properties);

  const std::unique_ptr<sat::Backend> base_ptr = sat::make_backend(options_.sat_backend);
  sat::Backend& base_solver = *base_ptr;
  base_solver.set_conflict_budget(options_.conflict_budget);
  base_solver.set_stop_flag(options_.stop.get());
  base_solver.set_inprocessing(options_.sat_inprocess);
  if (!options_.drat_path.empty()) base_solver.start_proof(options_.drat_path + "_base");
  Unroller base(ts_, base_solver);
  base.assert_init();

  const std::unique_ptr<sat::Backend> step_ptr = sat::make_backend(options_.sat_backend);
  sat::Backend& step_solver = *step_ptr;
  step_solver.set_conflict_budget(options_.conflict_budget);
  step_solver.set_stop_flag(options_.stop.get());
  step_solver.set_inprocessing(options_.sat_inprocess);
  if (!options_.drat_path.empty()) step_solver.start_proof(options_.drat_path + "_step");
  Unroller step(ts_, step_solver);  // no init: arbitrary start state

  // Invariants asserted on every materialized frame of both cases: the
  // seeded lemmas plus any proven clauses absorbed from the live exchange.
  std::vector<ir::NodeRef> invariants = options_.lemmas;
  // Level-tagged exchange clauses: sound only on init-rooted frames <= level
  // (base case), never in the arbitrary-start step case.
  std::vector<std::pair<ir::NodeRef, std::size_t>> bounded;
  std::size_t base_lemma_frames = 0;
  std::size_t step_lemma_frames = 0;
  auto assert_base_upto = [&](std::size_t frame) {
    for (; base_lemma_frames <= frame; ++base_lemma_frames) {
      for (const ir::NodeRef inv : invariants) base.assert_at(inv, base_lemma_frames);
      for (const auto& [expr, level] : bounded) {
        if (base_lemma_frames <= level) base.assert_at(expr, base_lemma_frames);
      }
    }
  };
  auto assert_step_upto = [&](std::size_t frame) {
    for (; step_lemma_frames <= frame; ++step_lemma_frames) {
      for (const ir::NodeRef inv : invariants) step.assert_at(inv, step_lemma_frames);
    }
  };

  // Absorb newly published exchange clauses: materialize them in our own
  // manager and back-fill every frame the run has already built.
  std::size_t exchange_cursor = 0;
  // The backlog may carry the same clause many times (re-publishing slices,
  // independent members); assert each distinct fact once per run.
  AbsorbFilter absorb_filter;
  auto poll_exchange = [&] {
    if (options_.exchange == nullptr) return;
    std::size_t absorbed = 0;
    for (const ExchangedClause& clause :
         options_.exchange->fetch(options_.exchange_slot, &exchange_cursor)) {
      if (!absorb_filter.admit(clause)) continue;
      const ir::NodeRef expr = materialize(clause, ts_);
      if (expr == nullptr) continue;
      if (clause.proven()) {
        invariants.push_back(expr);
        result.invariant.push_back(expr);
        for (std::size_t f = 0; f < base_lemma_frames; ++f) base.assert_at(expr, f);
        for (std::size_t f = 0; f < step_lemma_frames; ++f) step.assert_at(expr, f);
      } else {
        bounded.emplace_back(expr, clause.level);
        for (std::size_t f = 0; f < base_lemma_frames && f <= clause.level; ++f) {
          base.assert_at(expr, f);
        }
      }
      ++absorbed;
    }
    options_.exchange->note_absorbed(options_.exchange_slot, absorbed);
  };

  auto finish = [&](Verdict verdict, std::size_t k) {
    result.verdict = verdict;
    result.k = k;
    if (verdict != Verdict::Proven) result.invariant.clear();
    result.stats.absorb(base_solver.stats());
    result.stats.absorb(step_solver.stats());
    result.stats.seconds = watch.seconds();
    return result;
  };

  for (std::size_t k = 1; k <= options_.max_k; ++k) {
    if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed)) {
      return finish(Verdict::Unknown, k - 1);
    }
    poll_exchange();
    // ---- Base case: no violation at depth k-1 from the initial states.
    base.extend_to(k - 1);
    assert_base_upto(k - 1);
    const sat::Lit bad_base = ~base.lit_at(prop, k - 1);
    const sat::LBool base_answer = base_solver.solve({bad_base});
    if (base_answer == sat::LBool::True) {
      result.base_cex = base.extract_trace(k);
      return finish(Verdict::Falsified, k);
    }
    if (base_answer == sat::LBool::Undef) {
      return finish(Verdict::Unknown, k);
    }
    base_solver.add_clause(~bad_base);  // property holds at frame k-1 for good

    // ---- Inductive step: P on frames 0..k-1 forces P at frame k.
    step.extend_to(k);
    assert_step_upto(k);
    if (options_.simple_path) {
      // New frame k must differ from every earlier frame.
      for (std::size_t i = 0; i < k; ++i) step.assert_states_differ(i, k);
    }
    step_solver.add_clause(step.lit_at(prop, k - 1));  // assume P at frame k-1
    const sat::Lit bad_step = ~step.lit_at(prop, k);
    const sat::LBool step_answer = step_solver.solve({bad_step});
    if (step_answer == sat::LBool::False) {
      return finish(Verdict::Proven, k);
    }
    if (step_answer == sat::LBool::Undef) {
      return finish(Verdict::Unknown, k);
    }
    // Step failed: remember the spurious trace (frames 0..k) for analysis.
    result.step_cex = step.extract_trace(k + 1);
  }

  return finish(Verdict::Unknown, options_.max_k);
}

}  // namespace genfv::mc
