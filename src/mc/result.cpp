#include "mc/result.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace genfv::mc {

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::Proven: return "proven";
    case Verdict::Falsified: return "falsified";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

std::string InductionResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " (k=" << k << ", " << stats.sat_calls << " SAT calls, "
      << stats.conflicts << " conflicts, " << util::format_duration(stats.seconds) << ")";
  if (step_cex.has_value()) out << " [induction-step CEX available]";
  return out.str();
}

}  // namespace genfv::mc
