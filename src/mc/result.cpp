#include "mc/result.hpp"

#include <sstream>

#include "sat/solver.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"

namespace genfv::mc {

ir::NodeRef conjoin_properties(const ir::TransitionSystem& ts,
                               const std::vector<ir::NodeRef>& properties) {
  GENFV_ASSERT(!properties.empty(), "prove_all requires at least one property");
  auto nm = ts.nm_ptr();
  ir::NodeRef prop = nm->mk_true();
  for (const ir::NodeRef p : properties) {
    GENFV_ASSERT(p->width() == 1, "property must have width 1");
    prop = nm->mk_and(prop, p);
  }
  return prop;
}

void EngineStats::absorb(const sat::SolverStats& solver) {
  sat_calls += solver.solves;
  conflicts += solver.conflicts;
  decisions += solver.decisions;
  propagations += solver.propagations;
  restarts += solver.restarts;
  learnt_clauses += solver.learnt_clauses;
  inprocessings += solver.inprocessings;
  subsumed_clauses += solver.subsumed_clauses;
  strengthened_clauses += solver.strengthened_clauses;
  eliminated_vars += solver.eliminated_vars;
  vivified_clauses += solver.vivified_clauses;
}

void EngineStats::publish_metrics(const std::string& prefix) const {
  auto& reg = util::metrics();
  reg.counter(prefix + "sat_calls").add(sat_calls);
  reg.counter(prefix + "conflicts").add(conflicts);
  reg.counter(prefix + "decisions").add(decisions);
  reg.counter(prefix + "propagations").add(propagations);
  reg.counter(prefix + "restarts").add(restarts);
  reg.counter(prefix + "learnt_clauses").add(learnt_clauses);
  reg.counter(prefix + "retired_gates").add(retired_gates);
  reg.counter(prefix + "solver_rebuilds").add(solver_rebuilds);
  reg.counter(prefix + "lifted_bits").add(lifted_bits);
  reg.counter(prefix + "lifted_input_bits").add(lifted_input_bits);
  reg.counter(prefix + "inprocessings").add(inprocessings);
  reg.counter(prefix + "subsumed_clauses").add(subsumed_clauses);
  reg.counter(prefix + "strengthened_clauses").add(strengthened_clauses);
  reg.counter(prefix + "eliminated_vars").add(eliminated_vars);
  reg.counter(prefix + "vivified_clauses").add(vivified_clauses);
  reg.counter(prefix + "candidates_seeded").add(candidates_seeded);
  reg.counter(prefix + "candidates_graduated").add(candidates_graduated);
  reg.counter(prefix + "candidates_retracted").add(candidates_retracted);
  reg.counter(prefix + "seconds_us").add(static_cast<std::uint64_t>(seconds * 1e6));
}

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::Proven: return "proven";
    case Verdict::Falsified: return "falsified";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

std::string InductionResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " (k=" << k << ", " << stats.sat_calls << " SAT calls, "
      << stats.conflicts << " conflicts, " << util::format_duration(stats.seconds) << ")";
  if (step_cex.has_value()) out << " [induction-step CEX available]";
  return out.str();
}

}  // namespace genfv::mc
