#pragma once

/// \file engine.hpp
/// The abstract model-checking engine interface. BMC, k-induction and
/// IC3/PDR all implement it, so the flows, the CLI and the benches can
/// select an engine at runtime (and a future portfolio can run several in
/// parallel). Engine-specific entry points (`BmcEngine`, `KInductionEngine`,
/// `PdrEngine`) remain available for callers that need the native result
/// shapes.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/transition_system.hpp"
#include "mc/result.hpp"

namespace genfv::mc {

enum class EngineKind {
  Bmc,         ///< bounded search for counterexamples (never Proven)
  KInduction,  ///< Sheeran-Singh-Stålmarck k-induction
  Pdr,         ///< IC3/property-directed reachability
};

std::string to_string(EngineKind kind);

/// Parse an engine name as accepted by the CLI `--engine` flag:
/// "bmc", "kind"/"kinduction"/"k-induction", "pdr"/"ic3".
std::optional<EngineKind> engine_kind_from_string(const std::string& name);

/// Engine-independent knobs. Each engine maps `max_steps` onto its own bound:
/// BMC depth, induction k, PDR frame count.
struct EngineOptions {
  std::size_t max_steps = 32;
  /// Proven invariants assumed everywhere (sound: they restrict nothing
  /// reachable). PDR additionally uses them to strengthen every frame.
  std::vector<ir::NodeRef> lemmas;
  /// k-induction only: pairwise state-distinctness in the step case.
  bool simple_path = false;
  /// Best-effort SAT conflict cap per run; -1 = unlimited.
  std::int64_t conflict_budget = -1;
};

/// Engine-independent verdict. Engines fill the fields that apply to them.
struct EngineResult {
  Verdict verdict = Verdict::Unknown;
  /// BMC: deepest frame explored; k-induction: final k; PDR: frontier frame.
  std::size_t depth = 0;
  /// Real counterexample from the initial states (verdict == Falsified).
  std::optional<sim::Trace> cex;
  /// k-induction step-case artefact (the trace the GenAI flow analyzes).
  std::optional<sim::Trace> step_cex;
  /// PDR, verdict == Proven: clauses of the final inductive frame. Each
  /// clause individually holds in every reachable state, so each can be
  /// re-used as a lemma (and printed as SVA via ir::Printer); the
  /// conjunction is inductive and implies the property relative to any
  /// lemmas that seeded the run.
  std::vector<ir::NodeRef> invariant;
  EngineStats stats;

  bool proven() const noexcept { return verdict == Verdict::Proven; }
  std::string summary() const;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const noexcept = 0;
  virtual std::string name() const = 0;

  /// Decide the conjunction of `properties` (a single property is the
  /// common case). Proving the conjunction proves every conjunct.
  virtual EngineResult prove_all(const std::vector<ir::NodeRef>& properties) = 0;

  EngineResult prove(ir::NodeRef property) { return prove_all({property}); }
};

/// Instantiate an engine over `ts`. The transition system must outlive the
/// returned engine.
std::unique_ptr<Engine> make_engine(EngineKind kind, const ir::TransitionSystem& ts,
                                    const EngineOptions& options = {});

struct KInductionOptions;

/// Map the k-induction option shape (what FlowOptions carries) onto the
/// engine-independent one: max_k becomes max_steps, lemmas/simple_path/
/// budget carry over.
EngineOptions to_engine_options(const KInductionOptions& options);

/// Adapt an engine-independent result to the k-induction shape stored in
/// FlowReport::TargetReport (depth becomes k).
InductionResult to_induction_result(const EngineResult& result);

}  // namespace genfv::mc
