#pragma once

/// \file engine.hpp
/// The abstract model-checking engine interface. BMC, k-induction, IC3/PDR
/// and the portfolio scheduler all implement it, so the flows, the CLI and
/// the benches can select an engine at runtime. Engine-specific entry points
/// (`BmcEngine`, `KInductionEngine`, `PdrEngine`) remain available for
/// callers that need the native result shapes.
///
/// Contracts shared by every implementation:
///  * Engines never mutate the transition system, but they DO create nodes
///    in its NodeManager (property conjunction, invariant export), so two
///    engines must not run concurrently over the same system — the
///    portfolio runs its members over private `ir::SystemClone`s instead.
///  * `Verdict::Proven` means the property holds in every reachable state
///    (unbounded); `Falsified` comes with a real counterexample trace from
///    the initial states; `Unknown` covers bound/budget exhaustion and
///    cooperative cancellation.
///  * A returned `EngineResult` references nodes of the system the engine
///    was constructed over, and is only valid while that system's
///    NodeManager lives.

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/transition_system.hpp"
#include "mc/exchange.hpp"
#include "mc/result.hpp"

namespace genfv::mc {

enum class EngineKind {
  Bmc,         ///< bounded search for counterexamples (never Proven)
  KInduction,  ///< Sheeran-Singh-Stålmarck k-induction
  Pdr,         ///< IC3/property-directed reachability
  Portfolio,   ///< run several engines, adopt the first conclusive verdict
};

std::string to_string(EngineKind kind);

/// Parse an engine name as accepted by the CLI `--engine` flag:
/// "bmc", "kind"/"kinduction"/"k-induction", "pdr"/"ic3", "portfolio".
std::optional<EngineKind> engine_kind_from_string(const std::string& name);

/// Engine-independent knobs. Each engine maps `max_steps` onto its own bound:
/// BMC depth, induction k, PDR frame count.
struct EngineOptions {
  std::size_t max_steps = 32;
  /// Proven invariants assumed everywhere (sound: they restrict nothing
  /// reachable). PDR additionally uses them to strengthen every frame.
  std::vector<ir::NodeRef> lemmas;
  /// k-induction only: pairwise state-distinctness in the step case.
  bool simple_path = false;
  /// Best-effort SAT conflict cap per run; -1 = unlimited.
  std::int64_t conflict_budget = -1;
  /// PDR only: worker shards for obligation blocking / clause propagation.
  /// 1 (the default) is the single-threaded engine, bit for bit; n > 1 runs
  /// n query contexts over private system clones sharing one frame database
  /// — verdicts are unchanged, wall-clock and frame trajectory are not.
  /// 0 = auto: resolved per design via auto_pdr_workers(), which keeps small
  /// designs sequential (thread + clone + solver setup dominates their whole
  /// solve) and shards the rest. Other engines ignore the knob.
  std::size_t pdr_workers = 1;
  /// PDR only: rebuild a query context's transition solver in place after it
  /// has retired this many one-shot activation gates (query litter). 0 (the
  /// default) never rebuilds. See PdrOptions::rebuild_gate_limit.
  std::size_t pdr_rebuild_gate_limit = 0;
  /// PDR only: ternary-simulation cube lifting — shrink extracted
  /// predecessor / bad-state cubes before generalization. Off (the default)
  /// keeps the single-worker engine bit-for-bit legacy; on perturbs the
  /// frame trajectory but never a verdict. See PdrOptions::ternary_lifting.
  bool pdr_ternary_lifting = false;
  /// PDR only: seed frames with *candidate* (unproven) clauses under the
  /// may-proof discipline — from `pdr_candidate_lemmas` and, inside an
  /// exchanging portfolio, from level-tagged mailbox clauses. Candidates are
  /// assumed behind retractable gates, never exported, and only graduate
  /// into real frame clauses through a clean relative-induction proof; a
  /// wrong candidate can cost work, never soundness (docs/lemmas.md).
  bool pdr_seed_candidates = false;
  /// PDR only (with pdr_seed_candidates): candidate clause expressions,
  /// e.g. LemmaManager candidates whose k-induction proof failed. Must live
  /// in the engine's NodeManager; non-clause shapes are skipped.
  std::vector<ir::NodeRef> pdr_candidate_lemmas;
  /// Cooperative cancellation. Engines poll the flag between solver queries
  /// and hand it to their SAT solvers, which poll it at restart boundaries;
  /// once it reads true the run winds down and reports Verdict::Unknown.
  /// Thread-safety: engines and solvers only ever *read* the flag (relaxed
  /// loads), so any thread may set it at any time; shared ownership keeps it
  /// alive for detached observers. nullptr (the default) disables
  /// cancellation. The portfolio sets the flag once a member returns a
  /// conclusive verdict, which is what cancels the losing engines.
  std::shared_ptr<std::atomic<bool>> stop;
  /// SAT backend every engine solves through (see sat::make_backend);
  /// "internal" = the in-tree CDCL core, the only built-in.
  std::string sat_backend = "internal";
  /// SAT inprocessing (subsumption/strengthening, bounded variable
  /// elimination, vivification) plus the LBD-tiered learnt-clause policy.
  /// Off pins the solver bit-for-bit to the plain-CDCL behavior.
  bool sat_inprocess = true;
  /// When non-empty, SAT solvers log DRAT proofs under this path base
  /// (`<path>.cnf` + `<path>.drat`, engine-specific suffixes when one run
  /// spawns several solvers). An UNSAT run's proof validates with
  /// scripts/check_drat.py. Meant for single-engine runs.
  std::string drat_path;
  /// PDR only: spurious-blocked offenses a candidate ("may") clause is
  /// allowed before retraction. See PdrOptions::candidate_strikes.
  std::size_t pdr_candidate_strikes = 2;

  // --- portfolio only -------------------------------------------------------
  /// Member engines, in launch (threaded) / slice (time-sliced) order.
  /// Empty = {Bmc, KInduction, Pdr}. Must not contain Portfolio itself.
  std::vector<EngineKind> portfolio_engines;
  /// true: one std::thread per member over a private clone of the system;
  /// false: deterministic single-threaded round-robin over doubling step
  /// budgets (reproducible run-to-run; no clones, no threads — meant for CI
  /// and debugging).
  bool portfolio_threads = true;
  /// Live in-flight lemma exchange between members (mc/exchange.hpp): PDR
  /// publishes clauses the moment they are proven invariant; the other
  /// members absorb them mid-race. Sound — exchange can change which member
  /// wins and how fast, never the verdict. Ignored outside the portfolio.
  bool exchange = true;
  /// Additionally exchange PDR's level-tagged frame clauses (facts bounded
  /// to "reachable in <= level steps"). Consumers assert them only on
  /// init-rooted frames <= level — see exchange.hpp for the soundness rules.
  bool exchange_frame_clauses = false;

  // --- portfolio-member wiring (set by the portfolio, not by callers) -------
  /// Mailbox this engine publishes to / polls from; nullptr = no exchange.
  std::shared_ptr<LemmaMailbox> exchange_mailbox;
  /// This engine's slot in `exchange_mailbox`.
  std::size_t exchange_slot = 0;
};

/// One portfolio member's outcome, reported alongside the adopted verdict so
/// the merged result still names who did what.
struct EngineBreakdown {
  std::string engine;  ///< member name ("bmc", "k-induction", "pdr")
  Verdict verdict = Verdict::Unknown;
  std::size_t depth = 0;
  EngineStats stats;
  std::string note;  ///< non-empty when the member aborted (e.g. threw)
  /// Live-exchange traffic (EngineOptions::exchange): clauses this member
  /// published into / asserted out of the portfolio mailbox. Consumers
  /// dedupe the backlog per run (mc::AbsorbFilter keyed on the manager-
  /// neutral form), so `lemmas_absorbed` counts distinct clauses asserted
  /// per engine run; a time-sliced member still re-absorbs each distinct
  /// clause once per slice — its fresh solvers need every fact again.
  std::size_t lemmas_published = 0;
  std::size_t lemmas_absorbed = 0;
};

/// Engine-independent verdict. Engines fill the fields that apply to them.
struct EngineResult {
  Verdict verdict = Verdict::Unknown;
  /// BMC: deepest frame explored; k-induction: final k; PDR: frontier frame;
  /// portfolio: the winner's depth.
  std::size_t depth = 0;
  /// Real counterexample from the initial states (verdict == Falsified).
  std::optional<sim::Trace> cex;
  /// k-induction step-case artefact (the trace the GenAI flow analyzes).
  std::optional<sim::Trace> step_cex;
  /// PDR, verdict == Proven: clauses of the final inductive frame. Each
  /// clause individually holds in every reachable state, so each can be
  /// re-used as a lemma (and printed as SVA via ir::Printer); the
  /// conjunction is inductive and implies the property relative to any
  /// lemmas that seeded the run. The portfolio forwards the winner's
  /// invariant (translated back into the caller's system).
  std::vector<ir::NodeRef> invariant;
  /// Aggregate effort. For the portfolio this sums every member's counters,
  /// while `seconds` is the portfolio's wall-clock time (not the sum — the
  /// members ran concurrently).
  EngineStats stats;
  /// Portfolio only: name of the member whose conclusive verdict was
  /// adopted; empty for single engines and for an inconclusive portfolio.
  std::string winner;
  /// Portfolio only: per-member outcome, in launch order.
  std::vector<EngineBreakdown> breakdown;

  bool proven() const noexcept { return verdict == Verdict::Proven; }
  std::string summary() const;
};

/// Uniform engine façade. Implementations are single-use per construction
/// but reusable across prove calls; they hold a reference to the transition
/// system, never own it.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const noexcept = 0;
  virtual std::string name() const = 0;

  /// Decide the conjunction of `properties` (a single property is the
  /// common case). Proving the conjunction proves every conjunct.
  virtual EngineResult prove_all(const std::vector<ir::NodeRef>& properties) = 0;

  EngineResult prove(ir::NodeRef property) { return prove_all({property}); }
};

/// Instantiate an engine over `ts`. The transition system must outlive the
/// returned engine. Throws UsageError for a portfolio that lists Portfolio
/// among its own members.
std::unique_ptr<Engine> make_engine(EngineKind kind, const ir::TransitionSystem& ts,
                                    const EngineOptions& options = {});

/// Resolve `pdr_workers == 0` (auto) for `ts`: 1 for small designs — their
/// whole solve is cheaper than spawning shard threads and cloning solver
/// contexts (BENCH_PR5: w=4 on sync_counters regresses 2.4 ms -> 5.2 ms) —
/// otherwise a small shard count capped by hardware concurrency. The size
/// estimate is deliberately crude (word-level node count); the verdict never
/// depends on the answer, only wall-clock does.
std::size_t auto_pdr_workers(const ir::TransitionSystem& ts) noexcept;

struct KInductionOptions;

/// Map the k-induction option shape (what FlowOptions carries) onto the
/// engine-independent one: max_k becomes max_steps, lemmas/simple_path/
/// budget/stop carry over.
EngineOptions to_engine_options(const KInductionOptions& options);

/// Adapt an engine-independent result to the k-induction shape stored in
/// FlowReport::TargetReport (depth becomes k).
InductionResult to_induction_result(const EngineResult& result);

}  // namespace genfv::mc
