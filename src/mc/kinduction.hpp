#pragma once

/// \file kinduction.hpp
/// k-induction (Sheeran-Singh-Stålmarck) over the transition system.
///
/// For increasing k the engine maintains two incremental solvers:
///  * Base case (with initial-state constraint): no counterexample of length
///    k exists from the initial states.
///  * Inductive step (no initial-state constraint): any k consecutive frames
///    satisfying the property force the property at frame k+1. Because the
///    step case starts from an *arbitrary* state, it "may encompass
///    unreachable states … and end up in a state where the property fails"
///    (paper §II-A) — that spurious trace is surfaced as `step_cex`, the
///    artefact the GenAI flow analyzes.
///
/// Helper lemmas (proven invariants) are asserted at every frame of both
/// cases, shrinking the over-approximated step state space; this is the
/// mechanism by which the paper's generated helper assertions speed up or
/// unlock proofs. Optional simple-path constraints provide the classical
/// (non-AI) completeness improvement for comparison benches.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mc/exchange.hpp"
#include "mc/result.hpp"
#include "mc/unroller.hpp"

namespace genfv::mc {

struct KInductionOptions {
  std::size_t max_k = 32;
  /// Add pairwise state-distinctness constraints to the step case.
  bool simple_path = false;
  /// Proven invariants assumed at every frame of both cases.
  std::vector<ir::NodeRef> lemmas;
  /// Best-effort SAT conflict cap per run; -1 = unlimited.
  std::int64_t conflict_budget = -1;
  /// Cooperative cancellation: polled at every k and at SAT restart
  /// boundaries; when it reads true the run returns Unknown. See
  /// EngineOptions::stop for the full contract.
  std::shared_ptr<std::atomic<bool>> stop;
  /// Portfolio lemma exchange: polled once per k. Proven clauses join the
  /// lemma set on every frame of both cases; level-tagged clauses are
  /// asserted on *base-case* frames <= level only — the step case starts
  /// from an arbitrary state of unbounded depth, where a bounded-reach fact
  /// would be unsound (see exchange.hpp). nullptr = off.
  std::shared_ptr<LemmaMailbox> exchange;
  std::size_t exchange_slot = 0;
  /// SAT backend name (see sat::make_backend) and inprocessing toggle.
  std::string sat_backend = "internal";
  bool sat_inprocess = true;
  /// When non-empty, log DRAT proofs to `<drat_path>_base` / `<drat_path>_step`.
  std::string drat_path;
};

class KInductionEngine {
 public:
  KInductionEngine(const ir::TransitionSystem& ts, KInductionOptions options = {});

  /// Attempt to prove a single width-1 property.
  InductionResult prove(ir::NodeRef property);

  /// Joint (mutual) induction: prove the conjunction of `properties`. Some
  /// helper/target pairs are only inductive together; proving the
  /// conjunction proves every conjunct.
  InductionResult prove_all(const std::vector<ir::NodeRef>& properties);

 private:
  const ir::TransitionSystem& ts_;
  KInductionOptions options_;
};

}  // namespace genfv::mc
