#pragma once

/// \file result.hpp
/// Verdicts and statistics shared by the BMC and k-induction engines.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace genfv::sat {
struct SolverStats;
}

namespace genfv::mc {

enum class Verdict {
  Proven,     ///< property holds in all reachable states (unbounded)
  Falsified,  ///< real counterexample from the initial states
  Unknown,    ///< bound/budget exhausted without a conclusion
};

std::string to_string(Verdict v);

/// Conjunction of width-1 properties in the system's node manager; proving
/// the conjunction proves every conjunct. Shared by all engines' prove_all.
ir::NodeRef conjoin_properties(const ir::TransitionSystem& ts,
                               const std::vector<ir::NodeRef>& properties);

/// Aggregate effort counters for one engine run. Every engine fills this the
/// same way — by absorbing the `sat::SolverStats` of each solver it owned —
/// so FlowReport and the benches compare like with like across engines.
struct EngineStats {
  std::size_t sat_calls = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  /// Clauses learnt from conflict analysis across every absorbed solver.
  std::uint64_t learnt_clauses = 0;
  /// PDR query hygiene: one-shot activation gates retired as permanently-
  /// satisfied unit clauses (the litter that motivates solver rebuilds),
  /// and in-place solver rebuilds triggered by PdrOptions::rebuild_gate_limit.
  std::uint64_t retired_gates = 0;
  std::uint64_t solver_rebuilds = 0;
  /// PDR ternary lifting: state-bit literals dropped from extracted cubes
  /// before generalization (PdrOptions::ternary_lifting), and input bits
  /// freed to X by the input-lifting pass that follows it.
  std::uint64_t lifted_bits = 0;
  std::uint64_t lifted_input_bits = 0;
  /// SAT inprocessing (sat/inprocess.hpp), summed over absorbed solvers:
  /// sessions run, clauses subsumed / strengthened / vivified, variables
  /// eliminated by BVE.
  std::uint64_t inprocessings = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t strengthened_clauses = 0;
  std::uint64_t eliminated_vars = 0;
  std::uint64_t vivified_clauses = 0;
  /// PDR candidate seeding (PdrOptions::seed_candidates): candidate clauses
  /// admitted as "may" clauses, graduated into real frame clauses by the
  /// may-proof pass, and retracted (refuted at init or implicated in a
  /// spurious blocked answer).
  std::uint64_t candidates_seeded = 0;
  std::uint64_t candidates_graduated = 0;
  std::uint64_t candidates_retracted = 0;
  double seconds = 0.0;

  /// Fold one solver's lifetime counters into this record (sat_calls gains
  /// the solver's solve() count).
  void absorb(const sat::SolverStats& solver);

  /// Publish every counter into the global metrics registry under `prefix`
  /// (e.g. "engine." -> "engine.sat_calls"). The CLI's stats printing and
  /// --metrics-out read the registry, so end-of-run stats and live telemetry
  /// are one source of truth rather than hand-copied numbers.
  void publish_metrics(const std::string& prefix) const;

  EngineStats& operator+=(const EngineStats& other) {
    sat_calls += other.sat_calls;
    conflicts += other.conflicts;
    decisions += other.decisions;
    propagations += other.propagations;
    restarts += other.restarts;
    learnt_clauses += other.learnt_clauses;
    retired_gates += other.retired_gates;
    solver_rebuilds += other.solver_rebuilds;
    lifted_bits += other.lifted_bits;
    lifted_input_bits += other.lifted_input_bits;
    inprocessings += other.inprocessings;
    subsumed_clauses += other.subsumed_clauses;
    strengthened_clauses += other.strengthened_clauses;
    eliminated_vars += other.eliminated_vars;
    vivified_clauses += other.vivified_clauses;
    candidates_seeded += other.candidates_seeded;
    candidates_graduated += other.candidates_graduated;
    candidates_retracted += other.candidates_retracted;
    seconds += other.seconds;
    return *this;
  }
};

/// Result of a bounded check.
struct BmcResult {
  Verdict verdict = Verdict::Unknown;
  std::size_t depth = 0;  ///< frames explored / CEX length - 1
  std::optional<sim::Trace> cex;
  EngineStats stats;
};

/// Result of a k-induction proof attempt.
struct InductionResult {
  Verdict verdict = Verdict::Unknown;
  std::size_t k = 0;  ///< induction depth at conclusion (or last attempted)
  /// Real counterexample from the base case (verdict == Falsified).
  std::optional<sim::Trace> base_cex;
  /// Induction-step counterexample: a k+1-frame execution starting from an
  /// *arbitrary* (possibly unreachable) state that satisfies the property on
  /// frames 0..k-1 and violates it at frame k. This is exactly the artefact
  /// the paper feeds to the LLM (Fig. 2 / Fig. 3). Present when the step
  /// case failed at the last attempted k.
  std::optional<sim::Trace> step_cex;
  /// verdict == Proven: invariant clauses absorbed from the portfolio's live
  /// lemma exchange during this run. Each holds in every reachable state
  /// (they were proven by the publishing member), so a k-induction win keeps
  /// feeding the lemma loop just like a PDR win does. Empty without
  /// exchange — plain k-induction produces no clause artefacts of its own.
  std::vector<ir::NodeRef> invariant;
  EngineStats stats;

  bool proven() const noexcept { return verdict == Verdict::Proven; }
  std::string summary() const;
};

}  // namespace genfv::mc
