#pragma once

/// \file context.hpp
/// Per-worker PDR query context: one transition solver + one initiation
/// solver (both owned by a `sat::SolverPool`), their unrollers, the
/// activation-literal ladder, and a lazily-synced mirror of the shared
/// `FrameDb`.
///
/// A context is the only place solver literals exist; everything above it
/// (blocking, generalization, propagation, orchestration) trades in
/// manager-neutral cubes. One context belongs to exactly one worker at a
/// time — it is not internally synchronized. The sharded engine gives each
/// worker a context over a private `ir::SystemClone`; worker 0's context
/// runs over the caller's own system, so `workers == 1` degenerates to the
/// legacy single-solver engine with zero threading overhead.
///
/// FrameDb mirroring: `sync()` replays the database journal since the
/// context's last synced epoch — level pushes allocate activation literals,
/// blocked cubes become activation-gated clauses, graduations become
/// ungated F_∞ clauses asserted at both solver frames. A mirror may lag the
/// database between syncs; that only *weakens* the frame approximation a
/// query sees, which is sound for every PDR query shape (a stale F_k is
/// still an over-approximation of the states reachable in ≤ k steps).
///
/// Gate hygiene: finished blocking queries retire their activation gates as
/// permanently-satisfied unit clauses. The context counts the litter and —
/// when `PdrOptions::rebuild_gate_limit` is enabled — rebuilds its
/// transition solver in place at the next `sync()`, re-encoding init,
/// lemmas, the FrameDb clauses, F_∞ and the live may clauses from a
/// consistent snapshot. The retired solver's statistics survive in the pool.
///
/// Candidate ("may") clauses mirror through the same journal: SeedMay
/// allocates a dedicated per-candidate gate and asserts the clause at frame
/// 0 behind it; RetractMay retires that gate. Queries assume the live gates
/// and apply the clean-rerun discipline (see relative_query), so no answer
/// that leaves this context ever depends on an unproven candidate.
///
/// Ternary lifting: the context owns a per-worker `TernarySim` over its own
/// system (clone), so lifting never shares IR across threads.

#include <map>
#include <memory>
#include <vector>

#include "mc/pdr/frame_db.hpp"
#include "mc/pdr/obligation.hpp"
#include "mc/pdr/pdr.hpp"
#include "mc/pdr/ternary.hpp"
#include "mc/unroller.hpp"
#include "sat/solver_pool.hpp"

namespace genfv::mc::pdr {

class QueryContext {
 public:
  /// `ts`, `property` and `lemmas` must all live in the same NodeManager
  /// (the worker's clone, or the caller's system for worker 0) and outlive
  /// the context; so must `pool`, `db` and `options`.
  QueryContext(const ir::TransitionSystem& ts, ir::NodeRef property,
               const std::vector<ir::NodeRef>& lemmas, const PdrOptions& options,
               sat::SolverPool& pool, FrameDb& db);

  const ir::TransitionSystem& system() const noexcept { return ts_; }
  sat::Backend& solver() { return pool_.at(solver_handle_); }
  sat::Backend& init_solver() { return pool_.at(init_handle_); }
  Unroller& unroller() { return *unr_; }
  Unroller& init_unroller() { return *init_unr_; }

  /// Property literal at frame 0 of the transition solver / of the
  /// init-constrained solver.
  sat::Lit prop_lit() const noexcept { return prop0_; }
  sat::Lit init_prop_lit() const noexcept { return init_prop_; }

  /// True once cooperative cancellation has been requested.
  bool stopped() const noexcept;

  /// Mirror maintenance: rebuild the transition solver if the gate litter
  /// crossed the limit, then replay every FrameDb event this mirror has not
  /// seen. Called internally by every query entry point; cheap when there is
  /// nothing new.
  void sync();

  /// Solver literal that is true iff cube literal `l` holds at `frame`.
  sat::Lit cube_lit(std::size_t frame, const StateLit& l);

  /// Assumptions activating F_level in this mirror: the activation literals
  /// of levels ≥ level. Requires a prior sync() covering `level`.
  std::vector<sat::Lit> assumptions(std::size_t level) const;

  /// SAT(F_frontier ∧ ¬P)? — find a frontier state violating the property.
  /// Live may clauses are assumed (and fall back cleanly, see solve_frames).
  sat::LBool solve_frontier_bad(std::size_t frontier);

  /// Fill `out` with the full frame-0 state cube and the concrete
  /// state/input values of the current model of the transition solver.
  void extract_state(Obligation& out);

  /// After intersects_init returned True: overwrite `out.state_values` with
  /// the initial-state witness from the init solver's model. With ternary
  /// lifting, a lifted cube can contain initial states other than the
  /// concrete predecessor — counterexample re-simulation must start from a
  /// state that actually satisfies init (see pdr.cpp's build_cex).
  void extract_init_witness(Obligation& out);

  /// Ternary-lift an extracted frontier bad state (goal: the property stays
  /// forced false) / predecessor (goal: `successor` stays forced), dropping
  /// state-bit literals from `o.cube`. No-ops unless
  /// PdrOptions::ternary_lifting is set. Feeds the lifted_bits counter.
  void lift_bad(Obligation& o);
  void lift_pred(Obligation& o, const Cube& successor);

  /// State-bit literals dropped by this context's lifting — feeds
  /// EngineStats::lifted_bits. Input bits proven irrelevant by the trailing
  /// input pass feed EngineStats::lifted_input_bits.
  std::size_t lifted_bits() const noexcept { return lifted_bits_; }
  std::size_t lifted_input_bits() const noexcept { return lifted_input_bits_; }

  /// SAT(init ∧ cube)? — does the cube contain an initial state.
  /// Never assumes may clauses: initiation checks must be exact.
  sat::LBool intersects_init(const Cube& cube);

  /// Undef counts as "may intersect" — conservative for generalization,
  /// which must never block a potentially-initial state.
  bool may_intersect_init(const Cube& cube);

  /// SAT(F_{level-1} ∧ [¬cube] ∧ T ∧ cube')? On UNSAT, `core_out` (if given)
  /// receives the failed assumptions; intersect with the primed cube
  /// literals to find which were needed.
  ///
  /// Candidate seeding: live may clauses are additionally assumed. A SAT
  /// answer is unaffected (the model is a real transition); an UNSAT answer
  /// is accepted only when no may gate appears in the failed-assumption
  /// core — otherwise the query re-runs *clean* (without candidates), and
  /// if the clean run is SAT, every candidate the found state violates is
  /// retracted (it manufactured a spurious "blocked" answer). Returned
  /// answers and cores are therefore always candidate-free facts.
  sat::LBool relative_query(const Cube& cube, std::size_t level, bool assume_not_cube,
                            std::vector<sat::Lit>* core_out);

  /// SAT(F_{level-1} ∧ survivors ∧ T ∧ cube')? — the may-proof consecution
  /// check: assumes exactly the gates of `survivor_ids` (no other
  /// candidates), so an UNSAT certifies consecution relative to the named
  /// set only. Requires seed_candidates; `cube` is one survivor's cube.
  sat::LBool may_consecution_query(const std::vector<std::size_t>& survivor_ids,
                                   const Cube& cube, std::size_t level);

  /// Fresh one-shot activation gate for a temporary clause group (e.g. one
  /// F_∞ fixpoint pass). Retire it with retire_gate once the group is dead.
  sat::Lit new_gate();

  /// Permanently satisfy every clause gated by `gate` and count the litter.
  void retire_gate(sat::Lit gate);

  /// Lifetime gate litter (survives rebuilds) — feeds EngineStats.
  std::size_t retired_gates() const noexcept { return retired_gates_total_; }

 private:
  /// Encode the rebuild-invariant base facts into the (fresh) transition
  /// solver: frames 0/1, the gated init equalities, the seeded lemmas and
  /// the property literal. Shared by the constructor and rebuild().
  void bootstrap();

  /// Replace the transition solver with a fresh one and re-encode the base
  /// facts plus a consistent FrameDb snapshot.
  void rebuild();

  void apply_event(const FrameDb::Event& event);
  void assert_blocked(const Cube& cube, std::size_t level);
  void assert_infinity(const Cube& cube);
  void assert_may(const Cube& cube, std::size_t id);

  /// Solve with `assumptions` plus every live may gate, applying the
  /// clean-rerun/retraction discipline documented on relative_query. The
  /// degenerate no-candidates path is exactly a plain solve (bit-for-bit
  /// with the pre-seeding engine).
  sat::LBool solve_frames(std::vector<sat::Lit> assumptions,
                          std::vector<sat::Lit>* core_out);

  /// After a clean SAT that a may-assumed query had blocked: retract every
  /// live candidate whose cube the model state satisfies (those gates are
  /// what excluded the state).
  void retract_violated_candidates();

  const ir::TransitionSystem& ts_;
  const PdrOptions& options_;
  sat::SolverPool& pool_;
  FrameDb& db_;
  ir::NodeRef property_;
  std::vector<ir::NodeRef> lemmas_;

  std::size_t solver_handle_ = 0;
  std::size_t init_handle_ = 0;
  std::unique_ptr<Unroller> unr_;
  std::unique_ptr<Unroller> init_unr_;
  /// activations_[0] gates the init-value equalities; activations_[k] gates
  /// the clauses blocked at delta level k.
  std::vector<sat::Lit> activations_;
  sat::Lit prop0_ = sat::kUndefLit;
  sat::Lit init_prop_ = sat::kUndefLit;
  std::size_t synced_epoch_ = 0;

  /// Live may-clause mirror: candidate id -> its dedicated gate + cube.
  /// std::map keeps assumption order deterministic (sorted by id).
  struct MayEntry {
    sat::Lit gate = sat::kUndefLit;
    Cube cube;
  };
  std::map<std::size_t, MayEntry> may_;

  /// Lazily-constructed per-worker ternary simulator (ternary_lifting only).
  std::unique_ptr<TernarySim> ternary_;
  std::size_t lifted_bits_ = 0;
  std::size_t lifted_input_bits_ = 0;

  std::size_t retired_gates_since_rebuild_ = 0;
  std::size_t retired_gates_total_ = 0;
};

}  // namespace genfv::mc::pdr
