#pragma once

/// \file cube.hpp
/// Cubes over state bits — the currency of IC3/PDR. A cube is a conjunction
/// of literals, each naming one bit of one state variable; the clause learnt
/// from a blocked cube is its negation. Cubes are kept sorted by
/// (state, bit), which makes subsumption a linear merge.

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/transition_system.hpp"

namespace genfv::mc::pdr {

/// One literal: bit `bit` of `ts.states()[state]`; `negated` means the cube
/// requires the bit to be 0.
struct StateLit {
  std::uint32_t state = 0;
  std::uint32_t bit = 0;
  bool negated = false;

  friend bool operator==(const StateLit&, const StateLit&) = default;
};

inline bool operator<(const StateLit& a, const StateLit& b) noexcept {
  if (a.state != b.state) return a.state < b.state;
  if (a.bit != b.bit) return a.bit < b.bit;
  return static_cast<int>(a.negated) < static_cast<int>(b.negated);
}

/// Conjunction of state-bit literals, sorted by (state, bit).
using Cube = std::vector<StateLit>;

/// Sort + deduplicate into the canonical form the other helpers expect.
void canonicalize(Cube& cube);

/// Canonicalize a cube that came from a *clause* (candidate lemma, mailbox
/// traffic) and vet it: returns false for an empty cube or one carrying
/// both polarities of a bit — such a clause is a tautology and must be
/// rejected, not approximated. The single gatekeeper for every candidate
/// intake path, so the policy cannot diverge between them.
bool canonicalize_clause_cube(Cube& cube);

/// True iff every literal of `a` appears in `b` — i.e. `a` is weaker as a
/// cube (covers more states), so the clause ¬a subsumes the clause ¬b.
bool subsumes(const Cube& a, const Cube& b);

/// The blocking clause ¬cube as a width-1 IR expression over the system's
/// state variables, suitable for lemma export / SVA printing. Creates nodes
/// in `ts`'s NodeManager — call only from the thread that owns the system.
ir::NodeRef clause_expr(const ir::TransitionSystem& ts, const Cube& cube);

/// Best-effort inverse of `clause_expr`: recognize a width-1 expression that
/// is a disjunction of (possibly negated) single state-bit literals of `ts`
/// and return the cube it blocks, canonicalized. Returns nullopt when the
/// expression is not clause-shaped (references inputs/signals, uses
/// non-clause operators, or is a tautology) — candidate seeding skips such
/// lemmas rather than approximating them.
std::optional<Cube> cube_of_clause(const ir::TransitionSystem& ts, ir::NodeRef expr);

}  // namespace genfv::mc::pdr
