#include "mc/pdr/context.hpp"

#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::mc::pdr {

QueryContext::QueryContext(const ir::TransitionSystem& ts, ir::NodeRef property,
                           const std::vector<ir::NodeRef>& lemmas,
                           const PdrOptions& options, sat::SolverPool& pool, FrameDb& db)
    : ts_(ts), options_(options), pool_(pool), db_(db), property_(property),
      lemmas_(lemmas) {
  solver_handle_ = pool_.acquire();
  init_handle_ = pool_.acquire();

  // Initiation solver: frame 0 under init. Never rebuilt — intersects_init
  // runs on assumptions only, so no gate litter ever accumulates here.
  init_unr_ = std::make_unique<Unroller>(ts_, init_solver());
  init_unr_->assert_init();
  for (const ir::NodeRef lemma : lemmas_) init_unr_->assert_at(lemma, 0);
  init_prop_ = init_unr_->lit_at(property_, 0);

  bootstrap();
  sync();
}

bool QueryContext::stopped() const noexcept {
  return options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed);
}

void QueryContext::bootstrap() {
  unr_ = std::make_unique<Unroller>(ts_, solver());

  // Level-0 activation literal, gating the init-value equalities so the same
  // solver answers both init-relative and frame-relative queries. Gates are
  // minted through new_gate(), which freezes them: they are future
  // assumptions, so inprocessing must never eliminate them.
  const sat::Lit init_gate = new_gate();
  activations_.assign(1, init_gate);
  unr_->extend_to(1);
  for (const auto& s : ts_.states()) {
    if (s.init == nullptr) continue;
    const bitblast::Bits state_bits = unr_->bits_at(s.var, 0);
    const bitblast::Bits init_bits = unr_->bits_at(s.init, 0);
    for (std::size_t b = 0; b < state_bits.size(); ++b) {
      solver().add_clause(~init_gate, state_bits[b], ~init_bits[b]);
      solver().add_clause(~init_gate, ~state_bits[b], init_bits[b]);
    }
  }

  // Lemma seeding: proven invariants hold everywhere, i.e. they are clauses
  // of F_∞ and strengthen every frame of every query.
  for (const ir::NodeRef lemma : lemmas_) {
    unr_->assert_at(lemma, 0);
    unr_->assert_at(lemma, 1);
  }

  prop0_ = unr_->lit_at(property_, 0);
}

void QueryContext::rebuild() {
  GENFV_TRACE_SPAN("pdr", "context_rebuild");
  // Snapshot first: the snapshot's epoch and contents are consistent, so the
  // rebuilt mirror resumes syncing exactly where the snapshot ends.
  const FrameDb::Snapshot snapshot = db_.snapshot();
  pool_.rebuild(solver_handle_);
  bootstrap();
  may_.clear();  // the old gates died with the old solver
  for (std::size_t level = 1; level < snapshot.levels.size(); ++level) {
    activations_.push_back(new_gate());
  }
  for (std::size_t level = 1; level < snapshot.levels.size(); ++level) {
    for (const Cube& cube : snapshot.levels[level]) assert_blocked(cube, level);
  }
  for (const Cube& cube : snapshot.infinity) assert_infinity(cube);
  for (const FrameDb::MayClause& m : snapshot.may) assert_may(m.cube, m.id);
  synced_epoch_ = snapshot.epoch;
  retired_gates_since_rebuild_ = 0;
}

void QueryContext::sync() {
  if (options_.rebuild_gate_limit > 0 &&
      retired_gates_since_rebuild_ >= options_.rebuild_gate_limit) {
    rebuild();
  }
  std::vector<FrameDb::Event> events;
  synced_epoch_ = db_.events_since(synced_epoch_, &events);
  for (const FrameDb::Event& event : events) apply_event(event);
}

void QueryContext::apply_event(const FrameDb::Event& event) {
  switch (event.kind) {
    case FrameDb::Event::Kind::PushLevel:
      activations_.push_back(new_gate());
      break;
    case FrameDb::Event::Kind::Block:
      assert_blocked(event.cube, event.level);
      break;
    case FrameDb::Event::Kind::Graduate:
      assert_infinity(event.cube);
      break;
    case FrameDb::Event::Kind::SeedMay:
      assert_may(event.cube, event.level);
      break;
    case FrameDb::Event::Kind::RetractMay: {
      const auto it = may_.find(event.level);
      if (it != may_.end()) {
        retire_gate(it->second.gate);
        may_.erase(it);
      }
      break;
    }
  }
}

void QueryContext::assert_blocked(const Cube& cube, std::size_t level) {
  GENFV_ASSERT(level < activations_.size(), "blocked level not mirrored yet");
  std::vector<sat::Lit> clause{~activations_[level]};
  for (const StateLit& l : cube) clause.push_back(~cube_lit(0, l));
  solver().add_clause(std::move(clause));
}

void QueryContext::assert_infinity(const Cube& cube) {
  for (const std::size_t frame : {std::size_t{0}, std::size_t{1}}) {
    std::vector<sat::Lit> clause;
    clause.reserve(cube.size());
    for (const StateLit& l : cube) clause.push_back(~cube_lit(frame, l));
    solver().add_clause(std::move(clause));
  }
}

void QueryContext::assert_may(const Cube& cube, std::size_t id) {
  // Frame 0 only: a may clause strengthens the predecessor frame of a query
  // exactly like a blocked clause would, but behind its own gate so it can
  // be retracted (and excluded from clean re-runs) independently.
  const sat::Lit gate = new_gate();
  std::vector<sat::Lit> clause{~gate};
  for (const StateLit& l : cube) clause.push_back(~cube_lit(0, l));
  solver().add_clause(std::move(clause));
  may_[id] = {gate, cube};
}

sat::Lit QueryContext::cube_lit(std::size_t frame, const StateLit& l) {
  const bitblast::Bits& bits = unr_->bits_at(ts_.states()[l.state].var, frame);
  return bits[l.bit] ^ l.negated;
}

std::vector<sat::Lit> QueryContext::assumptions(std::size_t level) const {
  GENFV_ASSERT(level < activations_.size(), "frame level out of range");
  std::vector<sat::Lit> out;
  out.reserve(activations_.size() - level);
  for (std::size_t i = level; i < activations_.size(); ++i) {
    out.push_back(activations_[i]);
  }
  return out;
}

sat::LBool QueryContext::solve_frames(std::vector<sat::Lit> assumptions,
                                      std::vector<sat::Lit>* core_out) {
  if (may_.empty()) {
    const sat::LBool answer = solver().solve(assumptions);
    if (answer == sat::LBool::False && core_out != nullptr) {
      *core_out = solver().failed_assumptions();
    }
    return answer;
  }

  std::vector<sat::Lit> with_may = assumptions;
  with_may.reserve(with_may.size() + may_.size());
  for (const auto& [id, entry] : may_) with_may.push_back(entry.gate);
  const sat::LBool answer = solver().solve(with_may);
  if (answer != sat::LBool::False) return answer;  // SAT model / budget: sound as-is

  // UNSAT: accept only a candidate-free core. failed_assumptions is a subset
  // of the assumptions whose conjunction is already inconsistent, so a core
  // without may gates certifies the clean fact directly.
  bool contaminated = false;
  for (const sat::Lit p : solver().failed_assumptions()) {
    for (const auto& [id, entry] : may_) {
      if (entry.gate == p) {
        contaminated = true;
        break;
      }
    }
    if (contaminated) break;
  }
  if (!contaminated) {
    if (core_out != nullptr) *core_out = solver().failed_assumptions();
    return sat::LBool::False;
  }

  // The blockage leans on unproven candidates: re-ask without them. A clean
  // SAT means some candidate excluded a real (backward-reachable) state —
  // a spurious "blocked" answer; retract every candidate that state violates
  // so the board stops paying for the fallback.
  const sat::LBool clean = solver().solve(assumptions);
  if (clean == sat::LBool::False && core_out != nullptr) {
    *core_out = solver().failed_assumptions();
  }
  if (clean == sat::LBool::True) retract_violated_candidates();
  return clean;
}

void QueryContext::retract_violated_candidates() {
  std::vector<std::size_t> hit;
  for (const auto& [id, entry] : may_) {
    bool violated = true;
    for (const StateLit& l : entry.cube) {
      if (solver().model_value(cube_lit(0, l)) != sat::LBool::True) {
        violated = false;
        break;
      }
    }
    if (violated) hit.push_back(id);
  }
  // Strike through the database: sub-limit strikes are bookkeeping only; a
  // repeat offender's RetractMay event replays into every mirror (including
  // this one) at its next sync. Counting happens in the database, so
  // concurrent workers never double-count one candidate.
  for (const std::size_t id : hit) db_.strike_may(id);
}

sat::LBool QueryContext::solve_frontier_bad(std::size_t frontier) {
  sync();
  std::vector<sat::Lit> assumptions = this->assumptions(frontier);
  assumptions.push_back(~prop0_);
  return solve_frames(std::move(assumptions), nullptr);
}

sat::LBool QueryContext::may_consecution_query(
    const std::vector<std::size_t>& survivor_ids, const Cube& cube, std::size_t level) {
  sync();
  GENFV_ASSERT(level >= 1, "may-proof consecution starts at level 1");
  std::vector<sat::Lit> assumptions = this->assumptions(level - 1);
  for (const std::size_t id : survivor_ids) {
    const auto it = may_.find(id);
    // A survivor retracted by a racing worker mid-pass simply drops out of
    // the assumption set; the check is then relative to a smaller set, which
    // only makes an UNSAT answer stronger.
    if (it != may_.end()) assumptions.push_back(it->second.gate);
  }
  for (const StateLit& l : cube) assumptions.push_back(cube_lit(1, l));
  return solver().solve(assumptions);
}

void QueryContext::extract_state(Obligation& out) {
  out.cube.clear();
  out.state_values.clear();
  out.input_values.clear();
  for (std::size_t si = 0; si < ts_.states().size(); ++si) {
    const auto& s = ts_.states()[si];
    const bitblast::Bits bits = unr_->bits_at(s.var, 0);
    // `value` packs the state into the same uint64 currency sim::Trace
    // uses. NodeManager::mk_state caps widths at 64 (and prove_all
    // re-checks), so the shift below can never reach UB territory.
    GENFV_ASSERT(bits.size() <= 64, "state wider than the 64-bit value path");
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < bits.size(); ++b) {
      const bool one = solver().model_value(bits[b]) == sat::LBool::True;
      if (one) value |= 1ULL << b;
      out.cube.push_back(
          {static_cast<std::uint32_t>(si), static_cast<std::uint32_t>(b), !one});
    }
    out.state_values.push_back(value);
  }
  for (const ir::NodeRef in : ts_.inputs()) {
    out.input_values.push_back(unr_->model_value(in, 0));
  }
}

void QueryContext::extract_init_witness(Obligation& out) {
  out.state_values.clear();
  for (const auto& s : ts_.states()) {
    out.state_values.push_back(init_unr_->model_value(s.var, 0));
  }
}

void QueryContext::lift_bad(Obligation& o) {
  GENFV_TRACE_SPAN("pdr", "lift_bad");
  if (!options_.ternary_lifting) return;
  if (ternary_ == nullptr) ternary_ = std::make_unique<TernarySim>(ts_);
  lifted_bits_ += lift_obligation(*ternary_, ts_, o, nullptr, property_,
                                  &lifted_input_bits_);
}

void QueryContext::lift_pred(Obligation& o, const Cube& successor) {
  GENFV_TRACE_SPAN("pdr", "lift_pred");
  if (!options_.ternary_lifting) return;
  if (ternary_ == nullptr) ternary_ = std::make_unique<TernarySim>(ts_);
  lifted_bits_ += lift_obligation(*ternary_, ts_, o, &successor, nullptr,
                                  &lifted_input_bits_);
}

sat::LBool QueryContext::intersects_init(const Cube& cube) {
  std::vector<sat::Lit> assumptions;
  assumptions.reserve(cube.size());
  for (const StateLit& l : cube) {
    const bitblast::Bits& bits = init_unr_->bits_at(ts_.states()[l.state].var, 0);
    assumptions.push_back(bits[l.bit] ^ l.negated);
  }
  return init_solver().solve(assumptions);
}

bool QueryContext::may_intersect_init(const Cube& cube) {
  return intersects_init(cube) != sat::LBool::False;
}

sat::LBool QueryContext::relative_query(const Cube& cube, std::size_t level,
                                        bool assume_not_cube,
                                        std::vector<sat::Lit>* core_out) {
  sync();
  GENFV_ASSERT(level >= 1, "relative queries start at level 1");
  std::vector<sat::Lit> assumptions = this->assumptions(level - 1);
  sat::Lit gate = sat::kUndefLit;
  if (assume_not_cube) {
    gate = new_gate();
    std::vector<sat::Lit> clause{~gate};
    for (const StateLit& l : cube) clause.push_back(~cube_lit(0, l));
    solver().add_clause(std::move(clause));
    assumptions.push_back(gate);
  }
  for (const StateLit& l : cube) assumptions.push_back(cube_lit(1, l));
  const sat::LBool answer = solve_frames(std::move(assumptions), core_out);
  if (assume_not_cube) retire_gate(gate);
  return answer;
}

sat::Lit QueryContext::new_gate() {
  // Gates are assumed, retired and re-referenced across solves: freeze them
  // so variable elimination never touches them.
  const sat::Var v = solver().new_var();
  solver().freeze(v);
  return sat::mk_lit(v);
}

void QueryContext::retire_gate(sat::Lit gate) {
  solver().add_clause(~gate);
  ++retired_gates_since_rebuild_;
  ++retired_gates_total_;
}

}  // namespace genfv::mc::pdr
