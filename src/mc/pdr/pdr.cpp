#include "mc/pdr/pdr.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "mc/pdr/frames.hpp"
#include "mc/pdr/obligation.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace genfv::mc::pdr {

namespace {

/// True iff an Input leaf is reachable from `root`. PDR treats the initial
/// states as a pure state predicate; input-dependent initial values would
/// make "is this cube initial" ill-defined.
bool references_input(ir::NodeRef root) {
  std::vector<ir::NodeRef> stack{root};
  std::unordered_set<ir::NodeRef> seen;
  while (!stack.empty()) {
    const ir::NodeRef n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (n->op() == ir::Op::Input) return true;
    for (const ir::NodeRef c : n->children()) stack.push_back(c);
  }
  return false;
}

/// All mutable state of one prove_all() run.
struct PdrRun {
  const ir::TransitionSystem& ts;
  const PdrOptions& options;

  sat::Solver solver;       ///< transition solver: frame 0 -> frame 1
  sat::Solver init_solver;  ///< initiation solver: frame 0 under init
  Unroller unr;
  Unroller init_unr;
  sat::Lit init_gate;  ///< activates the init-value equalities in `solver`
  FrameTrace frames;
  ObligationQueue queue;
  sat::Lit prop0, init_prop;
  /// F_∞: clauses certified invariant by the post-propagation
  /// mutual-induction fixpoint. Asserted ungated at both frames of `solver`
  /// (so every frame query is strengthened) and published to the exchange
  /// mailbox the moment they arrive here.
  std::vector<Cube> inf;

  PdrRun(const ir::TransitionSystem& ts_in, const PdrOptions& options_in, ir::NodeRef prop)
      : ts(ts_in),
        options(options_in),
        unr(ts_in, solver),
        init_unr(ts_in, init_solver),
        init_gate(sat::mk_lit(solver.new_var())),
        frames(solver, init_gate) {
    solver.set_conflict_budget(options.conflict_budget);
    init_solver.set_conflict_budget(options.conflict_budget);
    solver.set_stop_flag(options.stop.get());
    init_solver.set_stop_flag(options.stop.get());
    unr.extend_to(1);
    init_unr.assert_init();

    // Init-value equalities, gated behind the level-0 activation literal so
    // the same solver answers both init-relative and frame-relative queries.
    for (const auto& s : ts.states()) {
      if (s.init == nullptr) continue;
      const bitblast::Bits state_bits = unr.bits_at(s.var, 0);
      const bitblast::Bits init_bits = unr.bits_at(s.init, 0);
      for (std::size_t b = 0; b < state_bits.size(); ++b) {
        solver.add_clause(~init_gate, state_bits[b], ~init_bits[b]);
        solver.add_clause(~init_gate, ~state_bits[b], init_bits[b]);
      }
    }

    // Lemma seeding: proven invariants hold everywhere, i.e. they are
    // clauses of F_∞ and strengthen every frame of every query.
    for (const ir::NodeRef lemma : options.lemmas) {
      unr.assert_at(lemma, 0);
      unr.assert_at(lemma, 1);
      init_unr.assert_at(lemma, 0);
    }

    prop0 = unr.lit_at(prop, 0);
    init_prop = init_unr.lit_at(prop, 0);
    frames.push_level();  // level 1: the first frontier
  }

  /// True once cooperative cancellation has been requested.
  bool stopped() const noexcept {
    return options.stop != nullptr && options.stop->load(std::memory_order_relaxed);
  }

  // --- literal plumbing ------------------------------------------------------

  /// Solver literal that is true iff cube literal `l` holds at `frame`.
  sat::Lit cube_lit(std::size_t frame, const StateLit& l) {
    const bitblast::Bits& bits = unr.bits_at(ts.states()[l.state].var, frame);
    return bits[l.bit] ^ l.negated;
  }

  /// Fill `out` with the full frame-0 state cube and the concrete
  /// state/input values of the current model of `solver`.
  void extract_state(Obligation& out) {
    out.cube.clear();
    out.state_values.clear();
    out.input_values.clear();
    for (std::size_t si = 0; si < ts.states().size(); ++si) {
      const auto& s = ts.states()[si];
      const bitblast::Bits bits = unr.bits_at(s.var, 0);
      // `value` packs the state into the same uint64 currency sim::Trace
      // uses. NodeManager::mk_state caps widths at 64 (and prove_all
      // re-checks), so the shift below can never reach UB territory.
      GENFV_ASSERT(bits.size() <= 64, "state wider than the 64-bit value path");
      std::uint64_t value = 0;
      for (std::size_t b = 0; b < bits.size(); ++b) {
        const bool one = solver.model_value(bits[b]) == sat::LBool::True;
        if (one) value |= 1ULL << b;
        out.cube.push_back({static_cast<std::uint32_t>(si), static_cast<std::uint32_t>(b),
                            !one});
      }
      out.state_values.push_back(value);
    }
    for (const ir::NodeRef in : ts.inputs()) {
      out.input_values.push_back(unr.model_value(in, 0));
    }
  }

  // --- queries ---------------------------------------------------------------

  /// SAT(init ∧ cube)? — does the cube contain an initial state.
  sat::LBool intersects_init(const Cube& cube) {
    std::vector<sat::Lit> assumptions;
    assumptions.reserve(cube.size());
    for (const StateLit& l : cube) {
      const bitblast::Bits& bits = init_unr.bits_at(ts.states()[l.state].var, 0);
      assumptions.push_back(bits[l.bit] ^ l.negated);
    }
    return init_solver.solve(assumptions);
  }

  /// Undef counts as "may intersect" — conservative for generalization,
  /// which must never block a potentially-initial state.
  bool may_intersect_init(const Cube& cube) {
    return intersects_init(cube) != sat::LBool::False;
  }

  /// SAT(F_{level-1} ∧ [¬cube] ∧ T ∧ cube')? On UNSAT, `core_out` (if given)
  /// receives the failed assumptions; intersect with the primed cube
  /// literals to find which were needed.
  sat::LBool relative_query(const Cube& cube, std::size_t level, bool assume_not_cube,
                            std::vector<sat::Lit>* core_out) {
    GENFV_ASSERT(level >= 1, "relative queries start at level 1");
    std::vector<sat::Lit> assumptions = frames.assumptions(level - 1);
    sat::Lit gate = sat::kUndefLit;
    if (assume_not_cube) {
      gate = sat::mk_lit(solver.new_var());
      std::vector<sat::Lit> clause{~gate};
      for (const StateLit& l : cube) clause.push_back(~cube_lit(0, l));
      solver.add_clause(std::move(clause));
      assumptions.push_back(gate);
    }
    for (const StateLit& l : cube) assumptions.push_back(cube_lit(1, l));
    const sat::LBool answer = solver.solve(assumptions);
    if (answer == sat::LBool::False && core_out != nullptr) {
      *core_out = solver.failed_assumptions();
    }
    if (assume_not_cube) solver.add_clause(~gate);  // retire the query gate
    return answer;
  }

  /// Record `cube` as blocked at `level`: bookkeeping + the activation-gated
  /// solver clause.
  void block(const Cube& cube, std::size_t level) {
    std::vector<sat::Lit> clause{~frames.activation(level)};
    for (const StateLit& l : cube) clause.push_back(~cube_lit(0, l));
    solver.add_clause(std::move(clause));
    frames.add_blocked(cube, level);
    if (options.exchange != nullptr && options.publish_frame_clauses) {
      options.exchange->publish(options.exchange_slot, to_exchanged(cube, level));
    }
  }

  // --- F_∞ / lemma exchange --------------------------------------------------

  static ExchangedClause to_exchanged(const Cube& cube, std::size_t level) {
    ExchangedClause out;
    out.level = level;
    out.lits.reserve(cube.size());
    for (const StateLit& l : cube) out.lits.push_back({l.state, l.bit, l.negated});
    return out;
  }

  /// Graduate `cube` to F_∞: assert its clause ungated at both solver frames
  /// (strengthening every future query on every level) and publish it.
  void add_to_infinity(const Cube& cube) {
    for (const std::size_t frame : {std::size_t{0}, std::size_t{1}}) {
      std::vector<sat::Lit> clause;
      clause.reserve(cube.size());
      for (const StateLit& l : cube) clause.push_back(~cube_lit(frame, l));
      solver.add_clause(std::move(clause));
    }
    inf.push_back(cube);
    if (options.exchange != nullptr) {
      options.exchange->publish(options.exchange_slot,
                                to_exchanged(cube, kExchangeProvenLevel));
    }
  }

  /// Push frontier clauses to F_∞ when a subset is mutually inductive: the
  /// greatest fixpoint of "drop any clause with a counterexample-to-
  /// consecution relative to the remaining set (∧ F_∞ ∧ lemmas)". Survivors
  /// satisfy initiation (blocked cubes never intersect init) and consecution
  /// as a set, so each is an invariant — provable long before the frame
  /// trace itself converges, which is what makes live exchange useful
  /// mid-race. Returns false when the conflict budget or stop flag
  /// interrupted (callers give up on the whole run, as elsewhere).
  bool push_to_infinity() {
    std::vector<Cube> cand = frames.cubes_at(frames.frontier());
    while (!cand.empty()) {
      if (stopped()) return false;
      // Assert the candidate clauses at frame 0 behind a per-pass gate.
      const sat::Lit gate = sat::mk_lit(solver.new_var());
      for (const Cube& c : cand) {
        std::vector<sat::Lit> clause{~gate};
        for (const StateLit& l : c) clause.push_back(~cube_lit(0, l));
        solver.add_clause(std::move(clause));
      }
      std::ptrdiff_t failed = -1;
      for (std::size_t i = 0; i < cand.size(); ++i) {
        std::vector<sat::Lit> assumptions{gate};
        for (const StateLit& l : cand[i]) assumptions.push_back(cube_lit(1, l));
        const sat::LBool answer = solver.solve(assumptions);
        if (answer == sat::LBool::Undef) {
          solver.add_clause(~gate);
          return false;
        }
        if (answer == sat::LBool::True) {
          failed = static_cast<std::ptrdiff_t>(i);
          break;
        }
      }
      solver.add_clause(~gate);  // retire this pass's gate
      if (failed < 0) break;     // fixpoint: every candidate is consecutive
      cand.erase(cand.begin() + failed);
    }
    for (const Cube& c : cand) {
      frames.erase_blocked(c, frames.frontier());
      add_to_infinity(c);
    }
    return true;
  }

  // --- generalization --------------------------------------------------------

  /// Shrink a relatively-inductive cube: unsat-core filter, initiation
  /// repair, then (optionally) greedy literal dropping.
  Cube generalize(const Cube& cube, std::size_t level, const std::vector<sat::Lit>& core) {
    std::unordered_set<std::int32_t> needed;
    for (const sat::Lit p : core) needed.insert(p.code);
    Cube g;
    for (const StateLit& l : cube) {
      if (needed.count(cube_lit(1, l).code) != 0) g.push_back(l);
    }
    if (g.empty()) g = cube;
    repair_initiation(g, cube);

    if (options.generalize_drop) {
      for (std::size_t i = 0; i < g.size() && g.size() > 1;) {
        Cube cand = g;
        cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
        if (!may_intersect_init(cand) &&
            relative_query(cand, level, /*assume_not_cube=*/true, nullptr) ==
                sat::LBool::False) {
          g = std::move(cand);
        } else {
          ++i;
        }
      }
    }
    return g;
  }

  /// Re-add literals of `full` until `g` no longer intersects the initial
  /// states. `full` itself is known disjoint from init, so this terminates.
  void repair_initiation(Cube& g, const Cube& full) {
    if (!may_intersect_init(g)) return;
    for (const StateLit& l : full) {
      if (std::binary_search(g.begin(), g.end(), l)) continue;
      g.insert(std::lower_bound(g.begin(), g.end(), l), l);
      if (!may_intersect_init(g)) return;
    }
  }
};

enum class BlockOutcome { Blocked, Counterexample, Budget };

}  // namespace

std::string PdrResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " (frames=" << depth << ", " << stats.sat_calls
      << " SAT calls, " << stats.conflicts << " conflicts, "
      << util::format_duration(stats.seconds) << ")";
  if (!invariant.empty()) out << " [" << invariant.size() << "-clause invariant]";
  return out.str();
}

PdrEngine::PdrEngine(const ir::TransitionSystem& ts, PdrOptions options)
    : ts_(ts), options_(std::move(options)) {}

PdrResult PdrEngine::prove(ir::NodeRef property) { return prove_all({property}); }

PdrResult PdrEngine::prove_all(const std::vector<ir::NodeRef>& properties) {
  util::Stopwatch watch;
  PdrResult result;

  const ir::NodeRef prop = conjoin_properties(ts_, properties);

  for (const auto& s : ts_.states()) {
    if (s.init != nullptr && references_input(s.init)) {
      throw UsageError("pdr requires input-independent initial values (state '" +
                       s.var->name() + "')");
    }
    if (s.var->width() > 64) {
      // Unreachable through NodeManager (which enforces the 1..64 width
      // discipline), but cheap insurance for any future wide-vector IR:
      // extract_state packs each state into a uint64_t.
      throw UsageError("pdr cannot pack state '" + s.var->name() + "' (" +
                       std::to_string(s.var->width()) + " bits) into 64-bit values");
    }
  }

  PdrRun run(ts_, options_, prop);

  auto finish = [&](Verdict verdict, std::size_t depth) {
    result.verdict = verdict;
    result.depth = depth;
    result.stats.absorb(run.solver.stats());
    result.stats.absorb(run.init_solver.stats());
    result.stats.seconds = watch.seconds();
    return result;
  };

  // 0-step: a property violation inside the initial states themselves.
  {
    const sat::LBool answer = run.init_solver.solve({~run.init_prop});
    if (answer == sat::LBool::True) {
      result.cex = run.init_unr.extract_trace(1);
      return finish(Verdict::Falsified, 0);
    }
    if (answer == sat::LBool::Undef) return finish(Verdict::Unknown, 0);
  }

  // Reconstruct a trace from a level-0 obligation chain: the chain's states
  // run from an initial state to the property violation, and each stored
  // input vector drives its state into the next one.
  auto build_cex = [&](std::size_t index) {
    sim::Trace trace(&ts_);
    std::vector<std::size_t> chain;
    for (std::ptrdiff_t at = static_cast<std::ptrdiff_t>(index); at >= 0;
         at = run.queue.at(static_cast<std::size_t>(at)).parent) {
      chain.push_back(static_cast<std::size_t>(at));
    }
    for (const std::size_t at : chain) {
      const Obligation& o = run.queue.at(at);
      sim::Assignment env;
      for (std::size_t si = 0; si < ts_.states().size(); ++si) {
        env[ts_.states()[si].var] = o.state_values[si];
      }
      for (std::size_t ii = 0; ii < ts_.inputs().size(); ++ii) {
        env[ts_.inputs()[ii]] = o.input_values[ii];
      }
      trace.append(std::move(env));
    }
    return trace;
  };

  // Block every obligation in the queue (backwards reachability from the
  // frontier's bad states), or find a counterexample chain.
  auto handle_obligations = [&](std::size_t* cex_index) -> BlockOutcome {
    while (!run.queue.empty()) {
      if (run.queue.created() > options_.max_obligations) return BlockOutcome::Budget;
      if (run.stopped()) return BlockOutcome::Budget;
      const std::size_t index = run.queue.pop();
      const Cube cube = run.queue.at(index).cube;
      const std::size_t level = run.queue.at(index).level;
      GENFV_ASSERT(level >= 1, "level-0 obligations are counterexamples at creation");
      if (run.frames.is_blocked(cube, level)) continue;

      std::vector<sat::Lit> core;
      const sat::LBool answer =
          run.relative_query(cube, level, /*assume_not_cube=*/true, &core);
      if (answer == sat::LBool::Undef) return BlockOutcome::Budget;

      if (answer == sat::LBool::False) {
        // Unreachable from F_{level-1}: learn a generalized blocking clause
        // and push it as far forward as it stays relatively inductive.
        Cube g = run.generalize(cube, level, core);
        std::size_t at = level;
        while (at < run.frames.frontier() &&
               run.relative_query(g, at + 1, /*assume_not_cube=*/true, nullptr) ==
                   sat::LBool::False) {
          ++at;
        }
        run.block(g, at);
        if (at < run.frames.frontier()) {
          run.queue.at(index).level = at + 1;
          run.queue.push(index);
        }
        continue;
      }

      // A predecessor inside F_{level-1} extends the chain towards init.
      Obligation pred;
      run.extract_state(pred);
      pred.level = level - 1;
      pred.parent = static_cast<std::ptrdiff_t>(index);
      const sat::LBool initial = run.intersects_init(pred.cube);
      if (initial == sat::LBool::Undef) return BlockOutcome::Budget;
      if (initial == sat::LBool::True) {
        // The predecessor is an initial state: a real counterexample.
        *cex_index = run.queue.add(std::move(pred));
        return BlockOutcome::Counterexample;
      }
      const std::size_t pred_index = run.queue.add(std::move(pred));
      run.queue.push(pred_index);
      run.queue.push(index);  // retry once the predecessor is blocked
    }
    return BlockOutcome::Blocked;
  };

  while (true) {
    const std::size_t frontier = run.frames.frontier();
    if (run.stopped()) return finish(Verdict::Unknown, frontier);

    // Clean the frontier: block every state that violates the property.
    while (true) {
      if (run.stopped()) return finish(Verdict::Unknown, frontier);
      std::vector<sat::Lit> assumptions = run.frames.assumptions(frontier);
      assumptions.push_back(~run.prop0);
      const sat::LBool answer = run.solver.solve(assumptions);
      if (answer == sat::LBool::Undef) return finish(Verdict::Unknown, frontier);
      if (answer == sat::LBool::False) break;

      Obligation bad;
      run.extract_state(bad);
      bad.level = frontier;
      bad.parent = -1;
      const sat::LBool initial = run.intersects_init(bad.cube);
      if (initial == sat::LBool::Undef) return finish(Verdict::Unknown, frontier);
      if (initial == sat::LBool::True) {
        // Defensive: with input-independent init values the 0-step check
        // already excludes initial bad states, so this cannot trigger; if
        // it ever does, the state itself is a 1-frame counterexample.
        const std::size_t index = run.queue.add(std::move(bad));
        result.cex = build_cex(index);
        return finish(Verdict::Falsified, result.cex->size() - 1);
      }
      const std::size_t index = run.queue.add(std::move(bad));
      run.queue.push(index);

      std::size_t cex_index = 0;
      switch (handle_obligations(&cex_index)) {
        case BlockOutcome::Blocked: break;
        case BlockOutcome::Counterexample:
          result.cex = build_cex(cex_index);
          return finish(Verdict::Falsified, result.cex->size() - 1);
        case BlockOutcome::Budget: return finish(Verdict::Unknown, frontier);
      }
    }

    // Propagation: push clauses that remain inductive at their level.
    for (std::size_t i = 1; i < frontier; ++i) {
      if (run.stopped()) return finish(Verdict::Unknown, frontier);
      const std::vector<Cube> snapshot = run.frames.cubes_at(i);
      for (const Cube& cube : snapshot) {
        if (run.frames.is_blocked(cube, i + 1)) continue;
        const sat::LBool answer =
            run.relative_query(cube, i + 1, /*assume_not_cube=*/false, nullptr);
        if (answer == sat::LBool::Undef) return finish(Verdict::Unknown, frontier);
        if (answer == sat::LBool::False) run.block(cube, i + 1);
      }
    }

    // Clauses that propagated all the way to the frontier are candidates for
    // F_∞: certify the mutually-inductive subset invariant and publish it to
    // the exchange mailbox — this is where racing members learn from PDR
    // long before this run converges.
    if (!run.push_to_infinity()) return finish(Verdict::Unknown, frontier);

    // Convergence: an empty level means two adjacent frames agree, and the
    // agreeing frame is an inductive invariant implying the property. F_∞
    // clauses are part of every frame, so they belong to the certificate.
    for (std::size_t i = 1; i < frontier; ++i) {
      if (!run.frames.cubes_at(i).empty()) continue;
      for (const Cube& cube : run.inf) {
        result.invariant.push_back(clause_expr(ts_, cube));
      }
      for (std::size_t j = i + 1; j <= frontier; ++j) {
        for (const Cube& cube : run.frames.cubes_at(j)) {
          result.invariant.push_back(clause_expr(ts_, cube));
        }
      }
      return finish(Verdict::Proven, frontier);
    }

    if (frontier >= options_.max_frames) return finish(Verdict::Unknown, frontier);
    run.frames.push_level();
  }
}

}  // namespace genfv::mc::pdr
