#include "mc/pdr/pdr.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "ir/clone.hpp"
#include "mc/pdr/blocking.hpp"
#include "mc/pdr/context.hpp"
#include "mc/pdr/frame_db.hpp"
#include "mc/pdr/obligation.hpp"
#include "mc/pdr/propagate.hpp"
#include "sat/solver_pool.hpp"
#include "sim/interpreter.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"
#include "util/strings.hpp"

namespace genfv::mc::pdr {

namespace {

/// True iff an Input leaf is reachable from `root`. PDR treats the initial
/// states as a pure state predicate; input-dependent initial values would
/// make "is this cube initial" ill-defined.
bool references_input(ir::NodeRef root) {
  std::vector<ir::NodeRef> stack{root};
  std::unordered_set<ir::NodeRef> seen;
  while (!stack.empty()) {
    const ir::NodeRef n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (n->op() == ir::Op::Input) return true;
    for (const ir::NodeRef c : n->children()) stack.push_back(c);
  }
  return false;
}

/// All mutable state of one prove_all() run: the shared solver-neutral
/// structures (frame database, obligation arena, solver pool) plus one query
/// context per worker. Context 0 always runs over the caller's own system
/// on the calling thread; contexts 1..n-1 each own a private `ir::SystemClone`
/// so no NodeManager ever crosses a thread — the portfolio's clone
/// discipline applied inside one engine.
struct PdrRun {
  FrameDb db;
  ObligationQueue queue;
  sat::SolverPool pool;
  std::vector<std::unique_ptr<ir::SystemClone>> clones;
  std::vector<std::unique_ptr<QueryContext>> contexts;
  /// Candidate intake from the exchange mailbox (seed_candidates only):
  /// caller-owned cursor plus the standard consumer-side dedupe.
  std::size_t mailbox_cursor = 0;
  AbsorbFilter absorb_filter;

  PdrRun(const ir::TransitionSystem& ts, const PdrOptions& options, ir::NodeRef prop)
      : pool(sat::SolverConfig{options.conflict_budget, options.stop.get(),
                               options.sat_inprocess, options.sat_backend,
                               options.drat_path}) {
    db.set_candidate_strikes(options.candidate_strikes);
    const std::size_t n = std::max<std::size_t>(1, options.workers);
    contexts.reserve(n);
    contexts.push_back(std::make_unique<QueryContext>(ts, prop, options.lemmas,
                                                      options, pool, db));
    for (std::size_t i = 1; i < n; ++i) {
      clones.push_back(std::make_unique<ir::SystemClone>(ts));
      ir::SystemClone& clone = *clones.back();
      std::vector<ir::NodeRef> lemmas;
      lemmas.reserve(options.lemmas.size());
      for (const ir::NodeRef l : options.lemmas) lemmas.push_back(clone.to_clone(l));
      contexts.push_back(std::make_unique<QueryContext>(
          clone.system(), clone.to_clone(prop), lemmas, options, pool, db));
    }
    db.push_level();  // level 1: the first frontier
  }

  QueryContext& main() { return *contexts.front(); }

  std::vector<QueryContext*> context_ptrs() {
    std::vector<QueryContext*> out;
    out.reserve(contexts.size());
    for (const auto& ctx : contexts) out.push_back(ctx.get());
    return out;
  }
};

/// Bounds-check a mailbox clause against `ts` and return its canonical cube;
/// nullopt when it does not fit (foreign-system clause) or is a tautology.
std::optional<Cube> mailbox_cube(const ExchangedClause& clause,
                                 const ir::TransitionSystem& ts) {
  Cube cube;
  cube.reserve(clause.lits.size());
  for (const ExchangedLit& lit : clause.lits) {
    if (lit.state >= ts.states().size()) return std::nullopt;
    if (lit.bit >= ts.states()[lit.state].var->width()) return std::nullopt;
    cube.push_back({lit.state, lit.bit, lit.negated});
  }
  if (!canonicalize_clause_cube(cube)) return std::nullopt;
  return cube;
}

}  // namespace

std::string PdrResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " (frames=" << depth << ", " << stats.sat_calls
      << " SAT calls, " << stats.conflicts << " conflicts, "
      << util::format_duration(stats.seconds) << ")";
  if (!invariant.empty()) out << " [" << invariant.size() << "-clause invariant]";
  return out.str();
}

PdrEngine::PdrEngine(const ir::TransitionSystem& ts, PdrOptions options)
    : ts_(ts), options_(std::move(options)) {}

PdrResult PdrEngine::prove(ir::NodeRef property) { return prove_all({property}); }

PdrResult PdrEngine::prove_all(const std::vector<ir::NodeRef>& properties) {
  util::Stopwatch watch;
  PdrResult result;

  const ir::NodeRef prop = conjoin_properties(ts_, properties);

  for (const auto& s : ts_.states()) {
    if (s.init != nullptr && references_input(s.init)) {
      throw UsageError("pdr requires input-independent initial values (state '" +
                       s.var->name() + "')");
    }
    if (s.var->width() > 64) {
      // Unreachable through NodeManager (which enforces the 1..64 width
      // discipline), but cheap insurance for any future wide-vector IR:
      // extract_state packs each state into a uint64_t.
      throw UsageError("pdr cannot pack state '" + s.var->name() + "' (" +
                       std::to_string(s.var->width()) + " bits) into 64-bit values");
    }
  }

  PdrRun run(ts_, options_, prop);
  QueryContext& main = run.main();
  const std::vector<QueryContext*> contexts = run.context_ptrs();

  auto finish = [&](Verdict verdict, std::size_t depth) {
    result.verdict = verdict;
    result.depth = depth;
    result.stats.absorb(run.pool.total_stats());
    for (const QueryContext* ctx : contexts) {
      result.stats.retired_gates += ctx->retired_gates();
      result.stats.lifted_bits += ctx->lifted_bits();
      result.stats.lifted_input_bits += ctx->lifted_input_bits();
    }
    result.stats.solver_rebuilds += run.pool.rebuilds();
    result.stats.candidates_seeded += run.db.may_seeded();
    result.stats.candidates_graduated += run.db.may_graduated();
    result.stats.candidates_retracted += run.db.may_retracted();
    result.stats.seconds = watch.seconds();
    return result;
  };

  // Candidate-lemma seeding: admit clause-shaped unproven candidates as
  // "may" clauses (docs/lemmas.md). Non-clause candidates are skipped — the
  // frame database trades exclusively in state-bit clauses.
  if (options_.seed_candidates) {
    for (const ir::NodeRef cand : options_.candidate_lemmas) {
      if (const auto cube = cube_of_clause(ts_, cand)) run.db.seed_may(*cube);
    }
  }

  // Mailbox intake (seed_candidates only): proven clauses are invariants of
  // this very system and join F_∞ directly — each publisher's F_∞ set is
  // mutually inductive relative to the shared lemmas, so the exported
  // certificate stays inductive (docs/lemmas.md). Level-tagged clauses are
  // merely bounded facts here and enter as candidates instead.
  auto poll_mailbox = [&] {
    if (!options_.seed_candidates || options_.exchange == nullptr) return;
    const auto fetched =
        options_.exchange->fetch(options_.exchange_slot, &run.mailbox_cursor);
    std::size_t absorbed = 0;
    for (const ExchangedClause& clause : fetched) {
      if (!run.absorb_filter.admit(clause)) continue;
      const auto cube = mailbox_cube(clause, ts_);
      if (!cube.has_value()) continue;
      if (clause.proven()) {
        run.db.add_infinity(*cube);
        ++absorbed;
      } else if (run.db.seed_may(*cube).has_value()) {
        ++absorbed;
      }
    }
    if (absorbed != 0) {
      options_.exchange->note_absorbed(options_.exchange_slot, absorbed);
    }
  };

  // 0-step: a property violation inside the initial states themselves.
  {
    const sat::LBool answer = main.init_solver().solve({~main.init_prop_lit()});
    if (answer == sat::LBool::True) {
      result.cex = main.init_unroller().extract_trace(1);
      return finish(Verdict::Falsified, 0);
    }
    if (answer == sat::LBool::Undef) return finish(Verdict::Unknown, 0);
  }

  // Reconstruct a trace from a level-0 obligation chain: the chain's states
  // run from an initial state to the property violation, and each stored
  // input vector drives its state into the next one. Obligations carry only
  // manager-neutral values, so this works no matter which worker's context
  // discovered each link.
  //
  // With ternary lifting the stored per-link state values are witnesses of
  // *cubes*, not one execution: the init-end link holds a genuine initial
  // state inside its lifted cube (extract_init_witness), but the later
  // links' concrete states need not be its successors. Lifting guarantees
  // every state of a link's cube steps — under the stored inputs — into the
  // next link's cube (and the last cube forces the violation), so the real
  // trace is recovered by re-simulating forward from the initial witness
  // through the stored input vectors.
  auto build_cex = [&](std::size_t index) {
    sim::Trace trace(&ts_);
    std::vector<std::size_t> chain;
    for (std::ptrdiff_t at = static_cast<std::ptrdiff_t>(index); at >= 0;
         at = run.queue.at(static_cast<std::size_t>(at)).parent) {
      chain.push_back(static_cast<std::size_t>(at));
    }
    if (!options_.ternary_lifting) {
      for (const std::size_t at : chain) {
        const Obligation& o = run.queue.at(at);
        sim::Assignment env;
        for (std::size_t si = 0; si < ts_.states().size(); ++si) {
          env[ts_.states()[si].var] = o.state_values[si];
        }
        for (std::size_t ii = 0; ii < ts_.inputs().size(); ++ii) {
          env[ts_.inputs()[ii]] = o.input_values[ii];
        }
        trace.append(std::move(env));
      }
      return trace;
    }
    sim::Assignment states;
    for (std::size_t si = 0; si < ts_.states().size(); ++si) {
      states[ts_.states()[si].var] = run.queue.at(chain.front()).state_values[si];
    }
    for (const std::size_t at : chain) {
      const Obligation& o = run.queue.at(at);
      sim::Assignment env = states;
      for (std::size_t ii = 0; ii < ts_.inputs().size(); ++ii) {
        env[ts_.inputs()[ii]] = o.input_values[ii];
      }
      states = sim::step(ts_, env);
      trace.append(std::move(env));
    }
    return trace;
  };

  static util::Counter& may_proof_ns = util::metrics().counter("pdr.may_proof_ns");
  static util::Counter& blocking_ns = util::metrics().counter("pdr.blocking_ns");
  static util::Counter& propagate_ns = util::metrics().counter("pdr.propagate_ns");
  static util::Counter& push_infinity_ns = util::metrics().counter("pdr.push_infinity_ns");
  static util::Gauge& frontier_gauge = util::metrics().gauge("pdr.frontier");

  GENFV_TRACE_SPAN("pdr", "prove_all");
  while (true) {
    const std::size_t frontier = run.db.frontier();
    if (util::telemetry_on()) frontier_gauge.set(static_cast<std::int64_t>(frontier));
    if (main.stopped()) return finish(Verdict::Unknown, frontier);

    // Absorb new candidate material before the SAT-heavy phases: proven
    // clauses strengthen every query unconditionally, fresh candidates ride
    // along as may clauses until the may-proof pass decides them.
    poll_mailbox();

    // May-proof pass *before* blocking: candidates that are relatively
    // inductive at the current frontier graduate into real frame clauses
    // right away — before any frontier query can implicate a still-unproven
    // candidate in a spurious "blocked" answer and retract it. A true
    // candidate thus gets its graduation chance first; only speculative ones
    // survive into the blocking phase as may assumptions.
    {
      GENFV_TRACE_SPAN("pdr", "may_proof");
      util::ScopedTimerNs timer(may_proof_ns);
      if (!may_proof_pass(main, run.db, options_)) {
        return finish(Verdict::Unknown, frontier);
      }
    }

    // Strengthen the frontier: block every state that violates the property
    // (and every predecessor chain those states drag in) — sequentially on
    // context 0 for workers == 1, sharded across the pool otherwise.
    std::size_t cex_index = 0;
    {
      GENFV_TRACE_SPAN("pdr", "blocking");
      util::ScopedTimerNs timer(blocking_ns);
      switch (strengthen_frontier(contexts, run.db, run.queue, options_, frontier,
                                  &cex_index)) {
        case BlockOutcome::Blocked: break;
        case BlockOutcome::Counterexample:
          result.cex = build_cex(cex_index);
          return finish(Verdict::Falsified, result.cex->size() - 1);
        case BlockOutcome::Budget: return finish(Verdict::Unknown, frontier);
      }
    }

    // Propagation: push clauses that remain inductive at their level.
    {
      GENFV_TRACE_SPAN("pdr", "propagate");
      util::ScopedTimerNs timer(propagate_ns);
      const PropagateOutcome propagated =
          contexts.size() == 1 ? propagate_all(main, run.db, options_)
                               : propagate_sharded(contexts, run.db, options_);
      if (propagated == PropagateOutcome::Budget) {
        return finish(Verdict::Unknown, frontier);
      }
    }

    // Clauses that propagated all the way to the frontier are candidates for
    // F_∞: certify the mutually-inductive subset invariant and publish it to
    // the exchange mailbox — this is where racing members learn from PDR
    // long before this run converges.
    {
      GENFV_TRACE_SPAN("pdr", "push_infinity");
      util::ScopedTimerNs timer(push_infinity_ns);
      if (!push_to_infinity(main, run.db, options_)) {
        return finish(Verdict::Unknown, frontier);
      }
    }

    // Convergence: an empty level means two adjacent frames agree, and the
    // agreeing frame is an inductive invariant implying the property. F_∞
    // clauses are part of every frame, so they belong to the certificate.
    for (std::size_t i = 1; i < frontier; ++i) {
      if (!run.db.cubes_at(i).empty()) continue;
      for (const Cube& cube : run.db.infinity()) {
        result.invariant.push_back(clause_expr(ts_, cube));
      }
      for (std::size_t j = i + 1; j <= frontier; ++j) {
        for (const Cube& cube : run.db.cubes_at(j)) {
          result.invariant.push_back(clause_expr(ts_, cube));
        }
      }
      return finish(Verdict::Proven, frontier);
    }

    if (frontier >= options_.max_frames) return finish(Verdict::Unknown, frontier);
    GENFV_TRACE_INSTANT("pdr", "push_level");
    run.db.push_level();
  }
}

}  // namespace genfv::mc::pdr
