#include "mc/pdr/blocking.hpp"

#include <optional>
#include <thread>

#include "mc/pdr/generalize.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"
#include "util/thread_safety.hpp"

namespace genfv::mc::pdr {

ExchangedClause to_exchanged(const Cube& cube, std::size_t level) {
  ExchangedClause out;
  out.level = level;
  out.lits.reserve(cube.size());
  for (const StateLit& l : cube) out.lits.push_back({l.state, l.bit, l.negated});
  return out;
}

void record_blocked(FrameDb& db, const PdrOptions& options, const Cube& cube,
                    std::size_t level) {
  db.add_blocked(cube, level);
  if (options.exchange != nullptr && options.publish_frame_clauses) {
    options.exchange->publish(options.exchange_slot, to_exchanged(cube, level));
  }
}

namespace {

/// Outcome of the solver-side work for one popped obligation — everything
/// that must be applied back to the (possibly shared) queue afterwards. The
/// flags are mutually exclusive except that none may be set (the cube was
/// already blocked: drop the obligation, its parent retry is queued
/// separately).
struct BlockStep {
  bool budget = false;        ///< conflict budget / stop flag fired mid-step
  bool requeue_self = false;  ///< re-schedule the obligation at retry_level
  std::size_t retry_level = 0;
  std::optional<Obligation> pred;  ///< predecessor extending the chain
  bool pred_is_cex = false;        ///< pred is an initial state: real CEX
  bool push_pred = false;          ///< schedule pred, then retry self
};

/// The SAT work for one obligation — the shared core of the sequential and
/// sharded drains; touches the database and the worker's context, never the
/// queue. Blocks `cube` at `level` with a generalized clause pushed as far
/// forward as it stays relatively inductive, or extracts the predecessor
/// that extends the chain towards init.
BlockStep block_one(QueryContext& ctx, FrameDb& db, const PdrOptions& options,
                    const Cube& cube, std::size_t level, std::size_t frontier,
                    std::size_t index) {
  GENFV_TRACE_SPAN("pdr", "block_one");
  BlockStep step;
  if (db.is_blocked(cube, level)) return step;

  std::vector<sat::Lit> core;
  const sat::LBool answer =
      ctx.relative_query(cube, level, /*assume_not_cube=*/true, &core);
  if (answer == sat::LBool::Undef) {
    step.budget = true;
    return step;
  }

  if (answer == sat::LBool::False) {
    // Unreachable from F_{level-1}: learn a generalized blocking clause and
    // push it as far forward as it stays relatively inductive.
    Cube g = generalize(ctx, cube, level, core, options);
    std::size_t at = level;
    while (at < frontier &&
           ctx.relative_query(g, at + 1, /*assume_not_cube=*/true, nullptr) ==
               sat::LBool::False) {
      ++at;
    }
    record_blocked(db, options, g, at);
    if (at < frontier) {
      step.requeue_self = true;
      step.retry_level = at + 1;
    }
    return step;
  }

  // A predecessor inside F_{level-1} extends the chain towards init.
  step.pred.emplace();
  ctx.extract_state(*step.pred);
  // Ternary lifting: shrink the predecessor cube to the bits that force the
  // transition into `cube` under the recorded inputs (no-op when off).
  ctx.lift_pred(*step.pred, cube);
  step.pred->level = level - 1;
  step.pred->parent = static_cast<std::ptrdiff_t>(index);
  const sat::LBool initial = ctx.intersects_init(step.pred->cube);
  if (initial == sat::LBool::Undef) {
    step.budget = true;
  } else if (initial == sat::LBool::True) {
    step.pred_is_cex = true;  // the (lifted) predecessor cube holds an initial state
    ctx.extract_init_witness(*step.pred);
  } else {
    step.push_pred = true;
  }
  return step;
}

}  // namespace

BlockOutcome handle_obligations(QueryContext& ctx, FrameDb& db, ObligationQueue& queue,
                                const PdrOptions& options, std::size_t* cex_index) {
  while (!queue.empty()) {
    if (queue.created() > options.max_obligations) return BlockOutcome::Budget;
    if (ctx.stopped()) return BlockOutcome::Budget;
    const std::size_t index = queue.pop();
    const Cube cube = queue.at(index).cube;
    const std::size_t level = queue.at(index).level;
    GENFV_ASSERT(level >= 1, "level-0 obligations are counterexamples at creation");

    BlockStep step = block_one(ctx, db, options, cube, level, db.frontier(), index);
    if (step.budget) return BlockOutcome::Budget;
    if (step.pred_is_cex) {
      *cex_index = queue.add(std::move(*step.pred));
      return BlockOutcome::Counterexample;
    }
    if (step.push_pred) {
      const std::size_t pred_index = queue.add(std::move(*step.pred));
      queue.push(pred_index);
      queue.push(index);  // retry once the predecessor is blocked
    }
    if (step.requeue_self) {
      queue.at(index).level = step.retry_level;
      queue.push(index);
    }
  }
  return BlockOutcome::Blocked;
}

namespace {

/// The sequential frontier phase — bit for bit the legacy engine: one bad
/// state at a time, each fully blocked (or refuted) before the next query.
BlockOutcome strengthen_sequential(QueryContext& ctx, FrameDb& db,
                                   ObligationQueue& queue, const PdrOptions& options,
                                   std::size_t frontier, std::size_t* cex_index) {
  while (true) {
    if (ctx.stopped()) return BlockOutcome::Budget;
    const sat::LBool answer = ctx.solve_frontier_bad(frontier);
    if (answer == sat::LBool::Undef) return BlockOutcome::Budget;
    if (answer == sat::LBool::False) return BlockOutcome::Blocked;

    Obligation bad;
    ctx.extract_state(bad);
    // Ternary lifting: keep only the bits that force the property violation
    // under the recorded inputs (no-op when off).
    ctx.lift_bad(bad);
    bad.level = frontier;
    bad.parent = -1;
    const sat::LBool initial = ctx.intersects_init(bad.cube);
    if (initial == sat::LBool::Undef) return BlockOutcome::Budget;
    if (initial == sat::LBool::True) {
      // Defensive: with input-independent init values the 0-step check
      // already excludes initial bad states (lifted or not — every state in
      // a lifted bad cube violates the property under these inputs), so this
      // cannot trigger; if it ever does, the state is a chain of one.
      ctx.extract_init_witness(bad);
      *cex_index = queue.add(std::move(bad));
      return BlockOutcome::Counterexample;
    }
    const std::size_t index = queue.add(std::move(bad));
    queue.push(index);

    const BlockOutcome outcome =
        handle_obligations(ctx, db, queue, options, cex_index);
    if (outcome != BlockOutcome::Blocked) return outcome;
  }
}

/// Cross-worker state of one sharded frontier phase. Everything here is
/// guarded by `mu`; the obligation queue shares the same lock (workers copy
/// what they need out of the arena before unlocking).
struct ShardState {
  enum class Phase { Running, Cex, Budget };
  util::Mutex mu{"pdr.shard"};
  util::CondVar cv;
  /// Obligations popped but not yet resolved.
  std::size_t in_flight GENFV_GUARDED_BY(mu) = 0;
  /// Worker 0 certified SAT(F_N ∧ ¬P) empty.
  bool frontier_clean GENFV_GUARDED_BY(mu) = false;
  Phase phase GENFV_GUARDED_BY(mu) = Phase::Running;
  std::size_t cex_index GENFV_GUARDED_BY(mu) = 0;
};

/// One worker of the sharded phase. Worker 0 (the caller's thread) doubles
/// as the frontier enumerator: whenever the queue is drained and nothing is
/// in flight it asks its solver for the next frontier bad state — issuing
/// that query only at quiescent points keeps it equivalent to the legacy
/// enumeration (all previously found bad states are already blocked).
void shard_worker(std::size_t worker, QueryContext& ctx, FrameDb& db,
                  ObligationQueue& queue, const PdrOptions& options,
                  std::size_t frontier, ShardState& st) {
  if (worker != 0 && util::tracing_on()) {
    util::set_trace_thread_name("pdr-worker-" + std::to_string(worker));
  }
  GENFV_TRACE_SPAN("pdr", "shard_worker");
  util::MutexLock lock(st.mu);
  for (;;) {
    // Explicit wait loop rather than the predicate-lambda overload: clang's
    // thread-safety analysis cannot look into a predicate lambda, but it
    // checks these guarded reads directly.
    while (!(st.phase != ShardState::Phase::Running || !queue.empty() ||
             (st.frontier_clean && st.in_flight == 0) ||
             (worker == 0 && !st.frontier_clean && st.in_flight == 0))) {
      st.cv.wait(st.mu);
    }
    if (st.phase != ShardState::Phase::Running) return;
    if (st.frontier_clean && queue.empty() && st.in_flight == 0) {
      st.cv.notify_all();
      return;
    }

    if (!queue.empty()) {
      if (queue.created() > options.max_obligations || ctx.stopped()) {
        st.phase = ShardState::Phase::Budget;
        st.cv.notify_all();
        return;
      }
      const std::size_t index = queue.pop();
      const Cube cube = queue.at(index).cube;  // copy: add() may reallocate
      const std::size_t level = queue.at(index).level;
      GENFV_ASSERT(level >= 1, "level-0 obligations are counterexamples at creation");
      ++st.in_flight;
      lock.Unlock();

      // Solver work with no lock held; queue mutations re-applied under the
      // lock afterwards. `frontier` is phase-constant (push_level only runs
      // between phases), so passing the cached value matches the sequential
      // drain's live db.frontier() reads.
      BlockStep step = block_one(ctx, db, options, cube, level, frontier, index);

      lock.Lock();
      --st.in_flight;
      if (st.phase == ShardState::Phase::Running) {
        if (step.budget) {
          st.phase = ShardState::Phase::Budget;
        } else if (step.pred_is_cex) {
          st.cex_index = queue.add(std::move(*step.pred));
          st.phase = ShardState::Phase::Cex;
        } else {
          if (step.push_pred) {
            const std::size_t pred_index = queue.add(std::move(*step.pred));
            queue.push(pred_index);
            queue.push(index);  // retry once the predecessor is blocked
          }
          if (step.requeue_self) {
            queue.at(index).level = step.retry_level;
            queue.push(index);
          }
        }
      }
      st.cv.notify_all();
      continue;
    }

    // Worker 0, queue drained, nothing in flight: enumerate the next
    // frontier bad state or certify the frontier clean.
    lock.Unlock();
    bool budget = ctx.stopped();
    bool clean = false;
    std::optional<Obligation> bad;
    bool bad_is_cex = false;
    if (!budget) {
      const sat::LBool answer = ctx.solve_frontier_bad(frontier);
      if (answer == sat::LBool::Undef) {
        budget = true;
      } else if (answer == sat::LBool::False) {
        clean = true;
      } else {
        bad.emplace();
        ctx.extract_state(*bad);
        ctx.lift_bad(*bad);
        bad->level = frontier;
        bad->parent = -1;
        const sat::LBool initial = ctx.intersects_init(bad->cube);
        if (initial == sat::LBool::Undef) {
          budget = true;
        } else if (initial == sat::LBool::True) {
          bad_is_cex = true;  // defensive, see strengthen_sequential
          ctx.extract_init_witness(*bad);
        }
      }
    }
    lock.Lock();
    if (st.phase == ShardState::Phase::Running) {
      if (budget) {
        st.phase = ShardState::Phase::Budget;
      } else if (clean) {
        st.frontier_clean = true;
      } else if (bad_is_cex) {
        st.cex_index = queue.add(std::move(*bad));
        st.phase = ShardState::Phase::Cex;
      } else {
        const std::size_t index = queue.add(std::move(*bad));
        queue.push(index);
      }
    }
    st.cv.notify_all();
  }
}

}  // namespace

BlockOutcome strengthen_frontier(const std::vector<QueryContext*>& contexts, FrameDb& db,
                                 ObligationQueue& queue, const PdrOptions& options,
                                 std::size_t frontier, std::size_t* cex_index) {
  GENFV_ASSERT(!contexts.empty(), "strengthen_frontier needs at least one context");
  if (contexts.size() == 1) {
    return strengthen_sequential(*contexts[0], db, queue, options, frontier, cex_index);
  }

  ShardState st;
  std::vector<std::thread> workers;
  workers.reserve(contexts.size() - 1);
  for (std::size_t i = 1; i < contexts.size(); ++i) {
    workers.emplace_back(shard_worker, i, std::ref(*contexts[i]), std::ref(db),
                         std::ref(queue), std::cref(options), frontier, std::ref(st));
  }
  shard_worker(0, *contexts[0], db, queue, options, frontier, st);
  for (std::thread& t : workers) t.join();

  switch (st.phase) {
    case ShardState::Phase::Cex:
      *cex_index = st.cex_index;
      return BlockOutcome::Counterexample;
    case ShardState::Phase::Budget: return BlockOutcome::Budget;
    case ShardState::Phase::Running: return BlockOutcome::Blocked;
  }
  return BlockOutcome::Blocked;
}

}  // namespace genfv::mc::pdr
