#pragma once

/// \file propagate.hpp
/// Forward clause propagation and the F_∞ graduation fixpoint.
///
/// Propagation pushes every blocked clause that remains inductive at its
/// level one level forward; clauses that reach the frontier become
/// candidates for F_∞, where a mutual-induction fixpoint certifies the
/// inductive subset invariant (and publishes each survivor to the lemma
/// exchange). Both passes operate on the shared `FrameDb`; the sharded
/// variant partitions each level's snapshot across worker contexts with a
/// barrier per level, so the per-level delta semantics match the
/// single-context pass.

#include <vector>

#include "mc/pdr/context.hpp"
#include "mc/pdr/frame_db.hpp"

namespace genfv::mc::pdr {

enum class PropagateOutcome {
  Done,    ///< every level processed
  Budget,  ///< conflict budget or stop flag interrupted the pass
};

/// Single-context propagation over levels 1..frontier-1 (legacy behavior).
PropagateOutcome propagate_all(QueryContext& ctx, FrameDb& db, const PdrOptions& options);

/// Sharded propagation: each level's cube snapshot is partitioned
/// round-robin across `contexts`; `contexts[0]` runs on the calling thread,
/// the rest get a thread per level. Push results are merged into the
/// database between levels (a barrier), so every worker sees level i fully
/// propagated before level i+1 starts.
PropagateOutcome propagate_sharded(const std::vector<QueryContext*>& contexts,
                                   FrameDb& db, const PdrOptions& options);

/// Push frontier clauses to F_∞ when a subset is mutually inductive: the
/// greatest fixpoint of "drop any clause with a counterexample-to-
/// consecution relative to the remaining set (∧ F_∞ ∧ lemmas)". Survivors
/// satisfy initiation (blocked cubes never intersect init) and consecution
/// as a set, so each is an invariant — provable long before the frame trace
/// itself converges, which is what makes live exchange useful mid-race.
/// Returns false when the conflict budget or stop flag interrupted (callers
/// give up on the whole run, as elsewhere).
bool push_to_infinity(QueryContext& ctx, FrameDb& db, const PdrOptions& options);

}  // namespace genfv::mc::pdr
