#pragma once

/// \file propagate.hpp
/// Forward clause propagation and the F_∞ graduation fixpoint.
///
/// Propagation pushes every blocked clause that remains inductive at its
/// level one level forward; clauses that reach the frontier become
/// candidates for F_∞, where a mutual-induction fixpoint certifies the
/// inductive subset invariant (and publishes each survivor to the lemma
/// exchange). Both passes operate on the shared `FrameDb`; the sharded
/// variant partitions each level's snapshot across worker contexts with a
/// barrier per level, so the per-level delta semantics match the
/// single-context pass.

#include <vector>

#include "mc/pdr/context.hpp"
#include "mc/pdr/frame_db.hpp"

namespace genfv::mc::pdr {

enum class PropagateOutcome {
  Done,    ///< every level processed
  Budget,  ///< conflict budget or stop flag interrupted the pass
};

/// Single-context propagation over levels 1..frontier-1 (legacy behavior).
PropagateOutcome propagate_all(QueryContext& ctx, FrameDb& db, const PdrOptions& options);

/// Sharded propagation: each level's cube snapshot is partitioned
/// round-robin across `contexts`; `contexts[0]` runs on the calling thread,
/// the rest get a thread per level. Push results are merged into the
/// database between levels (a barrier), so every worker sees level i fully
/// propagated before level i+1 starts.
PropagateOutcome propagate_sharded(const std::vector<QueryContext*>& contexts,
                                   FrameDb& db, const PdrOptions& options);

/// The may-proof pass (PdrOptions::seed_candidates; no-op otherwise): try to
/// graduate candidate ("may") clauses into ordinary frame clauses.
///  1. Initiation filter: a candidate whose cube contains an initial state
///     is refuted outright and retracted.
///  2. Mutual may-induction fixpoint at the frontier level N: starting from
///     every live candidate, repeatedly drop any with a counterexample-to-
///     consecution relative to F_{N-1} ∧ survivors (a *clean* query — no
///     other candidate assumptions). Survivors S satisfy init ⊨ S and
///     F_{N-1} ∧ S ∧ T ⊨ S′, so by induction over path length every state
///     reachable in ≤ N steps satisfies S — each survivor is blockable at
///     level N and graduates into the delta levels, where propagation and
///     the F_∞ fixpoint treat it like any other clause.
/// Returns false when the budget/stop flag interrupted.
bool may_proof_pass(QueryContext& ctx, FrameDb& db, const PdrOptions& options);

/// Push frontier clauses to F_∞ when a subset is mutually inductive: the
/// greatest fixpoint of "drop any clause with a counterexample-to-
/// consecution relative to the remaining set (∧ F_∞ ∧ lemmas)". Survivors
/// satisfy initiation (blocked cubes never intersect init) and consecution
/// as a set, so each is an invariant — provable long before the frame trace
/// itself converges, which is what makes live exchange useful mid-race.
/// Returns false when the conflict budget or stop flag interrupted (callers
/// give up on the whole run, as elsewhere).
bool push_to_infinity(QueryContext& ctx, FrameDb& db, const PdrOptions& options);

}  // namespace genfv::mc::pdr
