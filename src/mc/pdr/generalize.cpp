#include "mc/pdr/generalize.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/telemetry.hpp"

namespace genfv::mc::pdr {

void repair_initiation(QueryContext& ctx, Cube& g, const Cube& full) {
  if (!ctx.may_intersect_init(g)) return;
  for (const StateLit& l : full) {
    if (std::binary_search(g.begin(), g.end(), l)) continue;
    g.insert(std::lower_bound(g.begin(), g.end(), l), l);
    if (!ctx.may_intersect_init(g)) return;
  }
}

Cube generalize(QueryContext& ctx, const Cube& cube, std::size_t level,
                const std::vector<sat::Lit>& core, const PdrOptions& options) {
  GENFV_TRACE_SPAN("pdr", "generalize");
  std::unordered_set<std::int32_t> needed;
  for (const sat::Lit p : core) needed.insert(p.code);
  Cube g;
  for (const StateLit& l : cube) {
    if (needed.count(ctx.cube_lit(1, l).code) != 0) g.push_back(l);
  }
  if (g.empty()) g = cube;
  repair_initiation(ctx, g, cube);

  if (options.generalize_drop) {
    for (std::size_t i = 0; i < g.size() && g.size() > 1;) {
      Cube cand = g;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (!ctx.may_intersect_init(cand) &&
          ctx.relative_query(cand, level, /*assume_not_cube=*/true, nullptr) ==
              sat::LBool::False) {
        g = std::move(cand);
      } else {
        ++i;
      }
    }
  }
  return g;
}

}  // namespace genfv::mc::pdr
