#pragma once

/// \file obligation.hpp
/// Proof obligations and their priority queue. An obligation is a concrete
/// bad (or bad-reaching) state that must be blocked at a frame level; the
/// queue hands out the lowest-level obligation first, so counterexample
/// construction proceeds backwards towards the initial states before the
/// engine resumes work near the frontier.
///
/// Obligations live in an arena and carry parent links towards the property
/// violation plus the concrete model values needed to rebuild a `sim::Trace`
/// when a chain reaches level 0.

#include <cstdint>
#include <queue>
#include <vector>

#include "mc/pdr/cube.hpp"
#include "util/telemetry.hpp"

namespace genfv::mc::pdr {

struct Obligation {
  /// Full state cube (every bit of every state variable) to block.
  Cube cube;
  /// Frame level the cube must be blocked at.
  std::size_t level = 0;
  /// Concrete state values, one per ts.states() entry.
  std::vector<std::uint64_t> state_values;
  /// Concrete input values (one per ts.inputs() entry) that drive this state
  /// into the parent's state — or, for the root obligation, the inputs under
  /// which the property fails.
  std::vector<std::uint64_t> input_values;
  /// Arena index of the successor obligation (towards the violation); -1 for
  /// the root bad state.
  std::ptrdiff_t parent = -1;
};

/// Not thread-safe; owned by one engine run. Arena entries are never
/// removed, so indices (and the parent links threaded through them) stay
/// valid for the lifetime of the queue — `at()` references are invalidated
/// by `add()`, indices are not.
class ObligationQueue {
 public:
  /// Move an obligation into the arena; returns its arena index.
  std::size_t add(Obligation obligation) {
    arena_.push_back(std::move(obligation));
    if (util::telemetry_on()) queue_created().increment();
    return arena_.size() - 1;
  }

  /// (Re-)schedule an arena entry at its current level. An entry must not be
  /// scheduled twice without an intervening pop.
  void push(std::size_t index) {
    heap_.push({arena_[index].level, seq_++, index});
    if (util::telemetry_on()) queue_depth().add(1);
  }

  bool empty() const noexcept { return heap_.empty(); }

  /// Arena index of the lowest-level (oldest-first on ties) obligation.
  std::size_t pop() {
    const std::size_t index = heap_.top().index;
    heap_.pop();
    if (util::telemetry_on()) queue_depth().add(-1);
    return index;
  }

  Obligation& at(std::size_t index) { return arena_.at(index); }
  const Obligation& at(std::size_t index) const { return arena_.at(index); }

  /// Total obligations ever created (safety-valve metric).
  std::size_t created() const noexcept { return arena_.size(); }

 private:
  // Process-global gauges: several queues may coexist (portfolio members),
  // but in practice one PDR run dominates and the heartbeat wants a single
  // live depth figure.
  static util::Gauge& queue_depth() {
    static util::Gauge& g = util::metrics().gauge("pdr.obligations_queued");
    return g;
  }
  static util::Counter& queue_created() {
    static util::Counter& c = util::metrics().counter("pdr.obligations_created");
    return c;
  }

  struct Entry {
    std::size_t level;
    std::uint64_t seq;
    std::size_t index;
    /// std::priority_queue is a max-heap; invert for min-(level, seq).
    bool operator<(const Entry& other) const noexcept {
      if (level != other.level) return level > other.level;
      return seq > other.seq;
    }
  };

  std::vector<Obligation> arena_;
  std::priority_queue<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace genfv::mc::pdr
