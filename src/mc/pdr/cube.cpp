#include "mc/pdr/cube.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace genfv::mc::pdr {

void canonicalize(Cube& cube) {
  std::sort(cube.begin(), cube.end());
  cube.erase(std::unique(cube.begin(), cube.end()), cube.end());
}

bool subsumes(const Cube& a, const Cube& b) {
  if (a.size() > b.size()) return false;
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

ir::NodeRef clause_expr(const ir::TransitionSystem& ts, const Cube& cube) {
  GENFV_ASSERT(!cube.empty(), "cannot render the empty clause");
  auto nm = ts.nm_ptr();
  ir::NodeRef clause = nm->mk_false();
  for (const StateLit& lit : cube) {
    const ir::NodeRef var = ts.states().at(lit.state).var;
    ir::NodeRef bit = nm->mk_bit(var, lit.bit);
    // The clause literal is the negation of the cube literal.
    clause = nm->mk_or(clause, lit.negated ? bit : nm->mk_not(bit));
  }
  return clause;
}

}  // namespace genfv::mc::pdr
