#include "mc/pdr/cube.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace genfv::mc::pdr {

void canonicalize(Cube& cube) {
  std::sort(cube.begin(), cube.end());
  cube.erase(std::unique(cube.begin(), cube.end()), cube.end());
}

bool canonicalize_clause_cube(Cube& cube) {
  if (cube.empty()) return false;
  canonicalize(cube);
  for (std::size_t i = 1; i < cube.size(); ++i) {
    if (cube[i - 1].state == cube[i].state && cube[i - 1].bit == cube[i].bit) {
      return false;  // both polarities of one bit: tautological clause
    }
  }
  return true;
}

bool subsumes(const Cube& a, const Cube& b) {
  if (a.size() > b.size()) return false;
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

ir::NodeRef clause_expr(const ir::TransitionSystem& ts, const Cube& cube) {
  GENFV_ASSERT(!cube.empty(), "cannot render the empty clause");
  auto nm = ts.nm_ptr();
  ir::NodeRef clause = nm->mk_false();
  for (const StateLit& lit : cube) {
    const ir::NodeRef var = ts.states().at(lit.state).var;
    ir::NodeRef bit = nm->mk_bit(var, lit.bit);
    // The clause literal is the negation of the cube literal.
    clause = nm->mk_or(clause, lit.negated ? bit : nm->mk_not(bit));
  }
  return clause;
}

namespace {

/// Recognize `expr` as one bit of one state variable of `ts`: either
/// Extract(var, i, i) or a width-1 state variable itself (mk_bit folds the
/// full-range extract away). Fills `out` (polarity left to the caller).
bool state_bit_of(const ir::TransitionSystem& ts, ir::NodeRef expr, StateLit* out) {
  ir::NodeRef var = nullptr;
  std::uint32_t bit = 0;
  if (expr->op() == ir::Op::State) {
    if (expr->width() != 1) return false;
    var = expr;
  } else if (expr->op() == ir::Op::Extract && expr->hi() == expr->lo() &&
             expr->child(0)->op() == ir::Op::State) {
    var = expr->child(0);
    bit = expr->hi();
  } else {
    return false;
  }
  for (std::size_t i = 0; i < ts.states().size(); ++i) {
    if (ts.states()[i].var == var) {
      out->state = static_cast<std::uint32_t>(i);
      out->bit = bit;
      return true;
    }
  }
  return false;  // a state node, but not one of this system's
}

}  // namespace

std::optional<Cube> cube_of_clause(const ir::TransitionSystem& ts, ir::NodeRef expr) {
  if (expr == nullptr || expr->width() != 1) return std::nullopt;
  Cube cube;
  std::vector<ir::NodeRef> stack{expr};
  while (!stack.empty()) {
    const ir::NodeRef n = stack.back();
    stack.pop_back();
    if (n->op() == ir::Op::Or && n->width() == 1) {
      stack.push_back(n->child(0));
      stack.push_back(n->child(1));
      continue;
    }
    if (n->is_const()) {
      if (n->value() != 0) return std::nullopt;  // trivially true clause
      continue;                                  // Or identity
    }
    StateLit lit;
    if (n->op() == ir::Op::Not && state_bit_of(ts, n->child(0), &lit)) {
      lit.negated = false;  // clause literal ¬bit blocks cube bit == 1
    } else if (state_bit_of(ts, n, &lit)) {
      lit.negated = true;  // clause literal bit blocks cube bit == 0
    } else {
      return std::nullopt;
    }
    cube.push_back(lit);
  }
  if (!canonicalize_clause_cube(cube)) return std::nullopt;
  return cube;
}

}  // namespace genfv::mc::pdr
