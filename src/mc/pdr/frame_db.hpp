#pragma once

/// \file frame_db.hpp
/// The shared, solver-neutral PDR frame database F_0 ⊆ F_1 ⊆ … ⊆ F_N ⊆ F_∞.
///
/// Blocked cubes are kept in delta encoding exactly like the classic frame
/// trace — each cube is stored only at the highest level where its clause is
/// known to hold, and the semantic frame F_i is the conjunction of all
/// clauses stored at levels ≥ i (plus everything in F_∞). Unlike the old
/// `FrameTrace`, the database holds **no solver state at all**: cubes are
/// `{state-index, bit, polarity}` literals (`StateLit`, the same
/// manager-neutral currency as `mc::ExchangedClause`), so the one structure
/// can be shared by any number of per-worker query contexts over any number
/// of system clones.
///
/// Thread-safety: every method is internally synchronized by one mutex; any
/// worker may add/query at any time. Accessors return snapshots by value.
///
/// Epoch sync: every mutation appends an event to an append-only journal and
/// the epoch is the journal length. A `QueryContext` mirrors the database
/// into its private solver by replaying `events_since` its last synced
/// epoch — level pushes allocate activation literals, blocked cubes become
/// activation-gated clauses, graduations become ungated F_∞ clauses. The
/// journal records only additions: subsumption and graduation remove cubes
/// from the *bookkeeping*, but the solver clauses they already produced in
/// some mirror remain sound (merely redundant), exactly as in the
/// single-solver engine.

#include <cstddef>
#include <limits>
#include <mutex>
#include <vector>

#include "mc/pdr/cube.hpp"

namespace genfv::mc::pdr {

/// Pseudo-level of F_∞ (clauses certified invariant). Numerically equal to
/// `mc::kExchangeProvenLevel`, so graduation events translate directly into
/// proven exchange clauses.
inline constexpr std::size_t kInfinityLevel = std::numeric_limits<std::size_t>::max();

class FrameDb {
 public:
  /// One journal entry. Replay rules for a solver mirror:
  ///  * PushLevel: allocate a fresh activation literal for the new level.
  ///  * Block: assert clause ¬cube gated by the activation of `level`.
  ///  * Graduate: assert clause ¬cube ungated at both solver frames.
  struct Event {
    enum class Kind { PushLevel, Block, Graduate };
    Kind kind = Kind::PushLevel;
    Cube cube;               ///< empty for PushLevel
    std::size_t level = 0;   ///< Block: delta level; Graduate: kInfinityLevel
  };

  /// A consistent copy of the whole database, used for solver rebuilds: the
  /// rebuilt mirror re-encodes `levels`/`infinity` and resumes syncing from
  /// `epoch`.
  struct Snapshot {
    std::vector<std::vector<Cube>> levels;  ///< blocked cubes per level
    std::vector<Cube> infinity;
    std::size_t epoch = 0;
  };

  /// Starts with level 0 only (the initial-state frame, which never holds
  /// cubes) and an empty journal.
  FrameDb();

  std::size_t levels() const;
  std::size_t frontier() const;  ///< levels() - 1

  /// Append a new (empty) frontier level.
  void push_level();

  /// Record `cube` as blocked at `level` (1..frontier): drops bookkeeping
  /// for cubes at levels ≤ `level` that the new cube subsumes, then journals
  /// a Block event. Call is_blocked first if double-adding is possible.
  void add_blocked(Cube cube, std::size_t level);

  /// True iff some recorded cube at a level ≥ `level` subsumes `cube`.
  /// (F_∞ is intentionally not consulted — graduated cubes leave the delta
  /// bookkeeping, matching the single-solver engine's behavior.)
  bool is_blocked(const Cube& cube, std::size_t level) const;

  /// Graduate `cube` from `level`'s bookkeeping into F_∞ and journal it.
  /// No-op on the bookkeeping side when the cube is absent from `level`.
  void graduate(const Cube& cube, std::size_t level);

  std::vector<Cube> cubes_at(std::size_t level) const;
  std::vector<Cube> infinity() const;

  /// Total live (non-subsumed, non-graduated) cubes across all levels.
  std::size_t total_cubes() const;

  /// Journal length; grows monotonically with every mutation.
  std::size_t epoch() const;

  /// Append journal entries [from, epoch()) to `out`; returns the new epoch.
  std::size_t events_since(std::size_t from, std::vector<Event>* out) const;

  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<Cube>> levels_;  ///< blocked cubes, delta-encoded
  std::vector<Cube> infinity_;
  std::vector<Event> journal_;
};

}  // namespace genfv::mc::pdr
