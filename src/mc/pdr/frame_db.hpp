#pragma once

/// \file frame_db.hpp
/// The shared, solver-neutral PDR frame database F_0 ⊆ F_1 ⊆ … ⊆ F_N ⊆ F_∞.
///
/// Blocked cubes are kept in delta encoding exactly like the classic frame
/// trace — each cube is stored only at the highest level where its clause is
/// known to hold, and the semantic frame F_i is the conjunction of all
/// clauses stored at levels ≥ i (plus everything in F_∞). Unlike the old
/// `FrameTrace`, the database holds **no solver state at all**: cubes are
/// `{state-index, bit, polarity}` literals (`StateLit`, the same
/// manager-neutral currency as `mc::ExchangedClause`), so the one structure
/// can be shared by any number of per-worker query contexts over any number
/// of system clones.
///
/// Thread-safety: every method is internally synchronized by one mutex; any
/// worker may add/query at any time. Accessors return snapshots by value.
///
/// Epoch sync: every mutation appends an event to an append-only journal and
/// the epoch is the journal length. A `QueryContext` mirrors the database
/// into its private solver by replaying `events_since` its last synced
/// epoch — level pushes allocate activation literals, blocked cubes become
/// activation-gated clauses, graduations become ungated F_∞ clauses. The
/// journal records only additions: subsumption and graduation remove cubes
/// from the *bookkeeping*, but the solver clauses they already produced in
/// some mirror remain sound (merely redundant), exactly as in the
/// single-solver engine.

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "mc/pdr/cube.hpp"
#include "util/thread_safety.hpp"

namespace genfv::mc::pdr {

/// Pseudo-level of F_∞ (clauses certified invariant). Numerically equal to
/// `mc::kExchangeProvenLevel`, so graduation events translate directly into
/// proven exchange clauses.
inline constexpr std::size_t kInfinityLevel = std::numeric_limits<std::size_t>::max();

class FrameDb {
 public:
  /// One journal entry. Replay rules for a solver mirror:
  ///  * PushLevel: allocate a fresh activation literal for the new level.
  ///  * Block: assert clause ¬cube gated by the activation of `level`.
  ///  * Graduate: assert clause ¬cube ungated at both solver frames.
  ///  * SeedMay: assert clause ¬cube at frame 0 behind a fresh dedicated
  ///    gate for candidate id `level` (may clauses strengthen queries only
  ///    while assumed; they are never part of a certificate).
  ///  * RetractMay: retire candidate `level`'s gate, permanently disabling
  ///    its clause in this mirror.
  struct Event {
    enum class Kind { PushLevel, Block, Graduate, SeedMay, RetractMay };
    Kind kind = Kind::PushLevel;
    Cube cube;               ///< empty for PushLevel / RetractMay
    std::size_t level = 0;   ///< Block: delta level; Graduate: kInfinityLevel;
                             ///< SeedMay / RetractMay: the candidate id
  };

  /// One live candidate ("may") clause: the cube it blocks plus its stable
  /// id (gates in every mirror are keyed on it). `init_ok` caches the
  /// outcome of the (immutable) initiation check so the may-proof pass runs
  /// it once per candidate, not once per frame iteration.
  struct MayClause {
    Cube cube;
    std::size_t id = 0;
    bool init_ok = false;
    /// Spurious-blocked offenses so far (see strike_may).
    std::size_t strikes = 0;
  };

  /// A consistent copy of the whole database, used for solver rebuilds: the
  /// rebuilt mirror re-encodes `levels`/`infinity`/`may` and resumes syncing
  /// from `epoch`.
  struct Snapshot {
    std::vector<std::vector<Cube>> levels;  ///< blocked cubes per level
    std::vector<Cube> infinity;
    std::vector<MayClause> may;             ///< live (unretracted) candidates
    std::size_t epoch = 0;
  };

  /// Starts with level 0 only (the initial-state frame, which never holds
  /// cubes) and an empty journal.
  FrameDb();

  std::size_t levels() const;
  std::size_t frontier() const;  ///< levels() - 1

  /// Append a new (empty) frontier level.
  void push_level();

  /// Record `cube` as blocked at `level` (1..frontier): drops bookkeeping
  /// for cubes at levels ≤ `level` that the new cube subsumes, then journals
  /// a Block event. Call is_blocked first if double-adding is possible.
  void add_blocked(Cube cube, std::size_t level);

  /// True iff some recorded cube at a level ≥ `level` subsumes `cube`.
  /// (F_∞ is intentionally not consulted — graduated cubes leave the delta
  /// bookkeeping, matching the single-solver engine's behavior.)
  bool is_blocked(const Cube& cube, std::size_t level) const;

  /// Graduate `cube` from `level`'s bookkeeping into F_∞ and journal it.
  /// No-op on the bookkeeping side when the cube is absent from `level`.
  void graduate(const Cube& cube, std::size_t level);

  /// Add a clause directly to F_∞ — for invariants proven *elsewhere* (a
  /// racing member's published F_∞ clauses). The caller vouches that the
  /// clause holds in every reachable state of this system.
  void add_infinity(Cube cube);

  // --- candidate ("may") clauses ---------------------------------------------
  // Unproven candidate clauses assumed in queries behind per-candidate
  // activation gates. Never exported, never part of F_∞ or the delta levels;
  // graduation re-enters through add_blocked on a *clean* proof. Duplicate
  // cubes (keyed on exchange_key) are rejected, including cubes that were
  // seeded before and since retracted — a refuted candidate stays refuted.

  /// Seed `cube` as a candidate. Returns its id, or nullopt for duplicates.
  std::optional<std::size_t> seed_may(Cube cube);

  /// Retract candidate `id` outright (initiation refutation — an immutable
  /// fact). Returns false when already retracted/graduated (idempotent).
  bool retract_may(std::size_t id);

  /// Record one spurious-blocked offense against candidate `id` and retract
  /// it once its strikes reach the configured limit. Sub-limit strikes are
  /// bookkeeping only (no journal event, mirrors unaffected) — a candidate
  /// that collides once with a rare backward-reachable state keeps helping
  /// until it proves itself a repeat offender. Returns true iff this strike
  /// retracted the candidate.
  bool strike_may(std::size_t id);

  /// Strikes before strike_may retracts (minimum 1; default 2). Set before
  /// workers start; see PdrOptions::candidate_strikes.
  void set_candidate_strikes(std::size_t limit);

  /// Remove candidate `id` from the may set because a clean may-proof
  /// succeeded — the caller follows up with add_blocked for the cube.
  /// Mirrors treat it exactly like a retraction (the gated assumption is
  /// replaced by a real frame clause). Returns false when already gone.
  bool graduate_may(std::size_t id);

  /// Record that candidate `id` passed the initiation check (SAT(init ∧
  /// cube) = False — a fact that can never change). Bookkeeping only; no
  /// journal event, mirrors are unaffected.
  void mark_may_init_ok(std::size_t id);

  /// Live (seeded, not yet retracted/graduated) candidates.
  std::vector<MayClause> may_clauses() const;

  /// Lifetime counters for EngineStats.
  std::size_t may_seeded() const;
  std::size_t may_graduated() const;
  std::size_t may_retracted() const;

  std::vector<Cube> cubes_at(std::size_t level) const;
  std::vector<Cube> infinity() const;

  /// Total live (non-subsumed, non-graduated) cubes across all levels.
  std::size_t total_cubes() const;

  /// Journal length; grows monotonically with every mutation.
  std::size_t epoch() const;

  /// Append journal entries [from, epoch()) to `out`; returns the new epoch.
  std::size_t events_since(std::size_t from, std::vector<Event>* out) const;

  Snapshot snapshot() const;

#if defined(GENFV_TSA_NEGATIVE_TEST)
  /// Negative-compile probe (scripts/check_thread_safety.sh): reads a
  /// guarded field without taking mu_. MUST fail to compile under
  /// -Werror=thread-safety — if it ever compiles, the annotation coverage
  /// has rotted and the whole clang leg is vacuous. Never defined in real
  /// builds.
  std::size_t tsa_probe_unguarded() const { return levels_.size(); }
#endif

 private:
  /// Shared body of retract_may/strike_may/graduate_may: erase, bump
  /// `counter`, journal a RetractMay (mirrors handle all cases identically).
  bool remove_may(std::size_t id, std::size_t* counter) GENFV_EXCLUDES(mu_);
  bool remove_may_locked(std::size_t id, std::size_t* counter) GENFV_REQUIRES(mu_);

  /// The named mutex subsumes the old lock_timed(): util::Mutex attributes
  /// lock waits to `pdr.framedb_mutex_wait_ns` / `pdr.framedb_mutex_locks`
  /// whenever telemetry is on. The one-mutex design was flagged as a
  /// contention risk when sharded PDR landed; the counters keep the actual
  /// cost measurable.
  mutable util::Mutex mu_{"pdr.framedb"};
  std::vector<std::vector<Cube>> levels_ GENFV_GUARDED_BY(mu_);  ///< delta-encoded
  std::vector<Cube> infinity_ GENFV_GUARDED_BY(mu_);
  std::vector<MayClause> may_ GENFV_GUARDED_BY(mu_);              ///< live candidates
  std::unordered_set<std::string> may_keys_ GENFV_GUARDED_BY(mu_);  ///< ever-seeded keys
  std::size_t next_may_id_ GENFV_GUARDED_BY(mu_) = 0;
  std::size_t candidate_strikes_ GENFV_GUARDED_BY(mu_) = 2;
  std::size_t may_graduated_ GENFV_GUARDED_BY(mu_) = 0;
  std::size_t may_retracted_ GENFV_GUARDED_BY(mu_) = 0;
  std::vector<Event> journal_ GENFV_GUARDED_BY(mu_);
};

}  // namespace genfv::mc::pdr
