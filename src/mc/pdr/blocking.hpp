#pragma once

/// \file blocking.hpp
/// Proof-obligation blocking — the heart of the PDR main loop. Given the
/// shared `FrameDb` and obligation queue, `strengthen_frontier` enumerates
/// frontier states that violate the property and blocks each backwards-
/// reachable predecessor with a generalized relatively-inductive clause,
/// until the frontier is clean (Blocked), a concrete chain reaches the
/// initial states (Counterexample), or a budget/stop condition fires.
///
/// Two execution shapes behind one entry point:
///  * one context: the exact legacy single-threaded algorithm — pop the
///    lowest-level obligation, block or extend the chain, repeat;
///  * n contexts: the sharded engine — every context drains the same queue
///    from its own worker thread (the caller's thread drives context 0 and
///    additionally enumerates frontier bad states whenever the queue runs
///    dry). Contexts may mirror the FrameDb at slightly different epochs;
///    a stale mirror only weakens the frame a query assumes, which can cost
///    extra obligations but never soundness — a SAT answer is a real
///    transition into the obligation's concrete state, an UNSAT answer
///    yields a clause inductive relative to a subset of F_{level-1}.

#include <vector>

#include "mc/pdr/context.hpp"
#include "mc/pdr/frame_db.hpp"
#include "mc/pdr/obligation.hpp"

namespace genfv::mc::pdr {

enum class BlockOutcome {
  Blocked,          ///< frontier clean: every bad state blocked
  Counterexample,   ///< a chain reached init; see the returned arena index
  Budget,           ///< conflict/obligation budget or the stop flag fired
};

/// Translate a manager-neutral cube into the exchange wire form.
ExchangedClause to_exchanged(const Cube& cube, std::size_t level);

/// Record `cube` as blocked at `level` in the shared database and (when
/// frame-clause publishing is on) push it to the exchange mailbox.
void record_blocked(FrameDb& db, const PdrOptions& options, const Cube& cube,
                    std::size_t level);

/// Drain the obligation queue with a single context (legacy algorithm).
/// On Counterexample, `*cex_index` is the arena index of the init-state end
/// of the chain.
BlockOutcome handle_obligations(QueryContext& ctx, FrameDb& db, ObligationQueue& queue,
                                const PdrOptions& options, std::size_t* cex_index);

/// One full frontier-strengthening phase: enumerate frontier bad states and
/// drain every resulting obligation, over `contexts.size()` workers.
/// `contexts[0]` runs on the calling thread; each additional context gets a
/// dedicated thread for the duration of the phase (the caller must own every
/// context — no other thread may touch them while this runs).
BlockOutcome strengthen_frontier(const std::vector<QueryContext*>& contexts, FrameDb& db,
                                 ObligationQueue& queue, const PdrOptions& options,
                                 std::size_t frontier, std::size_t* cex_index);

}  // namespace genfv::mc::pdr
