#pragma once

/// \file pdr.hpp
/// IC3 / property-directed reachability (Bradley; Een-Mishchenko-Brayton
/// style implementation) over the shared Unroller/BitBlaster/CDCL substrate.
///
/// Where k-induction over-approximates with "any k good frames" and relies
/// on externally supplied helper lemmas to cut the unreachable step states,
/// PDR *discovers* such strengthenings itself: it maintains a trace of
/// over-approximating frames, blocks concrete bad states backwards with
/// relatively-inductive clauses (generalized via `Solver::failed_assumptions`
/// unsat cores), and pushes clauses forward until two adjacent frames agree
/// — at which point the agreeing frame is an inductive invariant.
///
/// Integration with the GenAI flow is bidirectional:
///  * admitted lemmas (`PdrOptions::lemmas`) seed every frame as initial
///    strengthenings, and
///  * on Proven the final frame's clauses are exported (`PdrResult::
///    invariant`) so the helper-generation flow can re-use them as proven
///    lemmas.

#include <cstdint>
#include <vector>

#include "mc/result.hpp"
#include "mc/unroller.hpp"

namespace genfv::mc::pdr {

struct PdrOptions {
  /// Maximum frame-trace length before giving up (Unknown).
  std::size_t max_frames = 64;
  /// Proven invariants: asserted on every frame of the transition relation
  /// (equivalently, clauses of F_∞), shrinking every approximation.
  std::vector<ir::NodeRef> lemmas;
  /// Best-effort cap on SAT conflicts per solve; -1 = unlimited.
  std::int64_t conflict_budget = -1;
  /// After the unsat-core shrink, greedily try dropping the remaining cube
  /// literals one at a time (MIC-style). More SAT calls, stronger clauses.
  bool generalize_drop = true;
  /// Safety valve: total proof obligations before giving up (Unknown).
  std::size_t max_obligations = 100000;
};

struct PdrResult {
  Verdict verdict = Verdict::Unknown;
  std::size_t depth = 0;  ///< frontier frame reached / CEX length - 1
  /// Real counterexample from the initial states (verdict == Falsified).
  std::optional<sim::Trace> cex;
  /// verdict == Proven: clauses of the final inductive frame. Every clause
  /// individually holds in all reachable states (unconditionally, so each
  /// is safe to assume as a lemma); the conjunction is inductive and
  /// implies the property *relative to any seeded PdrOptions::lemmas* — a
  /// standalone certificate check must conjoin those lemmas too.
  std::vector<ir::NodeRef> invariant;
  EngineStats stats;

  bool proven() const noexcept { return verdict == Verdict::Proven; }
  std::string summary() const;
};

class PdrEngine {
 public:
  PdrEngine(const ir::TransitionSystem& ts, PdrOptions options = {});

  /// Decide a single width-1 property.
  PdrResult prove(ir::NodeRef property);

  /// Decide the conjunction of `properties`.
  PdrResult prove_all(const std::vector<ir::NodeRef>& properties);

 private:
  const ir::TransitionSystem& ts_;
  PdrOptions options_;
};

}  // namespace genfv::mc::pdr
