#pragma once

/// \file pdr.hpp
/// IC3 / property-directed reachability (Bradley; Een-Mishchenko-Brayton
/// style implementation) over the shared Unroller/BitBlaster/CDCL substrate.
///
/// Where k-induction over-approximates with "any k good frames" and relies
/// on externally supplied helper lemmas to cut the unreachable step states,
/// PDR *discovers* such strengthenings itself: it maintains a trace of
/// over-approximating frames, blocks concrete bad states backwards with
/// relatively-inductive clauses (generalized via `Solver::failed_assumptions`
/// unsat cores), and pushes clauses forward until two adjacent frames agree
/// — at which point the agreeing frame is an inductive invariant.
///
/// Integration with the GenAI flow is bidirectional:
///  * admitted lemmas (`PdrOptions::lemmas`) seed every frame as initial
///    strengthenings, and
///  * on Proven the final frame's clauses are exported (`PdrResult::
///    invariant`) so the helper-generation flow can re-use them as proven
///    lemmas.
///
/// The engine is layered for sharding (this header is only the façade):
///  * `frame_db.hpp` — the shared, solver-neutral frame database;
///  * `context.hpp` — per-worker query contexts (solver + unroller +
///    activation literals + gate-litter rebuild) over a `sat::SolverPool`;
///  * `blocking.hpp` / `generalize.hpp` / `propagate.hpp` — the algorithm
///    split into frontier strengthening, inductive generalization and
///    forward propagation / F_∞ graduation;
///  * `pdr.cpp` — orchestration. `PdrOptions::workers == 1` reproduces the
///    legacy single-threaded engine bit for bit; more workers shard
///    obligation blocking and propagation over private system clones.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mc/exchange.hpp"
#include "mc/result.hpp"
#include "mc/unroller.hpp"

namespace genfv::mc::pdr {

struct PdrOptions {
  /// Maximum frame-trace length before giving up (Unknown).
  std::size_t max_frames = 64;
  /// Proven invariants: asserted on every frame of the transition relation
  /// (equivalently, clauses of F_∞), shrinking every approximation.
  std::vector<ir::NodeRef> lemmas;
  /// Best-effort cap on SAT conflicts per solve; -1 = unlimited.
  std::int64_t conflict_budget = -1;
  /// After the unsat-core shrink, greedily try dropping the remaining cube
  /// literals one at a time (MIC-style). More SAT calls, stronger clauses.
  bool generalize_drop = true;
  /// Safety valve: total proof obligations before giving up (Unknown).
  std::size_t max_obligations = 100000;
  /// Cooperative cancellation: polled per obligation, per propagation pass
  /// and at SAT restart boundaries; when it reads true the run returns
  /// Unknown. See EngineOptions::stop for the full contract.
  std::shared_ptr<std::atomic<bool>> stop;
  /// Portfolio lemma exchange (publisher side): clauses are published the
  /// moment they are pushed to F_∞ — i.e. when the post-propagation
  /// mutual-induction fixpoint certifies a frontier clause set inductive, so
  /// each published clause holds in every reachable state well before the
  /// full proof converges. nullptr = off (the F_∞ push still runs; it
  /// strengthens PDR itself).
  std::shared_ptr<LemmaMailbox> exchange;
  std::size_t exchange_slot = 0;
  /// Also publish every frame-k blocked clause, tagged with its level
  /// (bounded facts; consumers restrict them to init-rooted frames <= k).
  bool publish_frame_clauses = false;
  /// Ternary-simulation cube lifting: shrink every extracted predecessor /
  /// frontier bad-state cube by dropping state bits whose X-valuation still
  /// forces the bad successor (or the property violation) before
  /// generalization sees the cube. Off (the default) preserves the legacy
  /// engine bit for bit; on changes the frame trajectory (usually for the
  /// better) but never a verdict. Counterexample chains are rebuilt by
  /// re-simulating through the lifted cubes — see ternary.hpp.
  bool ternary_lifting = false;
  /// Candidate-lemma frame seeding: admit *unproven* candidate clauses
  /// (`candidate_lemmas`, plus level-tagged clauses fetched from `exchange`)
  /// into the frame database as "may" clauses — assumed in queries behind
  /// dedicated activation gates, never exported, never pushed to F_∞.
  /// A may-proof pass graduates candidates whose mutual relative-induction
  /// check succeeds into ordinary frame clauses; a candidate implicated in a
  /// spurious "blocked" answer (a may-contaminated UNSAT whose clean re-run
  /// finds a state the candidate excludes) has its gate retracted. See
  /// docs/lemmas.md for the full soundness story.
  bool seed_candidates = false;
  /// Unproven candidate helper lemmas (e.g. LemmaManager candidates that
  /// failed their k-induction proof). Only clause-shaped expressions —
  /// disjunctions of state-bit literals — can seed; others are skipped.
  /// Ignored unless `seed_candidates` is set.
  std::vector<ir::NodeRef> candidate_lemmas;
  /// Worker shards for obligation blocking and clause propagation. 1 (the
  /// default) runs a single query context on the caller's system — bit for
  /// bit the legacy single-threaded engine. n > 1 runs n query contexts,
  /// each over a private `ir::SystemClone` (no NodeManager ever crosses a
  /// thread), sharing the solver-neutral `FrameDb` and obligation queue;
  /// verdicts are unchanged, wall-clock and trajectory are not.
  std::size_t workers = 1;
  /// Query-gate hygiene: every finished blocking query retires its
  /// activation gate as a permanently-satisfied unit clause, and those
  /// accumulate without bound on long runs. When a context has retired this
  /// many gates it rebuilds its transition solver in place, re-encoding only
  /// the live facts (init, lemmas, FrameDb clauses, F_∞). 0 (the default)
  /// never rebuilds — rebuilds keep verdicts but perturb SAT models, i.e.
  /// the exact frame trajectory.
  std::size_t rebuild_gate_limit = 0;
  /// Strikes before a may-candidate is retracted: a candidate implicated in
  /// a spurious "blocked" answer is only dropped after this many offenses,
  /// tolerating one-off collisions with rare backward-reachable states.
  /// 1 = retract on first offense (the legacy policy).
  std::size_t candidate_strikes = 2;
  /// SAT backend name (see sat::make_backend) and inprocessing toggle,
  /// stamped onto every solver the run's pool creates.
  std::string sat_backend = "internal";
  bool sat_inprocess = true;
  /// When non-empty, pool solvers log DRAT proofs under this path base.
  std::string drat_path;
};

struct PdrResult {
  Verdict verdict = Verdict::Unknown;
  std::size_t depth = 0;  ///< frontier frame reached / CEX length - 1
  /// Real counterexample from the initial states (verdict == Falsified).
  std::optional<sim::Trace> cex;
  /// verdict == Proven: clauses of the final inductive frame. Every clause
  /// individually holds in all reachable states (unconditionally, so each
  /// is safe to assume as a lemma); the conjunction is inductive and
  /// implies the property *relative to any seeded PdrOptions::lemmas* — a
  /// standalone certificate check must conjoin those lemmas too.
  std::vector<ir::NodeRef> invariant;
  EngineStats stats;

  bool proven() const noexcept { return verdict == Verdict::Proven; }
  std::string summary() const;
};

/// Ownership/threading contract: the engine holds a reference to `ts` (which
/// must outlive it) and *creates nodes in its NodeManager* (property
/// conjunction, invariant export) — so a PdrEngine must not run concurrently
/// with anything else touching the same manager; the portfolio gives each
/// concurrent engine a private `ir::SystemClone` instead. The only state
/// legally shared with other threads is `PdrOptions::stop`, which is
/// read-only here and may be set by any thread at any time.
class PdrEngine {
 public:
  PdrEngine(const ir::TransitionSystem& ts, PdrOptions options = {});

  /// Decide a single width-1 property.
  ///  * Proven: holds in every reachable state; `invariant` is filled.
  ///  * Falsified: `cex` is a real trace from the initial states (validated
  ///    shape: frame 0 satisfies init, each frame steps to the next).
  ///  * Unknown: frame bound, conflict budget, obligation cap, or the stop
  ///    flag ran out first.
  /// Throws UsageError when some state's init expression reads an input
  /// (PDR needs "is this cube initial" to be a pure state predicate).
  PdrResult prove(ir::NodeRef property);

  /// Decide the conjunction of `properties`; proving it proves every
  /// conjunct (same result contract as `prove`).
  PdrResult prove_all(const std::vector<ir::NodeRef>& properties);

 private:
  const ir::TransitionSystem& ts_;
  PdrOptions options_;
};

}  // namespace genfv::mc::pdr
