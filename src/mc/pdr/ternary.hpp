#pragma once

/// \file ternary.hpp
/// Three-valued (0/1/X) simulation over the word-level IR, and the classic
/// IC3 cube-lifting pass built on it.
///
/// A failed PDR query hands back a *full-width* state assignment: every bit
/// of every register, even though only a handful force the bad successor.
/// Blocking full cubes makes the frame clauses maximally weak — each clause
/// excludes exactly one state. Ternary lifting shrinks the cube before
/// generalization ever sees it: replace a state bit with X, re-simulate with
/// X-propagation, and drop the bit whenever the outcome the cube exists to
/// certify (the successor cube under the recorded inputs, or the property
/// violation itself) is still *forced* — true for every concretization of
/// the X bits. One lifted cube can stand in for exponentially many states,
/// which shrinks the obligation stream and strengthens every learnt clause.
///
/// Soundness contract of `TernaryWord`: a bit reported known must have that
/// value under **every** concretization of the X inputs. The evaluator is
/// deliberately conservative — imprecision (reporting X where a value is in
/// fact forced) only costs lifted bits, never correctness. Environment
/// constraints are part of every lifting goal: a lifted cube may only cover
/// states that still satisfy the system's constraints under the recorded
/// inputs, because counterexample chains are rebuilt by re-simulation
/// through those cubes (see `docs/lemmas.md`).
///
/// `TernarySim` is per-worker state (each `QueryContext` owns one over its
/// private system clone); it is not internally synchronized and never
/// touches a solver.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mc/pdr/cube.hpp"
#include "mc/pdr/obligation.hpp"

namespace genfv::mc::pdr {

/// One three-valued word of up to 64 bits. Bit i is X iff `known` bit i is
/// 0; where known, the bit's value lives in `value`. Invariant: unknown and
/// above-width positions of `value` are 0, above-width positions of `known`
/// are 0.
struct TernaryWord {
  std::uint64_t value = 0;
  std::uint64_t known = 0;

  static TernaryWord constant(std::uint64_t v, unsigned width) {
    return {v & ir::width_mask(width), ir::width_mask(width)};
  }
  static TernaryWord unknown(unsigned width) {
    (void)width;
    return {0, 0};
  }

  bool fully_known(unsigned width) const noexcept {
    return (known & ir::width_mask(width)) == ir::width_mask(width);
  }
  /// Bit `i` is known with value `v`.
  bool is(unsigned i, bool v) const noexcept {
    return ((known >> i) & 1) != 0 && (((value >> i) & 1) != 0) == v;
  }

  friend bool operator==(const TernaryWord&, const TernaryWord&) = default;
};

/// X-propagating evaluation of a single operator — the three-valued
/// counterpart of `ir::eval_op` (which it defers to when every operand is
/// fully known). Exposed for unit testing.
TernaryWord ternary_op(ir::Op op, unsigned width, unsigned p0, unsigned p1,
                       const std::vector<TernaryWord>& operands,
                       const std::vector<unsigned>& operand_widths);

/// Three-valued simulator over one transition system. Holds a leaf
/// environment (state/input words, any of whose bits may be X) and
/// evaluates expressions over it with memoization; mutating the environment
/// invalidates the memo.
class TernarySim {
 public:
  /// `ts` must outlive the simulator. Expressions passed to `evaluate` must
  /// live in `ts`'s NodeManager.
  explicit TernarySim(const ir::TransitionSystem& ts);

  /// Bind every state/input leaf to the fully-known packed values of an
  /// extracted obligation (same order as ts.states() / ts.inputs()).
  void load(const std::vector<std::uint64_t>& state_values,
            const std::vector<std::uint64_t>& input_values);

  /// Make bit `bit` of state `state` unknown / concrete again.
  void set_state_bit_unknown(std::uint32_t state, std::uint32_t bit);
  void set_state_bit(std::uint32_t state, std::uint32_t bit, bool value);

  /// Make bit `bit` of input `input` unknown / concrete again.
  void set_input_bit_unknown(std::uint32_t input, std::uint32_t bit);
  void set_input_bit(std::uint32_t input, std::uint32_t bit, bool value);

  TernaryWord state_word(std::uint32_t state) const;

  /// Evaluate `root` under the current environment. Every Input/State leaf
  /// reachable from `root` must be bound.
  TernaryWord evaluate(ir::NodeRef root);

 private:
  const ir::TransitionSystem& ts_;
  std::unordered_map<ir::NodeRef, TernaryWord> env_;
  std::unordered_map<ir::NodeRef, TernaryWord> memo_;  ///< cleared on env edits
};

/// Ternary-lift an extracted obligation in place: drop cube literals whose
/// X-valuation still forces the lifting goal under the obligation's concrete
/// input values. Two goal shapes:
///  * `successor != nullptr` — predecessor lifting: every literal of the
///    successor cube must stay forced through the next-state functions (all
///    states in the lifted cube step into the successor cube under these
///    inputs);
///  * `successor == nullptr` — frontier bad-state lifting: `property` must
///    stay forced to 0 (all states in the lifted cube violate it under
///    these inputs).
/// Every environment constraint must additionally stay forced to 1 in both
/// shapes. `o.state_values` keeps the concrete witness; only `o.cube`
/// shrinks (never to empty). Returns the number of literals dropped.
///
/// After the state pass, an *input* pass re-runs the same probe over the
/// recorded input bits: each bit that can go X with the goal still forced is
/// provably irrelevant to this transition. The count lands in
/// `*lifted_inputs` (when non-null). `o.input_values` stays fully concrete —
/// counterexample chains are rebuilt by re-simulating through the recorded
/// inputs, so the witness must survive lifting — which is also why the input
/// pass must run after the state pass: forcing is monotone in the X set, and
/// X-ing inputs first would only mask state bits the cube genuinely needs.
std::size_t lift_obligation(TernarySim& sim, const ir::TransitionSystem& ts,
                            Obligation& o, const Cube* successor,
                            ir::NodeRef property,
                            std::size_t* lifted_inputs = nullptr);

}  // namespace genfv::mc::pdr
