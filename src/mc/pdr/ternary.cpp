#include "mc/pdr/ternary.hpp"

#include <bit>

#include "util/status.hpp"

namespace genfv::mc::pdr {

namespace {

using ir::width_mask;

/// Largest value a word can take over all concretizations (X bits -> 1).
std::uint64_t max_value(const TernaryWord& a, unsigned width) {
  return (a.value | (~a.known & width_mask(width))) & width_mask(width);
}
/// Smallest value (X bits -> 0); the invariant keeps X positions of `value`
/// at 0 already.
std::uint64_t min_value(const TernaryWord& a) { return a.value; }

TernaryWord known_bool(bool v) { return {v ? 1ULL : 0ULL, 1}; }

/// Add/sub with a known-prefix carry argument: bit i of the sum is forced
/// whenever every operand bit at positions <= i is known (the carry into
/// i+1 is then exact too). `raw` is the full-width two's-complement result
/// computed from the min values.
TernaryWord prefix_arith(std::uint64_t raw, std::uint64_t known_both, unsigned width) {
  const unsigned prefix = std::countr_one(known_both & width_mask(width));
  const std::uint64_t mask = prefix >= 64 ? ~0ULL : ((1ULL << prefix) - 1);
  const std::uint64_t known = mask & width_mask(width);
  return {raw & known, known};
}

}  // namespace

TernaryWord ternary_op(ir::Op op, unsigned width, unsigned p0, unsigned p1,
                       const std::vector<TernaryWord>& v,
                       const std::vector<unsigned>& w) {
  const std::uint64_t mask = width_mask(width);

  // Fast path: every operand fully known -> defer to the exact evaluator,
  // the single source of truth for operator semantics.
  bool all_known = true;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!v[i].fully_known(w[i])) {
      all_known = false;
      break;
    }
  }
  if (all_known) {
    std::vector<std::uint64_t> vals;
    vals.reserve(v.size());
    for (const TernaryWord& word : v) vals.push_back(word.value);
    return {ir::eval_op(op, width, p0, p1, vals, w), mask};
  }

  switch (op) {
    case ir::Op::Const:
    case ir::Op::Input:
    case ir::Op::State:
      throw UsageError("ternary_op called on a leaf");

    case ir::Op::Not:
      return {~v[0].value & v[0].known & mask, v[0].known & mask};
    case ir::Op::And: {
      const std::uint64_t known0 =
          (v[0].known & ~v[0].value) | (v[1].known & ~v[1].value);
      const std::uint64_t known1 = v[0].known & v[0].value & v[1].known & v[1].value;
      return {known1 & mask, (known0 | known1) & mask};
    }
    case ir::Op::Or: {
      const std::uint64_t known1 = (v[0].known & v[0].value) | (v[1].known & v[1].value);
      const std::uint64_t known0 =
          v[0].known & ~v[0].value & v[1].known & ~v[1].value;
      return {known1 & mask, (known0 | known1) & mask};
    }
    case ir::Op::Xor: {
      const std::uint64_t known = v[0].known & v[1].known & mask;
      return {(v[0].value ^ v[1].value) & known, known};
    }

    case ir::Op::Neg:
      // -a = 0 - a: exact up to (excluding) the lowest unknown bit.
      return prefix_arith((~v[0].value + 1), v[0].known, width);
    case ir::Op::Add:
      return prefix_arith(v[0].value + v[1].value, v[0].known & v[1].known, width);
    case ir::Op::Sub:
      return prefix_arith(v[0].value - v[1].value, v[0].known & v[1].known, width);

    // Products, quotients and data-dependent shifts do not propagate X
    // profitably bit by bit; give up (the all-known fast path above still
    // evaluates them exactly).
    case ir::Op::Mul:
    case ir::Op::Udiv:
    case ir::Op::Urem:
      return TernaryWord::unknown(width);

    case ir::Op::Shl: {
      if (!v[1].fully_known(w[1])) return TernaryWord::unknown(width);
      const std::uint64_t amount = v[1].value;
      if (amount >= width) return TernaryWord::constant(0, width);
      // Vacated low positions are known zeros.
      return {(v[0].value << amount) & mask,
              ((v[0].known << amount) | width_mask(static_cast<unsigned>(amount))) & mask};
    }
    case ir::Op::Lshr: {
      if (!v[1].fully_known(w[1])) return TernaryWord::unknown(width);
      const std::uint64_t amount = v[1].value;
      if (amount >= width) return TernaryWord::constant(0, width);
      // Vacated high positions are known zeros.
      const std::uint64_t high =
          mask & ~(width_mask(width) >> amount);
      return {v[0].value >> amount, ((v[0].known >> amount) | high) & mask};
    }
    case ir::Op::Ashr: {
      const unsigned opw = w[0];
      if (!v[1].fully_known(w[1])) return TernaryWord::unknown(width);
      const std::uint64_t amount = v[1].value;
      const bool sign_known = ((v[0].known >> (opw - 1)) & 1) != 0;
      const bool sign = ((v[0].value >> (opw - 1)) & 1) != 0;
      if (amount >= opw) {
        if (!sign_known) return TernaryWord::unknown(width);
        return TernaryWord::constant(sign ? width_mask(opw) : 0, width);
      }
      const std::uint64_t high = width_mask(opw) & ~(width_mask(opw) >> amount);
      TernaryWord out{v[0].value >> amount, v[0].known >> amount};
      if (sign_known) {
        out.known |= high;
        if (sign) out.value |= high;
      }
      out.value &= width_mask(opw);
      out.known &= width_mask(opw);
      return out;
    }

    case ir::Op::Eq: {
      // Any position known on both sides with differing values decides it.
      if (((v[0].known & v[1].known) & (v[0].value ^ v[1].value)) != 0) {
        return known_bool(false);
      }
      return TernaryWord::unknown(1);
    }
    case ir::Op::Ult: {
      if (max_value(v[0], w[0]) < min_value(v[1])) return known_bool(true);
      if (min_value(v[0]) >= max_value(v[1], w[1])) return known_bool(false);
      return TernaryWord::unknown(1);
    }
    case ir::Op::Ule: {
      if (max_value(v[0], w[0]) <= min_value(v[1])) return known_bool(true);
      if (min_value(v[0]) > max_value(v[1], w[1])) return known_bool(false);
      return TernaryWord::unknown(1);
    }
    case ir::Op::Slt:
    case ir::Op::Sle:
      return TernaryWord::unknown(1);

    case ir::Op::Concat:
      return {((v[0].value << w[1]) | v[1].value) & mask,
              ((v[0].known << w[1]) | v[1].known) & mask};
    case ir::Op::Extract: {
      const std::uint64_t m = width_mask(p0 - p1 + 1);
      return {(v[0].value >> p1) & m, (v[0].known >> p1) & m};
    }
    case ir::Op::ZExt:
      // Extension bits are known zeros.
      return {v[0].value, (v[0].known | (mask & ~width_mask(w[0]))) & mask};
    case ir::Op::SExt: {
      const unsigned opw = w[0];
      const std::uint64_t high = mask & ~width_mask(opw);
      const bool sign_known = ((v[0].known >> (opw - 1)) & 1) != 0;
      const bool sign = ((v[0].value >> (opw - 1)) & 1) != 0;
      TernaryWord out = v[0];
      if (sign_known) {
        out.known |= high;
        if (sign) out.value |= high;
      }
      return out;
    }
    case ir::Op::Ite: {
      if ((v[0].known & 1) != 0) return (v[0].value & 1) != 0 ? v[1] : v[2];
      // Unknown selector: a bit is forced only where both branches agree.
      const std::uint64_t agree = ~(v[1].value ^ v[2].value);
      const std::uint64_t known = v[1].known & v[2].known & agree & mask;
      return {v[1].value & known, known};
    }

    case ir::Op::RedAnd:
      if ((v[0].known & ~v[0].value & width_mask(w[0])) != 0) return known_bool(false);
      return TernaryWord::unknown(1);
    case ir::Op::RedOr:
      if ((v[0].known & v[0].value) != 0) return known_bool(true);
      return TernaryWord::unknown(1);
    case ir::Op::RedXor:
      return TernaryWord::unknown(1);

    case ir::Op::Implies: {
      if (v[0].is(0, false) || v[1].is(0, true)) return known_bool(true);
      if (v[0].is(0, true) && v[1].is(0, false)) return known_bool(false);
      return TernaryWord::unknown(1);
    }
  }
  throw UsageError("ternary_op: unhandled operator");
}

TernarySim::TernarySim(const ir::TransitionSystem& ts) : ts_(ts) {}

void TernarySim::load(const std::vector<std::uint64_t>& state_values,
                      const std::vector<std::uint64_t>& input_values) {
  GENFV_ASSERT(state_values.size() == ts_.states().size(),
               "ternary load: state value count mismatch");
  GENFV_ASSERT(input_values.size() == ts_.inputs().size(),
               "ternary load: input value count mismatch");
  env_.clear();
  memo_.clear();
  for (std::size_t i = 0; i < state_values.size(); ++i) {
    const ir::NodeRef var = ts_.states()[i].var;
    env_[var] = TernaryWord::constant(state_values[i], var->width());
  }
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    const ir::NodeRef in = ts_.inputs()[i];
    env_[in] = TernaryWord::constant(input_values[i], in->width());
  }
}

void TernarySim::set_state_bit_unknown(std::uint32_t state, std::uint32_t bit) {
  TernaryWord& word = env_.at(ts_.states().at(state).var);
  word.known &= ~(1ULL << bit);
  word.value &= ~(1ULL << bit);
  memo_.clear();
}

void TernarySim::set_state_bit(std::uint32_t state, std::uint32_t bit, bool value) {
  TernaryWord& word = env_.at(ts_.states().at(state).var);
  word.known |= 1ULL << bit;
  if (value) {
    word.value |= 1ULL << bit;
  } else {
    word.value &= ~(1ULL << bit);
  }
  memo_.clear();
}

void TernarySim::set_input_bit_unknown(std::uint32_t input, std::uint32_t bit) {
  TernaryWord& word = env_.at(ts_.inputs().at(input));
  word.known &= ~(1ULL << bit);
  word.value &= ~(1ULL << bit);
  memo_.clear();
}

void TernarySim::set_input_bit(std::uint32_t input, std::uint32_t bit, bool value) {
  TernaryWord& word = env_.at(ts_.inputs().at(input));
  word.known |= 1ULL << bit;
  if (value) {
    word.value |= 1ULL << bit;
  } else {
    word.value &= ~(1ULL << bit);
  }
  memo_.clear();
}

TernaryWord TernarySim::state_word(std::uint32_t state) const {
  return env_.at(ts_.states().at(state).var);
}

TernaryWord TernarySim::evaluate(ir::NodeRef root) {
  // Iterative post-order, mirroring sim::evaluate (deep DAGs).
  std::vector<std::pair<ir::NodeRef, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (memo_.contains(node)) continue;

    if (node->is_leaf()) {
      if (node->is_const()) {
        memo_[node] = TernaryWord::constant(node->value(), node->width());
      } else {
        const auto it = env_.find(node);
        if (it == env_.end()) {
          throw UsageError("ternary evaluate: unbound leaf '" + node->name() + "'");
        }
        memo_[node] = it->second;
      }
      continue;
    }
    if (!expanded) {
      stack.push_back({node, true});
      for (const ir::NodeRef c : node->children()) {
        if (!memo_.contains(c)) stack.push_back({c, false});
      }
      continue;
    }
    std::vector<TernaryWord> vals;
    std::vector<unsigned> widths;
    vals.reserve(node->arity());
    widths.reserve(node->arity());
    for (const ir::NodeRef c : node->children()) {
      vals.push_back(memo_.at(c));
      widths.push_back(c->width());
    }
    memo_[node] =
        ternary_op(node->op(), node->width(), node->hi(), node->lo(), vals, widths);
  }
  return memo_.at(root);
}

std::size_t lift_obligation(TernarySim& sim, const ir::TransitionSystem& ts,
                            Obligation& o, const Cube* successor,
                            ir::NodeRef property, std::size_t* lifted_inputs) {
  GENFV_ASSERT(successor != nullptr || property != nullptr,
               "lifting needs a successor cube or a property goal");
  sim.load(o.state_values, o.input_values);

  // The goal must stay *forced* — known with the required value — for every
  // concretization of the X bits. With everything concrete it holds by
  // construction (the solver model satisfies the circuit semantics), so the
  // loop only ever weakens from a holding goal.
  auto forced = [&]() -> bool {
    for (const ir::NodeRef c : ts.constraints()) {
      if (!sim.evaluate(c).is(0, true)) return false;
    }
    if (successor != nullptr) {
      for (const StateLit& l : *successor) {
        const TernaryWord next = sim.evaluate(ts.states()[l.state].next);
        if (!next.is(l.bit, !l.negated)) return false;
      }
    } else {
      if (!sim.evaluate(property).is(0, false)) return false;
    }
    return true;
  };

  Cube kept;
  kept.reserve(o.cube.size());
  std::size_t dropped = 0;
  for (const StateLit& l : o.cube) {
    sim.set_state_bit_unknown(l.state, l.bit);
    if (forced()) {
      ++dropped;
      continue;
    }
    sim.set_state_bit(l.state, l.bit, !l.negated);  // restore the witness value
    kept.push_back(l);
  }
  if (kept.empty()) return 0;  // degenerate: keep the full concrete cube
  o.cube = std::move(kept);

  // Input pass — after the state pass, because forcing is monotone in the X
  // set: an input bit that survives here is irrelevant given exactly the
  // state bits just kept. The obligation's recorded inputs stay concrete
  // (counterexample re-simulation needs them); only the count is reported.
  if (lifted_inputs != nullptr) {
    for (std::size_t i = 0; i < ts.inputs().size(); ++i) {
      const unsigned width = ts.inputs()[i]->width();
      for (unsigned b = 0; b < width; ++b) {
        const bool concrete = ((o.input_values[i] >> b) & 1) != 0;
        sim.set_input_bit_unknown(static_cast<std::uint32_t>(i), b);
        if (forced()) {
          ++*lifted_inputs;
          continue;
        }
        sim.set_input_bit(static_cast<std::uint32_t>(i), b, concrete);
      }
    }
  }
  return dropped;
}

}  // namespace genfv::mc::pdr
