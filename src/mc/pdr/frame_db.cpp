#include "mc/pdr/frame_db.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace genfv::mc::pdr {

FrameDb::FrameDb() { levels_.emplace_back(); }

std::size_t FrameDb::levels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return levels_.size();
}

std::size_t FrameDb::frontier() const {
  std::lock_guard<std::mutex> lock(mu_);
  return levels_.size() - 1;
}

void FrameDb::push_level() {
  std::lock_guard<std::mutex> lock(mu_);
  levels_.emplace_back();
  journal_.push_back({Event::Kind::PushLevel, {}, levels_.size() - 1});
}

void FrameDb::add_blocked(Cube cube, std::size_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  GENFV_ASSERT(level >= 1 && level < levels_.size(), "cubes live at levels 1..N");
  // The new clause subsumes any weaker clause it implies at this level or
  // below; drop those from the bookkeeping (their mirrored solver clauses
  // remain, which is sound — merely redundant).
  for (std::size_t i = 1; i <= level; ++i) {
    std::erase_if(levels_[i], [&](const Cube& old) { return subsumes(cube, old); });
  }
  levels_[level].push_back(cube);
  journal_.push_back({Event::Kind::Block, std::move(cube), level});
}

bool FrameDb::is_blocked(const Cube& cube, std::size_t level) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = level; i < levels_.size(); ++i) {
    for (const Cube& blocked : levels_[i]) {
      if (subsumes(blocked, cube)) return true;
    }
  }
  return false;
}

void FrameDb::graduate(const Cube& cube, std::size_t level) {
  std::lock_guard<std::mutex> lock(mu_);
  GENFV_ASSERT(level >= 1 && level < levels_.size(), "graduation from levels 1..N");
  std::erase_if(levels_[level], [&](const Cube& old) { return old == cube; });
  infinity_.push_back(cube);
  journal_.push_back({Event::Kind::Graduate, cube, kInfinityLevel});
}

std::vector<Cube> FrameDb::cubes_at(std::size_t level) const {
  std::lock_guard<std::mutex> lock(mu_);
  GENFV_ASSERT(level < levels_.size(), "frame level out of range");
  return levels_[level];
}

std::vector<Cube> FrameDb::infinity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return infinity_;
}

std::size_t FrameDb::total_cubes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

std::size_t FrameDb::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_.size();
}

std::size_t FrameDb::events_since(std::size_t from, std::vector<Event>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  GENFV_ASSERT(out != nullptr, "events_since needs an output vector");
  GENFV_ASSERT(from <= journal_.size(), "epoch from the future");
  out->insert(out->end(), journal_.begin() + static_cast<std::ptrdiff_t>(from),
              journal_.end());
  return journal_.size();
}

FrameDb::Snapshot FrameDb::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {levels_, infinity_, journal_.size()};
}

}  // namespace genfv::mc::pdr
