#include "mc/pdr/frame_db.hpp"

#include <algorithm>

#include "mc/exchange.hpp"
#include "util/status.hpp"

namespace genfv::mc::pdr {

FrameDb::FrameDb() {
  util::MutexLock lock(mu_);
  levels_.emplace_back();
}

std::size_t FrameDb::levels() const {
  util::MutexLock lock(mu_);
  return levels_.size();
}

std::size_t FrameDb::frontier() const {
  util::MutexLock lock(mu_);
  return levels_.size() - 1;
}

void FrameDb::push_level() {
  util::MutexLock lock(mu_);
  levels_.emplace_back();
  journal_.push_back({Event::Kind::PushLevel, {}, levels_.size() - 1});
}

void FrameDb::add_blocked(Cube cube, std::size_t level) {
  util::MutexLock lock(mu_);
  GENFV_ASSERT(level >= 1 && level < levels_.size(), "cubes live at levels 1..N");
  // The new clause subsumes any weaker clause it implies at this level or
  // below; drop those from the bookkeeping (their mirrored solver clauses
  // remain, which is sound — merely redundant).
  for (std::size_t i = 1; i <= level; ++i) {
    std::erase_if(levels_[i], [&](const Cube& old) { return subsumes(cube, old); });
  }
  levels_[level].push_back(cube);
  journal_.push_back({Event::Kind::Block, std::move(cube), level});
}

bool FrameDb::is_blocked(const Cube& cube, std::size_t level) const {
  util::MutexLock lock(mu_);
  for (std::size_t i = level; i < levels_.size(); ++i) {
    for (const Cube& blocked : levels_[i]) {
      if (subsumes(blocked, cube)) return true;
    }
  }
  return false;
}

void FrameDb::graduate(const Cube& cube, std::size_t level) {
  util::MutexLock lock(mu_);
  GENFV_ASSERT(level >= 1 && level < levels_.size(), "graduation from levels 1..N");
  std::erase_if(levels_[level], [&](const Cube& old) { return old == cube; });
  infinity_.push_back(cube);
  journal_.push_back({Event::Kind::Graduate, cube, kInfinityLevel});
}

void FrameDb::add_infinity(Cube cube) {
  util::MutexLock lock(mu_);
  infinity_.push_back(cube);
  journal_.push_back({Event::Kind::Graduate, std::move(cube), kInfinityLevel});
}

std::optional<std::size_t> FrameDb::seed_may(Cube cube) {
  util::MutexLock lock(mu_);
  // Keyed on the same encoder as the mailbox AbsorbFilter (exchange_key), so
  // the two dedupe layers can never disagree on what "the same clause" is.
  // kInfinityLevel stands in for "level-less": may clauses carry no bound.
  if (!may_keys_.insert(mc::exchange_key(cube, kInfinityLevel)).second) {
    return std::nullopt;
  }
  const std::size_t id = next_may_id_++;
  may_.push_back({cube, id});
  journal_.push_back({Event::Kind::SeedMay, std::move(cube), id});
  return id;
}

bool FrameDb::remove_may(std::size_t id, std::size_t* counter) {
  util::MutexLock lock(mu_);
  return remove_may_locked(id, counter);
}

bool FrameDb::remove_may_locked(std::size_t id, std::size_t* counter) {
  const auto before = may_.size();
  std::erase_if(may_, [&](const MayClause& m) { return m.id == id; });
  if (may_.size() == before) return false;
  ++*counter;
  // Retraction and graduation journal identically: either way the mirror's
  // gated assumption dies (graduation re-enters through a Block event).
  journal_.push_back({Event::Kind::RetractMay, {}, id});
  return true;
}

bool FrameDb::retract_may(std::size_t id) { return remove_may(id, &may_retracted_); }

bool FrameDb::strike_may(std::size_t id) {
  util::MutexLock lock(mu_);
  for (MayClause& m : may_) {
    if (m.id != id) continue;
    if (++m.strikes < candidate_strikes_) return false;  // keep it, on notice
    return remove_may_locked(id, &may_retracted_);
  }
  return false;  // already retracted/graduated
}

void FrameDb::set_candidate_strikes(std::size_t limit) {
  util::MutexLock lock(mu_);
  candidate_strikes_ = std::max<std::size_t>(1, limit);
}

bool FrameDb::graduate_may(std::size_t id) { return remove_may(id, &may_graduated_); }

void FrameDb::mark_may_init_ok(std::size_t id) {
  util::MutexLock lock(mu_);
  for (MayClause& m : may_) {
    if (m.id == id) m.init_ok = true;
  }
}

std::vector<FrameDb::MayClause> FrameDb::may_clauses() const {
  util::MutexLock lock(mu_);
  return may_;
}

std::size_t FrameDb::may_seeded() const {
  util::MutexLock lock(mu_);
  return next_may_id_;
}

std::size_t FrameDb::may_graduated() const {
  util::MutexLock lock(mu_);
  return may_graduated_;
}

std::size_t FrameDb::may_retracted() const {
  util::MutexLock lock(mu_);
  return may_retracted_;
}

std::vector<Cube> FrameDb::cubes_at(std::size_t level) const {
  util::MutexLock lock(mu_);
  GENFV_ASSERT(level < levels_.size(), "frame level out of range");
  return levels_[level];
}

std::vector<Cube> FrameDb::infinity() const {
  util::MutexLock lock(mu_);
  return infinity_;
}

std::size_t FrameDb::total_cubes() const {
  util::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

std::size_t FrameDb::epoch() const {
  util::MutexLock lock(mu_);
  return journal_.size();
}

std::size_t FrameDb::events_since(std::size_t from, std::vector<Event>* out) const {
  util::MutexLock lock(mu_);
  GENFV_ASSERT(out != nullptr, "events_since needs an output vector");
  GENFV_ASSERT(from <= journal_.size(), "epoch from the future");
  out->insert(out->end(), journal_.begin() + static_cast<std::ptrdiff_t>(from),
              journal_.end());
  return journal_.size();
}

FrameDb::Snapshot FrameDb::snapshot() const {
  util::MutexLock lock(mu_);
  return {levels_, infinity_, may_, journal_.size()};
}

}  // namespace genfv::mc::pdr
