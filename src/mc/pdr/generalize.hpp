#pragma once

/// \file generalize.hpp
/// Inductive generalization: shrink a relatively-inductive cube so the
/// learnt clause ¬cube blocks as many states as possible. Unsat-core filter
/// first, then initiation repair, then (optionally) MIC-style greedy literal
/// dropping. All SAT work runs in the calling worker's `QueryContext`; the
/// result is a manager-neutral cube ready for `FrameDb::add_blocked`.

#include <vector>

#include "mc/pdr/context.hpp"
#include "mc/pdr/cube.hpp"

namespace genfv::mc::pdr {

/// Shrink a relatively-inductive `cube` at `level`: keep the literals named
/// by `core` (the failed assumptions of the blocking query), repair
/// initiation, then greedily drop further literals while the cube stays
/// disjoint from init and relatively inductive (PdrOptions::generalize_drop).
Cube generalize(QueryContext& ctx, const Cube& cube, std::size_t level,
                const std::vector<sat::Lit>& core, const PdrOptions& options);

/// Re-add literals of `full` until `g` no longer intersects the initial
/// states. `full` itself is known disjoint from init, so this terminates.
void repair_initiation(QueryContext& ctx, Cube& g, const Cube& full);

}  // namespace genfv::mc::pdr
