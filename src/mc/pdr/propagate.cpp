#include "mc/pdr/propagate.hpp"

#include <atomic>
#include <thread>

#include "mc/pdr/blocking.hpp"

namespace genfv::mc::pdr {

PropagateOutcome propagate_all(QueryContext& ctx, FrameDb& db,
                               const PdrOptions& options) {
  const std::size_t frontier = db.frontier();
  for (std::size_t i = 1; i < frontier; ++i) {
    if (ctx.stopped()) return PropagateOutcome::Budget;
    const std::vector<Cube> snapshot = db.cubes_at(i);
    for (const Cube& cube : snapshot) {
      if (db.is_blocked(cube, i + 1)) continue;
      const sat::LBool answer =
          ctx.relative_query(cube, i + 1, /*assume_not_cube=*/false, nullptr);
      if (answer == sat::LBool::Undef) return PropagateOutcome::Budget;
      if (answer == sat::LBool::False) record_blocked(db, options, cube, i + 1);
    }
  }
  return PropagateOutcome::Done;
}

PropagateOutcome propagate_sharded(const std::vector<QueryContext*>& contexts,
                                   FrameDb& db, const PdrOptions& options) {
  const std::size_t frontier = db.frontier();
  const std::size_t n = contexts.size();
  for (std::size_t i = 1; i < frontier; ++i) {
    if (contexts[0]->stopped()) return PropagateOutcome::Budget;
    const std::vector<Cube> snapshot = db.cubes_at(i);
    if (snapshot.empty()) continue;

    std::atomic<bool> interrupted{false};
    std::vector<std::vector<Cube>> pushed(n);
    auto shard = [&](std::size_t w) {
      QueryContext& ctx = *contexts[w];
      for (std::size_t idx = w; idx < snapshot.size(); idx += n) {
        if (interrupted.load(std::memory_order_relaxed) || ctx.stopped()) return;
        const Cube& cube = snapshot[idx];
        if (db.is_blocked(cube, i + 1)) continue;
        const sat::LBool answer =
            ctx.relative_query(cube, i + 1, /*assume_not_cube=*/false, nullptr);
        if (answer == sat::LBool::Undef) {
          interrupted.store(true, std::memory_order_relaxed);
          return;
        }
        if (answer == sat::LBool::False) pushed[w].push_back(cube);
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (std::size_t w = 1; w < n; ++w) threads.emplace_back(shard, w);
    shard(0);
    for (std::thread& t : threads) t.join();
    if (interrupted.load(std::memory_order_relaxed) || contexts[0]->stopped()) {
      return PropagateOutcome::Budget;
    }
    // Merge under the caller's thread: the database dedupes via subsumption,
    // and the is_blocked re-check skips cubes another shard also pushed.
    for (std::size_t w = 0; w < n; ++w) {
      for (const Cube& cube : pushed[w]) {
        if (db.is_blocked(cube, i + 1)) continue;
        record_blocked(db, options, cube, i + 1);
      }
    }
  }
  return PropagateOutcome::Done;
}

bool may_proof_pass(QueryContext& ctx, FrameDb& db, const PdrOptions& options) {
  if (!options.seed_candidates) return true;
  std::vector<FrameDb::MayClause> cand = db.may_clauses();
  if (cand.empty()) return true;

  // Initiation: a candidate clause violated by an initial state is no
  // invariant — retract it for good (the FrameDb remembers its key, so a
  // re-publish cannot re-seed it). The check is immutable, so its outcome
  // is cached per candidate (`init_ok`) and never re-queried.
  std::vector<FrameDb::MayClause> live;
  live.reserve(cand.size());
  for (FrameDb::MayClause& m : cand) {
    if (m.init_ok) {
      live.push_back(std::move(m));
      continue;
    }
    if (ctx.stopped()) return false;
    const sat::LBool in_init = ctx.intersects_init(m.cube);
    if (in_init == sat::LBool::Undef) return false;
    if (in_init == sat::LBool::True) {
      db.retract_may(m.id);
    } else {
      db.mark_may_init_ok(m.id);
      live.push_back(std::move(m));
    }
  }

  // Greatest fixpoint of mutual may-induction at the frontier (see the
  // header for the soundness argument).
  const std::size_t level = db.frontier();
  while (!live.empty()) {
    if (ctx.stopped()) return false;
    std::vector<std::size_t> ids;
    ids.reserve(live.size());
    for (const FrameDb::MayClause& m : live) ids.push_back(m.id);
    std::ptrdiff_t failed = -1;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const sat::LBool answer = ctx.may_consecution_query(ids, live[i].cube, level);
      if (answer == sat::LBool::Undef) return false;
      if (answer == sat::LBool::True) {
        failed = static_cast<std::ptrdiff_t>(i);
        break;
      }
    }
    if (failed < 0) break;  // fixpoint: every survivor is consecutive
    live.erase(live.begin() + failed);
  }

  for (const FrameDb::MayClause& m : live) {
    // Graduation order matters: remove the may entry first so the frame
    // clause that replaces it is never double-counted by is_blocked.
    if (!db.graduate_may(m.id)) continue;  // a racing worker retracted it
    if (!db.is_blocked(m.cube, level)) record_blocked(db, options, m.cube, level);
  }
  return true;
}

bool push_to_infinity(QueryContext& ctx, FrameDb& db, const PdrOptions& options) {
  std::vector<Cube> cand = db.cubes_at(db.frontier());
  while (!cand.empty()) {
    if (ctx.stopped()) return false;
    // Mirror any pending events first: the pass gate and candidate clauses
    // below must be the *last* facts in the solver so retiring the gate
    // leaves no live clause behind.
    ctx.sync();
    const sat::Lit gate = ctx.new_gate();
    for (const Cube& c : cand) {
      std::vector<sat::Lit> clause{~gate};
      for (const StateLit& l : c) clause.push_back(~ctx.cube_lit(0, l));
      ctx.solver().add_clause(std::move(clause));
    }
    std::ptrdiff_t failed = -1;
    for (std::size_t i = 0; i < cand.size(); ++i) {
      std::vector<sat::Lit> assumptions{gate};
      for (const StateLit& l : cand[i]) assumptions.push_back(ctx.cube_lit(1, l));
      const sat::LBool answer = ctx.solver().solve(assumptions);
      if (answer == sat::LBool::Undef) {
        ctx.retire_gate(gate);
        return false;
      }
      if (answer == sat::LBool::True) {
        failed = static_cast<std::ptrdiff_t>(i);
        break;
      }
    }
    ctx.retire_gate(gate);  // retire this pass's gate
    if (failed < 0) break;  // fixpoint: every candidate is consecutive
    cand.erase(cand.begin() + failed);
  }
  const std::size_t frontier = db.frontier();
  std::vector<ExchangedClause> batch;
  for (const Cube& c : cand) {
    db.graduate(c, frontier);
    if (options.exchange != nullptr) {
      batch.push_back(to_exchanged(c, kExchangeProvenLevel));
    }
  }
  // One atomic publish: the survivors are only *jointly* inductive, and an
  // absorbing PDR run folds fetched proven clauses straight into its F_∞ and
  // its exported certificate — it must never see half of this set.
  if (options.exchange != nullptr) {
    options.exchange->publish_batch(options.exchange_slot, std::move(batch));
  }
  return true;
}

}  // namespace genfv::mc::pdr
