#include "mc/pdr/propagate.hpp"

#include <atomic>
#include <thread>

#include "mc/pdr/blocking.hpp"

namespace genfv::mc::pdr {

PropagateOutcome propagate_all(QueryContext& ctx, FrameDb& db,
                               const PdrOptions& options) {
  const std::size_t frontier = db.frontier();
  for (std::size_t i = 1; i < frontier; ++i) {
    if (ctx.stopped()) return PropagateOutcome::Budget;
    const std::vector<Cube> snapshot = db.cubes_at(i);
    for (const Cube& cube : snapshot) {
      if (db.is_blocked(cube, i + 1)) continue;
      const sat::LBool answer =
          ctx.relative_query(cube, i + 1, /*assume_not_cube=*/false, nullptr);
      if (answer == sat::LBool::Undef) return PropagateOutcome::Budget;
      if (answer == sat::LBool::False) record_blocked(db, options, cube, i + 1);
    }
  }
  return PropagateOutcome::Done;
}

PropagateOutcome propagate_sharded(const std::vector<QueryContext*>& contexts,
                                   FrameDb& db, const PdrOptions& options) {
  const std::size_t frontier = db.frontier();
  const std::size_t n = contexts.size();
  for (std::size_t i = 1; i < frontier; ++i) {
    if (contexts[0]->stopped()) return PropagateOutcome::Budget;
    const std::vector<Cube> snapshot = db.cubes_at(i);
    if (snapshot.empty()) continue;

    std::atomic<bool> interrupted{false};
    std::vector<std::vector<Cube>> pushed(n);
    auto shard = [&](std::size_t w) {
      QueryContext& ctx = *contexts[w];
      for (std::size_t idx = w; idx < snapshot.size(); idx += n) {
        if (interrupted.load(std::memory_order_relaxed) || ctx.stopped()) return;
        const Cube& cube = snapshot[idx];
        if (db.is_blocked(cube, i + 1)) continue;
        const sat::LBool answer =
            ctx.relative_query(cube, i + 1, /*assume_not_cube=*/false, nullptr);
        if (answer == sat::LBool::Undef) {
          interrupted.store(true, std::memory_order_relaxed);
          return;
        }
        if (answer == sat::LBool::False) pushed[w].push_back(cube);
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (std::size_t w = 1; w < n; ++w) threads.emplace_back(shard, w);
    shard(0);
    for (std::thread& t : threads) t.join();
    if (interrupted.load(std::memory_order_relaxed) || contexts[0]->stopped()) {
      return PropagateOutcome::Budget;
    }
    // Merge under the caller's thread: the database dedupes via subsumption,
    // and the is_blocked re-check skips cubes another shard also pushed.
    for (std::size_t w = 0; w < n; ++w) {
      for (const Cube& cube : pushed[w]) {
        if (db.is_blocked(cube, i + 1)) continue;
        record_blocked(db, options, cube, i + 1);
      }
    }
  }
  return PropagateOutcome::Done;
}

bool push_to_infinity(QueryContext& ctx, FrameDb& db, const PdrOptions& options) {
  std::vector<Cube> cand = db.cubes_at(db.frontier());
  while (!cand.empty()) {
    if (ctx.stopped()) return false;
    // Mirror any pending events first: the pass gate and candidate clauses
    // below must be the *last* facts in the solver so retiring the gate
    // leaves no live clause behind.
    ctx.sync();
    const sat::Lit gate = ctx.new_gate();
    for (const Cube& c : cand) {
      std::vector<sat::Lit> clause{~gate};
      for (const StateLit& l : c) clause.push_back(~ctx.cube_lit(0, l));
      ctx.solver().add_clause(std::move(clause));
    }
    std::ptrdiff_t failed = -1;
    for (std::size_t i = 0; i < cand.size(); ++i) {
      std::vector<sat::Lit> assumptions{gate};
      for (const StateLit& l : cand[i]) assumptions.push_back(ctx.cube_lit(1, l));
      const sat::LBool answer = ctx.solver().solve(assumptions);
      if (answer == sat::LBool::Undef) {
        ctx.retire_gate(gate);
        return false;
      }
      if (answer == sat::LBool::True) {
        failed = static_cast<std::ptrdiff_t>(i);
        break;
      }
    }
    ctx.retire_gate(gate);  // retire this pass's gate
    if (failed < 0) break;  // fixpoint: every candidate is consecutive
    cand.erase(cand.begin() + failed);
  }
  const std::size_t frontier = db.frontier();
  for (const Cube& c : cand) {
    db.graduate(c, frontier);
    if (options.exchange != nullptr) {
      options.exchange->publish(options.exchange_slot,
                                to_exchanged(c, kExchangeProvenLevel));
    }
  }
  return true;
}

}  // namespace genfv::mc::pdr
