#pragma once

/// \file frames.hpp
/// The PDR frame trace F_0 ⊆ F_1 ⊆ … ⊆ F_N in delta encoding: each blocked
/// cube is stored only at the highest level where its clause is known to
/// hold, and the semantic frame F_i is the conjunction of all clauses stored
/// at levels ≥ i. Every level owns a solver activation literal; a query
/// against F_i assumes the activation literals of levels i..N, so one
/// incremental solver serves every frame.
///
/// Level 0 is the initial-state frame: its activation literal gates the
/// init-value equalities (created by the engine), and no cubes are ever
/// stored there.

#include <vector>

#include "mc/pdr/cube.hpp"
#include "sat/solver.hpp"

namespace genfv::mc::pdr {

/// Not thread-safe; lives on one engine's thread. Holds a reference to the
/// engine's transition solver (which must outlive it) and allocates one
/// activation variable in it per level.
class FrameTrace {
 public:
  /// `init_activation` is the literal gating the init-state constraint.
  FrameTrace(sat::Solver& solver, sat::Lit init_activation);

  /// Number of levels, counting level 0; the frontier is levels() - 1.
  std::size_t levels() const noexcept { return levels_.size(); }
  std::size_t frontier() const noexcept { return levels_.size() - 1; }

  /// Append a new (empty) frontier level with a fresh activation literal.
  void push_level();

  sat::Lit activation(std::size_t level) const { return levels_.at(level).activation; }

  /// Assumptions activating F_level: activation literals of levels i ≥ level.
  std::vector<sat::Lit> assumptions(std::size_t level) const;

  /// Record `cube` as blocked at `level` (its clause holds in F_1..F_level).
  /// Drops cubes at levels ≤ level that the new cube subsumes. Call
  /// is_blocked first if double-adding is possible; this does not re-check.
  void add_blocked(Cube cube, std::size_t level);

  /// True iff some recorded cube at a level ≥ `level` subsumes `cube`.
  bool is_blocked(const Cube& cube, std::size_t level) const;

  /// Remove one exact cube from `level`'s bookkeeping (no-op when absent).
  /// Used when a clause graduates to F_∞: the engine re-asserts it ungated,
  /// so the gated solver clause left behind is redundant, not wrong.
  void erase_blocked(const Cube& cube, std::size_t level);

  const std::vector<Cube>& cubes_at(std::size_t level) const {
    return levels_.at(level).blocked;
  }

  /// Total number of live (non-subsumed) cubes across all levels.
  std::size_t total_cubes() const noexcept;

 private:
  struct Level {
    sat::Lit activation;
    std::vector<Cube> blocked;
  };

  sat::Solver& solver_;
  std::vector<Level> levels_;
};

}  // namespace genfv::mc::pdr
