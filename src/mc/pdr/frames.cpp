#include "mc/pdr/frames.hpp"

#include "util/status.hpp"

namespace genfv::mc::pdr {

FrameTrace::FrameTrace(sat::Solver& solver, sat::Lit init_activation) : solver_(solver) {
  levels_.push_back({init_activation, {}});
}

void FrameTrace::push_level() {
  levels_.push_back({sat::mk_lit(solver_.new_var()), {}});
}

std::vector<sat::Lit> FrameTrace::assumptions(std::size_t level) const {
  GENFV_ASSERT(level < levels_.size(), "frame level out of range");
  std::vector<sat::Lit> out;
  out.reserve(levels_.size() - level);
  for (std::size_t i = level; i < levels_.size(); ++i) {
    out.push_back(levels_[i].activation);
  }
  return out;
}

void FrameTrace::add_blocked(Cube cube, std::size_t level) {
  GENFV_ASSERT(level >= 1 && level < levels_.size(), "cubes live at levels 1..N");
  // The new clause subsumes any weaker clause it implies at this level or
  // below; drop those from the bookkeeping (their solver clauses remain,
  // which is sound — merely redundant).
  for (std::size_t i = 1; i <= level; ++i) {
    auto& blocked = levels_[i].blocked;
    std::erase_if(blocked, [&](const Cube& old) { return subsumes(cube, old); });
  }
  levels_[level].blocked.push_back(std::move(cube));
}

bool FrameTrace::is_blocked(const Cube& cube, std::size_t level) const {
  for (std::size_t i = level; i < levels_.size(); ++i) {
    for (const Cube& blocked : levels_[i].blocked) {
      if (subsumes(blocked, cube)) return true;
    }
  }
  return false;
}

void FrameTrace::erase_blocked(const Cube& cube, std::size_t level) {
  auto& blocked = levels_.at(level).blocked;
  std::erase_if(blocked, [&](const Cube& old) { return old == cube; });
}

std::size_t FrameTrace::total_cubes() const noexcept {
  std::size_t n = 0;
  for (const auto& level : levels_) n += level.blocked.size();
  return n;
}

}  // namespace genfv::mc::pdr
