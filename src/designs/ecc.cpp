/// \file ecc.cpp
/// Error-correcting-code designs — the second design family named in the
/// paper's Results section ("The designs used were counters and ECC"). Their
/// key invariants are GF(2)/parity relations between the stored codeword and
/// the shadow data, which only the deepest mining pass (xor_linear) finds —
/// mechanically reproducing "the quality of generated assertions was much
/// better in the case of LLMs from OpenAI".

#include "designs/design.hpp"

namespace genfv::designs {

void register_ecc_designs(std::vector<DesignInfo>& out) {
  // --- parity_codec: single parity bit + sticky error flag -------------------------
  out.push_back(DesignInfo{
      .name = "parity_codec",
      .category = "ecc",
      .description = "4-bit register with parity bit and sticky checker flag",
      .spec =
          "A 4-bit data register is stored together with its even-parity bit: "
          "on every enabled write, data and parity are updated from the input "
          "in the same cycle. An audit input chk triggers a parity check, "
          "which sets a sticky error flag on mismatch. Because data and "
          "parity are always written together, the error flag never fires.",
      .rtl = R"(module parity_codec (input clk, rst, input en, chk, input [3:0] din,
                    output logic [3:0] data, output logic par, err_flag);
  always_ff @(posedge clk) begin
    if (rst) begin
      data <= 4'h0; par <= 1'b0; err_flag <= 1'b0;
    end else begin
      if (en) begin
        data <= din;
        par  <= ^din;
      end
      err_flag <= err_flag | (chk && ((^data) ^ par));
    end
  end
endmodule
)",
      .targets = {{"no_false_alarm",
                   "property no_false_alarm; !err_flag; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "xor_linear",
  });

  // --- hamming74: Hamming(7,4) with transient channel error -------------------------
  out.push_back(DesignInfo{
      .name = "hamming74",
      .category = "ecc",
      .description = "Hamming(7,4) codec correcting one transient channel error",
      .spec =
          "An encoder stores a Hamming(7,4) codeword of the 4-bit input; a "
          "shadow register keeps the original data. The channel may flip at "
          "most one codeword bit per cycle (transient injection via inject/"
          "err_pos). The decoder computes the syndrome, corrects the flipped "
          "bit and outputs the data bits, which always equal the shadow data.",
      .rtl = R"(module hamming74 (input clk, rst, input en, inject,
                  input [2:0] err_pos, input [3:0] din,
                  output logic [6:0] cw, output logic [3:0] shadow,
                  output [3:0] decoded);
  wire [6:0] received;
  wire [2:0] syn;
  wire [6:0] corrected;
  assign received = inject ? (cw ^ (7'b1 << err_pos)) : cw;
  assign syn = { received[3] ^ received[4] ^ received[5] ^ received[6],
                 received[1] ^ received[2] ^ received[5] ^ received[6],
                 received[0] ^ received[2] ^ received[4] ^ received[6] };
  assign corrected = (syn != 3'd0) ? (received ^ (7'b1 << (syn - 3'd1))) : received;
  assign decoded = {corrected[6], corrected[5], corrected[4], corrected[2]};
  always_ff @(posedge clk) begin
    if (rst) begin
      cw <= 7'h0; shadow <= 4'h0;
    end else if (en) begin
      cw <= { din[3], din[2], din[1],
              din[1] ^ din[2] ^ din[3],
              din[0],
              din[0] ^ din[2] ^ din[3],
              din[0] ^ din[1] ^ din[3] };
      shadow <= din;
    end
  end
endmodule
)",
      .targets = {{"corrects_single_error",
                   "property corrects_single_error; decoded == shadow; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "xor_linear",
  });

  // --- secded84: extended Hamming(8,4) SECDED ---------------------------------------
  out.push_back(DesignInfo{
      .name = "secded84",
      .category = "ecc",
      .description = "SECDED(8,4) codec: corrects one error, never flags double-error",
      .spec =
          "An extended Hamming(8,4) SECDED codec: the stored codeword is the "
          "Hamming(7,4) encoding of the 4-bit input plus an overall parity "
          "bit; a shadow register keeps the original data. The channel flips "
          "at most one codeword bit per cycle. The decoder corrects single "
          "errors (output always equals the shadow) and its double-error "
          "indication never fires, because at most one error is injected.",
      .rtl = R"(module secded84 (input clk, rst, input en, inject,
                 input [2:0] err_pos, input [3:0] din,
                 output logic [7:0] cw, output logic [3:0] shadow,
                 output [3:0] decoded, output ded);
  wire [7:0] received;
  wire [2:0] syn;
  wire parity_bad;
  wire [7:0] corrected;
  assign received = inject ? (cw ^ (8'b1 << err_pos)) : cw;
  assign syn = { received[3] ^ received[4] ^ received[5] ^ received[6],
                 received[1] ^ received[2] ^ received[5] ^ received[6],
                 received[0] ^ received[2] ^ received[4] ^ received[6] };
  assign parity_bad = ^received;
  assign ded = (syn != 3'd0) && !parity_bad;
  assign corrected = ((syn != 3'd0) && parity_bad)
                     ? (received ^ (8'b1 << (syn - 3'd1)))
                     : received;
  assign decoded = {corrected[6], corrected[5], corrected[4], corrected[2]};
  always_ff @(posedge clk) begin
    if (rst) begin
      cw <= 8'h0; shadow <= 4'h0;
    end else if (en) begin
      cw <= { din[0] ^ din[1] ^ din[2],
              din[3], din[2], din[1],
              din[1] ^ din[2] ^ din[3],
              din[0],
              din[0] ^ din[2] ^ din[3],
              din[0] ^ din[1] ^ din[3] };
      shadow <= din;
    end
  end
endmodule
)",
      .targets = {{"corrects_single_error",
                   "property corrects_single_error; decoded == shadow; endproperty"},
                  {"no_double_error_flag",
                   "property no_double_error_flag; !ded; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "xor_linear",
  });
}

}  // namespace genfv::designs
