/// \file datapath.cpp
/// Datapath designs: a dual-redundant pipeline (chained equality lemmas) and
/// a FIFO occupancy controller (pointer-difference lemma).

#include "designs/design.hpp"

namespace genfv::designs {

void register_datapath_designs(std::vector<DesignInfo>& out) {
  // --- dual_accumulator: lockstep duplicated integrator chain ----------------------
  // Both stages accumulate (carry state forward), so a divergence between
  // the redundant halves persists forever: the output-equality target is
  // not k-inductive for any k without the stage-1 equality lemma.
  out.push_back(DesignInfo{
      .name = "dual_accumulator",
      .category = "datapath",
      .description = "dual-redundant two-stage accumulator (chained equality lemmas)",
      .spec =
          "A safety-critical integrator is duplicated: two identical "
          "two-stage accumulators process the same 16-bit input stream (first "
          "stage integrates the input, second stage integrates the first), "
          "and a checker compares the outputs. The two second-stage "
          "accumulators are equal in every cycle.",
      .rtl = R"(module dual_accumulator (input clk, rst, input [15:0] din,
                         output logic [15:0] sum_a, sum_b);
  logic [15:0] acc_a, acc_b;
  always_ff @(posedge clk) begin
    if (rst) begin
      acc_a <= 16'h0; acc_b <= 16'h0;
      sum_a <= 16'h0; sum_b <= 16'h0;
    end else begin
      acc_a <= acc_a + din;
      acc_b <= acc_b + din;
      sum_a <= sum_a + acc_a;
      sum_b <= sum_b + acc_b;
    end
  end
endmodule
)",
      .targets = {{"lockstep_saturation",
                   "property lockstep_saturation; &sum_a |-> &sum_b; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "equality",
  });

  // --- fifo_ctrl: occupancy tracking --------------------------------------------
  out.push_back(DesignInfo{
      .name = "fifo_ctrl",
      .category = "datapath",
      .description = "depth-8 FIFO controller (pointer-difference lemma)",
      .spec =
          "A FIFO controller for a depth-8 buffer. Write and read pointers "
          "are 4 bits wide; full is flagged when the pointers are 8 apart and "
          "empty when they are equal. Writes are ignored when full, reads "
          "when empty. A separate occupancy counter tracks the number of "
          "stored entries and never exceeds the buffer depth of 8.",
      .rtl = R"(module fifo_ctrl (input clk, rst, input wr_en, rd_en,
                 output logic [3:0] wptr, rptr, count,
                 output full, empty);
  assign full  = ((wptr - rptr) == 4'd8);
  assign empty = (wptr == rptr);
  wire do_wr;
  wire do_rd;
  assign do_wr = wr_en && !full;
  assign do_rd = rd_en && !empty;
  always_ff @(posedge clk) begin
    if (rst) begin
      wptr <= 4'h0; rptr <= 4'h0; count <= 4'h0;
    end else begin
      if (do_wr) wptr <= wptr + 4'h1;
      if (do_rd) rptr <= rptr + 4'h1;
      count <= (count + (do_wr ? 4'h1 : 4'h0)) - (do_rd ? 4'h1 : 4'h0);
    end
  end
endmodule
)",
      .targets = {{"occupancy_bounded",
                   "property occupancy_bounded; count <= 4'd8; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "difference",
  });
}

}  // namespace genfv::designs
