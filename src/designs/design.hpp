#pragma once

/// \file design.hpp
/// The built-in design zoo: the paper's evaluation designs (synchronized
/// counters, ECC codecs) plus the supporting families a formal-verification
/// team actually runs this flow on (FSMs, arbiters, FIFOs, pipelines). Each
/// entry carries RTL source, a natural-language spec (prompt input) and the
/// target SVA properties, together with metadata the benches use.

#include <string>
#include <vector>

#include "flow/session.hpp"

namespace genfv::designs {

struct DesignInfo {
  std::string name;
  std::string category;     ///< "counters", "fsm", "datapath", "ecc"
  std::string description;  ///< one line, for tables
  std::string spec;         ///< natural-language specification (prompt input)
  std::string rtl;          ///< SystemVerilog source
  std::vector<flow::TargetSpec> targets;
  /// True when plain k-induction (no lemmas, small k) already proves every
  /// target — i.e. the design does NOT need the GenAI flow. Used by benches
  /// to show the flow does not hurt easy cases.
  bool inductive_without_lemmas = false;
  /// Mining pass expected to produce the key lemma ("" when none needed).
  std::string key_insight;
};

/// All registered designs, stable order.
const std::vector<DesignInfo>& all_designs();

/// Lookup by name; throws UsageError when absent.
const DesignInfo& design_by_name(const std::string& name);

/// Elaborate + compile a design into a runnable verification task.
flow::VerificationTask make_task(const DesignInfo& info);
flow::VerificationTask make_task(const std::string& name);

}  // namespace genfv::designs
