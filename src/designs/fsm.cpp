/// \file fsm.cpp
/// Control designs: a rotating-token arbiter (one-hot lemma) and a sequencer
/// whose safety hinges on a range lemma for its phase counter.

#include "designs/design.hpp"

namespace genfv::designs {

void register_fsm_designs(std::vector<DesignInfo>& out) {
  // --- token_ring: rotating one-hot token arbiter ---------------------------------
  out.push_back(DesignInfo{
      .name = "token_ring",
      .category = "fsm",
      .description = "4-station rotating-token arbiter (one-hot lemma)",
      .spec =
          "Four stations share a bus. A single token rotates between the "
          "stations, one position per cycle. A station's grant is asserted "
          "when it holds the token and raises a request. At most one station "
          "may be granted in any cycle.",
      .rtl = R"(module token_ring (input clk, rst, input [3:0] req,
                  output logic [3:0] token, gnt);
  always_ff @(posedge clk) begin
    if (rst) begin
      token <= 4'b0001;
      gnt   <= 4'b0000;
    end else begin
      token <= {token[2:0], token[3]};
      gnt   <= token & req;
    end
  end
endmodule
)",
      .targets = {{"mutex_grant",
                   "property mutex_grant; $onehot0(gnt); endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "onehot",
  });

  // --- sequencer: mod-6 phase counter driving a lookup --------------------------
  out.push_back(DesignInfo{
      .name = "sequencer",
      .category = "fsm",
      .description = "mod-6 sequencer with a phase-decoded pattern register (bound lemma)",
      .spec =
          "A phase counter cycles through the values 0 to 5 and wraps back to "
          "0, advancing only on an external tick. On each tick a pattern "
          "register is loaded from a table indexed by the phase; the table "
          "has entries for phases 0 to 5 only, and the reserved value 0xFF "
          "must never be loaded.",
      .rtl = R"(module sequencer (input clk, rst, input tick,
                 output logic [3:0] phase, output logic [7:0] pattern);
  always_ff @(posedge clk) begin
    if (rst) begin
      phase   <= 4'd0;
      pattern <= 8'h11;
    end else if (tick) begin
      if (phase == 4'd5) phase <= 4'd0;
      else phase <= phase + 4'd1;
      case (phase)
        4'd0: pattern <= 8'h22;
        4'd1: pattern <= 8'h33;
        4'd2: pattern <= 8'h44;
        4'd3: pattern <= 8'h55;
        4'd4: pattern <= 8'h66;
        4'd5: pattern <= 8'h11;
        default: pattern <= 8'hFF;
      endcase
    end
  end
endmodule
)",
      .targets = {{"no_reserved_pattern",
                   "property no_reserved_pattern; pattern != 8'hFF; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "bounds",
  });
}

}  // namespace genfv::designs
