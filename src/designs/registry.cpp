#include "designs/design.hpp"

#include "util/status.hpp"

namespace genfv::designs {

// Each family file contributes its designs.
void register_counter_designs(std::vector<DesignInfo>& out);
void register_fsm_designs(std::vector<DesignInfo>& out);
void register_datapath_designs(std::vector<DesignInfo>& out);
void register_ecc_designs(std::vector<DesignInfo>& out);

const std::vector<DesignInfo>& all_designs() {
  static const std::vector<DesignInfo> designs = [] {
    std::vector<DesignInfo> out;
    register_counter_designs(out);
    register_fsm_designs(out);
    register_datapath_designs(out);
    register_ecc_designs(out);
    return out;
  }();
  return designs;
}

const DesignInfo& design_by_name(const std::string& name) {
  for (const auto& d : all_designs()) {
    if (d.name == name) return d;
  }
  throw UsageError("unknown design '" + name + "'");
}

flow::VerificationTask make_task(const DesignInfo& info) {
  return flow::VerificationTask::from_rtl(info.name, info.spec, info.rtl, info.targets);
}

flow::VerificationTask make_task(const std::string& name) {
  return make_task(design_by_name(name));
}

}  // namespace genfv::designs
