/// \file counters.cpp
/// Counter designs — including the paper's Listing 1 verbatim, which is the
/// worked example for Fig. 3 (induction-step failure on `&count1 |-> &count2`
/// repaired by the Listing 3 helper `count1 == count2`).

#include "designs/design.hpp"

namespace genfv::designs {

void register_counter_designs(std::vector<DesignInfo>& out) {
  // --- sync_counters: the paper's Listing 1 -----------------------------------
  out.push_back(DesignInfo{
      .name = "sync_counters",
      .category = "counters",
      .description = "two synchronized 32-bit counters (paper Listing 1)",
      .spec =
          "The module contains two 32-bit counters, count1 and count2. Both "
          "counters reset to zero when rst is asserted and increment by one "
          "every clock cycle otherwise. The counters are always synchronized: "
          "they hold the same value in every cycle.",
      .rtl = R"(module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
)",
      .targets = {{"equal_count",
                   "property equal_count; &count1 |-> &count2; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "equality",
  });

  // --- triple_counters: three-way lockstep -------------------------------------
  out.push_back(DesignInfo{
      .name = "triple_counters",
      .category = "counters",
      .description = "three lockstep 16-bit counters (two helper lemmas needed)",
      .spec =
          "Three 16-bit counters run in lockstep: all reset to zero and all "
          "increment together every cycle. Whenever the first counter is "
          "saturated (all ones), the other two are saturated as well.",
      .rtl = R"(module triple_counters (input clk, rst, output logic [15:0] c1, c2, c3);
  always_ff @(posedge clk) begin
    if (rst) begin
      c1 <= 16'h0;
      c2 <= 16'h0;
      c3 <= 16'h0;
    end else begin
      c1 <= c1 + 16'h1;
      c2 <= c2 + 16'h1;
      c3 <= c3 + 16'h1;
    end
  end
endmodule
)",
      .targets = {{"all_saturate",
                   "property all_saturate; &c1 |-> (&c2 && &c3); endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "equality",
  });

  // --- gray_counter: binary counter with incrementally-updated Gray shadow ---------
  // The Gray register is updated by toggling a single bit (the MSB of
  // bin ^ (bin+1)) instead of being recomputed from bin, so a corrupted
  // gray register stays corrupted forever: the decode-back target cannot be
  // proven by k-induction without the gray == bin ^ (bin >> 1) lemma.
  out.push_back(DesignInfo{
      .name = "gray_counter",
      .category = "counters",
      .description = "4-bit counter with incrementally-maintained Gray shadow register",
      .spec =
          "A 4-bit binary counter increments every cycle. A Gray-code shadow "
          "register tracks it incrementally: each cycle exactly one bit of "
          "the shadow is toggled, keeping the invariant gray = bin ^ (bin >> "
          "1). A combinational decoder converts the Gray value back to "
          "binary; the decoded value always equals the binary counter.",
      .rtl = R"(module gray_counter (input clk, rst, output logic [3:0] bin, gray,
                     output logic err, output [3:0] dec);
  wire [3:0] flip;
  assign flip = bin ^ (bin + 4'h1);
  assign dec = { gray[3],
                 gray[3] ^ gray[2],
                 gray[3] ^ gray[2] ^ gray[1],
                 gray[3] ^ gray[2] ^ gray[1] ^ gray[0] };
  always_ff @(posedge clk) begin
    if (rst) begin
      bin  <= 4'h0;
      gray <= 4'h0;
      err  <= 1'b0;
    end else begin
      bin  <= bin + 4'h1;
      gray <= gray ^ (flip ^ (flip >> 1));
      err  <= err | ((bin == 4'h0) && (dec != bin));
    end
  end
endmodule
)",
      .targets = {{"audit_never_fires",
                   "property audit_never_fires; !err; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "xor_linear",
  });

  // --- updown_pair: lockstep up/down counters with a constant skew -----------------
  out.push_back(DesignInfo{
      .name = "updown_pair",
      .category = "counters",
      .description = "two up/down counters in lockstep with constant offset 5",
      .spec =
          "Two 12-bit counters move in lockstep: both increment when dir is "
          "high and decrement when dir is low. They reset to 5 and 0 "
          "respectively, so their difference is always exactly 5 — in "
          "particular, they are never simultaneously saturated.",
      .rtl = R"(module updown_pair (input clk, rst, input dir,
                    output logic [11:0] lead, lag);
  always_ff @(posedge clk) begin
    if (rst) begin
      lead <= 12'd5;
      lag  <= 12'd0;
    end else if (dir) begin
      lead <= lead + 12'd1;
      lag  <= lag + 12'd1;
    end else begin
      lead <= lead - 12'd1;
      lag  <= lag - 12'd1;
    end
  end
endmodule
)",
      .targets = {{"never_both_saturated",
                   "property never_both_saturated; &lead |-> !(&lag); endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "difference",
  });

  // --- lfsr_pair: redundant scramblers ----------------------------------------------
  out.push_back(DesignInfo{
      .name = "lfsr_pair",
      .category = "counters",
      .description = "two identical LFSRs seeded together (equality lemma)",
      .spec =
          "A scrambler LFSR is duplicated for safety: both 16-bit registers "
          "are seeded with 1 on reset and advance with identical feedback "
          "every cycle, so the redundant copies always agree — whenever the "
          "primary is saturated, so is the shadow.",
      .rtl = R"(module lfsr_pair (input clk, rst, output logic [15:0] l1, l2);
  always_ff @(posedge clk) begin
    if (rst) begin
      l1 <= 16'h1;
      l2 <= 16'h1;
    end else begin
      l1 <= {l1[14:0], l1[15] ^ l1[13] ^ l1[12] ^ l1[10]};
      l2 <= {l2[14:0], l2[15] ^ l2[13] ^ l2[12] ^ l2[10]};
    end
  end
endmodule
)",
      .targets = {{"shadow_agrees",
                   "property shadow_agrees; &l1 |-> &l2; endproperty"}},
      .inductive_without_lemmas = false,
      .key_insight = "equality",
  });

  // --- lfsr16: easy case, inductive on its own -----------------------------------
  out.push_back(DesignInfo{
      .name = "lfsr16",
      .category = "counters",
      .description = "16-bit Fibonacci LFSR (inductive without lemmas)",
      .spec =
          "A 16-bit linear-feedback shift register seeded with 1 on reset. "
          "Feedback taps are chosen so the register never reaches the all-"
          "zero lockup state.",
      .rtl = R"(module lfsr16 (input clk, rst, output logic [15:0] state);
  always_ff @(posedge clk) begin
    if (rst) state <= 16'h1;
    else state <= {state[14:0], state[15] ^ state[13] ^ state[12] ^ state[10]};
  end
endmodule
)",
      .targets = {{"never_locks_up",
                   "property never_locks_up; state != 16'h0; endproperty"}},
      .inductive_without_lemmas = true,
      .key_insight = "",
  });
}

}  // namespace genfv::designs
