#include "hdl/elaborator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "hdl/parser.hpp"
#include "ir/substitute.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::hdl {

using ir::NodeRef;

// --- ExprBuilder ---------------------------------------------------------------

ExprBuilder::ExprBuilder(ir::NodeManager& nm, Resolver resolver)
    : nm_(nm), resolver_(std::move(resolver)), on_call_([](const Expr& call, ExprBuilder&) -> NodeRef {
        throw ParseError(std::to_string(call.line) + ":" + std::to_string(call.col),
                         "unsupported system call '" + call.text + "' in this context");
      }) {}

ExprBuilder::ExprBuilder(ir::NodeManager& nm, Resolver resolver, CallHandler on_call)
    : nm_(nm), resolver_(std::move(resolver)), on_call_(std::move(on_call)) {}

std::pair<NodeRef, NodeRef> ExprBuilder::build_balanced(const Expr& lhs, const Expr& rhs) {
  // Unsized literals adapt to the sibling operand's width when they fit,
  // which keeps circuits at the natural design width instead of 32 bits.
  const bool lhs_unsized_num = lhs.kind == Expr::Kind::Number && !lhs.sized;
  const bool rhs_unsized_num = rhs.kind == Expr::Kind::Number && !rhs.sized;
  if (lhs_unsized_num && !rhs_unsized_num) {
    const NodeRef r = build(rhs);
    const unsigned w = r->width();
    if (lhs.value <= ir::width_mask(w)) return {nm_.mk_const(lhs.value, w), r};
    return {nm_.mk_const(lhs.value, lhs.width), nm_.mk_zext(r, lhs.width)};
  }
  if (rhs_unsized_num && !lhs_unsized_num) {
    const NodeRef l = build(lhs);
    const unsigned w = l->width();
    if (rhs.value <= ir::width_mask(w)) return {l, nm_.mk_const(rhs.value, w)};
    return {nm_.mk_zext(l, rhs.width), nm_.mk_const(rhs.value, rhs.width)};
  }
  NodeRef l = build(lhs);
  NodeRef r = build(rhs);
  const unsigned w = std::max(l->width(), r->width());
  return {nm_.mk_zext(l, w), nm_.mk_zext(r, w)};
}

ir::NodeRef ExprBuilder::build_binary(const Expr& e) {
  const std::string& op = e.text;
  const Expr& lhs_ast = *e.args[0];
  const Expr& rhs_ast = *e.args[1];

  if (op == "&&") return nm_.mk_and(build_bool(lhs_ast), build_bool(rhs_ast));
  if (op == "||") return nm_.mk_or(build_bool(lhs_ast), build_bool(rhs_ast));

  if (op == "<<" || op == "<<<" || op == ">>" || op == ">>>") {
    const NodeRef value = build(lhs_ast);
    const NodeRef amount = build(rhs_ast);
    if (op == ">>") return nm_.mk_lshr(value, amount);
    if (op == ">>>") return nm_.mk_ashr(value, amount);
    return nm_.mk_shl(value, amount);
  }

  auto [l, r] = build_balanced(lhs_ast, rhs_ast);
  if (op == "&") return nm_.mk_and(l, r);
  if (op == "|") return nm_.mk_or(l, r);
  if (op == "^") return nm_.mk_xor(l, r);
  if (op == "~^") return nm_.mk_xnor(l, r);
  if (op == "+") return nm_.mk_add(l, r);
  if (op == "-") return nm_.mk_sub(l, r);
  if (op == "*") return nm_.mk_mul(l, r);
  if (op == "/") return nm_.mk_udiv(l, r);
  if (op == "%") return nm_.mk_urem(l, r);
  if (op == "==") return nm_.mk_eq(l, r);
  if (op == "!=") return nm_.mk_ne(l, r);
  if (op == "<") return nm_.mk_ult(l, r);
  if (op == "<=") return nm_.mk_ule(l, r);
  if (op == ">") return nm_.mk_ugt(l, r);
  if (op == ">=") return nm_.mk_uge(l, r);

  if (op == "|->" || op == "|=>") {
    throw ParseError(std::to_string(e.line) + ":" + std::to_string(e.col),
                     "implication operator '" + op + "' is only valid at property level");
  }
  throw ParseError(std::to_string(e.line) + ":" + std::to_string(e.col),
                   "unsupported binary operator '" + op + "'");
}

ir::NodeRef ExprBuilder::build_unary(const Expr& e) {
  const std::string& op = e.text;
  const NodeRef a = build(*e.args[0]);
  if (op == "!") return nm_.mk_not(nm_.mk_bool(a));
  if (op == "~") return nm_.mk_not(a);
  if (op == "-") return nm_.mk_neg(a);
  if (op == "+") return a;
  if (op == "&") return nm_.mk_redand(a);
  if (op == "|") return nm_.mk_redor(a);
  if (op == "^") return nm_.mk_redxor(a);
  if (op == "~&") return nm_.mk_not(nm_.mk_redand(a));
  if (op == "~|") return nm_.mk_not(nm_.mk_redor(a));
  if (op == "~^") return nm_.mk_not(nm_.mk_redxor(a));
  throw ParseError(std::to_string(e.line) + ":" + std::to_string(e.col),
                   "unsupported unary operator '" + op + "'");
}

ir::NodeRef ExprBuilder::build(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Number:
      return nm_.mk_const(e.value, e.width);
    case Expr::Kind::Id:
      return resolver_(e.text, e);
    case Expr::Kind::Unary:
      return build_unary(e);
    case Expr::Kind::Binary:
      return build_binary(e);
    case Expr::Kind::Ternary:
      {
        const NodeRef cond = build_bool(*e.args[0]);
        auto [t, el] = build_balanced(*e.args[1], *e.args[2]);
        return nm_.mk_ite(cond, t, el);
      }
    case Expr::Kind::Concat: {
      NodeRef acc = build(*e.args[0]);
      for (std::size_t i = 1; i < e.args.size(); ++i) {
        acc = nm_.mk_concat(acc, build(*e.args[i]));
      }
      return acc;
    }
    case Expr::Kind::Repl: {
      if (e.value == 0) {
        throw ParseError(std::to_string(e.line) + ":" + std::to_string(e.col),
                         "replication count must be positive");
      }
      const NodeRef item = build(*e.args[0]);
      NodeRef acc = item;
      for (std::uint64_t i = 1; i < e.value; ++i) acc = nm_.mk_concat(acc, item);
      return acc;
    }
    case Expr::Kind::Index: {
      const NodeRef base = build(*e.args[0]);
      const Expr& idx = *e.args[1];
      if (idx.kind == Expr::Kind::Number) {
        if (idx.value >= base->width()) {
          throw ParseError(std::to_string(e.line) + ":" + std::to_string(e.col),
                           "bit index out of range");
        }
        return nm_.mk_bit(base, static_cast<unsigned>(idx.value));
      }
      // Dynamic select: (base >> idx)[0].
      const NodeRef amount = build(idx);
      return nm_.mk_bit(nm_.mk_lshr(base, nm_.mk_resize(amount, base->width())), 0);
    }
    case Expr::Kind::Range: {
      const NodeRef base = build(*e.args[0]);
      if (e.msb >= base->width() || e.msb < e.lsb) {
        throw ParseError(std::to_string(e.line) + ":" + std::to_string(e.col),
                         "part-select out of range");
      }
      return nm_.mk_extract(base, e.msb, e.lsb);
    }
    case Expr::Kind::Call:
      return on_call_(e, *this);
  }
  throw ParseError("?", "unreachable expression kind");
}

ir::NodeRef ExprBuilder::build_bool(const Expr& e) { return nm_.mk_bool(build(e)); }

ir::NodeRef ExprBuilder::build_resized(const Expr& e, unsigned width) {
  // Unsized literals take the target width directly.
  if (e.kind == Expr::Kind::Number && !e.sized) return nm_.mk_const(e.value, width);
  return nm_.mk_resize(build(e), width);
}

void collect_names(const Expr& e, std::vector<std::string>& out) {
  if (e.kind == Expr::Kind::Id) out.push_back(e.text);
  for (const auto& arg : e.args) collect_names(*arg, out);
}

// --- elaboration ------------------------------------------------------------------

namespace {

[[noreturn]] void elab_error(int line, const std::string& msg) {
  throw ParseError("line " + std::to_string(line), msg);
}

/// Names commonly used for reset inputs (sync-reset detection heuristic).
bool looks_like_reset_name(const std::string& name) {
  const std::string lower = util::to_lower(name);
  return lower == "rst" || lower == "reset" || lower == "rst_n" || lower == "resetn" ||
         lower == "reset_n" || lower == "rst_ni" || lower == "arst" || lower == "arst_n" ||
         lower == "nrst";
}

bool name_is_active_low(const std::string& name) {
  const std::string lower = util::to_lower(name);
  return lower == "rst_n" || lower == "resetn" || lower == "reset_n" ||
         lower == "rst_ni" || lower == "arst_n" || lower == "nrst";
}

/// Symbolic machine state during statement execution.
struct SymState {
  /// Current-cycle view of every resolvable signal.
  std::map<std::string, NodeRef> env;
  /// Pending nonblocking assignments (register -> next value).
  std::map<std::string, NodeRef> nba;
};

class Elaborator {
 public:
  Elaborator(const Module& m, const ElaborateOptions& options)
      : module_(m), options_(options) {}

  ElaborationResult run();

 private:
  struct SigInfo {
    SignalDecl decl;
    bool is_register = false;
    bool is_comb_target = false;
    bool is_input = false;
  };

  void collect_signals();
  void scan_processes();
  void build_leaves();
  void build_comb();
  void build_sequential();
  void derive_inits();

  NodeRef resolve(const std::string& name, const Expr& at, const SymState& st) const;
  NodeRef build_expr(const Expr& e, const SymState& st);
  NodeRef build_expr_resized(const Expr& e, unsigned width, const SymState& st);

  void exec(const Stmt& stmt, SymState& st, bool sequential);
  void merge(SymState& into, const SymState& then_st, const SymState& else_st, NodeRef cond,
             int line);
  /// Apply an assignment to an lvalue expression, handling bit/part selects.
  void assign_lvalue(const Expr& lhs, NodeRef value_builder_rhs, SymState& st,
                     bool nonblocking, const Expr& rhs_ast, bool resize_to_target);

  std::string assigned_base_name(const Expr& lhs) const;

  const Module& module_;
  const ElaborateOptions& options_;

  ir::TransitionSystem ts_;
  std::map<std::string, SigInfo> signals_;
  std::map<std::string, std::uint64_t> params_;
  std::map<std::string, NodeRef> leaves_;  // inputs + states by name
  std::map<std::string, NodeRef> wires_;   // elaborated comb signals
  std::map<std::string, NodeRef> next_;    // register -> next expr

  std::string clock_;
  std::string reset_;
  bool reset_active_low_ = false;
};

std::string Elaborator::assigned_base_name(const Expr& lhs) const {
  const Expr* e = &lhs;
  while (e->kind == Expr::Kind::Index || e->kind == Expr::Kind::Range) {
    e = e->args[0].get();
  }
  if (e->kind != Expr::Kind::Id) {
    elab_error(lhs.line, "unsupported lvalue shape");
  }
  return e->text;
}

void Elaborator::collect_signals() {
  ts_.set_name(module_.name);

  // Parameters first (they may appear in expressions).
  for (const auto& p : module_.params) {
    // Constant-evaluate using previously seen params only.
    ExprBuilder builder(ts_.nm(), [this, &p](const std::string& name, const Expr& at) -> NodeRef {
      const auto it = params_.find(name);
      if (it == params_.end()) {
        throw ParseError(std::to_string(at.line),
                         "parameter '" + p.name + "' references unknown name '" + name + "'");
      }
      return ts_.nm().mk_const(it->second, 64);
    });
    const NodeRef v = builder.build(*p.value);
    if (!v->is_const()) elab_error(0, "parameter '" + p.name + "' is not constant");
    params_[p.name] = v->value();
  }

  for (const auto& decl : module_.signals) {
    if (signals_.contains(decl.name)) {
      elab_error(decl.line, "duplicate declaration of '" + decl.name + "'");
    }
    if (decl.dir == PortDir::Inout) {
      elab_error(decl.line, "inout ports are not supported");
    }
    if (decl.width < 1 || decl.width > 64) {
      // The IR's bit-vector discipline (and every downstream 64-bit value
      // path: simulation assignments, trace frames, PDR state packing) caps
      // signals at 64 bits. Reject here with the declaration's location
      // instead of letting NodeManager throw a context-free SortError.
      elab_error(decl.line, "signal '" + decl.name + "' is " +
                                std::to_string(decl.width) +
                                " bits wide; supported widths are 1..64");
    }
    SigInfo info;
    info.decl.name = decl.name;
    info.decl.dir = decl.dir;
    info.decl.net = decl.net;
    info.decl.width = decl.width;
    info.decl.line = decl.line;
    if (decl.init != nullptr) {
      // Clone not needed: we only keep a pointer into the module AST, which
      // outlives elaboration.
    }
    info.is_input = (decl.dir == PortDir::Input);
    signals_.emplace(decl.name, std::move(info));
  }
}

void Elaborator::scan_processes() {
  // Clock/reset discovery + register classification.
  for (const auto& blk : module_.always_blocks) {
    if (blk.combinational) continue;
    if (clock_.empty()) {
      clock_ = blk.clock;
    } else if (clock_ != blk.clock) {
      elab_error(blk.line, "multiple clocks are not supported ('" + clock_ + "' vs '" +
                               blk.clock + "')");
    }
    if (!blk.reset.empty()) {
      if (!reset_.empty() && reset_ != blk.reset) {
        elab_error(blk.line, "conflicting async resets");
      }
      reset_ = blk.reset;
      reset_active_low_ = blk.reset_active_low;
    }
  }

  // Explicit override from options.
  if (!options_.reset_name.empty()) {
    reset_ = options_.reset_name;
    reset_active_low_ = options_.reset_active_low;
  }

  // Sync-reset heuristic: top-level `if (rst) ...` on a reset-named input.
  if (reset_.empty()) {
    for (const auto& blk : module_.always_blocks) {
      if (blk.combinational) continue;
      const Stmt* body = blk.body.get();
      while (body != nullptr && body->kind == Stmt::Kind::Block && body->body.size() == 1) {
        body = body->body[0].get();
      }
      if (body == nullptr || body->kind != Stmt::Kind::If || body->cond == nullptr) continue;
      const Expr* cond = body->cond.get();
      bool negated = false;
      while (cond->kind == Expr::Kind::Unary && (cond->text == "!" || cond->text == "~")) {
        negated = !negated;
        cond = cond->args[0].get();
      }
      if (cond->kind == Expr::Kind::Id && looks_like_reset_name(cond->text)) {
        const auto it = signals_.find(cond->text);
        if (it != signals_.end() && it->second.is_input) {
          reset_ = cond->text;
          reset_active_low_ = negated;
          break;
        }
      }
    }
  }
  if (reset_.empty() == false && reset_active_low_ == false) {
    // Name-based fallback for active-low detection when the sensitivity list
    // gave us posedge (unusual for _n names but possible in the subset).
    reset_active_low_ = name_is_active_low(reset_);
  }

  // Classify assignment targets.
  std::function<void(const Stmt&, bool)> walk = [&](const Stmt& s, bool sequential) {
    switch (s.kind) {
      case Stmt::Kind::Block:
        for (const auto& sub : s.body) walk(*sub, sequential);
        break;
      case Stmt::Kind::If:
        walk(*s.then_stmt, sequential);
        if (s.else_stmt) walk(*s.else_stmt, sequential);
        break;
      case Stmt::Kind::Case:
        for (const auto& item : s.items) walk(*item.body, sequential);
        break;
      case Stmt::Kind::Nonblocking:
      case Stmt::Kind::Blocking:
      case Stmt::Kind::IncDec: {
        const std::string name = assigned_base_name(*s.lhs);
        const auto it = signals_.find(name);
        if (it == signals_.end()) elab_error(s.line, "assignment to undeclared '" + name + "'");
        if (sequential) {
          it->second.is_register = true;
        } else {
          it->second.is_comb_target = true;
        }
        break;
      }
      case Stmt::Kind::Empty:
        break;
    }
  };
  for (const auto& blk : module_.always_blocks) {
    walk(*blk.body, /*sequential=*/!blk.combinational);
  }
  for (const auto& a : module_.assigns) {
    const std::string name = assigned_base_name(*a.lhs);
    const auto it = signals_.find(name);
    if (it == signals_.end()) elab_error(a.line, "assignment to undeclared '" + name + "'");
    it->second.is_comb_target = true;
  }

  for (auto& [name, info] : signals_) {
    if (info.is_register && info.is_comb_target) {
      elab_error(info.decl.line, "'" + name + "' driven both sequentially and combinationally");
    }
    if (info.is_register && info.is_input) {
      elab_error(info.decl.line, "input port '" + name + "' cannot be assigned");
    }
  }
}

void Elaborator::build_leaves() {
  for (const auto& decl : module_.signals) {
    const SigInfo& info = signals_.at(decl.name);
    if (decl.name == clock_) continue;  // clock is implicit in cycle semantics
    if (info.is_input) {
      leaves_[decl.name] = ts_.add_input(decl.name, decl.width);
    } else if (info.is_register) {
      leaves_[decl.name] = ts_.add_state(decl.name, decl.width);
    }
    // Comb targets become signals after their expressions are built.
  }
}

NodeRef Elaborator::resolve(const std::string& name, const Expr& at, const SymState& st) const {
  if (const auto it = st.env.find(name); it != st.env.end()) return it->second;
  if (const auto it = params_.find(name); it != params_.end()) {
    // Parameters materialize as 32-bit unsized-style constants.
    return ts_.nm_ptr()->mk_const(it->second, 32);
  }
  if (name == clock_) {
    throw ParseError(std::to_string(at.line),
                     "the clock '" + name + "' cannot be used as data");
  }
  throw ParseError(std::to_string(at.line), "use of undefined signal '" + name + "'");
}

NodeRef Elaborator::build_expr(const Expr& e, const SymState& st) {
  ExprBuilder builder(ts_.nm(), [this, &st](const std::string& name, const Expr& at) {
    return resolve(name, at, st);
  });
  return builder.build(e);
}

NodeRef Elaborator::build_expr_resized(const Expr& e, unsigned width, const SymState& st) {
  ExprBuilder builder(ts_.nm(), [this, &st](const std::string& name, const Expr& at) {
    return resolve(name, at, st);
  });
  return builder.build_resized(e, width);
}

void Elaborator::assign_lvalue(const Expr& lhs, NodeRef /*unused*/, SymState& st,
                               bool nonblocking, const Expr& rhs_ast, bool) {
  auto& nm = ts_.nm();
  const std::string base = assigned_base_name(lhs);
  const unsigned base_width = signals_.at(base).decl.width;

  // Current full value of the base signal (for read-modify-write selects).
  // Nonblocking partial assignments layer onto the *pending* next value so
  // that `q[3:0] <= lo; q[7] <= b;` composes (last write per bit wins).
  auto current_of = [&]() -> NodeRef {
    if (nonblocking) {
      if (const auto it = st.nba.find(base); it != st.nba.end()) return it->second;
    }
    const auto it = st.env.find(base);
    if (it != st.env.end()) return it->second;
    elab_error(lhs.line, "partial assignment to '" + base + "' before any full assignment");
  };

  NodeRef new_value = nullptr;
  if (lhs.kind == Expr::Kind::Id) {
    new_value = build_expr_resized(rhs_ast, base_width, st);
  } else if (lhs.kind == Expr::Kind::Range) {
    const unsigned msb = lhs.msb;
    const unsigned lsb = lhs.lsb;
    if (msb >= base_width) elab_error(lhs.line, "part-select out of range on lvalue");
    const NodeRef old = current_of();
    const NodeRef fresh = build_expr_resized(rhs_ast, msb - lsb + 1, st);
    NodeRef acc = fresh;
    if (lsb > 0) acc = nm.mk_concat(acc, nm.mk_extract(old, lsb - 1, 0));
    if (msb + 1 < base_width) acc = nm.mk_concat(nm.mk_extract(old, base_width - 1, msb + 1), acc);
    new_value = acc;
  } else if (lhs.kind == Expr::Kind::Index) {
    const Expr& idx = *lhs.args[1];
    const NodeRef old = current_of();
    const NodeRef bit = build_expr_resized(rhs_ast, 1, st);
    if (idx.kind == Expr::Kind::Number) {
      const auto i = static_cast<unsigned>(idx.value);
      if (i >= base_width) elab_error(lhs.line, "bit index out of range on lvalue");
      NodeRef acc = bit;
      if (i > 0) acc = nm.mk_concat(acc, nm.mk_extract(old, i - 1, 0));
      if (i + 1 < base_width) acc = nm.mk_concat(nm.mk_extract(old, base_width - 1, i + 1), acc);
      new_value = acc;
    } else {
      // Dynamic index: mask-and-set.
      SymState& s = st;
      const NodeRef index = build_expr(idx, s);
      const NodeRef one = nm.mk_const(1, base_width);
      const NodeRef mask = nm.mk_shl(one, nm.mk_resize(index, base_width));
      const NodeRef cleared = nm.mk_and(old, nm.mk_not(mask));
      const NodeRef set = nm.mk_shl(nm.mk_zext(bit, base_width), nm.mk_resize(index, base_width));
      new_value = nm.mk_or(cleared, set);
    }
  } else {
    elab_error(lhs.line, "unsupported lvalue");
  }

  if (nonblocking) {
    st.nba[base] = new_value;
  } else {
    st.env[base] = new_value;
  }
}

void Elaborator::merge(SymState& into, const SymState& then_st, const SymState& else_st,
                       NodeRef cond, int line) {
  auto& nm = ts_.nm();
  // `hold_ok`: nonblocking maps may fall back to the register's current value
  // (flop hold semantics); combinational envs must not (inferred latch).
  auto merge_map = [&](std::map<std::string, NodeRef>& base,
                       const std::map<std::string, NodeRef>& a,
                       const std::map<std::string, NodeRef>& b, bool hold_ok) {
    std::set<std::string> keys;
    for (const auto& [k, v] : a) keys.insert(k);
    for (const auto& [k, v] : b) keys.insert(k);
    for (const std::string& k : keys) {
      auto value_in = [&](const std::map<std::string, NodeRef>& branch) -> NodeRef {
        if (const auto it = branch.find(k); it != branch.end()) return it->second;
        if (const auto it = base.find(k); it != base.end()) return it->second;
        if (hold_ok) {
          if (const auto it = leaves_.find(k); it != leaves_.end()) return it->second;
        }
        return nullptr;
      };
      const NodeRef va = value_in(a);
      const NodeRef vb = value_in(b);
      if (va == nullptr || vb == nullptr) {
        elab_error(line, "signal '" + k + "' is not assigned on all paths (inferred latch)");
      }
      base[k] = (va == vb) ? va : nm.mk_ite(cond, va, vb);
    }
  };
  merge_map(into.env, then_st.env, else_st.env, /*hold_ok=*/false);
  merge_map(into.nba, then_st.nba, else_st.nba, /*hold_ok=*/true);
}

void Elaborator::exec(const Stmt& stmt, SymState& st, bool sequential) {
  auto& nm = ts_.nm();
  switch (stmt.kind) {
    case Stmt::Kind::Empty:
      return;
    case Stmt::Kind::Block:
      for (const auto& sub : stmt.body) exec(*sub, st, sequential);
      return;
    case Stmt::Kind::If: {
      const NodeRef cond = ts_.nm().mk_bool(build_expr(*stmt.cond, st));
      SymState then_st = st;
      SymState else_st = st;
      exec(*stmt.then_stmt, then_st, sequential);
      if (stmt.else_stmt) exec(*stmt.else_stmt, else_st, sequential);
      // Keys only present in one branch fall back to `st` (pre-branch).
      merge(st, then_st, else_st, cond, stmt.line);
      return;
    }
    case Stmt::Kind::Case: {
      const NodeRef subject = build_expr(*stmt.subject, st);
      // Build an if-else chain: first matching label wins.
      SymState acc = st;
      bool have_default = false;
      // Execute default first (if any) as the innermost fallback.
      for (const auto& item : stmt.items) {
        if (item.labels.empty()) {
          exec(*item.body, acc, sequential);
          have_default = true;
          break;
        }
      }
      if (!have_default) acc = st;  // fallthrough: hold values
      // Fold labeled items from last to first.
      for (auto it = stmt.items.rbegin(); it != stmt.items.rend(); ++it) {
        if (it->labels.empty()) continue;
        NodeRef match = nm.mk_false();
        for (const auto& label : it->labels) {
          const NodeRef label_val = build_expr_resized(*label, subject->width(), st);
          match = nm.mk_or(match, nm.mk_eq(subject, label_val));
        }
        SymState item_st = st;
        exec(*it->body, item_st, sequential);
        SymState merged = st;
        merge(merged, item_st, acc, match, stmt.line);
        acc = std::move(merged);
      }
      st = std::move(acc);
      return;
    }
    case Stmt::Kind::Nonblocking:
      if (!sequential) elab_error(stmt.line, "nonblocking assignment in combinational context");
      assign_lvalue(*stmt.lhs, nullptr, st, /*nonblocking=*/true, *stmt.rhs, true);
      return;
    case Stmt::Kind::Blocking:
      assign_lvalue(*stmt.lhs, nullptr, st, /*nonblocking=*/false, *stmt.rhs, true);
      return;
    case Stmt::Kind::IncDec: {
      // x++  ==  x <= x + 1 (sequential) / x = x + 1 (comb)
      const std::string base = assigned_base_name(*stmt.lhs);
      const auto it = st.env.find(base);
      if (it == st.env.end()) elab_error(stmt.line, "use of undefined signal '" + base + "'");
      const NodeRef cur = it->second;
      const NodeRef one = nm.mk_const(1, cur->width());
      const NodeRef next = stmt.text == "++" ? nm.mk_add(cur, one) : nm.mk_sub(cur, one);
      if (sequential) {
        st.nba[base] = next;
      } else {
        st.env[base] = next;
      }
      return;
    }
  }
}

void Elaborator::build_comb() {
  // Units: each assign / comb block. Topologically order by def/use.
  struct Unit {
    std::vector<std::string> defs;
    std::vector<std::string> uses;
    const ContAssign* assign = nullptr;
    const AlwaysBlock* block = nullptr;
    int line = 0;
  };
  std::vector<Unit> units;

  auto collect_stmt_uses = [&](const Stmt& s, std::vector<std::string>& uses) {
    std::function<void(const Stmt&)> walk = [&](const Stmt& st) {
      if (st.cond) collect_names(*st.cond, uses);
      if (st.subject) collect_names(*st.subject, uses);
      if (st.rhs) collect_names(*st.rhs, uses);
      if (st.lhs) {
        // Selects on the lvalue read the base signal.
        if (st.lhs->kind != Expr::Kind::Id) collect_names(*st.lhs, uses);
      }
      for (const auto& item : st.items) {
        for (const auto& l : item.labels) collect_names(*l, uses);
        if (item.body) walk(*item.body);
      }
      if (st.then_stmt) walk(*st.then_stmt);
      if (st.else_stmt) walk(*st.else_stmt);
      for (const auto& sub : st.body) walk(*sub);
    };
    walk(s);
  };

  for (const auto& a : module_.assigns) {
    Unit u;
    u.assign = &a;
    u.line = a.line;
    u.defs.push_back(assigned_base_name(*a.lhs));
    collect_names(*a.rhs, u.uses);
    if (a.lhs->kind != Expr::Kind::Id) collect_names(*a.lhs, u.uses);
    units.push_back(std::move(u));
  }
  for (const auto& blk : module_.always_blocks) {
    if (!blk.combinational) continue;
    Unit u;
    u.block = &blk;
    u.line = blk.line;
    std::function<void(const Stmt&)> collect_defs = [&](const Stmt& st) {
      if (st.kind == Stmt::Kind::Blocking || st.kind == Stmt::Kind::IncDec) {
        u.defs.push_back(assigned_base_name(*st.lhs));
      }
      if (st.then_stmt) collect_defs(*st.then_stmt);
      if (st.else_stmt) collect_defs(*st.else_stmt);
      for (const auto& item : st.items) collect_defs(*item.body);
      for (const auto& sub : st.body) collect_defs(*sub);
    };
    collect_defs(*blk.body);
    // One block may assign a target several times (branches): one driver.
    std::sort(u.defs.begin(), u.defs.end());
    u.defs.erase(std::unique(u.defs.begin(), u.defs.end()), u.defs.end());
    collect_stmt_uses(*blk.body, u.uses);
    units.push_back(std::move(u));
  }

  // Duplicate-driver check.
  std::map<std::string, int> driver_count;
  for (const auto& u : units) {
    for (const auto& d : u.defs) {
      if (++driver_count[d] > 1) {
        elab_error(u.line, "multiple combinational drivers for '" + d + "'");
      }
    }
  }

  // Kahn topo-sort on wire-to-wire dependencies.
  std::map<std::string, std::size_t> def_unit;
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const auto& d : units[i].defs) def_unit[d] = i;
  }
  std::vector<std::set<std::size_t>> deps(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const auto& use : units[i].uses) {
      const auto it = def_unit.find(use);
      if (it != def_unit.end() && it->second != i) deps[i].insert(it->second);
    }
  }
  std::vector<std::size_t> order;
  std::vector<char> emitted(units.size(), 0);
  for (std::size_t round = 0; round < units.size(); ++round) {
    bool progress = false;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (emitted[i]) continue;
      bool ready = true;
      for (const std::size_t d : deps[i]) {
        if (!emitted[d]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(i);
        emitted[i] = 1;
        progress = true;
      }
    }
    if (!progress) break;
  }
  if (order.size() != units.size()) {
    elab_error(0, "combinational cycle detected among assignments");
  }

  // Elaborate units in order.
  for (const std::size_t i : order) {
    const Unit& u = units[i];
    SymState st;
    st.env = leaves_;
    for (const auto& [name, expr] : wires_) st.env[name] = expr;

    if (u.assign != nullptr) {
      assign_lvalue(*u.assign->lhs, nullptr, st, /*nonblocking=*/false, *u.assign->rhs, true);
    } else {
      exec(*u.block->body, st, /*sequential=*/false);
    }
    for (const auto& d : u.defs) {
      const auto it = st.env.find(d);
      if (it == st.env.end()) {
        elab_error(u.line, "combinational target '" + d + "' not assigned");
      }
      wires_[d] = it->second;
      ts_.add_signal(d, it->second);
    }
  }
}

void Elaborator::build_sequential() {
  std::map<std::string, int> reg_driver;
  for (const auto& blk : module_.always_blocks) {
    if (blk.combinational) continue;
    SymState st;
    st.env = leaves_;
    for (const auto& [name, expr] : wires_) st.env[name] = expr;
    exec(*blk.body, st, /*sequential=*/true);
    for (const auto& [reg, next_val] : st.nba) {
      if (++reg_driver[reg] > 1) {
        elab_error(blk.line, "register '" + reg + "' driven by multiple always blocks");
      }
      next_[reg] = next_val;
    }
  }

  for (const auto& [name, info] : signals_) {
    if (!info.is_register) continue;
    const auto it = next_.find(name);
    const NodeRef var = leaves_.at(name);
    if (it == next_.end()) {
      // Register declared but never assigned: holds its value.
      ts_.set_next(var, var);
    } else {
      ts_.set_next(var, it->second);
    }
  }
}

void Elaborator::derive_inits() {
  auto& nm = ts_.nm();

  // Declaration initializers win.
  for (const auto& decl : module_.signals) {
    if (decl.init == nullptr) continue;
    const auto it = leaves_.find(decl.name);
    if (it == leaves_.end() || !signals_.at(decl.name).is_register) continue;
    SymState empty;
    const NodeRef v = build_expr_resized(*decl.init, decl.width, empty);
    if (!v->is_const()) elab_error(decl.line, "declaration initializer must be constant");
    ts_.set_init(it->second, v);
  }

  if (reset_.empty()) return;
  const auto rst_it = leaves_.find(reset_);
  if (rst_it == leaves_.end()) {
    elab_error(0, "reset '" + reset_ + "' is not an input of the module");
  }
  const NodeRef rst = rst_it->second;
  const NodeRef active =
      reset_active_low_ ? nm.mk_const(0, rst->width())
                        : nm.mk_ones(rst->width());

  // init(reg) = fold(next(reg)[reset := active]) when constant.
  ir::Substitution subst{{rst, active}};
  for (const auto& s : ts_.states()) {
    if (s.init != nullptr) continue;  // decl initializer took precedence
    const NodeRef under_reset = ir::substitute(s.next, subst, nm);
    if (under_reset->is_const()) {
      ts_.set_init(s.var, under_reset);
    }
    // Non-constant: leave uninitialized (over-approximate, sound).
  }

  if (options_.constrain_reset_inactive) {
    const NodeRef inactive =
        reset_active_low_ ? nm.mk_ones(rst->width()) : nm.mk_const(0, rst->width());
    ts_.add_constraint(nm.mk_eq(rst, inactive));
  }
}

ElaborationResult Elaborator::run() {
  collect_signals();
  scan_processes();
  build_leaves();
  build_comb();
  build_sequential();
  derive_inits();
  ts_.validate();

  ElaborationResult result{std::move(ts_), clock_, reset_, reset_active_low_};
  return result;
}

}  // namespace

ElaborationResult elaborate(const Module& module, const ElaborateOptions& options) {
  Elaborator elaborator(module, options);
  return elaborator.run();
}

ElaborationResult elaborate_source(const std::string& verilog,
                                   const ElaborateOptions& options) {
  const Module m = parse_module(verilog);
  return elaborate(m, options);
}

}  // namespace genfv::hdl
