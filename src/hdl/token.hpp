#pragma once

/// \file token.hpp
/// Token model shared by the HDL (Verilog-subset) and SVA frontends.

#include <cstdint>
#include <string>
#include <vector>

namespace genfv::hdl {

enum class TokKind : std::uint8_t {
  Identifier,  ///< names, keywords, $system functions
  Number,      ///< sized or unsized literal
  Punct,       ///< operators and delimiters (text holds the spelling)
  End,         ///< end of input
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;

  // Number payload
  std::uint64_t value = 0;
  unsigned width = 32;
  bool sized = false;

  int line = 0;
  int col = 0;

  bool is(TokKind k) const noexcept { return kind == k; }
  bool is_punct(std::string_view p) const noexcept {
    return kind == TokKind::Punct && text == p;
  }
  bool is_id(std::string_view name) const noexcept {
    return kind == TokKind::Identifier && text == name;
  }

  std::string location() const { return std::to_string(line) + ":" + std::to_string(col); }
};

}  // namespace genfv::hdl
