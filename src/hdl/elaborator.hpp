#pragma once

/// \file elaborator.hpp
/// Elaboration: Verilog-subset AST -> word-level transition system.
///
/// Model mapping:
///  * input ports (except the clock) -> TS inputs,
///  * signals assigned in sequential always blocks -> TS states,
///  * `assign` / always_comb targets -> named TS signals (inlined exprs),
///  * async reset (from the sensitivity list) or sync reset (a recognized
///    reset-named input guarding the top-level `if`) -> register init values
///    are derived by substituting the active reset level into the next-state
///    function and constant-folding; non-constant results leave the register
///    uninitialized (sound over-approximation),
///  * optionally, a `reset == inactive` environment constraint models the
///    standard formal setup "reset applied before time 0, held inactive
///    during the proof".
///
/// The symbolic executor implements Verilog scheduling: blocking assignments
/// update the evaluation environment immediately; nonblocking assignments
/// evaluate their RHS against the current environment and land in the
/// next-state map; branches merge via if-then-else.

#include <functional>
#include <string>

#include "hdl/ast.hpp"
#include "ir/transition_system.hpp"

namespace genfv::hdl {

struct ElaborateOptions {
  /// Add the `reset == inactive` constraint when a reset is detected.
  bool constrain_reset_inactive = true;
  /// Override reset detection ("": autodetect).
  std::string reset_name;
  bool reset_active_low = false;
};

struct ElaborationResult {
  ir::TransitionSystem ts;
  std::string clock;   ///< detected clock name ("" for purely combinational)
  std::string reset;   ///< detected reset name ("" = none)
  bool reset_active_low = false;
};

/// Elaborate a parsed module.
ElaborationResult elaborate(const Module& module, const ElaborateOptions& options = {});

/// Parse + elaborate in one step.
ElaborationResult elaborate_source(const std::string& verilog,
                                   const ElaborateOptions& options = {});

/// Expression building over the shared HDL/SVA AST. Name resolution and
/// $system-call handling are injected so the HDL elaborator and the SVA
/// compiler share all width/semantics logic.
class ExprBuilder {
 public:
  using Resolver = std::function<ir::NodeRef(const std::string& name, const Expr& at)>;
  using CallHandler = std::function<ir::NodeRef(const Expr& call, ExprBuilder& self)>;

  ExprBuilder(ir::NodeManager& nm, Resolver resolver);
  ExprBuilder(ir::NodeManager& nm, Resolver resolver, CallHandler on_call);

  ir::NodeManager& nm() noexcept { return nm_; }

  /// Build at the expression's natural width.
  ir::NodeRef build(const Expr& e);
  /// Build and coerce to width 1 (Verilog truthiness).
  ir::NodeRef build_bool(const Expr& e);
  /// Build and resize (zero-extend / truncate) to an assignment target width.
  ir::NodeRef build_resized(const Expr& e, unsigned width);

 private:
  ir::NodeRef build_binary(const Expr& e);
  ir::NodeRef build_unary(const Expr& e);
  /// Build both operands of a width-balancing binary operator; unsized
  /// literals adapt to the other operand's width when their value fits.
  std::pair<ir::NodeRef, ir::NodeRef> build_balanced(const Expr& lhs, const Expr& rhs);

  ir::NodeManager& nm_;
  Resolver resolver_;
  CallHandler on_call_;
};

/// Collect every identifier referenced by an expression (for dependency
/// analysis); $call names are not included, their arguments are.
void collect_names(const Expr& e, std::vector<std::string>& out);

}  // namespace genfv::hdl
