#include "hdl/parser.hpp"

#include "hdl/lexer.hpp"
#include "util/status.hpp"

namespace genfv::hdl {

namespace {

bool is_keyword(const std::string& s) {
  static const char* kKeywords[] = {
      "module", "endmodule", "input",  "output",   "inout",    "wire",     "reg",
      "logic",  "assign",    "always", "always_ff", "always_comb", "posedge", "negedge",
      "or",     "if",        "else",   "begin",    "end",      "case",     "endcase",
      "default", "parameter", "localparam", "integer", "bit",
  };
  for (const char* k : kKeywords) {
    if (s == k) return true;
  }
  return false;
}

}  // namespace

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

Token Parser::consume() {
  Token t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept_punct(std::string_view p) {
  if (peek().is_punct(p)) {
    consume();
    return true;
  }
  return false;
}

void Parser::expect_punct(std::string_view p) {
  if (!accept_punct(p)) {
    fail("expected '" + std::string(p) + "', found '" + peek().text + "'");
  }
}

bool Parser::accept_id(std::string_view name) {
  if (peek().is_id(name)) {
    consume();
    return true;
  }
  return false;
}

void Parser::expect_id(std::string_view name) {
  if (!accept_id(name)) {
    fail("expected '" + std::string(name) + "', found '" + peek().text + "'");
  }
}

std::string Parser::expect_identifier() {
  if (!peek().is(TokKind::Identifier) || is_keyword(peek().text)) {
    fail("expected identifier, found '" + peek().text + "'");
  }
  return consume().text;
}

void Parser::fail(const std::string& message) const {
  throw ParseError(peek().location(), message);
}

ExprPtr Parser::mk_binary(std::string op, ExprPtr lhs, ExprPtr rhs, const Token& at) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Binary;
  e->text = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  e->line = at.line;
  e->col = at.col;
  return e;
}

// --- expressions ------------------------------------------------------------------

ExprPtr Parser::expression() { return parse_implication(); }

ExprPtr Parser::parse_implication() {
  ExprPtr lhs = parse_ternary();
  if (peek().is_punct("|->") || peek().is_punct("|=>")) {
    const Token op = consume();
    ExprPtr rhs = parse_implication();  // right-associative
    return mk_binary(op.text, std::move(lhs), std::move(rhs), op);
  }
  return lhs;
}

ExprPtr Parser::parse_ternary() {
  ExprPtr cond = parse_logical_or();
  if (accept_punct("?")) {
    ExprPtr then_e = parse_ternary();
    expect_punct(":");
    ExprPtr else_e = parse_ternary();
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Ternary;
    e->args.push_back(std::move(cond));
    e->args.push_back(std::move(then_e));
    e->args.push_back(std::move(else_e));
    return e;
  }
  return cond;
}

ExprPtr Parser::parse_logical_or() {
  ExprPtr lhs = parse_logical_and();
  while (peek().is_punct("||")) {
    const Token op = consume();
    lhs = mk_binary("||", std::move(lhs), parse_logical_and(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_logical_and() {
  ExprPtr lhs = parse_bit_or();
  while (peek().is_punct("&&")) {
    const Token op = consume();
    lhs = mk_binary("&&", std::move(lhs), parse_bit_or(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_bit_or() {
  ExprPtr lhs = parse_bit_xor();
  while (peek().is_punct("|")) {
    const Token op = consume();
    lhs = mk_binary("|", std::move(lhs), parse_bit_xor(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_bit_xor() {
  ExprPtr lhs = parse_bit_and();
  while (peek().is_punct("^") || peek().is_punct("~^") || peek().is_punct("^~")) {
    const Token op = consume();
    lhs = mk_binary(op.text == "^" ? "^" : "~^", std::move(lhs), parse_bit_and(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_bit_and() {
  ExprPtr lhs = parse_equality();
  while (peek().is_punct("&")) {
    const Token op = consume();
    lhs = mk_binary("&", std::move(lhs), parse_equality(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_equality() {
  ExprPtr lhs = parse_relational();
  while (peek().is_punct("==") || peek().is_punct("!=") || peek().is_punct("===") ||
         peek().is_punct("!==")) {
    const Token op = consume();
    const std::string norm = (op.text == "===") ? "==" : (op.text == "!==") ? "!=" : op.text;
    lhs = mk_binary(norm, std::move(lhs), parse_relational(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_relational() {
  ExprPtr lhs = parse_shift();
  while (peek().is_punct("<") || peek().is_punct("<=") || peek().is_punct(">") ||
         peek().is_punct(">=")) {
    const Token op = consume();
    lhs = mk_binary(op.text, std::move(lhs), parse_shift(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_shift() {
  ExprPtr lhs = parse_additive();
  while (peek().is_punct("<<") || peek().is_punct(">>") || peek().is_punct("<<<") ||
         peek().is_punct(">>>")) {
    const Token op = consume();
    lhs = mk_binary(op.text, std::move(lhs), parse_additive(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_additive() {
  ExprPtr lhs = parse_multiplicative();
  while (peek().is_punct("+") || peek().is_punct("-")) {
    const Token op = consume();
    lhs = mk_binary(op.text, std::move(lhs), parse_multiplicative(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_multiplicative() {
  ExprPtr lhs = parse_unary();
  while (peek().is_punct("*") || peek().is_punct("/") || peek().is_punct("%")) {
    const Token op = consume();
    lhs = mk_binary(op.text, std::move(lhs), parse_unary(), op);
  }
  return lhs;
}

ExprPtr Parser::parse_unary() {
  static const char* kUnary[] = {"!", "~", "-", "+", "&", "|", "^", "~&", "~|", "~^"};
  for (const char* op : kUnary) {
    if (peek().is_punct(op)) {
      const Token tok = consume();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Unary;
      e->text = op;
      e->line = tok.line;
      e->col = tok.col;
      e->args.push_back(parse_unary());
      return e;
    }
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr base = parse_primary();
  while (peek().is_punct("[")) {
    consume();
    ExprPtr first = expression();
    if (accept_punct(":")) {
      // Constant part select: both bounds must be numbers after parse.
      ExprPtr second = expression();
      if (first->kind != Expr::Kind::Number || second->kind != Expr::Kind::Number) {
        fail("part-select bounds must be constant");
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Range;
      e->msb = static_cast<unsigned>(first->value);
      e->lsb = static_cast<unsigned>(second->value);
      e->args.push_back(std::move(base));
      base = std::move(e);
    } else {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Index;
      e->args.push_back(std::move(base));
      e->args.push_back(std::move(first));
      base = std::move(e);
    }
    expect_punct("]");
  }
  return base;
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();

  if (t.is(TokKind::Number)) {
    const Token tok = consume();
    return Expr::number(tok.value, tok.width, tok.sized);
  }

  if (t.is_punct("(")) {
    consume();
    ExprPtr inner = expression();
    expect_punct(")");
    return inner;
  }

  if (t.is_punct("{")) {
    consume();
    // Could be concat {a, b, ...} or replication {N{x}}.
    ExprPtr first = expression();
    if (peek().is_punct("{")) {
      if (first->kind != Expr::Kind::Number) fail("replication count must be constant");
      consume();
      ExprPtr item = expression();
      expect_punct("}");
      expect_punct("}");
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Repl;
      e->value = first->value;
      e->args.push_back(std::move(item));
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Concat;
    e->args.push_back(std::move(first));
    while (accept_punct(",")) e->args.push_back(expression());
    expect_punct("}");
    return e;
  }

  if (t.is(TokKind::Identifier)) {
    if (is_keyword(t.text)) fail("unexpected keyword '" + t.text + "' in expression");
    const Token tok = consume();
    // $system call or plain identifier.
    if (tok.text[0] == '$' && peek().is_punct("(")) {
      consume();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::Call;
      e->text = tok.text;
      e->line = tok.line;
      e->col = tok.col;
      if (!peek().is_punct(")")) {
        e->args.push_back(expression());
        while (accept_punct(",")) e->args.push_back(expression());
      }
      expect_punct(")");
      return e;
    }
    auto e = Expr::id(tok.text);
    e->line = tok.line;
    e->col = tok.col;
    return e;
  }

  fail("expected expression, found '" + t.text + "'");
}

// --- module structure ----------------------------------------------------------------

unsigned Parser::parse_range_width() {
  // '[' msb ':' lsb ']' — lsb must be 0 in this subset.
  expect_punct("[");
  ExprPtr msb = expression();
  expect_punct(":");
  ExprPtr lsb = expression();
  expect_punct("]");
  if (msb->kind != Expr::Kind::Number || lsb->kind != Expr::Kind::Number) {
    fail("range bounds must be constant literals");
  }
  if (lsb->value != 0) fail("only [msb:0] ranges are supported");
  if (msb->value > 63) fail("vectors wider than 64 bits are not supported");
  return static_cast<unsigned>(msb->value) + 1;
}

void Parser::parse_decl(Module& m, PortDir dir, bool in_port_list) {
  // [net kind] [range] name {, name}
  NetKind net = NetKind::Logic;
  if (accept_id("wire")) net = NetKind::Wire;
  else if (accept_id("reg")) net = NetKind::Reg;
  else if (accept_id("logic") || accept_id("bit") || accept_id("integer")) net = NetKind::Logic;

  unsigned width = 1;
  if (peek().is_punct("[")) width = parse_range_width();

  while (true) {
    SignalDecl decl;
    decl.dir = dir;
    decl.net = net;
    decl.width = width;
    decl.line = peek().line;
    decl.name = expect_identifier();
    if (accept_punct("=")) decl.init = expression();
    m.signals.push_back(std::move(decl));
    if (in_port_list) return;  // port list handles its own commas
    if (!accept_punct(",")) break;
  }
  expect_punct(";");
}

void Parser::parse_port_list(Module& m) {
  expect_punct("(");
  if (accept_punct(")")) return;

  PortDir dir = PortDir::None;
  NetKind net = NetKind::Logic;
  unsigned width = 1;
  while (true) {
    // Direction/type are sticky across commas until re-declared.
    if (accept_id("input")) {
      dir = PortDir::Input;
      net = NetKind::Logic;
      width = 1;
    } else if (accept_id("output")) {
      dir = PortDir::Output;
      net = NetKind::Logic;
      width = 1;
    } else if (accept_id("inout")) {
      dir = PortDir::Inout;
      net = NetKind::Logic;
      width = 1;
    }
    if (accept_id("wire")) net = NetKind::Wire;
    else if (accept_id("reg")) net = NetKind::Reg;
    else if (accept_id("logic") || accept_id("bit")) net = NetKind::Logic;
    if (peek().is_punct("[")) width = parse_range_width();

    SignalDecl decl;
    decl.dir = dir;
    decl.net = net;
    decl.width = width;
    decl.line = peek().line;
    decl.name = expect_identifier();
    m.signals.push_back(std::move(decl));

    if (accept_punct(",")) continue;
    expect_punct(")");
    break;
  }
}

AlwaysBlock Parser::parse_always(bool ff_variant, bool comb_variant) {
  AlwaysBlock block;
  block.line = peek().line;

  if (comb_variant) {
    block.combinational = true;
    block.body = parse_statement();
    return block;
  }

  // always / always_ff @(...)
  expect_punct("@");
  if (accept_punct("(")) {
    if (accept_punct("*")) {
      block.combinational = true;
      expect_punct(")");
      block.body = parse_statement();
      return block;
    }
    // posedge clk [or (posedge|negedge) rst]
    while (true) {
      bool negedge = false;
      if (accept_id("posedge")) {
        negedge = false;
      } else if (accept_id("negedge")) {
        negedge = true;
      } else {
        fail("expected posedge/negedge in sensitivity list");
      }
      const std::string sig = expect_identifier();
      if (block.clock.empty()) {
        if (negedge) fail("negedge clocks are not supported");
        block.clock = sig;
      } else if (block.reset.empty()) {
        block.reset = sig;
        block.reset_active_low = negedge;
      } else {
        fail("at most two sensitivity items (clock + async reset) supported");
      }
      if (accept_id("or") || accept_punct(",")) continue;
      break;
    }
    expect_punct(")");
  } else if (accept_punct("*")) {  // "@*"
    block.combinational = true;
  } else {
    fail("expected '(' or '*' after '@'");
  }
  if (ff_variant && block.clock.empty() && !block.combinational) {
    fail("always_ff requires a posedge clock");
  }
  block.body = parse_statement();
  return block;
}

StmtPtr Parser::parse_statement() {
  auto stmt = std::make_unique<Stmt>();
  stmt->line = peek().line;
  stmt->col = peek().col;

  if (accept_id("begin")) {
    stmt->kind = Stmt::Kind::Block;
    while (!peek().is_id("end")) {
      if (at_end()) fail("unterminated begin/end block");
      stmt->body.push_back(parse_statement());
    }
    expect_id("end");
    return stmt;
  }

  if (accept_id("if")) {
    stmt->kind = Stmt::Kind::If;
    expect_punct("(");
    stmt->cond = expression();
    expect_punct(")");
    stmt->then_stmt = parse_statement();
    if (accept_id("else")) stmt->else_stmt = parse_statement();
    return stmt;
  }

  if (accept_id("case")) {
    stmt->kind = Stmt::Kind::Case;
    expect_punct("(");
    stmt->subject = expression();
    expect_punct(")");
    while (!peek().is_id("endcase")) {
      if (at_end()) fail("unterminated case");
      CaseItem item;
      if (accept_id("default")) {
        accept_punct(":");
      } else {
        item.labels.push_back(expression());
        while (accept_punct(",")) item.labels.push_back(expression());
        expect_punct(":");
      }
      item.body = parse_statement();
      stmt->items.push_back(std::move(item));
    }
    expect_id("endcase");
    return stmt;
  }

  if (accept_punct(";")) {
    stmt->kind = Stmt::Kind::Empty;
    return stmt;
  }

  // Assignment: lvalue (<=, =, ++, --) …
  ExprPtr lhs = parse_postfix();
  if (accept_punct("<=")) {
    stmt->kind = Stmt::Kind::Nonblocking;
    stmt->lhs = std::move(lhs);
    stmt->rhs = expression();
  } else if (accept_punct("=")) {
    stmt->kind = Stmt::Kind::Blocking;
    stmt->lhs = std::move(lhs);
    stmt->rhs = expression();
  } else if (peek().is_punct("++") || peek().is_punct("--")) {
    stmt->kind = Stmt::Kind::IncDec;
    stmt->text = consume().text;
    stmt->lhs = std::move(lhs);
  } else {
    fail("expected assignment operator, found '" + peek().text + "'");
  }
  expect_punct(";");
  return stmt;
}

void Parser::parse_module_item(Module& m) {
  if (accept_id("parameter") || accept_id("localparam")) {
    // parameter [type] name = expr {, name = expr};
    accept_id("integer");
    accept_id("logic");
    if (peek().is_punct("[")) parse_range_width();
    while (true) {
      ParamDecl p;
      p.name = expect_identifier();
      expect_punct("=");
      p.value = expression();
      m.params.push_back(std::move(p));
      if (!accept_punct(",")) break;
    }
    expect_punct(";");
    return;
  }

  if (accept_id("input")) return parse_decl(m, PortDir::Input, false);
  if (accept_id("output")) return parse_decl(m, PortDir::Output, false);
  if (accept_id("inout")) return parse_decl(m, PortDir::Inout, false);
  if (peek().is_id("wire") || peek().is_id("reg") || peek().is_id("logic") ||
      peek().is_id("bit") || peek().is_id("integer")) {
    return parse_decl(m, PortDir::None, false);
  }

  if (accept_id("assign")) {
    ContAssign a;
    a.line = peek().line;
    a.lhs = parse_postfix();
    expect_punct("=");
    a.rhs = expression();
    expect_punct(";");
    m.assigns.push_back(std::move(a));
    return;
  }

  if (accept_id("always_ff")) {
    m.always_blocks.push_back(parse_always(/*ff=*/true, /*comb=*/false));
    return;
  }
  if (accept_id("always_comb")) {
    m.always_blocks.push_back(parse_always(/*ff=*/false, /*comb=*/true));
    return;
  }
  if (accept_id("always")) {
    m.always_blocks.push_back(parse_always(/*ff=*/false, /*comb=*/false));
    return;
  }

  fail("unexpected token '" + peek().text + "' in module body");
}

Module Parser::module() {
  Module m;
  expect_id("module");
  m.name = expect_identifier();
  if (peek().is_punct("(")) parse_port_list(m);
  expect_punct(";");
  while (!peek().is_id("endmodule")) {
    if (at_end()) fail("missing endmodule");
    parse_module_item(m);
  }
  expect_id("endmodule");
  return m;
}

Module parse_module(const std::string& source) {
  Parser parser(lex(source));
  return parser.module();
}

ExprPtr parse_expression(const std::string& source) {
  Parser parser(lex(source));
  ExprPtr e = parser.expression();
  if (!parser.at_end()) {
    parser.fail("trailing tokens after expression");
  }
  return e;
}

}  // namespace genfv::hdl
