#pragma once

/// \file parser.hpp
/// Recursive-descent parser for the Verilog subset, plus a standalone
/// expression entry point reused by the SVA frontend.
///
/// Supported subset (everything the paper's designs need, and then some):
///   module/endmodule with ANSI port lists; input/output/inout;
///   wire/reg/logic declarations with [msb:0] ranges and initializers;
///   parameter/localparam; assign; always_ff/always_comb/always @(...)
///   with posedge clock and optional posedge/negedge async reset;
///   begin/end, if/else, case/endcase (incl. default);
///   blocking (=), nonblocking (<=) assignments and ++/--;
///   full expression grammar with Verilog precedence: ?:, ||, &&, |, ^ ~^,
///   &, == !=, < <= > >=, << >> <<< >>>, + -, * / %, unary ! ~ - + & | ^
///   ~& ~| ~^, concatenation {..}, replication {N{..}}, bit/part select,
///   sized/unsigned literals, $function calls.

#include <string>

#include "hdl/ast.hpp"
#include "hdl/token.hpp"

namespace genfv::hdl {

/// Parse a complete module. Throws ParseError with line:col locations.
Module parse_module(const std::string& source);

/// Parse a standalone expression (used by the SVA frontend). The expression
/// grammar includes SVA-specific binary operators `|->` and `|=>` at lowest
/// precedence (they parse into Binary nodes with those spellings).
ExprPtr parse_expression(const std::string& source);

/// Internal: expression parser over a token stream; exposed for the SVA
/// parser, which owns the token cursor.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Module module();
  ExprPtr expression();

  const Token& peek(std::size_t ahead = 0) const;
  Token consume();
  bool accept_punct(std::string_view p);
  void expect_punct(std::string_view p);
  bool accept_id(std::string_view name);
  void expect_id(std::string_view name);
  std::string expect_identifier();
  bool at_end() const { return peek().is(TokKind::End); }

  [[noreturn]] void fail(const std::string& message) const;

 private:
  // Expression precedence ladder (lowest to highest binding).
  ExprPtr parse_implication();  // |->  |=>   (SVA layer)
  ExprPtr parse_ternary();
  ExprPtr parse_logical_or();
  ExprPtr parse_logical_and();
  ExprPtr parse_bit_or();
  ExprPtr parse_bit_xor();
  ExprPtr parse_bit_and();
  ExprPtr parse_equality();
  ExprPtr parse_relational();
  ExprPtr parse_shift();
  ExprPtr parse_additive();
  ExprPtr parse_multiplicative();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  // Module structure.
  void parse_port_list(Module& m);
  void parse_module_item(Module& m);
  void parse_decl(Module& m, PortDir dir, bool in_port_list);
  StmtPtr parse_statement();
  AlwaysBlock parse_always(bool ff_variant, bool comb_variant);
  unsigned parse_range_width();

  ExprPtr mk_binary(std::string op, ExprPtr lhs, ExprPtr rhs, const Token& at);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace genfv::hdl
