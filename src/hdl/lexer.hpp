#pragma once

/// \file lexer.hpp
/// Lexer for the Verilog/SystemVerilog subset (shared with the SVA property
/// parser). Handles line/block comments, sized literals (32'b0, 8'hFF,
/// 4'd12), identifiers (including $system names), and multi-character
/// operators including the SVA implications |-> and |=>.

#include <string>
#include <vector>

#include "hdl/token.hpp"

namespace genfv::hdl {

/// Tokenize the entire input. Throws ParseError on malformed literals or
/// stray characters. The final token is always TokKind::End.
std::vector<Token> lex(const std::string& source);

}  // namespace genfv::hdl
