#pragma once

/// \file ast.hpp
/// Abstract syntax for the Verilog subset. The expression AST is shared with
/// the SVA property parser (which adds implication operators and $system
/// calls on top).

#include <memory>
#include <string>
#include <vector>

namespace genfv::hdl {

// --- expressions --------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    Number,   ///< value/width/sized
    Id,       ///< text
    Unary,    ///< text = operator; args[0]
    Binary,   ///< text = operator; args[0], args[1]
    Ternary,  ///< args[0] ? args[1] : args[2]
    Concat,   ///< {args...}
    Repl,     ///< {N{x}}: value = N, args[0] = x
    Index,    ///< args[0][args[1]]  (single-bit select)
    Range,    ///< args[0][msb:lsb]  (constant part select)
    Call,     ///< text = $function name; args = arguments
  };

  Kind kind = Kind::Number;
  std::uint64_t value = 0;  // Number payload / Repl count
  unsigned width = 32;      // Number width
  bool sized = false;       // Number had an explicit size
  std::string text;         // Id name / operator spelling / call name
  std::vector<ExprPtr> args;
  unsigned msb = 0, lsb = 0;  // Range payload
  int line = 0, col = 0;

  static ExprPtr number(std::uint64_t v, unsigned w, bool s) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Number;
    e->value = v;
    e->width = w;
    e->sized = s;
    return e;
  }
  static ExprPtr id(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Id;
    e->text = std::move(name);
    return e;
  }
};

// --- statements ----------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseItem {
  std::vector<ExprPtr> labels;  ///< empty = default
  StmtPtr body;
};

struct Stmt {
  enum class Kind {
    Block,        ///< begin ... end; uses body list
    If,           ///< cond; then_stmt; else_stmt (optional)
    Case,         ///< subject; items
    Nonblocking,  ///< lhs <= rhs
    Blocking,     ///< lhs = rhs
    IncDec,       ///< lhs++ / lhs-- (text is "++" or "--")
    Empty,
  };

  Kind kind = Stmt::Kind::Empty;
  ExprPtr cond;      // If
  StmtPtr then_stmt; // If
  StmtPtr else_stmt; // If (may be null)
  ExprPtr subject;   // Case
  std::vector<CaseItem> items;  // Case
  ExprPtr lhs;       // assignments (Id / Index / Range expression)
  ExprPtr rhs;
  std::string text;  // IncDec operator
  std::vector<StmtPtr> body;  // Block
  int line = 0, col = 0;
};

// --- module items -----------------------------------------------------------------

enum class PortDir { None, Input, Output, Inout };
enum class NetKind { Wire, Reg, Logic };

/// One declared signal (possibly one of several in a single declaration).
struct SignalDecl {
  std::string name;
  PortDir dir = PortDir::None;  ///< None = internal net
  NetKind net = NetKind::Logic;
  unsigned width = 1;
  ExprPtr init;  ///< optional declaration initializer (registers only)
  int line = 0;
};

struct ParamDecl {
  std::string name;
  ExprPtr value;
};

struct ContAssign {
  ExprPtr lhs;
  ExprPtr rhs;
  int line = 0;
};

struct AlwaysBlock {
  bool combinational = false;  ///< always_comb / always @(*)
  std::string clock;           ///< posedge clock signal name (sequential)
  std::string reset;           ///< async reset name from sensitivity ("" = none)
  bool reset_active_low = false;
  StmtPtr body;
  int line = 0;
};

struct Module {
  std::string name;
  std::vector<SignalDecl> signals;
  std::vector<ParamDecl> params;
  std::vector<ContAssign> assigns;
  std::vector<AlwaysBlock> always_blocks;
};

}  // namespace genfv::hdl
