#include "hdl/lexer.hpp"

#include <cctype>

#include "util/status.hpp"

namespace genfv::hdl {

namespace {

bool is_id_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_id_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Multi-character operators, longest first so greedy matching is correct.
constexpr std::string_view kMultiOps[] = {
    "|->", "|=>", "<<<", ">>>", "===", "!==", "~&", "~|", "~^", "^~", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&",  "||",  "++", "--", "->", "::",
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  auto error = [&](const std::string& msg) -> ParseError {
    return ParseError(std::to_string(line) + ":" + std::to_string(col), msg);
  };

  while (i < source.size()) {
    const char c = source[i];

    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      advance(2);
      while (i + 1 < source.size() && !(source[i] == '*' && source[i + 1] == '/')) advance(1);
      if (i + 1 >= source.size()) throw error("unterminated block comment");
      advance(2);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.col = col;

    // Identifier / keyword / $system name.
    if (is_id_start(c)) {
      std::size_t start = i;
      while (i < source.size() && is_id_char(source[i])) advance(1);
      tok.kind = TokKind::Identifier;
      tok.text = source.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Numeric literal: [size]'[base]digits or bare decimal.
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
      std::uint64_t size_field = 0;
      bool have_size = false;
      while (i < source.size() && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                                   source[i] == '_')) {
        if (source[i] != '_') {
          size_field = size_field * 10 + static_cast<std::uint64_t>(source[i] - '0');
          have_size = true;
        }
        advance(1);
      }
      if (i < source.size() && source[i] == '\'') {
        advance(1);
        if (i >= source.size()) throw error("truncated based literal");
        // Optional signedness marker, ignored.
        if (source[i] == 's' || source[i] == 'S') advance(1);
        const char base_char =
            static_cast<char>(std::tolower(static_cast<unsigned char>(source[i])));
        advance(1);
        int base = 0;
        switch (base_char) {
          case 'b': base = 2; break;
          case 'o': base = 8; break;
          case 'd': base = 10; break;
          case 'h': base = 16; break;
          default: throw error(std::string("unknown literal base '") + base_char + "'");
        }
        std::uint64_t value = 0;
        bool any_digit = false;
        while (i < source.size() &&
               (digit_value(source[i]) >= 0 || source[i] == '_' || source[i] == 'x' ||
                source[i] == 'X' || source[i] == 'z' || source[i] == 'Z')) {
          const char d = source[i];
          if (d == '_') {
            advance(1);
            continue;
          }
          if (d == 'x' || d == 'X' || d == 'z' || d == 'Z') {
            // 4-state digits collapse to 0 in the 2-state formal model.
            value = value * static_cast<std::uint64_t>(base);
            any_digit = true;
            advance(1);
            continue;
          }
          const int dv = digit_value(d);
          if (dv >= base) break;
          value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(dv);
          any_digit = true;
          advance(1);
        }
        if (!any_digit) throw error("based literal has no digits");
        tok.kind = TokKind::Number;
        tok.sized = have_size;
        tok.width = have_size ? static_cast<unsigned>(size_field) : 32U;
        if (tok.width == 0 || tok.width > 64) {
          throw error("literal width must be in [1,64]");
        }
        tok.value = value;
        tok.text = std::to_string(value);
        tokens.push_back(std::move(tok));
        continue;
      }
      // Bare decimal.
      tok.kind = TokKind::Number;
      tok.sized = false;
      tok.width = 32;
      tok.value = size_field;
      tok.text = std::to_string(size_field);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Multi-character operators (longest match first).
    bool matched = false;
    for (const std::string_view op : kMultiOps) {
      if (source.compare(i, op.size(), op) == 0) {
        tok.kind = TokKind::Punct;
        tok.text = std::string(op);
        advance(op.size());
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;

    // Single-character punctuation.
    static const std::string kSingles = "+-*/%=!<>&|^~?:;,.()[]{}@#";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokKind::Punct;
      tok.text = std::string(1, c);
      advance(1);
      tokens.push_back(std::move(tok));
      continue;
    }

    throw error(std::string("unexpected character '") + c + "'");
  }

  Token end;
  end.kind = TokKind::End;
  end.line = line;
  end.col = col;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace genfv::hdl
