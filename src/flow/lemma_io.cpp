#include "flow/lemma_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::flow {

std::string render_lemma_file(const std::string& design,
                              const std::vector<std::string>& lemma_svas) {
  std::ostringstream out;
  out << "# genfv-lemmas 1\n";
  if (!design.empty()) out << "# design: " << design << '\n';
  out << "# lemmas: " << lemma_svas.size() << '\n';
  for (const std::string& sva : lemma_svas) {
    // One lemma per line; flatten any embedded newline so the file stays
    // line-oriented.
    std::string one_line = sva;
    for (char& ch : one_line) {
      if (ch == '\n') ch = ' ';
    }
    one_line = util::trim(one_line);
    // A lemma that would read back as a blank or comment line vanishes on
    // re-parse — a silent loss the count header cannot repair. Reject it
    // here, at the writer, where the caller can still see which lemma.
    if (one_line.empty()) {
      throw UsageError("render_lemma_file: lemma flattens to an empty line");
    }
    if (one_line[0] == '#') {
      throw UsageError("render_lemma_file: lemma '" + one_line +
                       "' would re-parse as a comment");
    }
    out << one_line << '\n';
  }
  return out.str();
}

std::vector<std::string> parse_lemma_file(const std::string& text) {
  std::vector<std::string> lemmas;
  std::optional<std::size_t> declared;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      // Honor the writer's count header so truncated or hand-mangled files
      // fail loudly instead of silently dropping lemmas.
      const std::string prefix = "# lemmas:";
      if (trimmed.rfind(prefix, 0) == 0) {
        try {
          declared = static_cast<std::size_t>(
              std::stoull(util::trim(trimmed.substr(prefix.size()))));
        } catch (const std::exception&) {
          throw UsageError("lemma file has an unreadable count header: '" +
                           trimmed + "'");
        }
      }
      continue;
    }
    lemmas.push_back(trimmed);
  }
  if (declared.has_value() && *declared != lemmas.size()) {
    throw UsageError("lemma file declares " + std::to_string(*declared) +
                     " lemma(s) but " + std::to_string(lemmas.size()) +
                     " parsed — truncated or edited file?");
  }
  return lemmas;
}

void write_lemma_file(const std::string& path, const std::string& design,
                      const std::vector<std::string>& lemma_svas) {
  std::ofstream out(path);
  if (!out) throw UsageError("cannot write lemma file '" + path + "'");
  out << render_lemma_file(design, lemma_svas);
  if (!out) throw UsageError("failed writing lemma file '" + path + "'");
}

std::vector<std::string> read_lemma_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("cannot open lemma file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_lemma_file(buffer.str());
}

}  // namespace genfv::flow
