#include "flow/lemma_io.hpp"

#include <fstream>
#include <sstream>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::flow {

std::string render_lemma_file(const std::string& design,
                              const std::vector<std::string>& lemma_svas) {
  std::ostringstream out;
  out << "# genfv-lemmas 1\n";
  if (!design.empty()) out << "# design: " << design << '\n';
  for (const std::string& sva : lemma_svas) {
    // One lemma per line; flatten any embedded newline so the file stays
    // line-oriented.
    std::string one_line = sva;
    for (char& ch : one_line) {
      if (ch == '\n') ch = ' ';
    }
    out << util::trim(one_line) << '\n';
  }
  return out.str();
}

std::vector<std::string> parse_lemma_file(const std::string& text) {
  std::vector<std::string> lemmas;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    lemmas.push_back(trimmed);
  }
  return lemmas;
}

void write_lemma_file(const std::string& path, const std::string& design,
                      const std::vector<std::string>& lemma_svas) {
  std::ofstream out(path);
  if (!out) throw UsageError("cannot write lemma file '" + path + "'");
  out << render_lemma_file(design, lemma_svas);
  if (!out) throw UsageError("failed writing lemma file '" + path + "'");
}

std::vector<std::string> read_lemma_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("cannot open lemma file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_lemma_file(buffer.str());
}

}  // namespace genfv::flow
