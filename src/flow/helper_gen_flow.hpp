#pragma once

/// \file helper_gen_flow.hpp
/// Fig. 1 flow: specification + RTL -> LLM -> helper assertions -> formal
/// proof -> proven helpers become assumptions -> targets proven with them.

#include "flow/lemma_manager.hpp"
#include "genai/llm_client.hpp"
#include "mc/engine.hpp"

namespace genfv::flow {

struct FlowOptions {
  mc::KInductionOptions engine;  ///< per-proof bounds (targets and candidates)
  ReviewPolicy review;
  bool joint_induction = true;
  /// Fig. 2 flow: maximum LLM round trips.
  std::size_t max_iterations = 4;
  /// Include target SVA in the prompt (paper's flows do).
  bool targets_in_prompt = true;
  /// Engine used for the *target* proofs; candidate/lemma proofs stay on
  /// k-induction. The repair loop needs a step CEX to prompt with — when a
  /// step-CEX-less engine (BMC, PDR) stalls on Unknown, the flow harvests
  /// one from a k-induction run under the same lemmas. When PDR proves a
  /// target, its inductive-frame clauses are admitted back as lemmas.
  mc::EngineKind target_engine = mc::EngineKind::KInduction;
  /// Live lemma exchange between portfolio members (only meaningful when
  /// `target_engine` is Portfolio); mirrors EngineOptions::exchange.
  bool exchange = true;
  /// PDR worker shards for target proofs (and PDR portfolio members);
  /// mirrors EngineOptions::pdr_workers. 1 = single-threaded PDR,
  /// 0 = auto (mc::auto_pdr_workers resolves per design).
  std::size_t pdr_workers = 1;
  /// PDR ternary-simulation cube lifting for target proofs; mirrors
  /// EngineOptions::pdr_ternary_lifting.
  bool pdr_ternary = false;
  /// Seed PDR frames with the LemmaManager's *unproven* candidates (the
  /// helpers that failed their k-induction proof) as may clauses; mirrors
  /// EngineOptions::pdr_seed_candidates. A hallucinated candidate costs SAT
  /// work, never soundness — see docs/lemmas.md.
  bool pdr_seed_candidates = false;
  /// Strikes before a seeded candidate is retracted from the may tier;
  /// mirrors EngineOptions::pdr_candidate_strikes.
  std::size_t pdr_candidate_strikes = 2;
};

class HelperGenFlow {
 public:
  HelperGenFlow(genai::LlmClient& llm, FlowOptions options = {});

  /// Run the one-shot Fig. 1 pipeline on `task`.
  FlowReport run(VerificationTask& task);

 private:
  genai::LlmClient& llm_;
  FlowOptions options_;
};

}  // namespace genfv::flow
