#pragma once

/// \file lemma_manager.hpp
/// Candidate-to-lemma lifecycle shared by both flows: parse -> compile ->
/// dedupe -> simulation screen -> k-induction proof -> admit. Proven helpers
/// become assumptions for subsequent proofs ("once proven, these assertions
/// would be used as assumptions", paper §III). A joint (mutual-induction)
/// pass rescues candidate sets that are only inductive together with each
/// other or with the targets.

#include <vector>

#include "flow/report.hpp"
#include "flow/review_policy.hpp"
#include "flow/session.hpp"
#include "mc/kinduction.hpp"

namespace genfv::flow {

struct LemmaManagerOptions {
  mc::KInductionOptions engine;   ///< bounds for candidate/lemma proofs
  ReviewPolicy review;
  bool joint_induction = true;    ///< attempt the mutual-induction rescue pass
};

/// Not thread-safe. Holds a reference to `task` (which must outlive the
/// manager) and mutates it: compiling candidates may add `$past` auxiliary
/// state to `task.ts`. All admitted lemma expressions live in `task.ts`'s
/// NodeManager.
///
/// Soundness invariant: `lemma_exprs()` only ever contains expressions that
/// were (a) proven by k-induction inside `process` — alone or in the joint
/// pass — or (b) handed to `admit_proven` by a caller holding a proof. The
/// lemma-file path (`flow/lemma_io.hpp`) deliberately re-enters through
/// `process`, never `admit_proven`, so file contents are re-proven.
class LemmaManager {
 public:
  LemmaManager(VerificationTask& task, LemmaManagerOptions options);

  /// Run every candidate text through the gate: parse -> compile -> dedupe
  /// -> simulation screen -> k-induction proof -> admit. Admitted lemmas
  /// accumulate across calls and are assumed in later candidates' proofs.
  /// `targets` participate in the joint-induction rescue pass (and are
  /// treated as known facts for dedupe purposes). Returns one outcome per
  /// input text, in order.
  std::vector<CandidateOutcome> process(const std::vector<std::string>& candidate_texts);

  /// Admit an invariant proven outside the candidate pipeline — e.g. a
  /// clause of PDR's (or the portfolio winner's) final inductive frame.
  /// `expr` must already live in `task.ts`'s NodeManager and the caller
  /// vouches for its proof. Deduplicates against known facts; returns true
  /// when the lemma was actually added.
  bool admit_proven(ir::NodeRef expr, std::string sva);

  const std::vector<ir::NodeRef>& lemma_exprs() const noexcept { return lemma_exprs_; }
  const std::vector<std::string>& lemma_svas() const noexcept { return lemma_svas_; }

  /// Compiled candidates that survived the simulation screen but failed
  /// their (solo and joint) induction proof — *unproven*, possibly wrong,
  /// but never observed false. Exactly the material PDR's candidate-lemma
  /// frame seeding consumes under the may-proof discipline
  /// (EngineOptions::pdr_candidate_lemmas); they must never be assumed as
  /// facts. Accumulates across process() calls.
  const std::vector<ir::NodeRef>& candidate_exprs() const noexcept {
    return candidate_exprs_;
  }

  /// True when the joint pass incidentally proved the targets as well.
  bool targets_proven_jointly() const noexcept { return targets_proven_jointly_; }

  /// Cumulative prover time spent on candidates.
  double prove_seconds() const noexcept { return prove_seconds_; }

 private:
  bool known_fact(ir::NodeRef expr) const;
  mc::KInductionOptions engine_with_lemmas() const;

  VerificationTask& task_;
  LemmaManagerOptions options_;
  ReviewGate gate_;
  std::vector<ir::NodeRef> lemma_exprs_;
  std::vector<std::string> lemma_svas_;
  std::vector<ir::NodeRef> candidate_exprs_;  ///< screened but unproven
  bool targets_proven_jointly_ = false;
  double prove_seconds_ = 0.0;
};

}  // namespace genfv::flow
