#include "flow/session.hpp"

#include <fstream>
#include <sstream>

#include "frontend/aiger.hpp"
#include "frontend/btor2.hpp"
#include "hdl/elaborator.hpp"
#include "sva/compiler.hpp"
#include "util/status.hpp"

namespace genfv::flow {

namespace {

std::string lower_extension(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return "";
  }
  std::string ext = path.substr(dot + 1);
  for (char& c : ext) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return ext;
}

}  // namespace

VerificationTask VerificationTask::from_rtl(const std::string& name, const std::string& spec,
                                            const std::string& rtl,
                                            const std::vector<TargetSpec>& targets) {
  VerificationTask task;
  task.name = name;
  task.spec = spec;
  task.rtl = rtl;
  auto elab = hdl::elaborate_source(rtl);
  task.ts = std::move(elab.ts);
  for (const auto& t : targets) {
    task.target_indices.push_back(
        sva::add_property(task.ts, t.sva, ir::PropertyRole::Target, t.name));
  }
  return task;
}

VerificationTask VerificationTask::from_file(const std::string& path) {
  VerificationTask task;
  const std::string ext = lower_extension(path);
  if (ext == "aag" || ext == "aig") {
    task.ts = frontend::read_aiger_file(path);
  } else if (ext == "btor" || ext == "btor2") {
    task.ts = frontend::read_btor2_file(path);
  } else {
    std::ifstream in(path);
    if (!in) throw Error("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    task.rtl = buffer.str();
    auto elab = hdl::elaborate_source(task.rtl);
    task.ts = std::move(elab.ts);
  }
  task.name = task.ts.name();
  for (std::size_t i = 0; i < task.ts.num_properties(); ++i) {
    if (task.ts.property(i).role == ir::PropertyRole::Target) {
      task.target_indices.push_back(i);
    }
  }
  return task;
}

std::vector<ir::NodeRef> VerificationTask::target_exprs() const {
  std::vector<ir::NodeRef> exprs;
  exprs.reserve(target_indices.size());
  for (const std::size_t i : target_indices) exprs.push_back(ts.property(i).expr);
  return exprs;
}

std::vector<std::string> VerificationTask::target_svas() const {
  std::vector<std::string> svas;
  svas.reserve(target_indices.size());
  for (const std::size_t i : target_indices) svas.push_back(ts.property(i).source_text);
  return svas;
}

EngineSession::EngineSession(VerificationTask task)
    : task_(std::move(task)), pristine_(task_.ts.mark()) {
  for (const std::size_t i : task_.target_indices) {
    GENFV_ASSERT(i < pristine_.properties,
                 "EngineSession: target index beyond the pristine mark");
  }
}

void EngineSession::reset() { task_.ts.rollback(pristine_); }

mc::EngineResult EngineSession::run_job(mc::EngineKind kind,
                                        const mc::EngineOptions& options) {
  reset();
  // A fresh engine per job: engine instances absorb solver stats across
  // prove calls, so reuse would leak job N's counters into job N+1.
  const auto engine = mc::make_engine(kind, task_.ts, options);
  ++jobs_run_;
  return engine->prove_all(task_.target_exprs());
}

}  // namespace genfv::flow
