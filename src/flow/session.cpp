#include "flow/session.hpp"

#include "hdl/elaborator.hpp"
#include "sva/compiler.hpp"

namespace genfv::flow {

VerificationTask VerificationTask::from_rtl(const std::string& name, const std::string& spec,
                                            const std::string& rtl,
                                            const std::vector<TargetSpec>& targets) {
  VerificationTask task;
  task.name = name;
  task.spec = spec;
  task.rtl = rtl;
  auto elab = hdl::elaborate_source(rtl);
  task.ts = std::move(elab.ts);
  for (const auto& t : targets) {
    task.target_indices.push_back(
        sva::add_property(task.ts, t.sva, ir::PropertyRole::Target, t.name));
  }
  return task;
}

std::vector<ir::NodeRef> VerificationTask::target_exprs() const {
  std::vector<ir::NodeRef> exprs;
  exprs.reserve(target_indices.size());
  for (const std::size_t i : target_indices) exprs.push_back(ts.property(i).expr);
  return exprs;
}

std::vector<std::string> VerificationTask::target_svas() const {
  std::vector<std::string> svas;
  svas.reserve(target_indices.size());
  for (const std::size_t i : target_indices) svas.push_back(ts.property(i).source_text);
  return svas;
}

}  // namespace genfv::flow
