#pragma once

/// \file cex_repair_flow.hpp
/// Fig. 2 flow: run k-induction on the targets; on an inductive-step
/// failure, render the step counterexample as a waveform, hand RTL + CEX to
/// the LLM, prove whatever it proposes, add proven helpers as assumptions,
/// and retry — the automated version of the paper's "it takes human effort
/// to find the root cause from CEX and write a helper assertion".

#include "flow/helper_gen_flow.hpp"

namespace genfv::flow {

class CexRepairFlow {
 public:
  CexRepairFlow(genai::LlmClient& llm, FlowOptions options = {});

  /// Iterate prove -> CEX -> LLM -> lemma up to options.max_iterations.
  FlowReport run(VerificationTask& task);

 private:
  genai::LlmClient& llm_;
  FlowOptions options_;
};

}  // namespace genfv::flow
