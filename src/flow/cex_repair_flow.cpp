#include "flow/cex_repair_flow.hpp"

#include "genai/prompt.hpp"
#include "genai/response_parser.hpp"
#include "ir/printer.hpp"
#include "sim/waveform.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"

namespace genfv::flow {

CexRepairFlow::CexRepairFlow(genai::LlmClient& llm, FlowOptions options)
    : llm_(llm), options_(std::move(options)) {}

FlowReport CexRepairFlow::run(VerificationTask& task) {
  util::Stopwatch watch;
  FlowReport report;
  report.flow = "cex_repair";
  report.design = task.name;
  report.model = llm_.model_name();
  report.engine = mc::to_string(options_.target_engine);

  LemmaManager lemmas(task, {options_.engine, options_.review, options_.joint_induction});

  mc::EngineResult last_result;
  for (std::size_t iter = 1; iter <= options_.max_iterations + 1; ++iter) {
    // Attempt the proof with everything admitted so far.
    mc::EngineOptions opts = mc::to_engine_options(options_.engine);
    opts.exchange = options_.exchange;
    opts.pdr_workers = options_.pdr_workers;
    opts.pdr_ternary_lifting = options_.pdr_ternary;
    opts.pdr_seed_candidates = options_.pdr_seed_candidates;
    opts.pdr_candidate_strikes = options_.pdr_candidate_strikes;
    if (options_.pdr_seed_candidates) {
      // Candidates the proof gate rejected (but simulation did not refute)
      // still seed PDR frames as may clauses — per iteration, so each repair
      // round's fresh candidates ride into the next proof attempt.
      opts.pdr_candidate_lemmas = lemmas.candidate_exprs();
    }
    opts.lemmas.insert(opts.lemmas.end(), lemmas.lemma_exprs().begin(),
                       lemmas.lemma_exprs().end());
    auto engine = mc::make_engine(options_.target_engine, task.ts, opts);
    last_result = [&] {
      GENFV_TRACE_SPAN("flow", "prove_targets");
      return engine->prove_all(task.target_exprs());
    }();
    report.prove_seconds += last_result.stats.seconds;

    // Engines without a step-case artefact (BMC, PDR) cannot feed the
    // repair prompt. When they stall on Unknown, harvest the step CEX from
    // a k-induction run under the same lemmas — or adopt its verdict
    // outright if it concludes — so the repair loop keeps working.
    if (last_result.verdict == mc::Verdict::Unknown &&
        !last_result.step_cex.has_value() &&
        options_.target_engine != mc::EngineKind::KInduction) {
      auto kind = mc::make_engine(mc::EngineKind::KInduction, task.ts, opts);
      mc::EngineResult fallback = kind->prove_all(task.target_exprs());
      report.prove_seconds += fallback.stats.seconds;
      if (fallback.verdict != mc::Verdict::Unknown) {
        last_result = std::move(fallback);
      } else {
        last_result.step_cex = std::move(fallback.step_cex);
      }
    }

    if (last_result.verdict != mc::Verdict::Unknown || !last_result.step_cex.has_value() ||
        iter > options_.max_iterations) {
      break;  // proven, falsified, budget, or out of repair iterations
    }

    // Induction-step failure: render the artefacts the paper feeds the LLM.
    const sim::Trace& cex = *last_result.step_cex;
    sim::WaveformOptions wave_opts;
    wave_opts.failure_frame = cex.size() - 1;
    const std::string waveform =
        sim::render_waveform(cex, sim::default_signals(task.ts), wave_opts);

    genai::PromptInputs inputs;
    inputs.design_name = task.name;
    inputs.spec = task.spec;
    inputs.rtl = task.rtl;
    if (options_.targets_in_prompt) inputs.target_properties = task.target_svas();
    inputs.proven_lemmas = lemmas.lemma_svas();
    inputs.failed_property = util::join(task.target_svas(), " && ");
    inputs.cex_waveform = waveform;
    inputs.induction_depth = last_result.depth;
    const genai::Prompt prompt = genai::render_cex_repair_prompt(inputs);

    const genai::Completion completion = [&] {
      GENFV_TRACE_SPAN("flow", "mine");
      return llm_.complete(prompt);
    }();
    report.llm_seconds += completion.latency_seconds;

    IterationReport iteration;
    iteration.index = iter;
    iteration.prompt_tokens = completion.prompt_tokens;
    iteration.completion_tokens = completion.completion_tokens;
    iteration.llm_latency_seconds = completion.latency_seconds;
    const auto extracted = genai::extract_assertions(completion.text);
    iteration.candidates = [&] {
      GENFV_TRACE_SPAN("flow", "screen_prove_candidates");
      return lemmas.process(extracted);
    }();
    for (const auto& c : iteration.candidates) {
      if (c.status == CandidateStatus::Proven) ++iteration.lemmas_admitted;
    }
    report.iterations.push_back(std::move(iteration));

    // An unproductive round (candidates rejected) is worth retrying with the
    // next counterexample; an *empty* answer means the model is out of
    // ideas, so further round trips would only repeat it.
    if (extracted.empty()) {
      GENFV_LOG(Info, "flow") << "cex_repair: model produced no candidates in iteration "
                              << iter << ", stopping";
      break;
    }
  }

  // A PDR proof exports its inductive-frame clauses as proven lemmas, so a
  // follow-up helper-generation run (or a later target) can assume them.
  for (const ir::NodeRef clause : last_result.invariant) {
    lemmas.admit_proven(clause, ir::to_string(clause));
  }
  report.admitted_lemmas = lemmas.lemma_svas();
  report.prove_seconds += lemmas.prove_seconds();
  for (const std::size_t i : task.target_indices) {
    TargetReport tr;
    tr.name = task.ts.property(i).name;
    // Joint verdict applies to every target.
    tr.result = mc::to_induction_result(last_result);
    report.targets.push_back(std::move(tr));
  }
  report.total_seconds = watch.seconds() + report.llm_seconds;
  GENFV_LOG(Info, "flow") << "cex_repair on " << task.name << ": verdict="
                          << mc::to_string(last_result.verdict) << " after "
                          << report.iterations.size() << " repair iteration(s)";
  return report;
}

}  // namespace genfv::flow
