#include "flow/report.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace genfv::flow {

std::string to_string(CandidateStatus status) {
  switch (status) {
    case CandidateStatus::SyntaxRejected: return "syntax-rejected";
    case CandidateStatus::CompileRejected: return "compile-rejected";
    case CandidateStatus::Duplicate: return "duplicate";
    case CandidateStatus::SimFalsified: return "sim-falsified";
    case CandidateStatus::ProofFailed: return "proof-failed";
    case CandidateStatus::Proven: return "proven";
  }
  return "?";
}

bool FlowReport::all_targets_proven() const {
  if (targets.empty()) return false;
  for (const auto& t : targets) {
    if (t.result.verdict != mc::Verdict::Proven) return false;
  }
  return true;
}

std::size_t FlowReport::candidates_total() const {
  std::size_t n = 0;
  for (const auto& it : iterations) n += it.candidates.size();
  return n;
}

std::size_t FlowReport::candidates_with(CandidateStatus status) const {
  std::size_t n = 0;
  for (const auto& it : iterations) {
    for (const auto& c : it.candidates) {
      if (c.status == status) ++n;
    }
  }
  return n;
}

std::string FlowReport::to_string() const {
  std::ostringstream out;
  out << "=== " << flow << " | design=" << design << " | model=" << model;
  if (!engine.empty()) out << " | engine=" << engine;
  out << " | seed=" << seed << " ===\n";
  for (const auto& it : iterations) {
    out << "iteration " << it.index << ": " << it.candidates.size() << " candidates, "
        << it.lemmas_admitted << " admitted (" << it.prompt_tokens << " prompt tok, "
        << it.completion_tokens << " completion tok, "
        << util::format_duration(it.llm_latency_seconds) << " model latency)\n";
    for (const auto& c : it.candidates) {
      out << "  [" << flow::to_string(c.status) << "] " << c.sva;
      if (!c.detail.empty()) out << "  (" << c.detail << ")";
      out << '\n';
    }
  }
  out << "lemmas admitted: " << admitted_lemmas.size() << '\n';
  for (const auto& lemma : admitted_lemmas) out << "  assume " << lemma << '\n';
  for (const auto& t : targets) {
    out << "target " << t.name << ": " << t.result.summary() << '\n';
  }
  out << "time: total " << util::format_duration(total_seconds) << ", model "
      << util::format_duration(llm_seconds) << ", prove "
      << util::format_duration(prove_seconds) << '\n';
  return out.str();
}

}  // namespace genfv::flow
