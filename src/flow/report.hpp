#pragma once

/// \file report.hpp
/// Structured reporting for flow runs: every candidate's fate through the
/// review gate, per-iteration LLM bookkeeping, and the final proof results.
/// Benches E2-E5/E7 aggregate these.

#include <string>
#include <vector>

#include "mc/result.hpp"

namespace genfv::flow {

/// What happened to one generated assertion.
enum class CandidateStatus {
  SyntaxRejected,   ///< did not parse as SVA
  CompileRejected,  ///< parsed, but referenced unknown signals / bad widths
  Duplicate,        ///< structurally identical to a known lemma/target/constant
  SimFalsified,     ///< random simulation found a violating run (hallucination)
  ProofFailed,      ///< prover could not establish it (within bounds)
  Proven,           ///< k-induction proof succeeded -> admitted as lemma
};

std::string to_string(CandidateStatus status);

struct CandidateOutcome {
  std::string sva;
  CandidateStatus status = CandidateStatus::SyntaxRejected;
  std::string detail;       ///< error text / falsifying frame / proof k
  double prove_seconds = 0.0;
  std::size_t proof_k = 0;
};

/// One LLM round trip and its consequences.
struct IterationReport {
  std::size_t index = 0;
  std::uint64_t prompt_tokens = 0;
  std::uint64_t completion_tokens = 0;
  double llm_latency_seconds = 0.0;
  std::vector<CandidateOutcome> candidates;
  std::size_t lemmas_admitted = 0;
};

/// Per-target final verdict.
struct TargetReport {
  std::string name;
  mc::InductionResult result;
};

struct FlowReport {
  std::string flow;    ///< "helper_generation" (Fig. 1) / "cex_repair" (Fig. 2)
  std::string design;
  std::string model;
  std::string engine;  ///< target-proof engine ("k-induction", "pdr", ...)
  std::uint64_t seed = 0;

  std::vector<IterationReport> iterations;
  std::vector<std::string> admitted_lemmas;  ///< SVA of proven helpers
  std::vector<TargetReport> targets;

  double total_seconds = 0.0;
  double llm_seconds = 0.0;    ///< simulated model latency
  double prove_seconds = 0.0;  ///< engine time (lemmas + targets)

  bool all_targets_proven() const;
  std::size_t candidates_total() const;
  std::size_t candidates_with(CandidateStatus status) const;

  /// Human-readable multi-line report.
  std::string to_string() const;
};

}  // namespace genfv::flow
