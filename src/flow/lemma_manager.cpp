#include "flow/lemma_manager.hpp"

#include <algorithm>

#include "sva/compiler.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/telemetry.hpp"

namespace genfv::flow {

LemmaManager::LemmaManager(VerificationTask& task, LemmaManagerOptions options)
    : task_(task), options_(std::move(options)), gate_(task_.ts, options_.review) {}

bool LemmaManager::known_fact(ir::NodeRef expr) const {
  // Hash-consing makes structural equality pointer equality.
  for (const ir::NodeRef lemma : lemma_exprs_) {
    if (lemma == expr) return true;
  }
  for (const std::size_t i : task_.target_indices) {
    if (task_.ts.property(i).expr == expr) return true;
  }
  return false;
}

mc::KInductionOptions LemmaManager::engine_with_lemmas() const {
  mc::KInductionOptions opts = options_.engine;
  opts.lemmas.insert(opts.lemmas.end(), lemma_exprs_.begin(), lemma_exprs_.end());
  return opts;
}

bool LemmaManager::admit_proven(ir::NodeRef expr, std::string sva) {
  if (expr == nullptr || expr->is_const() || known_fact(expr)) return false;
  lemma_exprs_.push_back(expr);
  lemma_svas_.push_back(std::move(sva));
  return true;
}

std::vector<CandidateOutcome> LemmaManager::process(
    const std::vector<std::string>& candidate_texts) {
  std::vector<CandidateOutcome> outcomes;
  struct Pending {
    std::size_t outcome_index;
    ir::NodeRef expr;
  };
  std::vector<Pending> proof_failed;

  for (const std::string& text : candidate_texts) {
    CandidateOutcome outcome;
    outcome.sva = text;

    // Parse + compile (may add $past auxiliary state to the task's system).
    ir::NodeRef expr = nullptr;
    std::string prop_source;
    try {
      const auto parsed = sva::parse_property(text);
      prop_source = parsed.source;
      try {
        sva::PropertyCompiler compiler(task_.ts);
        expr = compiler.compile(parsed).expr;
      } catch (const Error& e) {
        outcome.status = CandidateStatus::CompileRejected;
        outcome.detail = e.what();
        outcomes.push_back(std::move(outcome));
        continue;
      }
    } catch (const Error& e) {
      outcome.status = CandidateStatus::SyntaxRejected;
      outcome.detail = e.what();
      outcomes.push_back(std::move(outcome));
      continue;
    }

    // Trivial / duplicate checks (constant folding already ran).
    if (expr->is_const()) {
      if (expr->value() != 0) {
        outcome.status = CandidateStatus::Duplicate;
        outcome.detail = "trivially true";
      } else {
        outcome.status = CandidateStatus::SimFalsified;
        outcome.detail = "trivially false";
      }
      outcomes.push_back(std::move(outcome));
      continue;
    }
    if (known_fact(expr)) {
      outcome.status = CandidateStatus::Duplicate;
      outcome.detail = "already known";
      outcomes.push_back(std::move(outcome));
      continue;
    }

    // Stage 1: simulation screen (cheap hallucination filter).
    if (util::telemetry_on()) {
      static util::Counter& screened = util::metrics().counter("flow.candidates_screened");
      screened.increment();
    }
    const auto witness = [&] {
      GENFV_TRACE_SPAN("flow", "screen_candidate");
      static util::Counter& screen_ns = util::metrics().counter("flow.screen_ns");
      util::ScopedTimerNs timer(screen_ns);
      return gate_.screen(expr);
    }();
    if (witness) {
      outcome.status = CandidateStatus::SimFalsified;
      outcome.detail = "violated at frame " + std::to_string(witness->size() - 1) +
                       " of a random run";
      outcomes.push_back(std::move(outcome));
      continue;
    }

    // Stage 2: the proof gate.
    mc::KInductionEngine engine(task_.ts, engine_with_lemmas());
    const mc::InductionResult result = [&] {
      GENFV_TRACE_SPAN("flow", "prove_candidate");
      static util::Counter& prove_ns = util::metrics().counter("flow.prove_ns");
      util::ScopedTimerNs timer(prove_ns);
      return engine.prove(expr);
    }();
    prove_seconds_ += result.stats.seconds;
    outcome.prove_seconds = result.stats.seconds;
    outcome.proof_k = result.k;
    if (result.verdict == mc::Verdict::Proven) {
      outcome.status = CandidateStatus::Proven;
      outcome.detail = "k=" + std::to_string(result.k);
      lemma_exprs_.push_back(expr);
      lemma_svas_.push_back(prop_source);
    } else {
      outcome.status = CandidateStatus::ProofFailed;
      outcome.detail = result.verdict == mc::Verdict::Falsified
                           ? "base case fails (not an invariant)"
                           : "not inductive up to k=" + std::to_string(result.k);
      if (result.verdict != mc::Verdict::Falsified) {
        proof_failed.push_back({outcomes.size(), expr});
      }
    }
    outcomes.push_back(std::move(outcome));
  }

  // Joint (mutual) induction rescue: candidates that are not inductive alone
  // may be inductive as a conjunction, possibly together with the targets.
  if (options_.joint_induction && !proof_failed.empty()) {
    std::vector<ir::NodeRef> joint;
    for (const auto& p : proof_failed) joint.push_back(p.expr);
    const std::vector<ir::NodeRef> targets = task_.target_exprs();
    joint.insert(joint.end(), targets.begin(), targets.end());

    mc::KInductionEngine engine(task_.ts, engine_with_lemmas());
    const mc::InductionResult result = [&] {
      GENFV_TRACE_SPAN("flow", "prove_joint");
      return engine.prove_all(joint);
    }();
    prove_seconds_ += result.stats.seconds;
    if (result.verdict == mc::Verdict::Proven) {
      GENFV_LOG(Info, "lemma") << "joint induction rescued " << proof_failed.size()
                               << " candidate(s) at k=" << result.k;
      for (const auto& p : proof_failed) {
        outcomes[p.outcome_index].status = CandidateStatus::Proven;
        outcomes[p.outcome_index].detail =
            "joint induction, k=" + std::to_string(result.k);
        lemma_exprs_.push_back(p.expr);
        lemma_svas_.push_back(outcomes[p.outcome_index].sva);
      }
      targets_proven_jointly_ = true;
    }
  }

  // Whatever is still unproven (solo and joint proofs both failed, but the
  // simulation screen never falsified it) stays available as candidate
  // material for PDR's may-proof frame seeding. Hash-consing makes the
  // pointer-equality dedupe exact: a candidate re-submitted across repair
  // iterations appears once, and one that a later round proves is purged —
  // it is assumed as a lemma from then on, not re-seeded as a may clause.
  std::erase_if(candidate_exprs_, [&](ir::NodeRef c) { return known_fact(c); });
  for (const auto& p : proof_failed) {
    if (outcomes[p.outcome_index].status == CandidateStatus::Proven) continue;
    if (std::find(candidate_exprs_.begin(), candidate_exprs_.end(), p.expr) !=
        candidate_exprs_.end()) {
      continue;
    }
    candidate_exprs_.push_back(p.expr);
  }

  return outcomes;
}

}  // namespace genfv::flow
