#pragma once

/// \file review_policy.hpp
/// The mechanical "human-in-the-loop": the paper's conclusion warns that
/// hallucinated assertions "produce vulnerable results" and recommends
/// analyzing model output before productive use. genfv makes that analysis
/// a hard gate with two stages:
///   1. simulation screening — cheap random runs that falsify most
///      hallucinations before any prover time is spent (optional, ablated
///      in bench E7),
///   2. the k-induction proof itself — mandatory and not configurable;
///      nothing unproven is ever assumed, so hallucinations can waste time
///      but can never corrupt a verdict.

#include <cstdint>
#include <optional>

#include "sim/random_sim.hpp"

namespace genfv::flow {

struct ReviewPolicy {
  /// Stage-1 simulation screen on/off (stage 2 is always on).
  bool sim_screen = true;
  std::size_t sim_steps = 64;
  std::size_t sim_restarts = 4;
  std::uint64_t seed = 0x5EED;
};

class ReviewGate {
 public:
  ReviewGate(const ir::TransitionSystem& ts, ReviewPolicy policy)
      : ts_(ts), policy_(policy) {}

  /// Try to falsify `expr` by random simulation; a witness trace means the
  /// candidate is certainly not an invariant.
  std::optional<sim::Trace> screen(ir::NodeRef expr);

  const ReviewPolicy& policy() const noexcept { return policy_; }

 private:
  const ir::TransitionSystem& ts_;
  ReviewPolicy policy_;
  std::uint64_t counter_ = 0;
};

}  // namespace genfv::flow
