#pragma once

/// \file session.hpp
/// A verification task bundles everything the paper's flows consume: the
/// RTL source, the natural-language specification, the elaborated
/// transition system and the compiled target properties.

#include <string>
#include <vector>

#include "ir/transition_system.hpp"

namespace genfv::flow {

struct TargetSpec {
  std::string name;
  std::string sva;
};

struct VerificationTask {
  std::string name;
  std::string spec;  ///< natural-language specification (prompt input)
  std::string rtl;   ///< SystemVerilog source (prompt input)
  ir::TransitionSystem ts;
  /// Indices of target properties inside ts.properties().
  std::vector<std::size_t> target_indices;

  /// Elaborate `rtl` and compile `targets` into a ready-to-run task.
  static VerificationTask from_rtl(const std::string& name, const std::string& spec,
                                   const std::string& rtl,
                                   const std::vector<TargetSpec>& targets);

  /// Load a design file, dispatching on extension: `.aag`/`.aig` go through
  /// the AIGER frontend, `.btor`/`.btor2` through the BTOR2 frontend, and
  /// anything else is elaborated as HDL source. Frontend-sourced targets are
  /// the file's embedded Target-role properties (`bad_N` et al.); HDL files
  /// carry no targets until the caller compiles some.
  static VerificationTask from_file(const std::string& path);

  /// Target property expressions, in declaration order.
  std::vector<ir::NodeRef> target_exprs() const;
  /// SVA source of every target (prompt rendering).
  std::vector<std::string> target_svas() const;
};

}  // namespace genfv::flow
