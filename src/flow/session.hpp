#pragma once

/// \file session.hpp
/// A verification task bundles everything the paper's flows consume: the
/// RTL source, the natural-language specification, the elaborated
/// transition system and the compiled target properties.

#include <string>
#include <vector>

#include "ir/transition_system.hpp"
#include "mc/engine.hpp"

namespace genfv::flow {

struct TargetSpec {
  std::string name;
  std::string sva;
};

struct VerificationTask {
  std::string name;
  std::string spec;  ///< natural-language specification (prompt input)
  std::string rtl;   ///< SystemVerilog source (prompt input)
  ir::TransitionSystem ts;
  /// Indices of target properties inside ts.properties().
  std::vector<std::size_t> target_indices;

  /// Elaborate `rtl` and compile `targets` into a ready-to-run task.
  static VerificationTask from_rtl(const std::string& name, const std::string& spec,
                                   const std::string& rtl,
                                   const std::vector<TargetSpec>& targets);

  /// Load a design file, dispatching on extension: `.aag`/`.aig` go through
  /// the AIGER frontend, `.btor`/`.btor2` through the BTOR2 frontend, and
  /// anything else is elaborated as HDL source. Frontend-sourced targets are
  /// the file's embedded Target-role properties (`bad_N` et al.); HDL files
  /// carry no targets until the caller compiles some.
  static VerificationTask from_file(const std::string& path);

  /// Target property expressions, in declaration order.
  std::vector<ir::NodeRef> target_exprs() const;
  /// SVA source of every target (prompt rendering).
  std::vector<std::string> target_svas() const;
};

/// A resident verification session: one task, many jobs.
///
/// Historically everything downstream of `VerificationTask` assumed one-shot
/// lifetime — a process elaborated a task, ran one flow, and exited, so
/// nobody cared that `LemmaManager` leaves `$past` auxiliary state and
/// candidate properties behind in `task.ts`, or that reusing one `mc::Engine`
/// across prove calls accumulates `EngineStats`. A resident server
/// (`tools/genfv_serve.cpp`) breaks that assumption: the same task runs job
/// after job, and any residue from job N would silently perturb job N+1.
///
/// `EngineSession` is the audited seam: it checkpoints the freshly-built task
/// (`ir::TransitionSystem::mark`), and `run_job` rolls the system back to
/// that pristine state and constructs a *fresh* engine before every run — so
/// two sequential jobs in one session are bit-for-bit two fresh processes
/// (pinned by FlowSession.SequentialJobsMatchFreshProcesses).
///
/// Nodes created by earlier jobs stay alive in the shared NodeManager
/// (hash-consed; re-creating them is a lookup), which is also what lets a
/// caller materialize cached lemma clauses into the session's manager before
/// a job: `reset()` withdraws declarations, never nodes.
///
/// Not thread-safe — the NodeManager underneath is single-threaded. A server
/// gives each concurrent job its own session (serve/worker_pool.hpp).
class EngineSession {
 public:
  /// Takes ownership of a freshly-built task and checkpoints it.
  explicit EngineSession(VerificationTask task);

  VerificationTask& task() noexcept { return task_; }
  const VerificationTask& task() const noexcept { return task_; }
  std::size_t jobs_run() const noexcept { return jobs_run_; }

  /// Roll the transition system back to its pristine post-construction
  /// state, dropping any auxiliary state/properties/constraints a previous
  /// job appended. Idempotent; `run_job` calls it automatically.
  void reset();

  /// Run one engine over the session's targets: reset, build a fresh
  /// `mc::Engine`, prove. `options.lemmas` / `options.pdr_candidate_lemmas`
  /// must live in this session's NodeManager (materialize them against
  /// `task().ts` first).
  mc::EngineResult run_job(mc::EngineKind kind, const mc::EngineOptions& options);

 private:
  VerificationTask task_;
  ir::TransitionSystem::Mark pristine_;
  std::size_t jobs_run_ = 0;
};

}  // namespace genfv::flow
