#include "flow/helper_gen_flow.hpp"

#include "genai/prompt.hpp"
#include "genai/response_parser.hpp"
#include "ir/printer.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"

namespace genfv::flow {

HelperGenFlow::HelperGenFlow(genai::LlmClient& llm, FlowOptions options)
    : llm_(llm), options_(std::move(options)) {}

FlowReport HelperGenFlow::run(VerificationTask& task) {
  util::Stopwatch watch;
  FlowReport report;
  report.flow = "helper_generation";
  report.design = task.name;
  report.model = llm_.model_name();
  report.engine = mc::to_string(options_.target_engine);

  // 1. Render the Fig. 1 prompt: specification + RTL (+ targets).
  genai::PromptInputs inputs;
  inputs.design_name = task.name;
  inputs.spec = task.spec;
  inputs.rtl = task.rtl;
  if (options_.targets_in_prompt) inputs.target_properties = task.target_svas();
  const genai::Prompt prompt = genai::render_helper_generation_prompt(inputs);

  // 2. One model round trip.
  GENFV_TRACE_INSTANT("flow", "mine_start");
  const genai::Completion completion = [&] {
    GENFV_TRACE_SPAN("flow", "mine");
    return llm_.complete(prompt);
  }();
  report.llm_seconds += completion.latency_seconds;

  IterationReport iteration;
  iteration.index = 1;
  iteration.prompt_tokens = completion.prompt_tokens;
  iteration.completion_tokens = completion.completion_tokens;
  iteration.llm_latency_seconds = completion.latency_seconds;

  // 3. Candidate pipeline: parse -> screen -> prove -> admit.
  LemmaManager lemmas(task, {options_.engine, options_.review, options_.joint_induction});
  {
    GENFV_TRACE_SPAN("flow", "screen_prove_candidates");
    iteration.candidates = lemmas.process(genai::extract_assertions(completion.text));
  }
  for (const auto& c : iteration.candidates) {
    if (c.status == CandidateStatus::Proven) ++iteration.lemmas_admitted;
  }
  report.iterations.push_back(std::move(iteration));
  report.prove_seconds += lemmas.prove_seconds();

  // 4. Prove every target with the admitted lemmas as assumptions, using the
  // selected engine. A PDR proof pays its discovery back: the clauses of its
  // final inductive frame are admitted as lemmas for later targets.
  for (const std::size_t i : task.target_indices) {
    const auto& prop = task.ts.property(i);
    mc::EngineOptions target_opts = mc::to_engine_options(options_.engine);
    target_opts.exchange = options_.exchange;
    target_opts.pdr_workers = options_.pdr_workers;
    target_opts.pdr_ternary_lifting = options_.pdr_ternary;
    target_opts.pdr_seed_candidates = options_.pdr_seed_candidates;
    target_opts.pdr_candidate_strikes = options_.pdr_candidate_strikes;
    if (options_.pdr_seed_candidates) {
      // Rejected-but-plausible helpers get a second life as PDR may clauses.
      target_opts.pdr_candidate_lemmas = lemmas.candidate_exprs();
    }
    target_opts.lemmas.insert(target_opts.lemmas.end(), lemmas.lemma_exprs().begin(),
                              lemmas.lemma_exprs().end());
    auto engine = mc::make_engine(options_.target_engine, task.ts, target_opts);
    const mc::EngineResult result = [&] {
      GENFV_TRACE_SPAN("flow", "prove_target");
      return engine->prove(prop.expr);
    }();
    for (const ir::NodeRef clause : result.invariant) {
      lemmas.admit_proven(clause, ir::to_string(clause));
    }
    TargetReport tr;
    tr.name = prop.name;
    tr.result = mc::to_induction_result(result);
    report.prove_seconds += tr.result.stats.seconds;
    report.targets.push_back(std::move(tr));
  }
  report.admitted_lemmas = lemmas.lemma_svas();

  report.total_seconds = watch.seconds() + report.llm_seconds;
  GENFV_LOG(Info, "flow") << "helper_generation on " << task.name << ": "
                          << report.admitted_lemmas.size() << " lemmas, targets proven="
                          << report.all_targets_proven();
  return report;
}

}  // namespace genfv::flow
