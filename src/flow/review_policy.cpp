#include "flow/review_policy.hpp"

namespace genfv::flow {

std::optional<sim::Trace> ReviewGate::screen(ir::NodeRef expr) {
  if (!policy_.sim_screen) return std::nullopt;
  // Fresh deterministic stream per call so screening one candidate does not
  // change the verdict for the next.
  sim::RandomSimulator simulator(ts_, policy_.seed + 0x9E37 * (++counter_));
  return simulator.falsify(expr, policy_.sim_steps, policy_.sim_restarts);
}

}  // namespace genfv::flow
