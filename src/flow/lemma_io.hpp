#pragma once

/// \file lemma_io.hpp
/// The portable lemma file format: one SVA boolean expression per line, with
/// `#` comments and blank lines ignored. This is the hand-off artefact of
/// the bidirectional exchange — a PDR (or portfolio) win exports its
/// inductive-frame clauses here, and a later run re-ingests them through
/// `LemmaManager::process`, which re-proves every line before assuming it
/// (so a stale or hand-edited file can never unsoundly influence a proof).
///
/// Example:
///   # genfv-lemmas 1
///   # design: token_ring
///   # lemmas: 2
///   !(token[0] & token[1])
///   token[0] | token[1] | token[2]
///
/// The `# lemmas:` header records how many lemmas the writer emitted;
/// `parse_lemma_file` cross-checks it so a truncated or hand-mangled file
/// fails loudly instead of silently dropping lines.

#include <string>
#include <vector>

namespace genfv::flow {

/// Render `lemma_svas` into the file format above. `design` is recorded as
/// an informational comment only. Throws UsageError for a lemma that could
/// not survive the round trip (flattens to an empty line, or would re-parse
/// as a `#` comment).
std::string render_lemma_file(const std::string& design,
                              const std::vector<std::string>& lemma_svas);

/// Parse lemma file text back into one SVA string per lemma. Tolerant of
/// missing headers (any non-comment, non-blank line is a lemma).
std::vector<std::string> parse_lemma_file(const std::string& text);

/// File-system conveniences; both throw UsageError on I/O failure.
void write_lemma_file(const std::string& path, const std::string& design,
                      const std::vector<std::string>& lemma_svas);
std::vector<std::string> read_lemma_file(const std::string& path);

}  // namespace genfv::flow
