#include "flow/direct_miner_flow.hpp"

#include "genai/mining/miner.hpp"
#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"

namespace genfv::flow {

DirectMinerFlow::DirectMinerFlow(DirectMinerOptions options)
    : options_(std::move(options)) {}

FlowReport DirectMinerFlow::run(VerificationTask& task) {
  util::Stopwatch watch;
  FlowReport report;
  report.flow = "direct_miner";
  report.design = task.name;
  report.model = "none (structural + simulation mining)";
  report.seed = options_.seed;

  // Mine candidates straight off the design — all passes, no noise.
  sim::RandomSimulator simulator(task.ts, options_.seed);
  const auto samples =
      simulator.sample_states(options_.sample_steps, options_.sample_restarts);
  util::Xoshiro256 rng(options_.seed);
  genai::MiningContext ctx{task.ts, samples, nullptr, rng};
  std::vector<genai::CandidateInvariant> candidates;
  for (const auto& miner : genai::standard_miners()) {
    miner->mine(ctx, candidates);
  }

  std::vector<std::string> texts;
  texts.reserve(candidates.size());
  for (const auto& c : candidates) texts.push_back(c.sva);

  LemmaManager lemmas(task, {options_.engine, options_.review, options_.joint_induction});
  IterationReport iteration;
  iteration.index = 1;
  iteration.candidates = [&] {
    GENFV_TRACE_SPAN("flow", "screen_prove_candidates");
    return lemmas.process(texts);
  }();
  for (const auto& c : iteration.candidates) {
    if (c.status == CandidateStatus::Proven) ++iteration.lemmas_admitted;
  }
  report.iterations.push_back(std::move(iteration));
  report.admitted_lemmas = lemmas.lemma_svas();
  report.prove_seconds += lemmas.prove_seconds();

  mc::KInductionOptions target_opts = options_.engine;
  target_opts.lemmas.insert(target_opts.lemmas.end(), lemmas.lemma_exprs().begin(),
                            lemmas.lemma_exprs().end());
  for (const std::size_t i : task.target_indices) {
    const auto& prop = task.ts.property(i);
    mc::KInductionEngine engine(task.ts, target_opts);
    TargetReport tr;
    tr.name = prop.name;
    tr.result = engine.prove(prop.expr);
    report.prove_seconds += tr.result.stats.seconds;
    report.targets.push_back(std::move(tr));
  }

  report.total_seconds = watch.seconds();
  return report;
}

}  // namespace genfv::flow
