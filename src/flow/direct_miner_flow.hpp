#pragma once

/// \file direct_miner_flow.hpp
/// The non-LLM comparator: runs the invariant-mining analyses directly
/// against the design (no prompt rendering, no text channel, no noise
/// injection, no per-model insight limits) and pushes every proposal
/// through the same review gate and lemma lifecycle as the paper's flows.
///
/// This is what a classical invariant-generation tool would do; benches use
/// it to separate "value of the invariants" from "value of the LLM
/// packaging" — and it doubles as an upper bound on what any simulated
/// model profile can achieve.

#include "flow/lemma_manager.hpp"

namespace genfv::flow {

struct DirectMinerOptions {
  mc::KInductionOptions engine;
  ReviewPolicy review;
  bool joint_induction = true;
  /// Random-simulation sampling for the miners.
  std::size_t sample_steps = 48;
  std::size_t sample_restarts = 6;
  std::uint64_t seed = 0xD15EA5E;
};

class DirectMinerFlow {
 public:
  explicit DirectMinerFlow(DirectMinerOptions options = {});

  FlowReport run(VerificationTask& task);

 private:
  DirectMinerOptions options_;
};

}  // namespace genfv::flow
