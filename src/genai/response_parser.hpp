#pragma once

/// \file response_parser.hpp
/// Extraction of SVA assertions from free-form model completions. Real LLM
/// output mixes prose with fenced code blocks; the parser pulls out every
/// plausible assertion and leaves validation (parse, compile, screen, prove)
/// to the flow's review gate.

#include <string>
#include <vector>

namespace genfv::genai {

/// Pull candidate assertion texts out of a completion:
///  * fenced blocks tagged sva / systemverilog / verilog (or untagged blocks
///    that contain "property"),
///  * inline `property ...; ... endproperty` runs outside fences.
/// Returned strings are trimmed; duplicates are kept (the flow dedupes after
/// compilation, where structural equality is decidable).
std::vector<std::string> extract_assertions(const std::string& completion);

}  // namespace genfv::genai
