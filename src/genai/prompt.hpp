#pragma once

/// \file prompt.hpp
/// Prompt templates for the paper's two flows. Fig. 1: specification + RTL
/// -> helper assertions. Fig. 2: RTL + induction-step CEX -> repair lemma.
/// The rendered markdown is the *entire* channel to the model; the simulated
/// LLM re-parses the RTL and waveform out of this text.

#include <string>
#include <vector>

#include "genai/llm_client.hpp"

namespace genfv::genai {

/// Everything a flow can put into a prompt.
struct PromptInputs {
  std::string design_name;
  std::string spec;               ///< natural-language specification
  std::string rtl;                ///< RTL source (SystemVerilog subset)
  std::vector<std::string> target_properties;  ///< SVA the user wants proven
  std::vector<std::string> proven_lemmas;      ///< already-proven helpers
  /// Fig. 2 only: the failing property and the step-CEX waveform text.
  std::string failed_property;
  std::string cex_waveform;
  std::size_t induction_depth = 0;
};

/// Fig. 1 flow: "generate helper assertions from spec + RTL".
Prompt render_helper_generation_prompt(const PromptInputs& in);

/// Fig. 2 flow: "analyze the induction-step failure and propose a lemma".
Prompt render_cex_repair_prompt(const PromptInputs& in);

/// Markers the simulated model uses to find sections inside the user turn.
/// Kept public so tests can assert prompt structure.
namespace marker {
inline constexpr const char* kRtlFenceOpen = "```systemverilog";
inline constexpr const char* kWaveFenceOpen = "```waveform";
inline constexpr const char* kFenceClose = "```";
inline constexpr const char* kFailedProperty = "Failing property:";
}  // namespace marker

}  // namespace genfv::genai
