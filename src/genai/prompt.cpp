#include "genai/prompt.hpp"

#include <sstream>

namespace genfv::genai {

namespace {

void append_common_context(std::ostringstream& out, const PromptInputs& in) {
  out << "## Design: " << in.design_name << "\n\n";
  if (!in.spec.empty()) {
    out << "## Specification\n\n" << in.spec << "\n\n";
  }
  out << "## RTL\n\n" << marker::kRtlFenceOpen << "\n" << in.rtl;
  if (!in.rtl.empty() && in.rtl.back() != '\n') out << '\n';
  out << marker::kFenceClose << "\n\n";
  if (!in.target_properties.empty()) {
    out << "## Target properties (to be proven by induction)\n\n";
    for (const auto& p : in.target_properties) {
      out << "```sva\n" << p << "\n```\n";
    }
    out << '\n';
  }
  if (!in.proven_lemmas.empty()) {
    out << "## Already-proven helper assertions (do not repeat these)\n\n";
    for (const auto& lemma : in.proven_lemmas) {
      out << "```sva\n" << lemma << "\n```\n";
    }
    out << '\n';
  }
}

}  // namespace

Prompt render_helper_generation_prompt(const PromptInputs& in) {
  Prompt p;
  p.system =
      "You are an expert in formal verification of hardware designs. "
      "Given a specification and RTL, propose helper assertions (SVA) that are "
      "invariants of the design and that, once proven, can serve as assumptions "
      "to speed up k-induction proofs of the target properties. "
      "Answer with one fenced ```sva block per assertion, each containing a "
      "complete 'property ...; <expr>; endproperty' declaration. "
      "Only reference signals that exist in the RTL.";

  std::ostringstream out;
  append_common_context(out, in);
  out << "## Task\n\n"
      << "Analyze the specification and the RTL. Propose helper assertions "
         "(lemmas) that hold in all reachable states and constrain the "
         "relationships between registers (equalities, differences, bounds, "
         "one-hot encodings, parity/XOR relations, control implications). "
         "Prefer assertions that are themselves inductive.\n";
  p.user = out.str();
  return p;
}

Prompt render_cex_repair_prompt(const PromptInputs& in) {
  Prompt p;
  p.system =
      "You are an expert in induction-based formal verification. "
      "A property failed its inductive step: the solver found a pseudo-"
      "counterexample that starts from an arbitrary, possibly unreachable "
      "state. Your job is to propose a helper assertion that is a real "
      "invariant of the design and that rules out the unreachable start "
      "state of the counterexample. Answer with fenced ```sva blocks, each a "
      "complete 'property ...; <expr>; endproperty' declaration.";

  std::ostringstream out;
  append_common_context(out, in);
  out << "## Induction-step failure\n\n"
      << marker::kFailedProperty << " " << in.failed_property << "\n\n"
      << "Induction depth k = " << in.induction_depth << "\n\n"
      << "### Counterexample waveform (frames t0..tk; state at t0 is "
         "arbitrary/unreachable)\n\n"
      << marker::kWaveFenceOpen << "\n"
      << in.cex_waveform;
  if (!in.cex_waveform.empty() && in.cex_waveform.back() != '\n') out << '\n';
  out << marker::kFenceClose << "\n\n"
      << "## Task\n\n"
      << "Compare the counterexample's starting state with the states the "
         "design can actually reach. Identify the relationship between "
         "registers that the start state violates, and write a helper "
         "assertion expressing that relationship. The assertion must hold in "
         "all reachable states and must be false somewhere in the "
         "counterexample above.\n";
  p.user = out.str();
  return p;
}

}  // namespace genfv::genai
