/// \file bounds.cpp
/// Pass 3: upper bounds `x <= B` on registers (mod-N counters, FIFO
/// occupancy). The bound is the maximum sampled value, tightened to a
/// structural constant when the design compares the register against one
/// (the classic `if (cnt == N-1) cnt <= 0` pattern).

#include <algorithm>
#include <unordered_set>

#include "genai/mining/miner.hpp"
#include "ir/node.hpp"
#include "util/strings.hpp"

namespace genfv::genai {

namespace {

/// Collect constants the design compares `var` against (Eq/Ult/Ule nodes in
/// its own next function) — candidates for exact bounds.
void collect_compared_constants(ir::NodeRef root, ir::NodeRef var,
                                std::unordered_set<std::uint64_t>& out) {
  std::vector<ir::NodeRef> stack{root};
  std::unordered_set<ir::NodeRef> seen;
  while (!stack.empty()) {
    const ir::NodeRef n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    const auto op = n->op();
    if ((op == ir::Op::Eq || op == ir::Op::Ult || op == ir::Op::Ule) && n->arity() == 2) {
      const ir::NodeRef l = n->child(0);
      const ir::NodeRef r = n->child(1);
      if (l == var && r->is_const()) out.insert(r->value());
      if (r == var && l->is_const()) out.insert(l->value());
    }
    for (const ir::NodeRef c : n->children()) stack.push_back(c);
  }
}

}  // namespace

void BoundsMiner::mine(const MiningContext& ctx,
                       std::vector<CandidateInvariant>& out) const {
  if (ctx.samples.empty()) return;
  for (const auto& s : ctx.ts.states()) {
    const unsigned w = s.var->width();
    if (w == 1) continue;  // bool bounds are vacuous or constants
    const std::uint64_t mask = ir::width_mask(w);

    std::uint64_t max_seen = 0;
    for (const auto& sample : ctx.samples) {
      max_seen = std::max(max_seen, sample_value(sample, s.var));
    }
    if (max_seen >= mask) continue;  // full range: no bound

    // Prefer a structural bound: smallest compared constant >= max_seen.
    std::unordered_set<std::uint64_t> compared;
    if (s.next != nullptr) collect_compared_constants(s.next, s.var, compared);
    std::uint64_t bound = max_seen;
    double confidence = 0.45;  // sampled max could be a coverage artefact
    for (const std::uint64_t c : compared) {
      if (c >= max_seen && c < mask) {
        bound = c;
        confidence = 0.8;  // the design itself names this constant
        break;
      }
    }

    CandidateInvariant c;
    c.sva = "(" + s.var->name() + " <= " + util::hex_literal(bound, w) + ")";
    c.rationale = "register '" + s.var->name() + "' never exceeds " +
                  util::hex_literal(bound, w) + " in reachable operation";
    c.confidence = confidence;
    c.origin = name();
    out.push_back(std::move(c));
  }
}

}  // namespace genfv::genai
