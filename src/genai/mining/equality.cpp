/// \file equality.cpp
/// Pass 1: register-to-register equality — the paper's worked example
/// (Listing 3, `count1 == count2`). Two evidence sources:
///  * structural: identical init values and next-state functions equal under
///    renaming (checked by substitution over the hash-consed DAG, where
///    structural equality is pointer equality) -> high confidence;
///  * behavioural: equal in every sampled reachable state -> medium
///    confidence.

#include "genai/mining/miner.hpp"
#include "ir/substitute.hpp"

namespace genfv::genai {

void EqualityMiner::mine(const MiningContext& ctx,
                         std::vector<CandidateInvariant>& out) const {
  const auto& states = ctx.ts.states();
  auto nm = ctx.ts.nm_ptr();

  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      const auto& a = states[i];
      const auto& b = states[j];
      if (a.var->width() != b.var->width()) continue;

      // Behavioural check first (cheap reject).
      bool equal_in_samples = !ctx.samples.empty();
      for (const auto& sample : ctx.samples) {
        if (sample_value(sample, a.var) != sample_value(sample, b.var)) {
          equal_in_samples = false;
          break;
        }
      }
      if (!equal_in_samples) continue;

      // Structural check: next(a)[a := b] == next(b) and matching inits.
      bool structural = false;
      if (a.init != nullptr && b.init != nullptr && a.init == b.init &&
          a.next != nullptr && b.next != nullptr) {
        const ir::Substitution rename{{a.var, b.var}};
        structural = (ir::substitute(a.next, rename, *nm) == b.next);
      }

      CandidateInvariant c;
      c.sva = "(" + a.var->name() + " == " + b.var->name() + ")";
      c.rationale = structural
                        ? "registers '" + a.var->name() + "' and '" + b.var->name() +
                              "' have identical reset values and update logic"
                        : "registers '" + a.var->name() + "' and '" + b.var->name() +
                              "' stay equal in all observed behaviours";
      c.confidence = structural ? 0.95 : 0.7;
      c.origin = name();
      out.push_back(std::move(c));
    }
  }
}

}  // namespace genfv::genai
