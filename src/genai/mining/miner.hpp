#pragma once

/// \file miner.hpp
/// Invariant-mining passes — the analytical "reasoning" of the simulated
/// LLM. Each pass inspects the elaborated design plus a set of sampled
/// reachable states and proposes candidate invariants *as SVA text* (the
/// only thing a language model can emit). Passes are ordered by
/// sophistication; a model profile's `insight` selects a prefix, which is
/// how weaker models mechanically miss the deep (XOR/parity, implication)
/// relations that ECC-style designs need.
///
/// Every proposal is sample-consistent by construction (it holds on all
/// sampled reachable states) — mirroring a competent model that reasons
/// from the design's behaviour. Unsound output enters via the noise layer
/// in SimulatedLlm, not here.

#include <memory>
#include <string>
#include <vector>

#include "sim/random_sim.hpp"
#include "util/rng.hpp"

namespace genfv::genai {

/// A mined candidate, pre-serialization.
struct CandidateInvariant {
  std::string sva;        ///< property text, e.g. "(count1 == count2)"
  std::string rationale;  ///< one-line natural-language justification
  double confidence = 0.5;
  std::string origin;     ///< pass name (for reports/benches)
};

struct MiningContext {
  const ir::TransitionSystem& ts;
  /// Sampled reachable states (frames of random runs from reset).
  const std::vector<sim::Assignment>& samples;
  /// Optional induction-step counterexample frames (Fig. 2 flow).
  const std::vector<sim::Assignment>* cex_frames = nullptr;
  util::Xoshiro256& rng;
};

class InvariantMiner {
 public:
  virtual ~InvariantMiner() = default;
  virtual std::string name() const = 0;
  virtual void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const = 0;
};

/// The standard passes in insight order:
///   0 reset_value, 1 equality, 2 difference, 3 bounds,
///   4 onehot, 5 implication, 6 xor_linear
std::vector<std::unique_ptr<InvariantMiner>> standard_miners();

// --- shared helpers used by the pass implementations ---------------------------

/// True iff `expr` (width 1) evaluates to 1 on every sample.
bool holds_on_samples(ir::NodeRef expr, const std::vector<sim::Assignment>& samples);

/// Value of a leaf in a sample (0 when the sample lacks the leaf).
std::uint64_t sample_value(const sim::Assignment& sample, ir::NodeRef leaf);

/// Individual pass types (exposed for unit tests).
class ResetValueMiner : public InvariantMiner {
 public:
  std::string name() const override { return "reset_value"; }
  void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const override;
};

class EqualityMiner : public InvariantMiner {
 public:
  std::string name() const override { return "equality"; }
  void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const override;
};

class DifferenceMiner : public InvariantMiner {
 public:
  std::string name() const override { return "difference"; }
  void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const override;
};

class BoundsMiner : public InvariantMiner {
 public:
  std::string name() const override { return "bounds"; }
  void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const override;
};

class OneHotMiner : public InvariantMiner {
 public:
  std::string name() const override { return "onehot"; }
  void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const override;
};

class ImplicationMiner : public InvariantMiner {
 public:
  std::string name() const override { return "implication"; }
  void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const override;
};

class XorLinearMiner : public InvariantMiner {
 public:
  std::string name() const override { return "xor_linear"; }
  void mine(const MiningContext& ctx, std::vector<CandidateInvariant>& out) const override;
};

}  // namespace genfv::genai
