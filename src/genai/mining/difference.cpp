/// \file difference.cpp
/// Pass 2: difference relations between same-width registers:
///  * constant difference `a - b == c` (skewed counters, staged pipelines);
///  * register-triple `(a - b) == r` (occupancy counters tracking pointer
///    distance — the FIFO lemma `count == wptr - rptr`).
/// Subsumes equality (c = 0), so exact-equal pairs are skipped here.

#include "genai/mining/miner.hpp"
#include "ir/node.hpp"
#include "util/strings.hpp"

namespace genfv::genai {

void DifferenceMiner::mine(const MiningContext& ctx,
                           std::vector<CandidateInvariant>& out) const {
  if (ctx.samples.empty()) return;
  const auto& states = ctx.ts.states();

  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      const auto& a = states[i];
      const auto& b = states[j];
      if (a.var->width() != b.var->width()) continue;
      const unsigned w = a.var->width();
      const std::uint64_t mask = ir::width_mask(w);

      const std::uint64_t first_diff =
          (sample_value(ctx.samples[0], a.var) - sample_value(ctx.samples[0], b.var)) & mask;
      if (first_diff == 0) continue;  // equality pass owns this

      bool constant = true;
      for (const auto& sample : ctx.samples) {
        const std::uint64_t diff =
            (sample_value(sample, a.var) - sample_value(sample, b.var)) & mask;
        if (diff != first_diff) {
          constant = false;
          break;
        }
      }
      if (!constant) continue;

      CandidateInvariant c;
      c.sva = "((" + a.var->name() + " - " + b.var->name() +
              ") == " + util::hex_literal(first_diff, w) + ")";
      c.rationale = "registers '" + a.var->name() + "' and '" + b.var->name() +
                    "' advance in lockstep with a constant offset";
      c.confidence = 0.65;
      c.origin = name();
      out.push_back(std::move(c));
    }
  }

  // Register-triple pass: (a - b) == r, ordered pairs against a third register.
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (i == j) continue;
      const auto& a = states[i];
      const auto& b = states[j];
      if (a.var->width() != b.var->width()) continue;
      const unsigned w = a.var->width();
      const std::uint64_t mask = ir::width_mask(w);
      for (std::size_t k = 0; k < states.size(); ++k) {
        if (k == i || k == j) continue;
        const auto& r = states[k];
        if (r.var->width() != w) continue;
        bool matches = true;
        bool nontrivial = false;  // skip when it degenerates to r == const
        for (const auto& sample : ctx.samples) {
          const std::uint64_t diff =
              (sample_value(sample, a.var) - sample_value(sample, b.var)) & mask;
          const std::uint64_t rv = sample_value(sample, r.var);
          if (diff != rv) {
            matches = false;
            break;
          }
          if (rv != 0) nontrivial = true;
        }
        if (!matches || !nontrivial) continue;
        CandidateInvariant c;
        c.sva = "((" + a.var->name() + " - " + b.var->name() + ") == " + r.var->name() + ")";
        c.rationale = "register '" + r.var->name() + "' tracks the distance between '" +
                      a.var->name() + "' and '" + b.var->name() + "'";
        c.confidence = 0.7;
        c.origin = name();
        out.push_back(std::move(c));
      }
    }
  }
}

}  // namespace genfv::genai
