/// \file xor_linear.cpp
/// Pass 6 (deepest): GF(2)-linear relation mining across all state bits —
/// the pass that cracks ECC designs, whose key invariants are parity/XOR
/// relations between data registers and checkbit registers (e.g.
/// `parity == ^data`, Hamming syndrome identities).
///
/// Method: treat every bit of every register (plus a constant-1 column) as a
/// GF(2) variable; each sampled reachable state is a linear constraint
/// "selected bits XOR to 0". The null space of the sample matrix — computed
/// by Gaussian elimination — is exactly the set of affine XOR relations
/// consistent with all samples. Small-support basis vectors are rendered as
/// SVA.

#include <algorithm>
#include <bit>

#include "genai/mining/miner.hpp"
#include "ir/node.hpp"

namespace genfv::genai {

namespace {

/// Dense GF(2) row vector.
class BitRow {
 public:
  explicit BitRow(std::size_t bits) : blocks_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { blocks_[i / 64] |= (1ULL << (i % 64)); }
  bool get(std::size_t i) const { return (blocks_[i / 64] >> (i % 64)) & 1ULL; }

  void operator^=(const BitRow& other) {
    for (std::size_t b = 0; b < blocks_.size(); ++b) blocks_[b] ^= other.blocks_[b];
  }

  int popcount() const {
    int total = 0;
    for (const std::uint64_t b : blocks_) total += std::popcount(b);
    return total;
  }

 private:
  std::vector<std::uint64_t> blocks_;
};

struct BitColumn {
  ir::NodeRef var;
  unsigned bit;
  std::string text;  ///< SVA rendering: "x[3]" or "x" for width-1
};

}  // namespace

void XorLinearMiner::mine(const MiningContext& ctx,
                          std::vector<CandidateInvariant>& out) const {
  if (ctx.samples.size() < 8) return;

  // Column layout: one per state bit, plus the affine constant column.
  std::vector<BitColumn> columns;
  for (const auto& s : ctx.ts.states()) {
    const unsigned w = s.var->width();
    for (unsigned i = 0; i < w; ++i) {
      const std::string text =
          w == 1 ? s.var->name() : s.var->name() + "[" + std::to_string(i) + "]";
      columns.push_back({s.var, i, text});
    }
    if (columns.size() > 192) return;  // tractability cap
  }
  const std::size_t ncols = columns.size() + 1;  // +1 affine column
  const std::size_t const_col = columns.size();

  // Sample matrix, one row per sample.
  std::vector<BitRow> rows;
  rows.reserve(ctx.samples.size());
  for (const auto& sample : ctx.samples) {
    BitRow row(ncols);
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if ((sample_value(sample, columns[c].var) >> columns[c].bit) & 1ULL) row.set(c);
    }
    row.set(const_col);  // affine 1
    rows.push_back(std::move(row));
  }

  // Gaussian elimination to row-echelon form; record pivot columns.
  std::vector<std::size_t> pivot_of_row;
  std::vector<char> is_pivot(ncols, 0);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < ncols && rank < rows.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < rows.size() && !rows[pivot].get(col)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r != rank && rows[r].get(col)) rows[r] ^= rows[rank];
    }
    pivot_of_row.push_back(col);
    is_pivot[col] = 1;
    ++rank;
  }

  // Null-space basis: one vector per free column.
  std::size_t emitted = 0;
  for (std::size_t free_col = 0; free_col < ncols && emitted < 12; ++free_col) {
    if (is_pivot[free_col]) continue;
    BitRow v(ncols);
    v.set(free_col);
    for (std::size_t r = 0; r < rank; ++r) {
      if (rows[r].get(free_col)) v.set(pivot_of_row[r]);
    }
    // Render small-support relations only; giant XOR chains are not useful
    // lemmas (and a real model would not write them).
    const int support = v.popcount();
    if (support < 2 || support > 8) continue;

    const bool affine = v.get(const_col);
    std::vector<std::string> terms;
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (v.get(c)) terms.push_back(columns[c].text);
    }
    if (terms.empty()) continue;
    std::string lhs = terms[0];
    for (std::size_t t = 1; t < terms.size(); ++t) lhs += " ^ " + terms[t];

    CandidateInvariant c;
    c.sva = "((" + lhs + ") == 1'b" + (affine ? "1" : "0") + ")";
    c.rationale = "the bits {" + lhs + "} satisfy a parity (XOR) relation in every "
                  "reachable state";
    c.confidence = 0.75;
    c.origin = name();
    out.push_back(std::move(c));
    ++emitted;
  }
}

}  // namespace genfv::genai
