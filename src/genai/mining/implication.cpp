/// \file implication.cpp
/// Pass 5: control implications between single-bit observables (`valid`
/// implies `enable`, grant implies request, flag implies flag). Bits are
/// drawn from width-1 registers and from individual bits of narrow
/// registers. Only implications with observed positive support (antecedent
/// seen true) are proposed, to avoid vacuous noise.

#include "genai/mining/miner.hpp"
#include "ir/node.hpp"

namespace genfv::genai {

namespace {

struct BitObservable {
  std::string text;      ///< SVA rendering, e.g. "flag" or "state[2]"
  ir::NodeRef var;
  unsigned bit;
};

}  // namespace

void ImplicationMiner::mine(const MiningContext& ctx,
                            std::vector<CandidateInvariant>& out) const {
  if (ctx.samples.empty()) return;

  std::vector<BitObservable> bits;
  for (const auto& s : ctx.ts.states()) {
    const unsigned w = s.var->width();
    if (w == 1) {
      bits.push_back({s.var->name(), s.var, 0});
    } else if (w <= 8) {
      for (unsigned i = 0; i < w; ++i) {
        bits.push_back({s.var->name() + "[" + std::to_string(i) + "]", s.var, i});
      }
    }
  }
  if (bits.size() > 24) bits.resize(24);  // quadratic pair budget

  auto bit_of = [](const sim::Assignment& sample, const BitObservable& b) {
    return (sample_value(sample, b.var) >> b.bit) & 1ULL;
  };

  for (std::size_t i = 0; i < bits.size(); ++i) {
    for (std::size_t j = 0; j < bits.size(); ++j) {
      if (i == j || bits[i].var == bits[j].var) continue;
      bool implication_holds = true;
      std::size_t support = 0;  // antecedent observed true
      for (const auto& sample : ctx.samples) {
        const bool a = bit_of(sample, bits[i]) != 0;
        const bool b = bit_of(sample, bits[j]) != 0;
        if (a) {
          ++support;
          if (!b) {
            implication_holds = false;
            break;
          }
        }
      }
      if (!implication_holds || support < 3) continue;

      CandidateInvariant c;
      c.sva = "(" + bits[i].text + " |-> " + bits[j].text + ")";
      c.rationale = "whenever " + bits[i].text + " is asserted, " + bits[j].text +
                    " is asserted as well";
      c.confidence = 0.5 + 0.02 * static_cast<double>(std::min<std::size_t>(support, 10));
      c.origin = name();
      out.push_back(std::move(c));
    }
  }
}

}  // namespace genfv::genai
