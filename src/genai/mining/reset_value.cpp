/// \file reset_value.cpp
/// Pass 0: registers that never leave their reset value. These are the
/// cheapest invariants a model spots ("this flag is constant"), and often
/// prune induction state space around configuration/sticky registers.

#include "genai/mining/miner.hpp"
#include "util/strings.hpp"

namespace genfv::genai {

void ResetValueMiner::mine(const MiningContext& ctx,
                           std::vector<CandidateInvariant>& out) const {
  for (const auto& s : ctx.ts.states()) {
    if (s.init == nullptr || !s.init->is_const()) continue;
    const std::uint64_t init_val = s.init->value();
    bool constant = !ctx.samples.empty();
    for (const auto& sample : ctx.samples) {
      if (sample_value(sample, s.var) != init_val) {
        constant = false;
        break;
      }
    }
    if (!constant) continue;
    CandidateInvariant c;
    c.sva = "(" + s.var->name() + " == " + util::hex_literal(init_val, s.var->width()) + ")";
    c.rationale = "register '" + s.var->name() + "' never leaves its reset value";
    c.confidence = 0.55;
    c.origin = name();
    out.push_back(std::move(c));
  }
}

}  // namespace genfv::genai
