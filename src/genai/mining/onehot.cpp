/// \file onehot.cpp
/// Pass 4: one-hot / at-most-one-hot encodings of multi-bit registers (FSM
/// state vectors, grant lines). Exactly the invariant that k-induction needs
/// for one-hot FSMs, since the step case otherwise starts from multi-hot
/// garbage states.

#include <bit>

#include "genai/mining/miner.hpp"
#include "ir/node.hpp"

namespace genfv::genai {

void OneHotMiner::mine(const MiningContext& ctx,
                       std::vector<CandidateInvariant>& out) const {
  if (ctx.samples.empty()) return;
  for (const auto& s : ctx.ts.states()) {
    const unsigned w = s.var->width();
    if (w < 2) continue;

    bool always_onehot = true;
    bool always_onehot0 = true;
    for (const auto& sample : ctx.samples) {
      const int ones = std::popcount(sample_value(sample, s.var));
      if (ones != 1) always_onehot = false;
      if (ones > 1) always_onehot0 = false;
      if (!always_onehot && !always_onehot0) break;
    }

    if (always_onehot) {
      CandidateInvariant c;
      c.sva = "$onehot(" + s.var->name() + ")";
      c.rationale = "register '" + s.var->name() + "' is a one-hot encoded state vector";
      c.confidence = 0.85;
      c.origin = name();
      out.push_back(std::move(c));
    } else if (always_onehot0) {
      CandidateInvariant c;
      c.sva = "$onehot0(" + s.var->name() + ")";
      c.rationale = "register '" + s.var->name() + "' has at most one bit set";
      c.confidence = 0.7;
      c.origin = name();
      out.push_back(std::move(c));
    }
  }
}

}  // namespace genfv::genai
