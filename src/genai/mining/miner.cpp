#include "genai/mining/miner.hpp"

#include "sim/interpreter.hpp"

namespace genfv::genai {

bool holds_on_samples(ir::NodeRef expr, const std::vector<sim::Assignment>& samples) {
  for (const auto& sample : samples) {
    if (sim::evaluate(expr, sample) == 0) return false;
  }
  return true;
}

std::uint64_t sample_value(const sim::Assignment& sample, ir::NodeRef leaf) {
  const auto it = sample.find(leaf);
  return it == sample.end() ? 0 : it->second;
}

std::vector<std::unique_ptr<InvariantMiner>> standard_miners() {
  std::vector<std::unique_ptr<InvariantMiner>> miners;
  miners.push_back(std::make_unique<ResetValueMiner>());
  miners.push_back(std::make_unique<EqualityMiner>());
  miners.push_back(std::make_unique<DifferenceMiner>());
  miners.push_back(std::make_unique<BoundsMiner>());
  miners.push_back(std::make_unique<OneHotMiner>());
  miners.push_back(std::make_unique<ImplicationMiner>());
  miners.push_back(std::make_unique<XorLinearMiner>());
  return miners;
}

}  // namespace genfv::genai
