#pragma once

/// \file simulated_llm.hpp
/// Offline stand-in for the hosted LLMs used in the paper (substitution
/// documented in DESIGN.md §2). `SimulatedLlm` is a genuine text-in/text-out
/// model: it receives the rendered prompt, *re-parses* the RTL (and, in the
/// Fig. 2 flow, the counterexample waveform) out of the prompt text, runs
/// the invariant-mining analyses its profile enables, perturbs the result
/// with profile-calibrated noise (omissions, hallucinations, syntax errors),
/// and serializes everything back as markdown with fenced ```sva blocks.
///
/// Determinism: all sampling derives from the constructor seed, so every
/// experiment is reproducible; benches print their seeds.

#include <memory>

#include "genai/llm_client.hpp"
#include "genai/mining/miner.hpp"
#include "genai/model_profile.hpp"
#include "util/rng.hpp"

namespace genfv::genai {

class SimulatedLlm : public LlmClient {
 public:
  SimulatedLlm(ModelProfile profile, std::uint64_t seed);

  Completion complete(const Prompt& prompt) override;
  std::string model_name() const override { return profile_.name; }

  const ModelProfile& profile() const noexcept { return profile_; }

  /// Number of completions served (for tests/benches).
  std::size_t requests() const noexcept { return requests_; }

 private:
  struct ParsedPromptView;

  std::string answer_without_design() const;
  std::vector<CandidateInvariant> mine_candidates(const ir::TransitionSystem& ts,
                                                  const std::vector<sim::Assignment>& samples,
                                                  const std::vector<sim::Assignment>* cex);
  void apply_noise(std::vector<CandidateInvariant>& candidates,
                   const ir::TransitionSystem& ts,
                   const std::vector<sim::Assignment>& samples);
  std::string render_completion(const std::vector<CandidateInvariant>& candidates,
                                const std::string& design_name, bool cex_mode);

  ModelProfile profile_;
  util::Xoshiro256 rng_;
  std::size_t requests_ = 0;
  int property_counter_ = 0;
};

/// Parse a rendered ASCII waveform (sim::render_waveform output) back into
/// per-frame leaf assignments for `ts`. Rows whose label does not name an
/// input/state of `ts` are ignored. Exposed for tests.
std::vector<sim::Assignment> parse_waveform_table(const std::string& waveform,
                                                  const ir::TransitionSystem& ts);

}  // namespace genfv::genai
