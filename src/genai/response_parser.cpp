#include "genai/response_parser.hpp"

#include "util/strings.hpp"

namespace genfv::genai {

namespace {

bool is_assertion_tag(const std::string& tag) {
  return tag.empty() || tag == "sva" || tag == "systemverilog" || tag == "verilog" ||
         tag == "sv";
}

}  // namespace

std::vector<std::string> extract_assertions(const std::string& completion) {
  std::vector<std::string> out;

  // Pass 1: fenced blocks.
  std::size_t pos = 0;
  std::string outside;  // text outside fences, for pass 2
  while (true) {
    const std::size_t open = completion.find("```", pos);
    if (open == std::string::npos) {
      outside += completion.substr(pos);
      break;
    }
    outside += completion.substr(pos, open - pos);
    const std::size_t tag_end = completion.find('\n', open + 3);
    if (tag_end == std::string::npos) break;
    const std::string tag = util::to_lower(util::trim(completion.substr(open + 3, tag_end - open - 3)));
    const std::size_t close = completion.find("```", tag_end + 1);
    if (close == std::string::npos) break;
    const std::string body = util::trim(completion.substr(tag_end + 1, close - tag_end - 1));
    if (!body.empty()) {
      const bool looks_like_property = util::contains(body, "property") ||
                                       util::contains(body, "|->") ||
                                       util::contains(body, "assert");
      if (is_assertion_tag(tag) && (tag.empty() ? looks_like_property : true)) {
        out.push_back(body);
      }
    }
    pos = close + 3;
  }

  // Pass 2: inline property blocks in prose.
  std::size_t search = 0;
  while (true) {
    const std::size_t start = outside.find("property", search);
    if (start == std::string::npos) break;
    const std::size_t end = outside.find("endproperty", start);
    if (end == std::string::npos) break;
    out.push_back(util::trim(outside.substr(start, end + 11 - start)));
    search = end + 11;
  }

  return out;
}

}  // namespace genfv::genai
