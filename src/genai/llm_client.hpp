#pragma once

/// \file llm_client.hpp
/// The LLM integration boundary. Flows talk to models exclusively through
/// this text-in/text-out interface, exactly as the paper's flows talk to a
/// hosted LLM: nothing structural crosses it. Swapping the offline
/// `SimulatedLlm` for an HTTP client against a real API changes no flow
/// code.

#include <cstdint>
#include <string>

namespace genfv::genai {

/// A rendered prompt (system + user turn).
struct Prompt {
  std::string system;
  std::string user;
};

/// A model completion plus bookkeeping.
struct Completion {
  std::string text;
  std::string model;
  std::uint64_t prompt_tokens = 0;
  std::uint64_t completion_tokens = 0;
  /// Simulated wall-clock the request would have taken (latency model).
  double latency_seconds = 0.0;
};

class LlmClient {
 public:
  virtual ~LlmClient() = default;
  virtual Completion complete(const Prompt& prompt) = 0;
  virtual std::string model_name() const = 0;
};

/// Crude token estimate used for bookkeeping (≈4 chars/token).
inline std::uint64_t estimate_tokens(const std::string& text) {
  return static_cast<std::uint64_t>(text.size() / 4 + 1);
}

}  // namespace genfv::genai
