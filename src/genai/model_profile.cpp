#include "genai/model_profile.hpp"

#include <array>

#include "util/status.hpp"

namespace genfv::genai {

namespace {

const std::array<ModelProfile, 4>& registry() {
  static const std::array<ModelProfile, 4> kProfiles = {{
      {
          .name = "gpt-4-turbo",
          .vendor = "openai",
          .insight = 7,
          .hallucination_rate = 0.08,
          .syntax_error_rate = 0.02,
          .omission_rate = 0.05,
          .self_check = true,
          .max_candidates = 8,
          .seconds_per_1k_tokens = 1.1,
      },
      {
          .name = "gpt-4o",
          .vendor = "openai",
          .insight = 7,
          .hallucination_rate = 0.06,
          .syntax_error_rate = 0.01,
          .omission_rate = 0.04,
          .self_check = true,
          .max_candidates = 10,
          .seconds_per_1k_tokens = 0.6,
      },
      {
          .name = "llama-3-70b",
          .vendor = "meta",
          .insight = 4,
          .hallucination_rate = 0.28,
          .syntax_error_rate = 0.12,
          .omission_rate = 0.25,
          .self_check = false,
          .max_candidates = 6,
          .seconds_per_1k_tokens = 0.8,
      },
      {
          .name = "gemini-1.5-pro",
          .vendor = "google",
          .insight = 5,
          .hallucination_rate = 0.20,
          .syntax_error_rate = 0.07,
          .omission_rate = 0.18,
          .self_check = false,
          .max_candidates = 8,
          .seconds_per_1k_tokens = 0.7,
      },
  }};
  return kProfiles;
}

}  // namespace

const ModelProfile& profile_by_name(const std::string& name) {
  for (const auto& p : registry()) {
    if (p.name == name) return p;
  }
  throw UsageError("unknown model profile '" + name + "'");
}

std::vector<std::string> known_models() {
  std::vector<std::string> names;
  for (const auto& p : registry()) names.push_back(p.name);
  return names;
}

}  // namespace genfv::genai
