#include "genai/simulated_llm.hpp"

#include <algorithm>
#include <sstream>

#include "genai/prompt.hpp"
#include "hdl/elaborator.hpp"
#include "ir/substitute.hpp"
#include "sva/compiler.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace genfv::genai {

namespace {

/// Extract the body of the first fenced block opened by `fence`.
std::string extract_fenced(const std::string& text, const char* fence) {
  const std::size_t open = text.find(fence);
  if (open == std::string::npos) return {};
  const std::size_t body_start = text.find('\n', open);
  if (body_start == std::string::npos) return {};
  const std::size_t close = text.find(marker::kFenceClose, body_start + 1);
  if (close == std::string::npos) return {};
  return text.substr(body_start + 1, close - body_start - 1);
}

std::string extract_line_after(const std::string& text, const char* key) {
  const std::size_t pos = text.find(key);
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + std::string(key).size();
  const std::size_t end = text.find('\n', start);
  return util::trim(text.substr(start, end == std::string::npos ? std::string::npos
                                                                : end - start));
}

std::string extract_design_name(const std::string& text) {
  return extract_line_after(text, "## Design:");
}

}  // namespace

std::vector<sim::Assignment> parse_waveform_table(const std::string& waveform,
                                                  const ir::TransitionSystem& ts) {
  std::vector<sim::Assignment> frames;
  std::istringstream in(waveform);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t bar = line.find('|');
    if (bar == std::string::npos) continue;
    const std::string label = util::trim(line.substr(0, bar));
    if (label.empty() || label[0] == '-' || label[0] == '(') continue;
    const ir::NodeRef leaf = ts.lookup(label);
    if (leaf == nullptr) continue;

    const auto cells = util::split(line.substr(bar + 1), '|');
    std::size_t frame = 0;
    for (const auto& raw : cells) {
      const std::string cell = util::trim(raw);
      if (cell.empty()) continue;
      std::uint64_t value = 0;
      try {
        value = std::stoull(cell, nullptr, 16);
      } catch (...) {
        continue;  // malformed cell: skip (the model is reading text, after all)
      }
      if (frames.size() <= frame) frames.resize(frame + 1);
      frames[frame][leaf] = value & ir::width_mask(leaf->width());
      ++frame;
    }
  }
  return frames;
}

SimulatedLlm::SimulatedLlm(ModelProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {}

std::string SimulatedLlm::answer_without_design() const {
  return "I could not locate a parseable RTL design in the request, so I cannot "
         "propose helper assertions. Please include the design source in a "
         "```systemverilog code block.\n";
}

std::vector<CandidateInvariant> SimulatedLlm::mine_candidates(
    const ir::TransitionSystem& ts, const std::vector<sim::Assignment>& samples,
    const std::vector<sim::Assignment>* cex) {
  MiningContext ctx{ts, samples, cex, rng_};
  std::vector<CandidateInvariant> candidates;
  const auto miners = standard_miners();
  const std::size_t enabled =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(profile_.insight, 0)),
                            miners.size());
  for (std::size_t i = 0; i < enabled; ++i) {
    miners[i]->mine(ctx, candidates);
  }
  return candidates;
}

void SimulatedLlm::apply_noise(std::vector<CandidateInvariant>& candidates,
                               const ir::TransitionSystem& ts,
                               const std::vector<sim::Assignment>& samples) {
  // 1. Omissions: genuine findings silently dropped.
  std::vector<CandidateInvariant> kept;
  for (auto& c : candidates) {
    if (rng_.chance(profile_.omission_rate)) continue;
    kept.push_back(std::move(c));
  }
  candidates = std::move(kept);

  // 2. Hallucinations: plausible-but-unvetted assertions. Self-checking
  //    models catch most of them before answering.
  const auto& states = ts.states();
  std::vector<CandidateInvariant> fabricated;
  const std::size_t tries = candidates.size() + 2;
  for (std::size_t t = 0; t < tries; ++t) {
    if (!rng_.chance(profile_.hallucination_rate)) continue;
    if (profile_.self_check && rng_.chance(0.8)) continue;  // caught in review
    if (states.empty()) break;
    CandidateInvariant c;
    c.origin = "hallucination";
    c.confidence = 0.6;  // the model believes it, that is the problem
    switch (rng_.below(3)) {
      case 0: {  // false equality between random same-width registers
        const auto& a = states[rng_.index(states.size())];
        const auto& b = states[rng_.index(states.size())];
        if (a.var == b.var || a.var->width() != b.var->width()) continue;
        c.sva = "(" + a.var->name() + " == " + b.var->name() + ")";
        c.rationale = "registers '" + a.var->name() + "' and '" + b.var->name() +
                      "' appear to mirror each other";
        break;
      }
      case 1: {  // too-tight bound
        const auto& a = states[rng_.index(states.size())];
        if (a.var->width() < 2) continue;
        std::uint64_t max_seen = 0;
        for (const auto& s : samples) max_seen = std::max(max_seen, sample_value(s, a.var));
        if (max_seen == 0) continue;
        c.sva = "(" + a.var->name() + " <= " +
                util::hex_literal(max_seen / 2, a.var->width()) + ")";
        c.rationale = "register '" + a.var->name() + "' stays in the lower half of its range";
        break;
      }
      default: {  // unjustified one-hot claim
        const auto& a = states[rng_.index(states.size())];
        if (a.var->width() < 2) continue;
        c.sva = "$onehot(" + a.var->name() + ")";
        c.rationale = "register '" + a.var->name() + "' looks like a one-hot state vector";
        break;
      }
    }
    if (!c.sva.empty()) fabricated.push_back(std::move(c));
  }
  for (auto& c : fabricated) candidates.push_back(std::move(c));

  // 3. Syntax corruption.
  for (auto& c : candidates) {
    if (!rng_.chance(profile_.syntax_error_rate)) continue;
    switch (rng_.below(3)) {
      case 0:
        if (!c.sva.empty() && c.sva.back() == ')') c.sva.pop_back();
        break;
      case 1: {
        const std::size_t eq = c.sva.find("==");
        if (eq != std::string::npos) c.sva.replace(eq, 2, "= =");
        break;
      }
      default:
        c.sva += " && missing_signal_q";
        break;
    }
    c.origin += "+syntax_error";
  }
}

std::string SimulatedLlm::render_completion(
    const std::vector<CandidateInvariant>& candidates, const std::string& design_name,
    bool cex_mode) {
  std::ostringstream out;
  if (cex_mode) {
    out << "Looking at the induction-step counterexample for `" << design_name
        << "`, the starting state at t0 violates a relationship that every "
           "reachable state maintains. The following helper assertion(s) "
           "capture it and will rule the spurious trace out of the inductive "
           "step:\n\n";
  } else {
    out << "After reading the specification and the RTL of `" << design_name
        << "`, I propose the following helper assertions. Each should be "
           "proven first and then used as an assumption for the harder "
           "target properties:\n\n";
  }
  int index = 0;
  for (const auto& c : candidates) {
    ++index;
    out << index << ". " << c.rationale << ":\n\n";
    out << "```sva\n"
        << "property helper_" << ++property_counter_ << "; " << c.sva
        << "; endproperty\n```\n\n";
  }
  if (candidates.empty()) {
    out << "I did not find additional invariants beyond the stated targets.\n";
  } else {
    out << "Remember to prove each helper before using it as an assumption; "
           "generated assertions may contain mistakes.\n";
  }
  return out.str();
}

Completion SimulatedLlm::complete(const Prompt& prompt) {
  ++requests_;
  Completion completion;
  completion.model = profile_.name;
  completion.prompt_tokens = estimate_tokens(prompt.system) + estimate_tokens(prompt.user);

  // "Read" the RTL out of the prompt.
  const std::string rtl = extract_fenced(prompt.user, marker::kRtlFenceOpen);
  if (util::trim(rtl).empty()) {
    completion.text = answer_without_design();
    completion.completion_tokens = estimate_tokens(completion.text);
    return completion;
  }

  std::unique_ptr<hdl::ElaborationResult> design;
  try {
    design = std::make_unique<hdl::ElaborationResult>(hdl::elaborate_source(rtl));
  } catch (const Error& e) {
    GENFV_LOG(Debug, "sim-llm") << "prompt RTL did not elaborate: " << e.what();
    completion.text = answer_without_design();
    completion.completion_tokens = estimate_tokens(completion.text);
    return completion;
  }
  ir::TransitionSystem& ts = design->ts;

  // Behavioural evidence: sample reachable states.
  sim::RandomSimulator simulator(ts, rng_.next());
  const std::vector<sim::Assignment> samples = simulator.sample_states(48, 6);

  // Fig. 2 mode: parse the counterexample waveform back out of the text.
  const std::string wave_text = extract_fenced(prompt.user, marker::kWaveFenceOpen);
  std::vector<sim::Assignment> cex_frames;
  const bool cex_mode = !util::trim(wave_text).empty();
  if (cex_mode) cex_frames = parse_waveform_table(wave_text, ts);

  std::vector<CandidateInvariant> candidates =
      mine_candidates(ts, samples, cex_frames.empty() ? nullptr : &cex_frames);

  // CEX-guided focus: prefer (strong models: keep only) candidates that are
  // violated somewhere in the spurious trace — those are the ones that rule
  // the counterexample out.
  if (cex_mode && !cex_frames.empty()) {
    sva::PropertyCompiler compiler(ts);
    auto kills_cex = [&](const CandidateInvariant& c) -> bool {
      try {
        const ir::NodeRef expr = compiler.compile_expr(c.sva);
        for (const auto& frame : cex_frames) {
          bool complete_frame = true;
          for (const ir::NodeRef leaf : ir::collect_leaves(expr)) {
            if (!frame.contains(leaf)) {
              complete_frame = false;
              break;
            }
          }
          if (complete_frame && sim::evaluate(expr, frame) == 0) return true;
        }
      } catch (const Error&) {
        return false;
      }
      return false;
    };
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const CandidateInvariant& a, const CandidateInvariant& b) {
                       return kills_cex(a) > kills_cex(b);
                     });
    if (profile_.self_check) {
      std::vector<CandidateInvariant> focused;
      for (auto& c : candidates) {
        if (kills_cex(c)) focused.push_back(std::move(c));
      }
      if (!focused.empty()) candidates = std::move(focused);
    }
  }

  apply_noise(candidates, ts, samples);

  // Rank and cap like a model with an answer-length budget.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CandidateInvariant& a, const CandidateInvariant& b) {
                     return a.confidence > b.confidence;
                   });
  if (candidates.size() > profile_.max_candidates) {
    candidates.resize(profile_.max_candidates);
  }

  const std::string design_name = extract_design_name(prompt.user);
  completion.text = render_completion(
      candidates, design_name.empty() ? ts.name() : design_name, cex_mode);
  completion.completion_tokens = estimate_tokens(completion.text);
  completion.latency_seconds =
      0.4 + profile_.seconds_per_1k_tokens *
                (static_cast<double>(completion.completion_tokens) / 1000.0);
  return completion;
}

}  // namespace genfv::genai
