#pragma once

/// \file model_profile.hpp
/// Behavioural profiles of the hosted models the paper evaluated
/// (GPT-4-Turbo, GPT-4o, Llama, Gemini). The offline `SimulatedLlm`
/// instantiates one of these; the parameters control which invariant-mining
/// analyses the "model" performs and how much noise (hallucination, syntax
/// errors, omissions) its output carries. The values are calibrated so that
/// the paper's qualitative finding — "the quality of generated assertions
/// was much better in the case of LLMs from OpenAI … compared to Llama or
/// Gemini" — emerges mechanistically in the E5 bench rather than being
/// hard-coded anywhere in the flow.

#include <string>
#include <vector>

namespace genfv::genai {

struct ModelProfile {
  std::string name;    ///< e.g. "gpt-4-turbo"
  std::string vendor;  ///< "openai", "meta", "google"

  /// How many mining passes the model is capable of (0..7). Stronger models
  /// spot deeper relationships (XOR/parity, implications), weaker ones stop
  /// at surface patterns (reset values, equalities).
  int insight = 4;

  /// Probability of emitting a plausible-but-false assertion alongside each
  /// genuine finding (the paper's "artificial hallucinations").
  double hallucination_rate = 0.15;

  /// Probability of corrupting an emitted assertion's syntax.
  double syntax_error_rate = 0.05;

  /// Probability of dropping a genuine finding from the answer.
  double omission_rate = 0.10;

  /// Whether the model "double-checks" candidates against the design
  /// behaviour it inferred (simulation self-screening) before answering.
  bool self_check = true;

  /// Maximum number of assertions emitted per request.
  std::size_t max_candidates = 8;

  /// Simulated latency model: seconds per 1k completion tokens.
  double seconds_per_1k_tokens = 0.9;
};

/// Registry of the four models the paper names. Throws UsageError for an
/// unknown name.
const ModelProfile& profile_by_name(const std::string& name);

/// Names of all registered models, in the paper's order.
std::vector<std::string> known_models();

}  // namespace genfv::genai
