#include "ir/printer.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace genfv::ir {

namespace {

const char* infix_symbol(Op op) {
  switch (op) {
    case Op::And: return " & ";
    case Op::Or: return " | ";
    case Op::Xor: return " ^ ";
    case Op::Add: return " + ";
    case Op::Sub: return " - ";
    case Op::Mul: return " * ";
    case Op::Udiv: return " / ";
    case Op::Urem: return " % ";
    case Op::Shl: return " << ";
    case Op::Lshr: return " >> ";
    case Op::Ashr: return " >>> ";
    case Op::Eq: return " == ";
    case Op::Ult: return " < ";
    case Op::Ule: return " <= ";
    case Op::Slt: return " <s ";
    case Op::Sle: return " <=s ";
    case Op::Implies: return " -> ";
    default: return nullptr;
  }
}

void render(NodeRef n, std::string& out) {
  switch (n->op()) {
    case Op::Const:
      out += util::hex_literal(n->value(), n->width());
      return;
    case Op::Input:
    case Op::State:
      out += n->name();
      return;
    case Op::Not:
      out += n->width() == 1 ? "!" : "~";
      render(n->child(0), out);
      return;
    case Op::Neg:
      out += "-";
      render(n->child(0), out);
      return;
    case Op::RedAnd:
      out += "&";
      render(n->child(0), out);
      return;
    case Op::RedOr:
      out += "|";
      render(n->child(0), out);
      return;
    case Op::RedXor:
      out += "^";
      render(n->child(0), out);
      return;
    case Op::Extract: {
      render(n->child(0), out);
      out += '[';
      out += std::to_string(n->hi());
      if (n->hi() != n->lo()) {
        out += ':';
        out += std::to_string(n->lo());
      }
      out += ']';
      return;
    }
    case Op::ZExt:
      out += "zext" + std::to_string(n->width()) + "(";
      render(n->child(0), out);
      out += ')';
      return;
    case Op::SExt:
      out += "sext" + std::to_string(n->width()) + "(";
      render(n->child(0), out);
      out += ')';
      return;
    case Op::Concat:
      out += '{';
      render(n->child(0), out);
      out += ", ";
      render(n->child(1), out);
      out += '}';
      return;
    case Op::Ite:
      out += '(';
      render(n->child(0), out);
      out += " ? ";
      render(n->child(1), out);
      out += " : ";
      render(n->child(2), out);
      out += ')';
      return;
    default: {
      const char* sym = infix_symbol(n->op());
      if (sym != nullptr && n->arity() == 2) {
        out += '(';
        render(n->child(0), out);
        out += sym;
        render(n->child(1), out);
        out += ')';
        return;
      }
      // Fallback: prefix form.
      out += std::string(op_name(n->op())) + '(';
      for (std::size_t i = 0; i < n->arity(); ++i) {
        if (i != 0) out += ", ";
        render(n->child(i), out);
      }
      out += ')';
      return;
    }
  }
}

}  // namespace

std::string to_string(NodeRef node) {
  std::string out;
  render(node, out);
  return out;
}

std::string describe(const TransitionSystem& ts) {
  std::ostringstream out;
  out << "system " << (ts.name().empty() ? "<anonymous>" : ts.name()) << '\n';
  out << "  inputs:\n";
  for (const NodeRef in : ts.inputs()) {
    out << "    " << in->name() << " : bv" << in->width() << '\n';
  }
  out << "  states:\n";
  for (const auto& s : ts.states()) {
    out << "    " << s.var->name() << " : bv" << s.var->width();
    if (s.init != nullptr) out << "  init " << to_string(s.init);
    if (s.next != nullptr) out << "  next " << to_string(s.next);
    out << '\n';
  }
  if (!ts.constraints().empty()) {
    out << "  constraints:\n";
    for (const NodeRef c : ts.constraints()) out << "    " << to_string(c) << '\n';
  }
  if (!ts.properties().empty()) {
    out << "  properties:\n";
    for (const auto& p : ts.properties()) {
      out << "    " << p.name << ": " << to_string(p.expr) << '\n';
    }
  }
  return out.str();
}

}  // namespace genfv::ir
