#include "ir/node_manager.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace genfv::ir {

namespace {

void require(bool cond, const std::string& msg) {
  if (!cond) throw SortError(msg);
}

void require_same_width(NodeRef a, NodeRef b, const char* what) {
  require(a->width() == b->width(),
          std::string(what) + ": operand widths differ (" + std::to_string(a->width()) +
              " vs " + std::to_string(b->width()) + ")");
}

void require_width(unsigned width) {
  require(width >= 1 && width <= 64,
          "bit-vector width must be in [1,64], got " + std::to_string(width));
}

}  // namespace

std::size_t NodeManager::ConsKeyHash::operator()(const ConsKey& k) const noexcept {
  std::size_t h = static_cast<std::size_t>(k.op) * 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(k.width);
  mix(static_cast<std::size_t>(k.value));
  mix(k.p0);
  mix(k.p1);
  for (const auto id : k.child_ids) mix(id);
  return h;
}

NodeRef NodeManager::alloc(Op op, std::vector<NodeRef> children, unsigned width,
                           std::uint64_t value, unsigned p0, unsigned p1,
                           std::string name) {
  auto node = std::make_unique<Node>(Node{});
  node->op_ = op;
  node->width_ = width;
  node->id_ = next_id_++;
  node->value_ = value;
  node->param0_ = p0;
  node->param1_ = p1;
  node->name_ = std::move(name);
  node->children_ = std::move(children);
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

NodeRef NodeManager::mk_const(std::uint64_t value, unsigned width) {
  require_width(width);
  value &= width_mask(width);
  ConsKey key{Op::Const, width, value, 0, 0, {}};
  if (const auto it = cons_.find(key); it != cons_.end()) return it->second;
  const NodeRef n = alloc(Op::Const, {}, width, value, 0, 0, {});
  cons_.emplace(std::move(key), n);
  return n;
}

NodeRef NodeManager::mk_input(const std::string& name, unsigned width) {
  require_width(width);
  return alloc(Op::Input, {}, width, 0, 0, 0, name);  // nominal: never consed
}

NodeRef NodeManager::mk_state(const std::string& name, unsigned width) {
  require_width(width);
  return alloc(Op::State, {}, width, 0, 0, 0, name);  // nominal: never consed
}

NodeRef NodeManager::mk(Op op, std::vector<NodeRef> children, unsigned width, unsigned p0,
                        unsigned p1) {
  require_width(width);
  if (is_commutative(op) && children.size() == 2 && children[0]->id() > children[1]->id()) {
    std::swap(children[0], children[1]);
  }
  if (auto folded = fold(*this, op, children, width, p0, p1)) return *folded;

  ConsKey key{op, width, 0, p0, p1, {}};
  key.child_ids.reserve(children.size());
  for (const NodeRef c : children) key.child_ids.push_back(c->id());
  if (const auto it = cons_.find(key); it != cons_.end()) return it->second;
  const NodeRef n = alloc(op, std::move(children), width, 0, p0, p1, {});
  cons_.emplace(std::move(key), n);
  return n;
}

// --- bitwise -----------------------------------------------------------------

NodeRef NodeManager::mk_not(NodeRef a) { return mk(Op::Not, {a}, a->width()); }

NodeRef NodeManager::mk_and(NodeRef a, NodeRef b) {
  require_same_width(a, b, "and");
  return mk(Op::And, {a, b}, a->width());
}

NodeRef NodeManager::mk_or(NodeRef a, NodeRef b) {
  require_same_width(a, b, "or");
  return mk(Op::Or, {a, b}, a->width());
}

NodeRef NodeManager::mk_xor(NodeRef a, NodeRef b) {
  require_same_width(a, b, "xor");
  return mk(Op::Xor, {a, b}, a->width());
}

// --- arithmetic ----------------------------------------------------------------

NodeRef NodeManager::mk_neg(NodeRef a) { return mk(Op::Neg, {a}, a->width()); }

NodeRef NodeManager::mk_add(NodeRef a, NodeRef b) {
  require_same_width(a, b, "add");
  return mk(Op::Add, {a, b}, a->width());
}

NodeRef NodeManager::mk_sub(NodeRef a, NodeRef b) {
  require_same_width(a, b, "sub");
  return mk(Op::Sub, {a, b}, a->width());
}

NodeRef NodeManager::mk_mul(NodeRef a, NodeRef b) {
  require_same_width(a, b, "mul");
  return mk(Op::Mul, {a, b}, a->width());
}

NodeRef NodeManager::mk_udiv(NodeRef a, NodeRef b) {
  require_same_width(a, b, "udiv");
  return mk(Op::Udiv, {a, b}, a->width());
}

NodeRef NodeManager::mk_urem(NodeRef a, NodeRef b) {
  require_same_width(a, b, "urem");
  return mk(Op::Urem, {a, b}, a->width());
}

// --- shifts ---------------------------------------------------------------------

NodeRef NodeManager::mk_shl(NodeRef a, NodeRef amount) {
  return mk(Op::Shl, {a, amount}, a->width());
}

NodeRef NodeManager::mk_lshr(NodeRef a, NodeRef amount) {
  return mk(Op::Lshr, {a, amount}, a->width());
}

NodeRef NodeManager::mk_ashr(NodeRef a, NodeRef amount) {
  return mk(Op::Ashr, {a, amount}, a->width());
}

// --- predicates -------------------------------------------------------------------

NodeRef NodeManager::mk_eq(NodeRef a, NodeRef b) {
  require_same_width(a, b, "eq");
  return mk(Op::Eq, {a, b}, 1);
}

NodeRef NodeManager::mk_ult(NodeRef a, NodeRef b) {
  require_same_width(a, b, "ult");
  return mk(Op::Ult, {a, b}, 1);
}

NodeRef NodeManager::mk_ule(NodeRef a, NodeRef b) {
  require_same_width(a, b, "ule");
  return mk(Op::Ule, {a, b}, 1);
}

NodeRef NodeManager::mk_slt(NodeRef a, NodeRef b) {
  require_same_width(a, b, "slt");
  return mk(Op::Slt, {a, b}, 1);
}

NodeRef NodeManager::mk_sle(NodeRef a, NodeRef b) {
  require_same_width(a, b, "sle");
  return mk(Op::Sle, {a, b}, 1);
}

// --- structure ----------------------------------------------------------------------

NodeRef NodeManager::mk_concat(NodeRef hi, NodeRef lo) {
  const unsigned width = hi->width() + lo->width();
  require(width <= 64, "concat result exceeds the 64-bit width cap");
  return mk(Op::Concat, {hi, lo}, width);
}

NodeRef NodeManager::mk_extract(NodeRef a, unsigned hi, unsigned lo) {
  require(hi >= lo, "extract: hi must be >= lo");
  require(hi < a->width(), "extract: hi out of range");
  if (lo == 0 && hi == a->width() - 1) return a;
  return mk(Op::Extract, {a}, hi - lo + 1, hi, lo);
}

NodeRef NodeManager::mk_zext(NodeRef a, unsigned width) {
  require(width >= a->width(), "zext: target narrower than operand");
  if (width == a->width()) return a;
  return mk(Op::ZExt, {a}, width);
}

NodeRef NodeManager::mk_sext(NodeRef a, unsigned width) {
  require(width >= a->width(), "sext: target narrower than operand");
  if (width == a->width()) return a;
  return mk(Op::SExt, {a}, width);
}

NodeRef NodeManager::mk_resize(NodeRef a, unsigned width) {
  require_width(width);
  if (width == a->width()) return a;
  if (width > a->width()) return mk_zext(a, width);
  return mk_extract(a, width - 1, 0);
}

NodeRef NodeManager::mk_ite(NodeRef cond, NodeRef then_val, NodeRef else_val) {
  require(cond->width() == 1, "ite: condition must have width 1");
  require_same_width(then_val, else_val, "ite");
  return mk(Op::Ite, {cond, then_val, else_val}, then_val->width());
}

// --- reductions / boolean --------------------------------------------------------------

NodeRef NodeManager::mk_redand(NodeRef a) { return mk(Op::RedAnd, {a}, 1); }
NodeRef NodeManager::mk_redor(NodeRef a) { return mk(Op::RedOr, {a}, 1); }
NodeRef NodeManager::mk_redxor(NodeRef a) { return mk(Op::RedXor, {a}, 1); }

NodeRef NodeManager::mk_implies(NodeRef a, NodeRef b) {
  require(a->width() == 1 && b->width() == 1, "implies: operands must have width 1");
  return mk(Op::Implies, {a, b}, 1);
}

NodeRef NodeManager::mk_and_all(const std::vector<NodeRef>& xs) {
  NodeRef acc = mk_true();
  for (const NodeRef x : xs) acc = mk_and(acc, x);
  return acc;
}

}  // namespace genfv::ir
