#include "ir/serialize.hpp"

#include <charconv>
#include <sstream>
#include <unordered_map>

#include "ir/substitute.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::ir {

namespace {

/// Collect every node reachable from the system's roots, children before
/// parents. Inputs and states come first, in declaration order, so a
/// deserialized system re-declares them in the same order (random
/// simulation and waveform layouts stay reproducible across round trips).
std::vector<NodeRef> collect_all_nodes(const TransitionSystem& ts) {
  std::vector<NodeRef> ordered;
  std::unordered_map<NodeRef, char> mark;  // present = done
  for (const NodeRef in : ts.inputs()) {
    ordered.push_back(in);
    mark.emplace(in, 1);
  }
  for (const auto& s : ts.states()) {
    ordered.push_back(s.var);
    mark.emplace(s.var, 1);
  }

  std::vector<NodeRef> roots;
  for (const auto& s : ts.states()) {
    if (s.init != nullptr) roots.push_back(s.init);
    if (s.next != nullptr) roots.push_back(s.next);
  }
  for (const NodeRef c : ts.constraints()) roots.push_back(c);
  for (const auto& p : ts.properties()) roots.push_back(p.expr);
  for (const auto& [name, expr] : ts.signals()) roots.push_back(expr);

  std::vector<std::pair<NodeRef, bool>> stack;
  for (const NodeRef r : roots) stack.push_back({r, false});
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (mark.contains(n) && !expanded) continue;
    if (expanded) {
      if (!mark.contains(n)) {
        mark.emplace(n, 1);
        ordered.push_back(n);
      }
      continue;
    }
    stack.push_back({n, true});
    for (const NodeRef c : n->children()) {
      if (!mark.contains(c)) stack.push_back({c, false});
    }
  }
  return ordered;
}

const char* role_token(PropertyRole role) {
  switch (role) {
    case PropertyRole::Target: return "target";
    case PropertyRole::Candidate: return "candidate";
    case PropertyRole::Lemma: return "lemma";
  }
  return "target";
}

PropertyRole parse_role(const std::string& token) {
  if (token == "target") return PropertyRole::Target;
  if (token == "candidate") return PropertyRole::Candidate;
  if (token == "lemma") return PropertyRole::Lemma;
  throw ParseError("serialize: unknown property role '" + token + "'");
}

}  // namespace

std::string serialize(const TransitionSystem& ts) {
  std::ostringstream out;
  out << "genfv-ts 1\n";
  if (!ts.name().empty()) out << "name " << ts.name() << '\n';

  const std::vector<NodeRef> nodes = collect_all_nodes(ts);
  std::unordered_map<NodeRef, std::size_t> id;
  std::size_t next_id = 1;

  for (const NodeRef n : nodes) {
    id[n] = next_id;
    out << next_id << ' ';
    switch (n->op()) {
      case Op::Input:
        out << "input " << n->width() << ' ' << n->name();
        break;
      case Op::State:
        out << "state " << n->width() << ' ' << n->name();
        break;
      case Op::Const: {
        char buf[20];
        std::snprintf(buf, sizeof buf, "%llx",
                      static_cast<unsigned long long>(n->value()));
        out << "const " << n->width() << ' ' << buf;
        break;
      }
      default: {
        out << op_name(n->op()) << ' ' << n->width();
        for (const NodeRef c : n->children()) out << ' ' << id.at(c);
        if (n->op() == Op::Extract) out << ' ' << n->hi() << ' ' << n->lo();
        break;
      }
    }
    out << '\n';
    ++next_id;
  }

  for (const auto& s : ts.states()) {
    if (s.init != nullptr) out << "init " << id.at(s.var) << ' ' << id.at(s.init) << '\n';
    if (s.next != nullptr) out << "next " << id.at(s.var) << ' ' << id.at(s.next) << '\n';
  }
  for (const NodeRef c : ts.constraints()) out << "constraint " << id.at(c) << '\n';
  for (const auto& p : ts.properties()) {
    out << "property " << role_token(p.role) << ' '
        << (p.name.empty() ? std::string("-") : p.name) << ' ' << id.at(p.expr);
    if (!p.source_text.empty()) {
      // Source text may contain spaces; it is everything after the '#'.
      std::string one_line = p.source_text;
      for (char& ch : one_line) {
        if (ch == '\n') ch = ' ';
      }
      out << " # " << one_line;
    }
    out << '\n';
  }
  for (const auto& [name, expr] : ts.signals()) {
    out << "signal " << name << ' ' << id.at(expr) << '\n';
  }
  return out.str();
}

TransitionSystem deserialize(const std::string& text) {
  TransitionSystem ts;
  auto& nm = ts.nm();
  std::unordered_map<std::size_t, NodeRef> by_id;

  auto node_of = [&by_id](const std::string& token) -> NodeRef {
    std::size_t value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      throw ParseError("serialize: expected node id, got '" + token + "'");
    }
    const auto it = by_id.find(value);
    if (it == by_id.end()) {
      throw ParseError("serialize: forward/unknown node id " + token);
    }
    return it->second;
  };
  auto to_unsigned = [](const std::string& token) -> unsigned {
    unsigned value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      throw ParseError("serialize: expected number, got '" + token + "'");
    }
    return value;
  };

  std::istringstream in(text);
  std::string line;
  bool header_seen = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == ';') continue;
    const auto fields = util::split_ws(trimmed);

    if (!header_seen) {
      if (fields.size() < 2 || fields[0] != "genfv-ts" || fields[1] != "1") {
        throw ParseError("serialize: missing 'genfv-ts 1' header");
      }
      header_seen = true;
      continue;
    }
    if (fields[0] == "name") {
      if (fields.size() >= 2) ts.set_name(fields[1]);
      continue;
    }
    if (fields[0] == "init" || fields[0] == "next") {
      if (fields.size() != 3) throw ParseError("serialize: malformed " + fields[0]);
      const NodeRef var = node_of(fields[1]);
      const NodeRef expr = node_of(fields[2]);
      if (fields[0] == "init") ts.set_init(var, expr);
      else ts.set_next(var, expr);
      continue;
    }
    if (fields[0] == "constraint") {
      if (fields.size() != 2) throw ParseError("serialize: malformed constraint");
      ts.add_constraint(node_of(fields[1]));
      continue;
    }
    if (fields[0] == "property") {
      if (fields.size() < 4) throw ParseError("serialize: malformed property");
      Property p;
      p.role = parse_role(fields[1]);
      p.name = fields[2] == "-" ? "" : fields[2];
      p.expr = node_of(fields[3]);
      const std::size_t hash = trimmed.find(" # ");
      if (hash != std::string::npos) p.source_text = trimmed.substr(hash + 3);
      ts.add_property(std::move(p));
      continue;
    }
    if (fields[0] == "signal") {
      if (fields.size() != 3) throw ParseError("serialize: malformed signal");
      ts.add_signal(fields[1], node_of(fields[2]));
      continue;
    }

    // Node definition: <id> <op> <width> ...
    if (fields.size() < 3) {
      throw ParseError("serialize: malformed line " + std::to_string(line_no));
    }
    const std::size_t id = to_unsigned(fields[0]);
    const std::string& op = fields[1];
    const unsigned width = to_unsigned(fields[2]);

    NodeRef node = nullptr;
    if (op == "input") {
      if (fields.size() != 4) throw ParseError("serialize: malformed input");
      node = ts.add_input(fields[3], width);
    } else if (op == "state") {
      if (fields.size() != 4) throw ParseError("serialize: malformed state");
      node = ts.add_state(fields[3], width);
    } else if (op == "const") {
      if (fields.size() != 4) throw ParseError("serialize: malformed const");
      node = nm.mk_const(std::stoull(fields[3], nullptr, 16), width);
    } else if (op == "extract") {
      if (fields.size() != 6) throw ParseError("serialize: malformed extract");
      node = nm.mk_extract(node_of(fields[3]), to_unsigned(fields[4]),
                           to_unsigned(fields[5]));
    } else {
      // Generic operator with child ids from field 3 on.
      std::vector<NodeRef> kids;
      for (std::size_t i = 3; i < fields.size(); ++i) kids.push_back(node_of(fields[i]));
      auto kid = [&kids](std::size_t i) -> NodeRef { return kids.at(i); };
      if (op == "not") node = nm.mk_not(kid(0));
      else if (op == "and") node = nm.mk_and(kid(0), kid(1));
      else if (op == "or") node = nm.mk_or(kid(0), kid(1));
      else if (op == "xor") node = nm.mk_xor(kid(0), kid(1));
      else if (op == "neg") node = nm.mk_neg(kid(0));
      else if (op == "add") node = nm.mk_add(kid(0), kid(1));
      else if (op == "sub") node = nm.mk_sub(kid(0), kid(1));
      else if (op == "mul") node = nm.mk_mul(kid(0), kid(1));
      else if (op == "udiv") node = nm.mk_udiv(kid(0), kid(1));
      else if (op == "urem") node = nm.mk_urem(kid(0), kid(1));
      else if (op == "shl") node = nm.mk_shl(kid(0), kid(1));
      else if (op == "lshr") node = nm.mk_lshr(kid(0), kid(1));
      else if (op == "ashr") node = nm.mk_ashr(kid(0), kid(1));
      else if (op == "eq") node = nm.mk_eq(kid(0), kid(1));
      else if (op == "ult") node = nm.mk_ult(kid(0), kid(1));
      else if (op == "ule") node = nm.mk_ule(kid(0), kid(1));
      else if (op == "slt") node = nm.mk_slt(kid(0), kid(1));
      else if (op == "sle") node = nm.mk_sle(kid(0), kid(1));
      else if (op == "concat") node = nm.mk_concat(kid(0), kid(1));
      else if (op == "zext") node = nm.mk_zext(kid(0), width);
      else if (op == "sext") node = nm.mk_sext(kid(0), width);
      else if (op == "ite") node = nm.mk_ite(kid(0), kid(1), kid(2));
      else if (op == "redand") node = nm.mk_redand(kid(0));
      else if (op == "redor") node = nm.mk_redor(kid(0));
      else if (op == "redxor") node = nm.mk_redxor(kid(0));
      else if (op == "implies") node = nm.mk_implies(kid(0), kid(1));
      else throw ParseError("serialize: unknown op '" + op + "'");
    }
    if (node->width() != width) {
      throw ParseError("serialize: width mismatch at id " + std::to_string(id));
    }
    by_id[id] = node;
  }
  if (!header_seen) throw ParseError("serialize: empty input");
  return ts;
}

}  // namespace genfv::ir
