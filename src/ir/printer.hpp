#pragma once

/// \file printer.hpp
/// Human-readable rendering of IR expressions and transition systems —
/// used by diagnostics, flow reports and the simulated LLM's "reading" of
/// the design.

#include <string>

#include "ir/transition_system.hpp"

namespace genfv::ir {

/// Infix rendering, e.g. "(count1 == count2)". Shared subtrees are inlined
/// (fine for diagnostics; not a serialization format).
std::string to_string(NodeRef node);

/// Multi-line summary of a transition system (inputs, states with init/next,
/// constraints, properties).
std::string describe(const TransitionSystem& ts);

}  // namespace genfv::ir
