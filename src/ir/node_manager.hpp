#pragma once

/// \file node_manager.hpp
/// Factory and owner of all IR nodes. Construction performs width checking,
/// operand normalization (commutative operands sorted by id), constant
/// folding and algebraic simplification (fold.cpp), and hash-consing, so
/// structurally equal expressions are pointer-equal.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/node.hpp"

namespace genfv::ir {

class NodeManager {
 public:
  NodeManager() = default;
  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  // --- leaves ---------------------------------------------------------------
  NodeRef mk_const(std::uint64_t value, unsigned width);
  NodeRef mk_true() { return mk_const(1, 1); }
  NodeRef mk_false() { return mk_const(0, 1); }
  NodeRef mk_ones(unsigned width) { return mk_const(width_mask(width), width); }

  /// Inputs and states are nominal: every call creates a distinct node.
  NodeRef mk_input(const std::string& name, unsigned width);
  NodeRef mk_state(const std::string& name, unsigned width);

  // --- bitwise ---------------------------------------------------------------
  NodeRef mk_not(NodeRef a);
  NodeRef mk_and(NodeRef a, NodeRef b);
  NodeRef mk_or(NodeRef a, NodeRef b);
  NodeRef mk_xor(NodeRef a, NodeRef b);
  NodeRef mk_xnor(NodeRef a, NodeRef b) { return mk_not(mk_xor(a, b)); }
  NodeRef mk_nand(NodeRef a, NodeRef b) { return mk_not(mk_and(a, b)); }
  NodeRef mk_nor(NodeRef a, NodeRef b) { return mk_not(mk_or(a, b)); }

  // --- arithmetic -------------------------------------------------------------
  NodeRef mk_neg(NodeRef a);
  NodeRef mk_add(NodeRef a, NodeRef b);
  NodeRef mk_sub(NodeRef a, NodeRef b);
  NodeRef mk_mul(NodeRef a, NodeRef b);
  NodeRef mk_udiv(NodeRef a, NodeRef b);
  NodeRef mk_urem(NodeRef a, NodeRef b);

  // --- shifts ----------------------------------------------------------------
  NodeRef mk_shl(NodeRef a, NodeRef amount);
  NodeRef mk_lshr(NodeRef a, NodeRef amount);
  NodeRef mk_ashr(NodeRef a, NodeRef amount);

  // --- predicates (result width 1) --------------------------------------------
  NodeRef mk_eq(NodeRef a, NodeRef b);
  NodeRef mk_ne(NodeRef a, NodeRef b) { return mk_not(mk_eq(a, b)); }
  NodeRef mk_ult(NodeRef a, NodeRef b);
  NodeRef mk_ule(NodeRef a, NodeRef b);
  NodeRef mk_ugt(NodeRef a, NodeRef b) { return mk_ult(b, a); }
  NodeRef mk_uge(NodeRef a, NodeRef b) { return mk_ule(b, a); }
  NodeRef mk_slt(NodeRef a, NodeRef b);
  NodeRef mk_sle(NodeRef a, NodeRef b);
  NodeRef mk_sgt(NodeRef a, NodeRef b) { return mk_slt(b, a); }
  NodeRef mk_sge(NodeRef a, NodeRef b) { return mk_sle(b, a); }

  // --- structure ---------------------------------------------------------------
  NodeRef mk_concat(NodeRef hi, NodeRef lo);
  NodeRef mk_extract(NodeRef a, unsigned hi, unsigned lo);
  NodeRef mk_bit(NodeRef a, unsigned i) { return mk_extract(a, i, i); }
  NodeRef mk_zext(NodeRef a, unsigned width);
  NodeRef mk_sext(NodeRef a, unsigned width);
  /// Resize `a` to `width`: zero-extend, no-op or truncate.
  NodeRef mk_resize(NodeRef a, unsigned width);
  NodeRef mk_ite(NodeRef cond, NodeRef then_val, NodeRef else_val);

  // --- reductions / boolean -----------------------------------------------------
  NodeRef mk_redand(NodeRef a);
  NodeRef mk_redor(NodeRef a);
  NodeRef mk_redxor(NodeRef a);
  NodeRef mk_implies(NodeRef a, NodeRef b);
  NodeRef mk_iff(NodeRef a, NodeRef b) { return mk_eq(a, b); }
  /// Coerce a vector to a boolean: nonzero test (Verilog truthiness).
  NodeRef mk_bool(NodeRef a) { return a->width() == 1 ? a : mk_redor(a); }

  /// Conjunction of a list (true for the empty list).
  NodeRef mk_and_all(const std::vector<NodeRef>& xs);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }

 private:
  friend std::optional<NodeRef> fold(NodeManager& nm, Op op,
                                     const std::vector<NodeRef>& children,
                                     unsigned width, unsigned p0, unsigned p1);

  /// Central constructor: normalize -> fold -> cons -> allocate.
  NodeRef mk(Op op, std::vector<NodeRef> children, unsigned width, unsigned p0 = 0,
             unsigned p1 = 0);
  NodeRef alloc(Op op, std::vector<NodeRef> children, unsigned width, std::uint64_t value,
                unsigned p0, unsigned p1, std::string name);

  struct ConsKey {
    Op op;
    unsigned width;
    std::uint64_t value;
    unsigned p0, p1;
    std::vector<std::uint32_t> child_ids;
    bool operator==(const ConsKey&) const = default;
  };
  struct ConsKeyHash {
    std::size_t operator()(const ConsKey& k) const noexcept;
  };

  std::deque<std::unique_ptr<Node>> nodes_;
  std::unordered_map<ConsKey, NodeRef, ConsKeyHash> cons_;
  std::uint32_t next_id_ = 0;
};

/// Constant folding + algebraic simplification; returns the simplified node
/// or nullopt when no rule applies. Defined in fold.cpp.
std::optional<NodeRef> fold(NodeManager& nm, Op op, const std::vector<NodeRef>& children,
                            unsigned width, unsigned p0, unsigned p1);

/// Bit-precise evaluation of a single operator over uint64 operand values —
/// the single source of truth for operator semantics, shared by the constant
/// folder and the simulator.
std::uint64_t eval_op(Op op, unsigned width, unsigned p0, unsigned p1,
                      const std::vector<std::uint64_t>& operands,
                      const std::vector<unsigned>& operand_widths);

}  // namespace genfv::ir
