#include "ir/clone.hpp"

#include <vector>

#include "ir/substitute.hpp"
#include "util/status.hpp"

namespace genfv::ir {

NodeRef translate(NodeRef root, NodeManager& nm,
                  std::unordered_map<NodeRef, NodeRef>& map) {
  GENFV_ASSERT(root != nullptr, "translate: null expression");
  // Iterative post-order over the DAG: expand children first, then rebuild.
  std::vector<std::pair<NodeRef, bool>> stack{{root, false}};
  while (!stack.empty()) {
    const auto [n, expanded] = stack.back();
    stack.pop_back();
    if (map.contains(n)) continue;
    if (!expanded) {
      if (n->op() == Op::Const) {
        map.emplace(n, nm.mk_const(n->value(), n->width()));
        continue;
      }
      if (n->is_leaf()) {
        throw UsageError("translate: unmapped " +
                         std::string(op_name(n->op())) + " leaf '" + n->name() +
                         "'");
      }
      stack.push_back({n, true});
      for (const NodeRef c : n->children()) {
        if (!map.contains(c)) stack.push_back({c, false});
      }
      continue;
    }
    std::vector<NodeRef> kids;
    kids.reserve(n->arity());
    for (const NodeRef c : n->children()) kids.push_back(map.at(c));
    map.emplace(n, rebuild_node(nm, n, kids));
  }
  return map.at(root);
}

std::unordered_map<NodeRef, NodeRef> leaf_correspondence(const TransitionSystem& from,
                                                         const TransitionSystem& to) {
  if (from.inputs().size() != to.inputs().size() ||
      from.states().size() != to.states().size()) {
    throw UsageError("leaf_correspondence: systems declare different leaf counts");
  }
  std::unordered_map<NodeRef, NodeRef> map;
  map.reserve(from.inputs().size() + from.states().size());
  auto pair_up = [&map](NodeRef a, NodeRef b) {
    if (a->width() != b->width()) {
      throw UsageError("leaf_correspondence: width mismatch on '" + a->name() + "'");
    }
    map.emplace(a, b);
  };
  for (std::size_t i = 0; i < from.inputs().size(); ++i) {
    pair_up(from.inputs()[i], to.inputs()[i]);
  }
  for (std::size_t i = 0; i < from.states().size(); ++i) {
    pair_up(from.states()[i].var, to.states()[i].var);
  }
  return map;
}

NodeRef translate_between(NodeRef root, const TransitionSystem& from,
                          TransitionSystem& to) {
  std::unordered_map<NodeRef, NodeRef> map = leaf_correspondence(from, to);
  return translate(root, to.nm(), map);
}

SystemClone::SystemClone(const TransitionSystem& original)
    : original_nm_(original.nm_ptr()) {
  clone_.set_name(original.name());
  for (const NodeRef in : original.inputs()) {
    const NodeRef c = clone_.add_input(in->name(), in->width());
    fwd_.emplace(in, c);
    bwd_.emplace(c, in);
  }
  for (const auto& s : original.states()) {
    const NodeRef c = clone_.add_state(s.var->name(), s.var->width());
    fwd_.emplace(s.var, c);
    bwd_.emplace(c, s.var);
  }
  for (const auto& s : original.states()) {
    if (s.init != nullptr) clone_.set_init(fwd_.at(s.var), to_clone(s.init));
    if (s.next != nullptr) clone_.set_next(fwd_.at(s.var), to_clone(s.next));
  }
  for (const NodeRef c : original.constraints()) {
    clone_.add_constraint(to_clone(c));
  }
  for (const auto& p : original.properties()) {
    clone_.add_property({p.name, to_clone(p.expr), p.role, p.source_text});
  }
  for (const auto& [name, expr] : original.signals()) {
    clone_.add_signal(name, to_clone(expr));
  }
}

NodeRef SystemClone::to_clone(NodeRef expr) {
  return translate(expr, clone_.nm(), fwd_);
}

NodeRef SystemClone::to_original(NodeRef expr) {
  return translate(expr, *original_nm_, bwd_);
}

}  // namespace genfv::ir
