#pragma once

/// \file substitute.hpp
/// Bottom-up leaf substitution over the hash-consed DAG, with memoization.
/// Used for structural-equivalence checks in invariant mining (rename state
/// a to state b and compare pointers) and for expression rewriting.

#include <unordered_map>

#include "ir/node_manager.hpp"

namespace genfv::ir {

using Substitution = std::unordered_map<NodeRef, NodeRef>;

/// Rebuild `root` with every occurrence of a key leaf replaced by its image.
/// Replacement images must have the same width as their keys.
NodeRef substitute(NodeRef root, const Substitution& subst, NodeManager& nm);

/// Rebuild `original`'s operator in `nm` over the (already translated)
/// `children`, through the public builders so folding and hash-consing
/// reapply. `original` must be a non-leaf; this is the single op-dispatch
/// table shared by `substitute` and `ir::translate` (clone.hpp).
NodeRef rebuild_node(NodeManager& nm, NodeRef original,
                     const std::vector<NodeRef>& children);

/// Collect the set of Input/State leaves reachable from `root`.
std::vector<NodeRef> collect_leaves(NodeRef root);

/// DAG node count (distinct nodes reachable from root).
std::size_t dag_size(NodeRef root);

}  // namespace genfv::ir
