#include "ir/substitute.hpp"

#include <unordered_set>

#include "util/status.hpp"

namespace genfv::ir {

namespace {

/// Iterative post-order walk shared by the utilities below. Calls `visit`
/// exactly once per distinct node, children first.
template <typename Visit>
void postorder(NodeRef root, Visit&& visit) {
  std::unordered_set<NodeRef> done;
  std::vector<std::pair<NodeRef, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (done.contains(node)) continue;
    if (expanded) {
      done.insert(node);
      visit(node);
      continue;
    }
    stack.push_back({node, true});
    for (const NodeRef c : node->children()) {
      if (!done.contains(c)) stack.push_back({c, false});
    }
  }
}

}  // namespace

NodeRef substitute(NodeRef root, const Substitution& subst, NodeManager& nm) {
  std::unordered_map<NodeRef, NodeRef> memo;
  postorder(root, [&](NodeRef n) {
    // Leaf replacement.
    if (const auto it = subst.find(n); it != subst.end()) {
      GENFV_ASSERT(it->second->width() == n->width(), "substitute: width mismatch");
      memo[n] = it->second;
      return;
    }
    if (n->is_leaf()) {
      memo[n] = n;
      return;
    }
    std::vector<NodeRef> kids;
    kids.reserve(n->arity());
    bool changed = false;
    for (const NodeRef c : n->children()) {
      const NodeRef image = memo.at(c);
      changed |= (image != c);
      kids.push_back(image);
    }
    if (!changed) {
      memo[n] = n;
      return;
    }
    memo[n] = rebuild_node(nm, n, kids);
  });
  return memo.at(root);
}

NodeRef rebuild_node(NodeManager& nm, NodeRef n, const std::vector<NodeRef>& kids) {
  switch (n->op()) {
    case Op::Not: return nm.mk_not(kids[0]);
    case Op::And: return nm.mk_and(kids[0], kids[1]);
    case Op::Or: return nm.mk_or(kids[0], kids[1]);
    case Op::Xor: return nm.mk_xor(kids[0], kids[1]);
    case Op::Neg: return nm.mk_neg(kids[0]);
    case Op::Add: return nm.mk_add(kids[0], kids[1]);
    case Op::Sub: return nm.mk_sub(kids[0], kids[1]);
    case Op::Mul: return nm.mk_mul(kids[0], kids[1]);
    case Op::Udiv: return nm.mk_udiv(kids[0], kids[1]);
    case Op::Urem: return nm.mk_urem(kids[0], kids[1]);
    case Op::Shl: return nm.mk_shl(kids[0], kids[1]);
    case Op::Lshr: return nm.mk_lshr(kids[0], kids[1]);
    case Op::Ashr: return nm.mk_ashr(kids[0], kids[1]);
    case Op::Eq: return nm.mk_eq(kids[0], kids[1]);
    case Op::Ult: return nm.mk_ult(kids[0], kids[1]);
    case Op::Ule: return nm.mk_ule(kids[0], kids[1]);
    case Op::Slt: return nm.mk_slt(kids[0], kids[1]);
    case Op::Sle: return nm.mk_sle(kids[0], kids[1]);
    case Op::Concat: return nm.mk_concat(kids[0], kids[1]);
    case Op::Extract: return nm.mk_extract(kids[0], n->hi(), n->lo());
    case Op::ZExt: return nm.mk_zext(kids[0], n->width());
    case Op::SExt: return nm.mk_sext(kids[0], n->width());
    case Op::Ite: return nm.mk_ite(kids[0], kids[1], kids[2]);
    case Op::RedAnd: return nm.mk_redand(kids[0]);
    case Op::RedOr: return nm.mk_redor(kids[0]);
    case Op::RedXor: return nm.mk_redxor(kids[0]);
    case Op::Implies: return nm.mk_implies(kids[0], kids[1]);
    case Op::Const:
    case Op::Input:
    case Op::State:
      break;
  }
  GENFV_ASSERT(false, "rebuild_node: leaf op");
  return nullptr;
}

std::vector<NodeRef> collect_leaves(NodeRef root) {
  std::vector<NodeRef> leaves;
  postorder(root, [&](NodeRef n) {
    if (n->op() == Op::Input || n->op() == Op::State) leaves.push_back(n);
  });
  return leaves;
}

std::size_t dag_size(NodeRef root) {
  std::size_t count = 0;
  postorder(root, [&count](NodeRef) { ++count; });
  return count;
}

}  // namespace genfv::ir
