#include "ir/substitute.hpp"

#include <unordered_set>

#include "util/status.hpp"

namespace genfv::ir {

namespace {

/// Iterative post-order walk shared by the utilities below. Calls `visit`
/// exactly once per distinct node, children first.
template <typename Visit>
void postorder(NodeRef root, Visit&& visit) {
  std::unordered_set<NodeRef> done;
  std::vector<std::pair<NodeRef, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (done.contains(node)) continue;
    if (expanded) {
      done.insert(node);
      visit(node);
      continue;
    }
    stack.push_back({node, true});
    for (const NodeRef c : node->children()) {
      if (!done.contains(c)) stack.push_back({c, false});
    }
  }
}

}  // namespace

NodeRef substitute(NodeRef root, const Substitution& subst, NodeManager& nm) {
  std::unordered_map<NodeRef, NodeRef> memo;
  postorder(root, [&](NodeRef n) {
    // Leaf replacement.
    if (const auto it = subst.find(n); it != subst.end()) {
      GENFV_ASSERT(it->second->width() == n->width(), "substitute: width mismatch");
      memo[n] = it->second;
      return;
    }
    if (n->is_leaf()) {
      memo[n] = n;
      return;
    }
    std::vector<NodeRef> kids;
    kids.reserve(n->arity());
    bool changed = false;
    for (const NodeRef c : n->children()) {
      const NodeRef image = memo.at(c);
      changed |= (image != c);
      kids.push_back(image);
    }
    if (!changed) {
      memo[n] = n;
      return;
    }
    // Rebuild through the public builders so folding/consing reapply.
    switch (n->op()) {
      case Op::Not: memo[n] = nm.mk_not(kids[0]); break;
      case Op::And: memo[n] = nm.mk_and(kids[0], kids[1]); break;
      case Op::Or: memo[n] = nm.mk_or(kids[0], kids[1]); break;
      case Op::Xor: memo[n] = nm.mk_xor(kids[0], kids[1]); break;
      case Op::Neg: memo[n] = nm.mk_neg(kids[0]); break;
      case Op::Add: memo[n] = nm.mk_add(kids[0], kids[1]); break;
      case Op::Sub: memo[n] = nm.mk_sub(kids[0], kids[1]); break;
      case Op::Mul: memo[n] = nm.mk_mul(kids[0], kids[1]); break;
      case Op::Udiv: memo[n] = nm.mk_udiv(kids[0], kids[1]); break;
      case Op::Urem: memo[n] = nm.mk_urem(kids[0], kids[1]); break;
      case Op::Shl: memo[n] = nm.mk_shl(kids[0], kids[1]); break;
      case Op::Lshr: memo[n] = nm.mk_lshr(kids[0], kids[1]); break;
      case Op::Ashr: memo[n] = nm.mk_ashr(kids[0], kids[1]); break;
      case Op::Eq: memo[n] = nm.mk_eq(kids[0], kids[1]); break;
      case Op::Ult: memo[n] = nm.mk_ult(kids[0], kids[1]); break;
      case Op::Ule: memo[n] = nm.mk_ule(kids[0], kids[1]); break;
      case Op::Slt: memo[n] = nm.mk_slt(kids[0], kids[1]); break;
      case Op::Sle: memo[n] = nm.mk_sle(kids[0], kids[1]); break;
      case Op::Concat: memo[n] = nm.mk_concat(kids[0], kids[1]); break;
      case Op::Extract: memo[n] = nm.mk_extract(kids[0], n->hi(), n->lo()); break;
      case Op::ZExt: memo[n] = nm.mk_zext(kids[0], n->width()); break;
      case Op::SExt: memo[n] = nm.mk_sext(kids[0], n->width()); break;
      case Op::Ite: memo[n] = nm.mk_ite(kids[0], kids[1], kids[2]); break;
      case Op::RedAnd: memo[n] = nm.mk_redand(kids[0]); break;
      case Op::RedOr: memo[n] = nm.mk_redor(kids[0]); break;
      case Op::RedXor: memo[n] = nm.mk_redxor(kids[0]); break;
      case Op::Implies: memo[n] = nm.mk_implies(kids[0], kids[1]); break;
      case Op::Const:
      case Op::Input:
      case Op::State:
        GENFV_ASSERT(false, "leaf reached in rebuild branch");
    }
  });
  return memo.at(root);
}

std::vector<NodeRef> collect_leaves(NodeRef root) {
  std::vector<NodeRef> leaves;
  postorder(root, [&](NodeRef n) {
    if (n->op() == Op::Input || n->op() == Op::State) leaves.push_back(n);
  });
  return leaves;
}

std::size_t dag_size(NodeRef root) {
  std::size_t count = 0;
  postorder(root, [&count](NodeRef) { ++count; });
  return count;
}

}  // namespace genfv::ir
