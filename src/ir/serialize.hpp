#pragma once

/// \file serialize.hpp
/// Text serialization of transition systems, in a BTOR2-inspired line
/// format. Lets users dump an elaborated design to disk, diff two
/// elaborations, and reload systems without re-running the HDL frontend
/// (e.g. to archive the exact model a proof was produced on).
///
/// Format (one definition per line, SSA-style ids):
///   genfv-ts 1
///   name <module-name>
///   1 input <width> <name>
///   2 state <width> <name>
///   3 const <width> <hex-value>
///   4 add <width> 2 3
///   5 extract <width> 4 <hi> <lo>
///   init 2 3
///   next 2 4
///   constraint 5
///   property <role> <name-token> 5 # <source text...>
///   signal <name> 4
/// Ids refer to earlier lines only; names are whitespace-free tokens.

#include <string>

#include "ir/transition_system.hpp"

namespace genfv::ir {

/// Serialize `ts` to the text format above.
std::string serialize(const TransitionSystem& ts);

/// Parse a serialized system. Throws ParseError on malformed input.
/// The result owns a fresh NodeManager.
TransitionSystem deserialize(const std::string& text);

}  // namespace genfv::ir
