#pragma once

/// \file node.hpp
/// Immutable, hash-consed expression nodes. Nodes are created exclusively by
/// `NodeManager` and referenced by raw non-owning pointers (`NodeRef`); the
/// manager owns all nodes for its lifetime, so refs never dangle while the
/// manager (and any `TransitionSystem` sharing it) is alive.
///
/// Width discipline: every node has a width in [1, 64]. Bool is width 1.
/// Constant values are stored masked to their width.

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ops.hpp"

namespace genfv::ir {

class Node;
using NodeRef = const Node*;

class Node {
 public:
  Op op() const noexcept { return op_; }
  unsigned width() const noexcept { return width_; }
  std::uint32_t id() const noexcept { return id_; }

  /// Constant payload; meaningful only when op() == Op::Const.
  std::uint64_t value() const noexcept { return value_; }

  /// Extract parameters [hi:lo]; meaningful only for Op::Extract.
  unsigned hi() const noexcept { return param0_; }
  unsigned lo() const noexcept { return param1_; }

  /// Leaf name; meaningful for Op::Input / Op::State.
  const std::string& name() const noexcept { return name_; }

  const std::vector<NodeRef>& children() const noexcept { return children_; }
  NodeRef child(std::size_t i) const { return children_.at(i); }
  std::size_t arity() const noexcept { return children_.size(); }

  bool is_const() const noexcept { return op_ == Op::Const; }
  bool is_leaf() const noexcept { return ir::is_leaf(op_); }
  bool is_bool() const noexcept { return width_ == 1; }

  /// True iff this is the constant 0 / constant all-ones of its width.
  bool is_zero() const noexcept { return is_const() && value_ == 0; }
  bool is_ones() const noexcept {
    return is_const() && value_ == (width_ >= 64 ? ~0ULL : ((1ULL << width_) - 1));
  }

 private:
  friend class NodeManager;
  Node() = default;

  Op op_ = Op::Const;
  unsigned width_ = 1;
  std::uint32_t id_ = 0;
  std::uint64_t value_ = 0;
  unsigned param0_ = 0;
  unsigned param1_ = 0;
  std::string name_;
  std::vector<NodeRef> children_;
};

/// Mask covering `width` low bits (width in [1,64]).
constexpr std::uint64_t width_mask(unsigned width) noexcept {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

}  // namespace genfv::ir
