#pragma once

/// \file transition_system.hpp
/// The finite-state transition system that everything verifies against.
///
/// A system has primary inputs (fresh nondeterministic values each cycle),
/// state variables (registers, each with an optional init expression and a
/// mandatory next-state expression), named internal signals (elaborated
/// wires, referencable from SVA), environment constraints (assumed every
/// cycle) and a property list. This mirrors what a formal tool builds from
/// RTL after elaboration.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/node_manager.hpp"

namespace genfv::ir {

/// Register: variable node plus init/next expressions.
struct StateVar {
  NodeRef var = nullptr;
  NodeRef init = nullptr;  ///< nullptr = unconstrained initial value
  NodeRef next = nullptr;  ///< must be set before any engine runs
};

/// How a property participates in a proof.
enum class PropertyRole {
  Target,     ///< property the user wants proven
  Candidate,  ///< generated helper, not yet proven
  Lemma,      ///< proven helper; may be assumed
};

struct Property {
  std::string name;
  NodeRef expr = nullptr;  ///< width-1: must hold in every reachable state
  PropertyRole role = PropertyRole::Target;
  std::string source_text;  ///< SVA text it came from (for reports/prompts)
};

class TransitionSystem {
 public:
  /// Creates a system with its own node manager.
  TransitionSystem();
  /// Creates a system sharing an existing manager (e.g. when several systems
  /// are built from one elaboration session).
  explicit TransitionSystem(std::shared_ptr<NodeManager> nm);

  NodeManager& nm() noexcept { return *nm_; }
  const NodeManager& nm() const noexcept { return *nm_; }
  std::shared_ptr<NodeManager> nm_ptr() const noexcept { return nm_; }

  /// Module name (for reports); optional.
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction ---------------------------------------------------------
  NodeRef add_input(const std::string& name, unsigned width);
  NodeRef add_state(const std::string& name, unsigned width);
  void set_init(NodeRef state, NodeRef init);
  void set_next(NodeRef state, NodeRef next);
  /// Register a named internal signal (wire) so SVA and waveforms can use it.
  void add_signal(const std::string& name, NodeRef expr);
  /// Environment assumption, required to hold in every cycle.
  void add_constraint(NodeRef expr);

  std::size_t add_property(Property p);
  Property& property(std::size_t i) { return properties_.at(i); }
  const Property& property(std::size_t i) const { return properties_.at(i); }
  std::size_t num_properties() const noexcept { return properties_.size(); }

  // --- queries ----------------------------------------------------------------
  const std::vector<NodeRef>& inputs() const noexcept { return inputs_; }
  const std::vector<StateVar>& states() const noexcept { return states_; }
  const std::vector<NodeRef>& constraints() const noexcept { return constraints_; }
  const std::vector<Property>& properties() const noexcept { return properties_; }
  const std::vector<std::pair<std::string, NodeRef>>& signals() const noexcept {
    return signals_;
  }

  /// Find an input/state/signal by name; nullptr when absent.
  NodeRef lookup(const std::string& name) const;
  /// The StateVar record for a state node; nullptr when not a state here.
  const StateVar* state_of(NodeRef var) const;

  /// Throws UsageError unless every state has a next function, widths are
  /// consistent, and properties/constraints are width-1.
  void validate() const;

  // --- checkpoint / rollback --------------------------------------------------
  // A session that runs many jobs over one pristine system (flow::EngineSession)
  // must undo per-job mutations — LemmaManager registers auxiliary $past
  // states and appends candidate properties. `mark()` checkpoints the
  // declaration lists plus the init/next of every existing state;
  // `rollback(mark)` restores them. Nodes created after the mark stay alive
  // in the manager (hash-consed, harmless); only the system's view of them
  // is withdrawn.

  struct Mark {
    std::size_t inputs = 0;
    std::size_t states = 0;
    std::size_t constraints = 0;
    std::size_t properties = 0;
    std::size_t signals = 0;
    std::vector<StateVar> state_snapshot;  ///< init/next of the first `states`
  };

  Mark mark() const;
  /// Restore the system to the state captured by `m`. Throws UsageError when
  /// `m` does not describe a prefix of the current system (marks are not
  /// transferable between systems).
  void rollback(const Mark& m);

 private:
  std::shared_ptr<NodeManager> nm_;
  std::string name_;
  std::vector<NodeRef> inputs_;
  std::vector<StateVar> states_;
  std::vector<NodeRef> constraints_;
  std::vector<Property> properties_;
  std::vector<std::pair<std::string, NodeRef>> signals_;
  std::unordered_map<std::string, NodeRef> by_name_;
  std::unordered_map<NodeRef, std::size_t> state_index_;
};

}  // namespace genfv::ir
