#include "ir/transition_system.hpp"

#include "util/status.hpp"

namespace genfv::ir {

TransitionSystem::TransitionSystem() : nm_(std::make_shared<NodeManager>()) {}

TransitionSystem::TransitionSystem(std::shared_ptr<NodeManager> nm) : nm_(std::move(nm)) {
  GENFV_ASSERT(nm_ != nullptr, "TransitionSystem requires a node manager");
}

NodeRef TransitionSystem::add_input(const std::string& name, unsigned width) {
  if (by_name_.contains(name)) {
    throw UsageError("duplicate signal name: " + name);
  }
  const NodeRef n = nm_->mk_input(name, width);
  inputs_.push_back(n);
  by_name_.emplace(name, n);
  return n;
}

NodeRef TransitionSystem::add_state(const std::string& name, unsigned width) {
  if (by_name_.contains(name)) {
    throw UsageError("duplicate signal name: " + name);
  }
  const NodeRef n = nm_->mk_state(name, width);
  state_index_.emplace(n, states_.size());
  states_.push_back(StateVar{n, nullptr, nullptr});
  by_name_.emplace(name, n);
  return n;
}

void TransitionSystem::set_init(NodeRef state, NodeRef init) {
  const auto it = state_index_.find(state);
  if (it == state_index_.end()) throw UsageError("set_init: not a state of this system");
  if (init->width() != state->width()) {
    throw SortError("set_init: width mismatch for " + state->name());
  }
  states_[it->second].init = init;
}

void TransitionSystem::set_next(NodeRef state, NodeRef next) {
  const auto it = state_index_.find(state);
  if (it == state_index_.end()) throw UsageError("set_next: not a state of this system");
  if (next->width() != state->width()) {
    throw SortError("set_next: width mismatch for " + state->name());
  }
  states_[it->second].next = next;
}

void TransitionSystem::add_signal(const std::string& name, NodeRef expr) {
  if (by_name_.contains(name)) {
    throw UsageError("duplicate signal name: " + name);
  }
  signals_.emplace_back(name, expr);
  by_name_.emplace(name, expr);
}

void TransitionSystem::add_constraint(NodeRef expr) {
  if (expr->width() != 1) throw SortError("constraint must have width 1");
  constraints_.push_back(expr);
}

std::size_t TransitionSystem::add_property(Property p) {
  if (p.expr == nullptr || p.expr->width() != 1) {
    throw SortError("property '" + p.name + "' must be a width-1 expression");
  }
  properties_.push_back(std::move(p));
  return properties_.size() - 1;
}

NodeRef TransitionSystem::lookup(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const StateVar* TransitionSystem::state_of(NodeRef var) const {
  const auto it = state_index_.find(var);
  return it == state_index_.end() ? nullptr : &states_[it->second];
}

TransitionSystem::Mark TransitionSystem::mark() const {
  Mark m;
  m.inputs = inputs_.size();
  m.states = states_.size();
  m.constraints = constraints_.size();
  m.properties = properties_.size();
  m.signals = signals_.size();
  m.state_snapshot = states_;
  return m;
}

void TransitionSystem::rollback(const Mark& m) {
  if (m.inputs > inputs_.size() || m.states > states_.size() ||
      m.constraints > constraints_.size() || m.properties > properties_.size() ||
      m.signals > signals_.size() || m.state_snapshot.size() != m.states) {
    throw UsageError("rollback: mark does not describe a prefix of this system");
  }
  for (std::size_t i = m.states; i < states_.size(); ++i) {
    state_index_.erase(states_[i].var);
    by_name_.erase(states_[i].var->name());
  }
  for (std::size_t i = m.inputs; i < inputs_.size(); ++i) {
    by_name_.erase(inputs_[i]->name());
  }
  for (std::size_t i = m.signals; i < signals_.size(); ++i) {
    by_name_.erase(signals_[i].first);
  }
  inputs_.resize(m.inputs);
  states_.resize(m.states);
  constraints_.resize(m.constraints);
  properties_.resize(m.properties);
  signals_.resize(m.signals);
  // Restore the recorded init/next of surviving states: a job may have
  // rewired a pre-existing register (e.g. instrumentation), not just
  // appended new ones.
  for (std::size_t i = 0; i < m.states; ++i) {
    if (states_[i].var != m.state_snapshot[i].var) {
      throw UsageError("rollback: mark belongs to a different system");
    }
    states_[i] = m.state_snapshot[i];
  }
}

void TransitionSystem::validate() const {
  for (const auto& s : states_) {
    if (s.next == nullptr) {
      throw UsageError("state '" + s.var->name() + "' has no next-state function");
    }
  }
}

}  // namespace genfv::ir
