#pragma once

/// \file clone.hpp
/// Deep copies of transition systems across NodeManagers.
///
/// `NodeManager` is not thread-safe: every `mk_*` call may mutate the
/// hash-cons table, and *any* engine run creates nodes (property
/// conjunction, PDR clause export, SVA compilation). Engines that must run
/// concurrently therefore each need a private copy of the system in a
/// private manager — that is what `SystemClone` provides, together with the
/// leaf maps needed to translate expressions into the clone (properties,
/// lemmas) and results back out of it (counterexample traces, invariant
/// clauses).

#include <unordered_map>

#include "ir/transition_system.hpp"

namespace genfv::ir {

/// Rebuild `root` inside `nm`, rewriting leaves through `map` and extending
/// `map` with every node translated along the way. Const leaves are rebuilt
/// directly; Input/State leaves must already be mapped (they are nominal —
/// re-creating them would produce fresh, unrelated variables). Throws
/// UsageError on an unmapped nominal leaf.
NodeRef translate(NodeRef root, NodeManager& nm,
                  std::unordered_map<NodeRef, NodeRef>& map);

/// The nominal-leaf correspondence between two structural copies of the same
/// system, keyed by declaration index: `from.inputs()[i] -> to.inputs()[i]`,
/// same for states. This is what makes clone-to-clone translation possible
/// without going through the original system (whose manager may belong to a
/// different thread). Throws UsageError when the declaration lists disagree
/// in length, or when a corresponding pair differs in width.
std::unordered_map<NodeRef, NodeRef> leaf_correspondence(const TransitionSystem& from,
                                                         const TransitionSystem& to);

/// Rebuild `root` (an expression over `from`) inside `to`, mapping nominal
/// leaves by declaration index. `from` and `to` must be structural copies of
/// one system (e.g. two `SystemClone`s of the same original) — the
/// cross-clone translate path. Creates nodes only in `to`'s manager, so it
/// must run on the thread that owns `to`; `from` is only read.
NodeRef translate_between(NodeRef root, const TransitionSystem& from,
                          TransitionSystem& to);

/// A deep copy of a `TransitionSystem` in a fresh `NodeManager`, preserving
/// input/state/constraint/property/signal declaration order (so index-based
/// correspondences hold in both directions).
///
/// Thread-safety contract: `to_clone` mutates the clone's manager and
/// `to_original` mutates the *original's* manager, so both must be called
/// from the thread that owns the respective manager — in practice: build the
/// clone and translate all inputs before handing `system()` to a worker
/// thread, and translate results back only after the worker has been
/// joined. The original system must outlive the clone (the reverse map
/// holds references into it).
class SystemClone {
 public:
  explicit SystemClone(const TransitionSystem& original);

  TransitionSystem& system() noexcept { return clone_; }
  const TransitionSystem& system() const noexcept { return clone_; }

  /// Translate an expression over the original system into the clone.
  NodeRef to_clone(NodeRef expr);
  /// Translate an expression over the clone back into the original system.
  NodeRef to_original(NodeRef expr);

 private:
  std::shared_ptr<NodeManager> original_nm_;  ///< keeps the original alive
  TransitionSystem clone_;
  std::unordered_map<NodeRef, NodeRef> fwd_;  ///< original node -> clone node
  std::unordered_map<NodeRef, NodeRef> bwd_;  ///< clone node -> original node
};

}  // namespace genfv::ir
