#pragma once

/// \file struct_hash.hpp
/// Structural hashing and diffing of transition systems — the proof-cache
/// key (docs/serve.md).
///
/// The hash is *semantic-structural*: it depends only on the shape of the
/// node DAG and the declaration indices of nominal leaves, never on node
/// ids, creation order, leaf names, or which `NodeManager` owns the nodes.
/// Consequences, all pinned by tests:
///  * alpha-equivalent systems (same structure, different signal names)
///    collide — renaming a register cannot invalidate a cached proof;
///  * a semantic edit (different constant, different operator, different
///    next-state function) changes the hash;
///  * the hash is stable across `ir::SystemClone` and across serialize /
///    deserialize round trips.
///
/// Commutative operators (`ir::is_commutative`) combine their children
/// order-insensitively, so the id-ordered operand normalization inside
/// `NodeManager` (which depends on creation order) cannot leak into the key.
///
/// `StructDiff` compares two systems — or a system against the stored
/// signature vector of a cache entry — state by state in declaration order.
/// Clause reuse is keyed on state declaration indices (mc/exchange.hpp), so
/// declaration order is exactly the correspondence that decides which cached
/// clauses still name the same bits.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/transition_system.hpp"

namespace genfv::ir {

/// Per-state identity: declaration width plus the structural hash of the
/// init/next expressions. Two states with equal signatures at the same
/// declaration index transition identically (up to alpha-equivalence).
struct StateSig {
  unsigned width = 0;
  std::uint64_t sig = 0;

  friend bool operator==(const StateSig&, const StateSig&) = default;
};

/// Memoizing structural hasher over one system. Cheap to construct; node
/// hashes are computed on demand and cached, so hashing a system and then
/// several properties over it shares the DAG walk.
class StructHasher {
 public:
  explicit StructHasher(const TransitionSystem& ts);

  /// Structural hash of one expression over the system. Nominal leaves hash
  /// by (role, declaration index, width); a leaf that is not declared in the
  /// system (e.g. an orphaned auxiliary variable) falls back to hashing its
  /// name, tagged so it can never collide with a declared leaf.
  std::uint64_t node_hash(NodeRef node);

  /// Hash of the whole system: inputs + states (declaration order), the
  /// constraint set (order-insensitive). Properties and named signals do not
  /// participate — the proof-cache key adds the property separately, and
  /// signals are observational only.
  std::uint64_t system_hash();

  /// `node_hash(property)` mixed with a domain-separation tag, so a property
  /// hash can never be confused with a system hash.
  std::uint64_t property_hash(NodeRef property);

  /// Signature of `ts.states()[i]`.
  StateSig state_signature(std::size_t i);
  /// All state signatures, declaration order.
  std::vector<StateSig> state_signatures();

 private:
  const TransitionSystem& ts_;
  std::unordered_map<NodeRef, std::uint64_t> memo_;
  std::unordered_map<NodeRef, std::uint64_t> leaf_hash_;
};

/// One-shot system hash (constructs a StructHasher internally).
std::uint64_t struct_hash(const TransitionSystem& ts);

/// State-by-state comparison of two systems (or one system against a stored
/// signature vector), by declaration index.
struct StructDiff {
  std::size_t states_a = 0;
  std::size_t states_b = 0;
  /// Indices present in both with equal width (clauses over these states
  /// still name existing bits).
  std::size_t compatible_states = 0;
  /// Compatible states whose full signature (width + init + next) matches.
  std::size_t matched_states = 0;
  bool inputs_equal = false;
  bool constraints_equal = false;

  /// Fraction of states that survived the edit unchanged, over the larger
  /// system: 1.0 = identical state space, 0.0 = nothing in common. The
  /// proof-cache near-miss threshold gates on this.
  double similarity() const noexcept {
    const std::size_t total = states_a > states_b ? states_a : states_b;
    if (total == 0) return inputs_equal && constraints_equal ? 1.0 : 0.0;
    return static_cast<double>(matched_states) / static_cast<double>(total);
  }
};

StructDiff struct_diff(const TransitionSystem& a, const TransitionSystem& b);

/// Diff against a stored signature vector (the proof-cache path: the old
/// system is gone, only its signatures were persisted). `inputs_equal` /
/// `constraints_equal` are reported as matching `b`'s own — the caller
/// compares the full system hash separately for exactness.
StructDiff struct_diff(const std::vector<StateSig>& a, const TransitionSystem& b);

}  // namespace genfv::ir
