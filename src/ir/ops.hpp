#pragma once

/// \file ops.hpp
/// Operator vocabulary of the word-level IR. The IR models synchronous RTL
/// after elaboration: pure bit-vector expressions over inputs and state
/// variables (registers). Bool is represented as BitVec(1).

#include <cstdint>
#include <string_view>

namespace genfv::ir {

enum class Op : std::uint8_t {
  // Leaves
  Const,   ///< literal value (value/width stored on the node)
  Input,   ///< free primary input, fresh every cycle
  State,   ///< register; value constrained by init/next in the system

  // Bitwise (operands and result share one width)
  Not,
  And,
  Or,
  Xor,

  // Arithmetic (modular, operands and result share one width)
  Neg,
  Add,
  Sub,
  Mul,
  Udiv,  ///< division by zero yields all-ones (SMT-LIB convention)
  Urem,  ///< remainder by zero yields the dividend

  // Shifts (shift amount is an arbitrary-width vector, interpreted unsigned)
  Shl,
  Lshr,
  Ashr,

  // Predicates (result width 1)
  Eq,
  Ult,
  Ule,
  Slt,
  Sle,

  // Structure
  Concat,   ///< {hi, lo}: first operand supplies the most-significant bits
  Extract,  ///< bits [hi:lo] (params on the node)
  ZExt,     ///< zero-extend to the node's width
  SExt,     ///< sign-extend to the node's width
  Ite,      ///< if-then-else; condition has width 1

  // Reductions (result width 1)
  RedAnd,
  RedOr,
  RedXor,

  // Boolean sugar over width-1 vectors
  Implies,
};

constexpr std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::Const: return "const";
    case Op::Input: return "input";
    case Op::State: return "state";
    case Op::Not: return "not";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Neg: return "neg";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Udiv: return "udiv";
    case Op::Urem: return "urem";
    case Op::Shl: return "shl";
    case Op::Lshr: return "lshr";
    case Op::Ashr: return "ashr";
    case Op::Eq: return "eq";
    case Op::Ult: return "ult";
    case Op::Ule: return "ule";
    case Op::Slt: return "slt";
    case Op::Sle: return "sle";
    case Op::Concat: return "concat";
    case Op::Extract: return "extract";
    case Op::ZExt: return "zext";
    case Op::SExt: return "sext";
    case Op::Ite: return "ite";
    case Op::RedAnd: return "redand";
    case Op::RedOr: return "redor";
    case Op::RedXor: return "redxor";
    case Op::Implies: return "implies";
  }
  return "?";
}

constexpr bool is_leaf(Op op) noexcept {
  return op == Op::Const || op == Op::Input || op == Op::State;
}

constexpr bool is_commutative(Op op) noexcept {
  switch (op) {
    case Op::And:
    case Op::Or:
    case Op::Xor:
    case Op::Add:
    case Op::Mul:
    case Op::Eq:
      return true;
    default:
      return false;
  }
}

constexpr bool is_predicate(Op op) noexcept {
  switch (op) {
    case Op::Eq:
    case Op::Ult:
    case Op::Ule:
    case Op::Slt:
    case Op::Sle:
    case Op::RedAnd:
    case Op::RedOr:
    case Op::RedXor:
      return true;
    default:
      return false;
  }
}

}  // namespace genfv::ir
