#include "ir/struct_hash.hpp"

#include <string_view>

namespace genfv::ir {
namespace {

// 64-bit mixing (splitmix64 finalizer). Every hash in this file funnels
// through mix2/mix3 so a single-bit difference anywhere avalanches.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) noexcept {
  return mix(a ^ mix(b));
}

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  return mix2(mix2(a, b), c);
}

std::uint64_t hash_string(std::string_view s) noexcept {
  // FNV-1a, then mixed: only the orphan-leaf fallback path uses names.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix(h);
}

// Domain-separation tags: every category of hashed object starts from a
// distinct constant so e.g. a property hash can never equal a system hash.
constexpr std::uint64_t kTagInput = 0xA11CE5ULL;
constexpr std::uint64_t kTagState = 0x57A7E5ULL;
constexpr std::uint64_t kTagOrphan = 0x0FA70ULL;
constexpr std::uint64_t kTagConst = 0xC0457ULL;
constexpr std::uint64_t kTagNoInit = 0x401417ULL;
constexpr std::uint64_t kTagSystem = 0x5E5ULL;
constexpr std::uint64_t kTagProperty = 0x9209ULL;

}  // namespace

StructHasher::StructHasher(const TransitionSystem& ts) : ts_(ts) {
  // Pre-hash the nominal leaves by declaration index so alpha-equivalent
  // systems (same structure, different names) produce identical hashes.
  const auto& inputs = ts.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    leaf_hash_[inputs[i]] = mix3(kTagInput, i, inputs[i]->width());
  }
  const auto& states = ts.states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    leaf_hash_[states[i].var] = mix3(kTagState, i, states[i].var->width());
  }
}

std::uint64_t StructHasher::node_hash(NodeRef node) {
  const auto memo_it = memo_.find(node);
  if (memo_it != memo_.end()) return memo_it->second;

  std::uint64_t h = 0;
  switch (node->op()) {
    case Op::Const:
      h = mix3(kTagConst, node->value(), node->width());
      break;
    case Op::Input:
    case Op::State: {
      const auto leaf_it = leaf_hash_.find(node);
      if (leaf_it != leaf_hash_.end()) {
        h = leaf_it->second;
      } else {
        // Undeclared leaf (e.g. LemmaManager auxiliary before registration):
        // the name is the only identity it has. Tagged so it cannot collide
        // with any declared leaf.
        h = mix3(kTagOrphan, hash_string(node->name()), node->width());
        h = mix2(h, static_cast<std::uint64_t>(node->op()));
      }
      break;
    }
    default: {
      h = mix3(static_cast<std::uint64_t>(node->op()), node->width(),
               mix2(node->hi(), node->lo()));
      if (is_commutative(node->op())) {
        // Combine children order-insensitively: the manager sorts commutative
        // operands by node *id*, which depends on creation order and would
        // otherwise leak into the key.
        std::uint64_t bag = 0;
        for (const NodeRef child : node->children()) bag += mix(node_hash(child));
        h = mix2(h, bag);
      } else {
        for (const NodeRef child : node->children()) h = mix2(h, node_hash(child));
      }
      break;
    }
  }
  memo_.emplace(node, h);
  return h;
}

StateSig StructHasher::state_signature(std::size_t i) {
  const StateVar& sv = ts_.states().at(i);
  const std::uint64_t init = sv.init ? node_hash(sv.init) : kTagNoInit;
  const std::uint64_t next = sv.next ? node_hash(sv.next) : kTagNoInit;
  return StateSig{sv.var->width(), mix3(sv.var->width(), init, next)};
}

std::vector<StateSig> StructHasher::state_signatures() {
  std::vector<StateSig> sigs;
  sigs.reserve(ts_.states().size());
  for (std::size_t i = 0; i < ts_.states().size(); ++i) {
    sigs.push_back(state_signature(i));
  }
  return sigs;
}

std::uint64_t StructHasher::system_hash() {
  std::uint64_t h = kTagSystem;
  const auto& inputs = ts_.inputs();
  h = mix2(h, inputs.size());
  for (const NodeRef input : inputs) h = mix2(h, input->width());
  const auto& states = ts_.states();
  h = mix2(h, states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    h = mix2(h, state_signature(i).sig);
  }
  // Constraints as an order-insensitive set: reordering assumptions is not a
  // semantic edit.
  std::uint64_t bag = 0;
  for (const NodeRef c : ts_.constraints()) bag += mix(node_hash(c));
  return mix3(h, ts_.constraints().size(), bag);
}

std::uint64_t StructHasher::property_hash(NodeRef property) {
  return mix2(kTagProperty, node_hash(property));
}

std::uint64_t struct_hash(const TransitionSystem& ts) {
  return StructHasher(ts).system_hash();
}

namespace {

StructDiff diff_against_sigs(const std::vector<StateSig>& a,
                             StructHasher& hb, const TransitionSystem& b) {
  StructDiff d;
  d.states_a = a.size();
  d.states_b = b.states().size();
  const std::size_t common = d.states_a < d.states_b ? d.states_a : d.states_b;
  for (std::size_t i = 0; i < common; ++i) {
    const StateSig sb = hb.state_signature(i);
    if (a[i].width != sb.width) continue;
    ++d.compatible_states;
    if (a[i].sig == sb.sig) ++d.matched_states;
  }
  return d;
}

}  // namespace

StructDiff struct_diff(const TransitionSystem& a, const TransitionSystem& b) {
  StructHasher ha(a);
  StructHasher hb(b);
  StructDiff d = diff_against_sigs(ha.state_signatures(), hb, b);

  const auto& ia = a.inputs();
  const auto& ib = b.inputs();
  d.inputs_equal = ia.size() == ib.size();
  if (d.inputs_equal) {
    for (std::size_t i = 0; i < ia.size(); ++i) {
      if (ia[i]->width() != ib[i]->width()) { d.inputs_equal = false; break; }
    }
  }

  const auto& ca = a.constraints();
  const auto& cb = b.constraints();
  d.constraints_equal = ca.size() == cb.size();
  if (d.constraints_equal) {
    std::uint64_t bag_a = 0;
    std::uint64_t bag_b = 0;
    for (const NodeRef c : ca) bag_a += mix(ha.node_hash(c));
    for (const NodeRef c : cb) bag_b += mix(hb.node_hash(c));
    d.constraints_equal = bag_a == bag_b;
  }
  return d;
}

StructDiff struct_diff(const std::vector<StateSig>& a, const TransitionSystem& b) {
  StructHasher hb(b);
  StructDiff d = diff_against_sigs(a, hb, b);
  d.inputs_equal = true;
  d.constraints_equal = true;
  return d;
}

}  // namespace genfv::ir
