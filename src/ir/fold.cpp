/// \file fold.cpp
/// Bit-precise operator evaluation (`eval_op`, shared with the simulator)
/// plus constant folding and algebraic simplification applied at node
/// construction time.

#include <bit>

#include "ir/node_manager.hpp"
#include "util/status.hpp"

namespace genfv::ir {

namespace {

std::int64_t to_signed(std::uint64_t v, unsigned width) {
  if (width == 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign_bit = 1ULL << (width - 1);
  if (v & sign_bit) return static_cast<std::int64_t>(v | ~width_mask(width));
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::uint64_t eval_op(Op op, unsigned width, unsigned p0, unsigned p1,
                      const std::vector<std::uint64_t>& v,
                      const std::vector<unsigned>& w) {
  const std::uint64_t mask = width_mask(width);
  switch (op) {
    case Op::Const:
    case Op::Input:
    case Op::State:
      throw UsageError("eval_op called on a leaf");

    case Op::Not: return ~v[0] & mask;
    case Op::And: return v[0] & v[1];
    case Op::Or: return v[0] | v[1];
    case Op::Xor: return v[0] ^ v[1];

    case Op::Neg: return (~v[0] + 1) & mask;
    case Op::Add: return (v[0] + v[1]) & mask;
    case Op::Sub: return (v[0] - v[1]) & mask;
    case Op::Mul: return (v[0] * v[1]) & mask;
    case Op::Udiv: return v[1] == 0 ? mask : (v[0] / v[1]);
    case Op::Urem: return v[1] == 0 ? v[0] : (v[0] % v[1]);

    case Op::Shl: return v[1] >= width ? 0 : (v[0] << v[1]) & mask;
    case Op::Lshr: return v[1] >= width ? 0 : v[0] >> v[1];
    case Op::Ashr: {
      const unsigned opw = w[0];
      const bool sign = (v[0] >> (opw - 1)) & 1ULL;
      if (v[1] >= opw) return sign ? width_mask(opw) : 0;
      std::uint64_t shifted = v[0] >> v[1];
      if (sign) shifted |= width_mask(opw) & ~(width_mask(opw) >> v[1]);
      return shifted & width_mask(opw);
    }

    case Op::Eq: return v[0] == v[1] ? 1 : 0;
    case Op::Ult: return v[0] < v[1] ? 1 : 0;
    case Op::Ule: return v[0] <= v[1] ? 1 : 0;
    case Op::Slt: return to_signed(v[0], w[0]) < to_signed(v[1], w[1]) ? 1 : 0;
    case Op::Sle: return to_signed(v[0], w[0]) <= to_signed(v[1], w[1]) ? 1 : 0;

    case Op::Concat: return ((v[0] << w[1]) | v[1]) & mask;
    case Op::Extract: return (v[0] >> p1) & width_mask(p0 - p1 + 1);
    case Op::ZExt: return v[0];
    case Op::SExt: {
      const unsigned opw = w[0];
      const bool sign = (v[0] >> (opw - 1)) & 1ULL;
      return sign ? (v[0] | (mask & ~width_mask(opw))) : v[0];
    }
    case Op::Ite: return v[0] != 0 ? v[1] : v[2];

    case Op::RedAnd: return v[0] == width_mask(w[0]) ? 1 : 0;
    case Op::RedOr: return v[0] != 0 ? 1 : 0;
    case Op::RedXor: return static_cast<std::uint64_t>(std::popcount(v[0]) & 1);

    case Op::Implies: return (v[0] == 0 || v[1] != 0) ? 1 : 0;
  }
  throw UsageError("eval_op: unhandled operator");
}

std::optional<NodeRef> fold(NodeManager& nm, Op op, const std::vector<NodeRef>& c,
                            unsigned width, unsigned p0, unsigned p1) {
  // 1. Full constant folding when every operand is constant.
  bool all_const = !c.empty();
  for (const NodeRef n : c) {
    if (!n->is_const()) {
      all_const = false;
      break;
    }
  }
  if (all_const) {
    std::vector<std::uint64_t> vals;
    std::vector<unsigned> widths;
    vals.reserve(c.size());
    widths.reserve(c.size());
    for (const NodeRef n : c) {
      vals.push_back(n->value());
      widths.push_back(n->width());
    }
    return nm.mk_const(eval_op(op, width, p0, p1, vals, widths), width);
  }

  // 2. Algebraic rules on partially-constant or structurally special forms.
  switch (op) {
    case Op::Not:
      if (c[0]->op() == Op::Not) return c[0]->child(0);  // ~~x = x
      break;

    case Op::And:
      if (c[0] == c[1]) return c[0];
      if (c[0]->is_zero() || c[1]->is_zero()) return nm.mk_const(0, width);
      if (c[0]->is_ones()) return c[1];
      if (c[1]->is_ones()) return c[0];
      break;

    case Op::Or:
      if (c[0] == c[1]) return c[0];
      if (c[0]->is_ones() || c[1]->is_ones()) return nm.mk_ones(width);
      if (c[0]->is_zero()) return c[1];
      if (c[1]->is_zero()) return c[0];
      break;

    case Op::Xor:
      if (c[0] == c[1]) return nm.mk_const(0, width);
      if (c[0]->is_zero()) return c[1];
      if (c[1]->is_zero()) return c[0];
      if (c[0]->is_ones()) return nm.mk_not(c[1]);
      if (c[1]->is_ones()) return nm.mk_not(c[0]);
      break;

    case Op::Add:
      if (c[0]->is_zero()) return c[1];
      if (c[1]->is_zero()) return c[0];
      break;

    case Op::Sub:
      if (c[1]->is_zero()) return c[0];
      if (c[0] == c[1]) return nm.mk_const(0, width);
      break;

    case Op::Mul:
      if (c[0]->is_zero() || c[1]->is_zero()) return nm.mk_const(0, width);
      if (c[0]->is_const() && c[0]->value() == 1) return c[1];
      if (c[1]->is_const() && c[1]->value() == 1) return c[0];
      break;

    case Op::Shl:
    case Op::Lshr:
    case Op::Ashr:
      if (c[1]->is_zero()) return c[0];
      if (c[0]->is_zero()) return nm.mk_const(0, width);
      break;

    case Op::Eq:
      if (c[0] == c[1]) return nm.mk_true();
      // Boolean equality against constants reduces to the operand / negation.
      if (c[0]->width() == 1) {
        if (c[0]->is_const()) {
          if (c[0]->value() != 0) return c[1];
          return nm.mk_not(c[1]);
        }
        if (c[1]->is_const()) {
          if (c[1]->value() != 0) return c[0];
          return nm.mk_not(c[0]);
        }
      }
      break;

    case Op::Ult:
      if (c[0] == c[1]) return nm.mk_false();
      if (c[1]->is_zero()) return nm.mk_false();  // x < 0 is false (unsigned)
      break;

    case Op::Ule:
      if (c[0] == c[1]) return nm.mk_true();
      if (c[0]->is_zero()) return nm.mk_true();  // 0 <= x
      if (c[1]->is_ones()) return nm.mk_true();  // x <= max
      break;

    case Op::Slt:
      if (c[0] == c[1]) return nm.mk_false();
      break;

    case Op::Sle:
      if (c[0] == c[1]) return nm.mk_true();
      break;

    case Op::Ite:
      if (c[0]->is_const()) return c[0]->value() != 0 ? c[1] : c[2];
      if (c[1] == c[2]) return c[1];
      // ite(c, 1, 0) == c for booleans
      if (width == 1 && c[1]->is_ones() && c[2]->is_zero()) return c[0];
      if (width == 1 && c[1]->is_zero() && c[2]->is_ones()) return nm.mk_not(c[0]);
      break;

    case Op::RedAnd:
      if (c[0]->width() == 1) return c[0];
      break;
    case Op::RedOr:
      if (c[0]->width() == 1) return c[0];
      break;
    case Op::RedXor:
      if (c[0]->width() == 1) return c[0];
      break;

    case Op::Implies:
      if (c[0]->is_zero()) return nm.mk_true();
      if (c[0]->is_ones()) return c[1];
      if (c[1]->is_ones()) return nm.mk_true();
      if (c[1]->is_zero()) return nm.mk_not(c[0]);
      if (c[0] == c[1]) return nm.mk_true();
      break;

    case Op::Extract:
      // extract(extract(x, h2, l2), h1, l1) = extract(x, l2+h1, l2+l1)
      if (c[0]->op() == Op::Extract) {
        return nm.mk_extract(c[0]->child(0), c[0]->lo() + p0, c[0]->lo() + p1);
      }
      break;

    default:
      break;
  }
  return std::nullopt;
}

}  // namespace genfv::ir
