#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace genfv::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Silent: break;
  }
  return "     ";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s][%s] %s\n", level_tag(level), component.c_str(), message.c_str());
}

}  // namespace genfv::util
