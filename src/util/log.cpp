#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/telemetry.hpp"
#include "util/thread_safety.hpp"

namespace genfv::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

// Serializes emission so concurrent portfolio/PDR workers never interleave
// partial lines on stderr.
Mutex& emit_mutex() {
  static Mutex* mu = new Mutex("log.emit");  // immortal
  return *mu;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Silent: break;
  }
  return "     ";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  // Timestamps share the telemetry epoch, and the thread id is the trace
  // tid, so a log line correlates directly with spans in a trace file.
  const double seconds = static_cast<double>(telemetry_now_ns()) / 1e9;
  const int tid = telemetry_thread_id();
  MutexLock lock(emit_mutex());
  std::fprintf(stderr, "[%10.3f][T%02d][%s][%s] %s\n", seconds, tid, level_tag(level),
               component.c_str(), message.c_str());
}

}  // namespace genfv::util
