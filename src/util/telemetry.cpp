#include "util/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <sstream>

#include "util/log.hpp"

namespace genfv::util {

namespace telemetry_detail {
std::atomic<int> g_level{static_cast<int>(TelemetryLevel::Off)};
}  // namespace telemetry_detail

void set_telemetry_level(TelemetryLevel level) noexcept {
  telemetry_detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

TelemetryLevel telemetry_level() noexcept {
  return static_cast<TelemetryLevel>(
      telemetry_detail::g_level.load(std::memory_order_relaxed));
}

std::uint64_t telemetry_now_ns() noexcept {
  // One epoch per process, captured on first use; shared with the logger so
  // log timestamps and trace timestamps line up.
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

int telemetry_thread_id() noexcept {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------------------
// Mutex bridge (declared in thread_safety.hpp, which cannot include us)
// ---------------------------------------------------------------------------

bool telemetry_on_for_mutex() noexcept { return telemetry_on(); }

std::uint64_t mutex_now_ns() noexcept { return telemetry_now_ns(); }

void mutex_contention_record(const char* name, std::uint64_t wait_ns) noexcept {
  // Lock-free name -> counters cache so a named Mutex's hot path never takes
  // the registry lock after first use. Slots are claimed by CAS; racers for
  // the same name converge on the same Counter objects because the registry
  // dedupes by name string. Deliberately mutex-free: this runs *inside*
  // Mutex::lock(), so taking any instrumented lock here would nest under
  // every named mutex in the process.
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<Counter*> wait{nullptr};
    std::atomic<Counter*> locks{nullptr};
  };
  static constexpr std::size_t kSlots = 32;
  static Slot slots[kSlots];
  for (std::size_t i = 0; i < kSlots; ++i) {
    Slot& s = slots[i];
    const char* cur = s.name.load(std::memory_order_acquire);
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (s.name.compare_exchange_strong(expected, name, std::memory_order_acq_rel)) {
        cur = name;
      } else {
        cur = expected;  // another thread claimed this slot first
      }
    }
    if (cur == name || std::strcmp(cur, name) == 0) {
      Counter* w = s.wait.load(std::memory_order_acquire);
      Counter* l = s.locks.load(std::memory_order_acquire);
      if (w == nullptr || l == nullptr) {
        w = &metrics().counter(std::string(name) + "_mutex_wait_ns");
        l = &metrics().counter(std::string(name) + "_mutex_locks");
        s.wait.store(w, std::memory_order_release);
        s.locks.store(l, std::memory_order_release);
      }
      w->add(wait_ns);
      l->increment();
      return;
    }
  }
  // More than kSlots distinct named mutex classes: fall back to the registry.
  metrics().counter(std::string(name) + "_mutex_wait_ns").add(wait_ns);
  metrics().counter(std::string(name) + "_mutex_locks").increment();
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

namespace {

struct TraceEvent {
  const char* category;
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  bool instant;
};

/// Per-thread single-producer event log, grown lazily in fixed chunks so a
/// short-lived thread (PDR spawns shard workers per strengthen phase) costs
/// one chunk, not a full preallocated ring. Only the owning thread appends:
/// it publishes a new chunk with a release store of its pointer and each
/// event with a release store of the count; readers acquire the count and
/// see every event below it — and its chunk — fully written. Past the total
/// capacity, events are dropped (and counted) rather than blocking the hot
/// path.
class ThreadTraceBuffer {
 public:
  static constexpr std::size_t kChunkSize = 1 << 10;  // events per 40 KB chunk
  static constexpr std::size_t kMaxChunks = 1 << 10;  // ~1M events / 40 MB cap

  explicit ThreadTraceBuffer(int thread_id) : thread_id_(thread_id) {}
  ~ThreadTraceBuffer() {
    for (auto& slot : chunks_) delete slot.load(std::memory_order_relaxed);
  }

  void append(const char* category, const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns, bool instant) noexcept {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= kChunkSize * kMaxChunks) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::atomic<Chunk*>& slot = chunks_[n / kChunkSize];
    Chunk* chunk = slot.load(std::memory_order_relaxed);  // only we store it
    if (chunk == nullptr) {
      chunk = new (std::nothrow) Chunk();
      if (chunk == nullptr) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      slot.store(chunk, std::memory_order_release);
    }
    chunk->events[n % kChunkSize] = TraceEvent{category, name, start_ns, dur_ns, instant};
    count_.store(n + 1, std::memory_order_release);
  }

  void snapshot_into(std::vector<TraceEventView>& out) const {
    const std::size_t n = count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Chunk* chunk = chunks_[i / kChunkSize].load(std::memory_order_acquire);
      const TraceEvent& e = chunk->events[i % kChunkSize];
      out.push_back(TraceEventView{e.category, e.name, thread_id_, e.start_ns, e.dur_ns,
                                   e.instant});
    }
  }

  std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }
  int thread_id() const noexcept { return thread_id_; }

  /// Tests only; caller must be quiescent. Chunks stay allocated for reuse.
  void clear() noexcept {
    count_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    TraceEvent events[kChunkSize];
  };

  int thread_id_;
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Global list of per-thread buffers plus thread names. Buffers are
/// registered lazily on a thread's first recorded event and are kept alive
/// past thread exit so late export still sees their events.
struct TraceRegistry {
  Mutex mu{"telemetry.trace"};
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers GENFV_GUARDED_BY(mu);
  std::map<int, std::string> thread_names GENFV_GUARDED_BY(mu);

  static TraceRegistry& get() {
    static TraceRegistry* r = new TraceRegistry();  // immortal
    return *r;
  }
};

ThreadTraceBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> buf = [] {
    auto b = std::make_shared<ThreadTraceBuffer>(telemetry_thread_id());
    TraceRegistry& reg = TraceRegistry::get();
    MutexLock lock(reg.mu);
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void set_trace_thread_name(const std::string& name) {
  TraceRegistry& reg = TraceRegistry::get();
  MutexLock lock(reg.mu);
  reg.thread_names[telemetry_thread_id()] = name;
}

void trace_record_span(const char* category, const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns) noexcept {
  local_buffer().append(category, name, start_ns, dur_ns, /*instant=*/false);
}

void trace_record_instant(const char* category, const char* name) noexcept {
  local_buffer().append(category, name, telemetry_now_ns(), 0, /*instant=*/true);
}

std::vector<TraceEventView> trace_snapshot() {
  TraceRegistry& reg = TraceRegistry::get();
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    MutexLock lock(reg.mu);
    buffers = reg.buffers;
  }
  std::stable_sort(buffers.begin(), buffers.end(),
                   [](const auto& a, const auto& b) { return a->thread_id() < b->thread_id(); });
  std::vector<TraceEventView> out;
  for (const auto& b : buffers) b->snapshot_into(out);
  return out;
}

std::size_t trace_registered_threads() {
  TraceRegistry& reg = TraceRegistry::get();
  MutexLock lock(reg.mu);
  return reg.buffers.size();
}

std::uint64_t trace_dropped_events() {
  TraceRegistry& reg = TraceRegistry::get();
  MutexLock lock(reg.mu);
  std::uint64_t total = 0;
  for (const auto& b : reg.buffers) total += b->dropped();
  return total;
}

std::string trace_to_json() {
  const std::vector<TraceEventView> events = trace_snapshot();
  std::map<int, std::string> names;
  {
    TraceRegistry& reg = TraceRegistry::get();
    MutexLock lock(reg.mu);
    names = reg.thread_names;
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"genfv\"}}";
  first = false;
  for (const auto& [tid, name] : names) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& e : events) {
    if (!first) os << ",";
    first = false;
    // Chrome trace timestamps are microseconds; keep ns precision with
    // fractional µs.
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                  static_cast<unsigned long long>(e.start_ns / 1000),
                  static_cast<unsigned long long>(e.start_ns % 1000));
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category << "\",\"pid\":1,\"tid\":"
       << e.thread << ",\"ts\":" << ts;
    if (e.instant) {
      os << ",\"ph\":\"i\",\"s\":\"t\"}";
    } else {
      char dur[64];
      std::snprintf(dur, sizeof(dur), "%llu.%03llu",
                    static_cast<unsigned long long>(e.dur_ns / 1000),
                    static_cast<unsigned long long>(e.dur_ns % 1000));
      os << ",\"ph\":\"X\",\"dur\":" << dur << "}";
    }
  }
  os << "],\"otherData\":{\"droppedEvents\":" << trace_dropped_events() << "}}";
  return os.str();
}

bool write_trace_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_line(LogLevel::Warn, "telemetry", "cannot open trace output: " + path);
    return false;
  }
  const std::string json = trace_to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) log_line(LogLevel::Warn, "telemetry", "short write on trace output: " + path);
  return ok;
}

void trace_reset() {
  TraceRegistry& reg = TraceRegistry::get();
  MutexLock lock(reg.mu);
  for (auto& b : reg.buffers) b->clear();
  reg.thread_names.clear();
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

Histogram::Histogram(std::uint64_t first_bound, std::size_t buckets)
    : first_bound_(first_bound == 0 ? 1 : first_bound),
      buckets_(buckets < 2 ? 2 : buckets) {}

void Histogram::observe(std::uint64_t value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value && !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  std::uint64_t bound = first_bound_;
  std::size_t i = 0;
  const std::size_t last = buckets_.size() - 1;
  while (i < last && value > bound) {
    ++i;
    bound <<= 1;
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_bound(std::size_t i) const noexcept {
  if (i + 1 >= buckets_.size()) return ~std::uint64_t{0};
  return first_bound_ << i;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry();  // immortal
  return *r;
}

MetricsRegistry& metrics() { return MetricsRegistry::global(); }

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::uint64_t first_bound,
                                      std::size_t buckets) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(first_bound, buckets);
  return *slot;
}

std::map<std::string, std::int64_t> MetricsRegistry::snapshot_values() const {
  MutexLock lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = static_cast<std::int64_t>(c->value());
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = static_cast<std::int64_t>(h->count());
    out[name + ".sum"] = static_cast<std::int64_t>(h->sum());
    out[name + ".max"] = static_cast<std::int64_t>(h->max_seen());
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"max\":" << h->max_seen() << ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      const std::uint64_t n = h->bucket_value(i);
      if (n == 0) continue;  // keep the snapshot small: omit empty buckets
      if (!bfirst) os << ",";
      bfirst = false;
      if (i + 1 < h->bucket_count()) {
        os << "[" << h->bucket_bound(i) << "," << n << "]";
      } else {
        os << "[null," << n << "]";
      }
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

bool write_metrics_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_line(LogLevel::Warn, "telemetry", "cannot open metrics output: " + path);
    return false;
  }
  const std::string json = metrics().to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) log_line(LogLevel::Warn, "telemetry", "short write on metrics output: " + path);
  return ok;
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

Heartbeat::Heartbeat(double interval_seconds, StatusFn status) : status_(std::move(status)) {
  thread_ = std::thread([this, interval_seconds] { run(interval_seconds); });
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() {
  {
    MutexLock lock(mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Heartbeat::run(double interval_seconds) {
  set_trace_thread_name("heartbeat");
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(interval_seconds < 0.001 ? 0.001 : interval_seconds));
  // Explicit wait loop (not the predicate-lambda overload): clang's
  // thread-safety analysis cannot see into a predicate lambda, but it checks
  // the guarded stop_ reads here directly.
  MutexLock lock(mu_);
  for (;;) {
    if (stop_) break;
    if (cv_.wait_for(mu_, interval)) {
      // Notified (stop()) or spurious wakeup — re-check stop_ before another
      // full interval; a rare spurious wakeup merely delays one beat.
      continue;
    }
    if (stop_) break;
    lock.Unlock();
    std::string line;
    if (status_) line = status_();
    if (!line.empty()) log_line(LogLevel::Info, "progress", line);
    lock.Lock();
  }
}

std::string ProgressStatus::operator()() {
  auto& reg = metrics();
  const std::uint64_t now_ns = telemetry_now_ns();
  const std::uint64_t conflicts = reg.counter("sat.conflicts").value();
  const std::uint64_t sat_calls = reg.counter("sat.solves").value();
  const std::int64_t frontier = reg.gauge("pdr.frontier").value();
  const std::int64_t queued = reg.gauge("pdr.obligations_queued").value();
  const double dt = last_ns_ == 0 ? 0.0 : static_cast<double>(now_ns - last_ns_) / 1e9;
  const double conflicts_per_s =
      dt > 0.0 ? static_cast<double>(conflicts - last_conflicts_) / dt : 0.0;
  const double solves_per_s =
      dt > 0.0 ? static_cast<double>(sat_calls - last_sat_calls_) / dt : 0.0;
  last_conflicts_ = conflicts;
  last_sat_calls_ = sat_calls;
  last_ns_ = now_ns;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "frame=%lld queue=%lld sat_calls=%llu conflicts=%llu (%.0f solves/s, %.0f "
                "conflicts/s)",
                static_cast<long long>(frontier), static_cast<long long>(queued),
                static_cast<unsigned long long>(sat_calls),
                static_cast<unsigned long long>(conflicts), solves_per_s, conflicts_per_s);
  return buf;
}

}  // namespace genfv::util
