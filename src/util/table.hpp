#pragma once

/// \file table.hpp
/// Aligned plain-text tables for bench output and flow reports. Bench
/// binaries print the same rows the paper's evaluation narrates, so the
/// formatting lives in one place.

#include <string>
#include <vector>

namespace genfv::util {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats every argument with to_string-ish rules.
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with box-drawing separators.
  std::string to_string() const;

  /// Render as CSV (no quoting of separators; callers keep cells simple).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by bench harnesses.
std::string fmt_double(double v, int precision = 2);
std::string fmt_ratio(double numerator, double denominator);

}  // namespace genfv::util
