#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace genfv::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) noexcept {
  return text.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string hex_literal(std::uint64_t value, unsigned width) {
  const std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u'h%llx", width,
                static_cast<unsigned long long>(value & mask));
  return buf;
}

std::string bin_string(std::uint64_t value, unsigned width) {
  std::string out(width, '0');
  for (unsigned i = 0; i < width; ++i) {
    if ((value >> (width - 1 - i)) & 1ULL) out[i] = '1';
  }
  return out;
}

std::string format_duration(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::istringstream in{std::string(text)};
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) out += '\n';
    first = false;
    out += pad + line;
  }
  return out;
}

}  // namespace genfv::util
