#include "util/lock_order.hpp"

#include "util/thread_safety.hpp"

#if defined(GENFV_LOCK_ORDER)

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "util/log.hpp"

namespace genfv::util::lockdep {

namespace {

// All global lockdep state lives behind one raw std::mutex. It is deliberately
// NOT a util::Mutex — instrumenting the instrumenter would recurse. Nothing is
// ever logged while g_mu is held (log_line takes an instrumented mutex, which
// would re-enter on_acquire and deadlock on g_mu); reports are built under the
// lock and emitted after release.
//
// Fast path: on_acquire only touches g_mu when the thread already holds some
// other lock (nested acquire). Leaf acquisitions — the overwhelming majority —
// only push onto the thread-local held stack.

struct Graph {
  std::mutex mu;
  // Lock classes keyed by *name content*, not literal address: a header-inline
  // `Mutex mu_{"pdr.framedb"}` materializes the literal in several TUs, and
  // all instances must share one node for cross-TU cycles to be visible.
  std::map<std::string, int> class_ids;
  std::vector<std::string> class_names;
  // edges[a] = classes acquired while holding a.
  std::vector<std::set<int>> edges;
  std::vector<std::string> cycles;
  std::vector<std::string> hazards;
  // Hazard dedup: one report per (region, held-class-set signature).
  std::set<std::string> hazard_keys;
};

Graph& graph() {
  static Graph* g = new Graph();  // immortal: threads may lock during exit
  return *g;
}

// Per-thread held stack. Trivially-destructible POD so late accesses during
// thread teardown (e.g. a logging mutex in a thread_local destructor) stay
// well-defined — there is no destructor to have run.
constexpr int kMaxHeld = 64;
struct HeldEntry {
  const void* mutex;
  const char* site;
};
struct HeldStack {
  HeldEntry entries[kMaxHeld];
  int n;
  int overflow;
};
thread_local HeldStack t_held;  // zero-initialized

int class_id_locked(Graph& g, const char* site) {
  auto [it, inserted] = g.class_ids.emplace(site, static_cast<int>(g.class_names.size()));
  if (inserted) {
    g.class_names.emplace_back(site);
    g.edges.emplace_back();
  }
  return it->second;
}

// Is `target` reachable from `from` in the edge graph? Iterative DFS; the
// graph has one node per lock *class* (a handful), so no visited-set reuse
// tricks are needed. Fills `path` with the class chain from -> ... -> target
// when found.
bool find_path_locked(const Graph& g, int from, int target, std::vector<int>& path) {
  std::vector<int> stack{from};
  std::vector<int> parent(g.class_names.size(), -1);
  std::vector<char> seen(g.class_names.size(), 0);
  seen[static_cast<std::size_t>(from)] = 1;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == target) {
      for (int v = target; v != -1; v = parent[static_cast<std::size_t>(v)]) {
        path.push_back(v);
      }
      std::reverse(path.begin(), path.end());
      return true;
    }
    for (const int next : g.edges[static_cast<std::size_t>(node)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = 1;
        parent[static_cast<std::size_t>(next)] = node;
        stack.push_back(next);
      }
    }
  }
  return false;
}

}  // namespace

void on_acquire(const void* mutex, const char* site) noexcept {
  HeldStack& held = t_held;
  std::vector<std::string> new_cycles;
  if (held.n > 0) {
    // Nested acquire: record edges held-class -> new-class, checking each new
    // edge for a cycle before inserting it.
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    const int to = class_id_locked(g, site);
    for (int i = 0; i < held.n; ++i) {
      const HeldEntry& h = held.entries[i];
      const int from = class_id_locked(g, h.site);
      if (from == to) {
        // Same class nested inside itself. For the same instance this is a
        // guaranteed self-deadlock; for two instances of one class it is an
        // ABBA waiting to happen unless an (undeclared) intra-class order
        // exists. genfv has no such pattern, so both are violations.
        std::string report = "lock-order cycle: ";
        report += g.class_names[static_cast<std::size_t>(to)];
        report += h.mutex == mutex ? " acquired recursively (self-deadlock)"
                                   : " nested within its own class";
        if (g.edges[static_cast<std::size_t>(to)].insert(to).second) {
          g.cycles.push_back(report);
          new_cycles.push_back(std::move(report));
        }
        continue;
      }
      if (g.edges[static_cast<std::size_t>(from)].count(to) != 0) continue;
      // New edge from -> to. If `from` is already reachable from `to`, the
      // combined graph has a cycle: to -> ... -> from -> to.
      std::vector<int> path;
      if (find_path_locked(g, to, from, path)) {
        std::string report = "lock-order cycle: ";
        for (const int cls : path) {
          report += g.class_names[static_cast<std::size_t>(cls)];
          report += " -> ";
        }
        report += g.class_names[static_cast<std::size_t>(to)];
        g.cycles.push_back(report);
        new_cycles.push_back(std::move(report));
      }
      g.edges[static_cast<std::size_t>(from)].insert(to);
    }
  }
  if (held.n < kMaxHeld) {
    held.entries[held.n] = HeldEntry{mutex, site};
    ++held.n;
  } else {
    ++held.overflow;
  }
  for (const std::string& report : new_cycles) {
    log_line(LogLevel::Error, "lockdep", report);
  }
}

void on_release(const void* mutex, const char* /*site*/) noexcept {
  HeldStack& held = t_held;
  // Locks are almost always released LIFO, but std::mutex permits any order;
  // scan from the top for the matching entry.
  for (int i = held.n - 1; i >= 0; --i) {
    if (held.entries[i].mutex == mutex) {
      for (int j = i; j + 1 < held.n; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.n;
      return;
    }
  }
  if (held.overflow > 0) --held.overflow;
}

void check_no_locks_held(const char* what) noexcept {
  HeldStack& held = t_held;
  if (held.n == 0 && held.overflow == 0) return;
  std::string held_names;
  for (int i = 0; i < held.n; ++i) {
    if (!held_names.empty()) held_names += ", ";
    held_names += held.entries[i].site;
  }
  std::string report = "lockdep hazard: ";
  report += what;
  report += " entered while holding: ";
  report += held_names;
  bool fresh = false;
  {
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    if (g.hazard_keys.insert(report).second) {
      g.hazards.push_back(report);
      fresh = true;
    }
  }
  if (fresh) log_line(LogLevel::Error, "lockdep", report);
}

bool enabled() noexcept { return true; }

std::size_t cycle_count() noexcept {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.cycles.size();
}

std::vector<std::string> cycle_reports() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.cycles;
}

std::size_t hazard_count() noexcept {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.hazards.size();
}

std::vector<std::string> hazard_reports() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.hazards;
}

std::size_t held_by_this_thread() noexcept {
  return static_cast<std::size_t>(t_held.n + t_held.overflow);
}

void reset() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.class_ids.clear();
  g.class_names.clear();
  g.edges.clear();
  g.cycles.clear();
  g.hazards.clear();
  g.hazard_keys.clear();
}

}  // namespace genfv::util::lockdep

#else  // !GENFV_LOCK_ORDER — zero/empty stubs so callers link in any config.

namespace genfv::util::lockdep {

bool enabled() noexcept { return false; }
std::size_t cycle_count() noexcept { return 0; }
std::vector<std::string> cycle_reports() { return {}; }
std::size_t hazard_count() noexcept { return 0; }
std::vector<std::string> hazard_reports() { return {}; }
void check_no_locks_held(const char*) noexcept {}
std::size_t held_by_this_thread() noexcept { return 0; }
void reset() {}

}  // namespace genfv::util::lockdep

#endif  // GENFV_LOCK_ORDER
