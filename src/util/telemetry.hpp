#pragma once

/// \file telemetry.hpp
/// Low-overhead, thread-safe tracing + metrics for the whole engine stack.
///
/// Three pieces:
///
///  1. **Trace spans/instants** — `GENFV_TRACE_SPAN("pdr", "block_one")`
///     records a begin/end pair into a per-thread lock-free buffer; the
///     buffers export as Chrome trace-format JSON (loadable in Perfetto or
///     chrome://tracing). The macro compiles to nothing when
///     `GENFV_DISABLE_TELEMETRY` is defined and costs a single relaxed
///     atomic load + branch when tracing is off at runtime.
///
///  2. **Metrics registry** — named counters, gauges, and histograms
///     (`sat.conflicts`, `pdr.obligations_queued`,
///     `pdr.framedb_mutex_wait_ns`, ...) snapshotted to JSON. Hot paths
///     cache a `Counter&` once and pay one relaxed atomic add per update;
///     updates are gated on `telemetry_on()` so a disabled build pays only
///     the branch.
///
///  3. **Progress heartbeat** — a background thread that periodically emits
///     a one-line live status (frame depth, queue depth, conflicts/s) at
///     Info level for long runs.
///
/// Runtime levels: Off (default, hot paths pay one branch), Metrics
/// (counters/gauges/histograms and *_ns timers active), Tracing (Metrics
/// plus span recording). Timestamps share one monotonic epoch with
/// `util/log.cpp`, so log lines correlate with trace spans.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace genfv::util {

// ---------------------------------------------------------------------------
// Runtime level
// ---------------------------------------------------------------------------

enum class TelemetryLevel : int { Off = 0, Metrics = 1, Tracing = 2 };

namespace telemetry_detail {
extern std::atomic<int> g_level;
}  // namespace telemetry_detail

void set_telemetry_level(TelemetryLevel level) noexcept;
TelemetryLevel telemetry_level() noexcept;

/// True when metrics (and possibly tracing) are active. This is the gate
/// hot paths check before touching counters or reading clocks.
inline bool telemetry_on() noexcept {
  return telemetry_detail::g_level.load(std::memory_order_relaxed) >=
         static_cast<int>(TelemetryLevel::Metrics);
}

/// True when span recording is active.
inline bool tracing_on() noexcept {
  return telemetry_detail::g_level.load(std::memory_order_relaxed) >=
         static_cast<int>(TelemetryLevel::Tracing);
}

/// Nanoseconds since the process-wide monotonic telemetry epoch. The same
/// epoch backs log-line timestamps, so logs and traces line up.
std::uint64_t telemetry_now_ns() noexcept;

/// Small dense id for the calling thread (0, 1, 2, ... in first-use order).
/// Assignment is allocation-free; used by both the logger prefix and trace
/// export so a log line's `T03` is the same lane as trace tid 3.
int telemetry_thread_id() noexcept;

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Name the calling thread for trace export (emitted as Chrome `M` thread
/// metadata). Safe to call at any time; last call wins.
void set_trace_thread_name(const std::string& name);

/// Record a completed span. `category`/`name` must be string literals (or
/// otherwise immortal): events store raw pointers to stay POD.
void trace_record_span(const char* category, const char* name, std::uint64_t start_ns,
                       std::uint64_t dur_ns) noexcept;

/// Record an instant event (vertical tick in Perfetto).
void trace_record_instant(const char* category, const char* name) noexcept;

/// RAII span. Captures the start time at construction when tracing is on;
/// the destructor records the event. When tracing is off both ends cost one
/// relaxed load + branch and touch no shared state.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) noexcept {
    if (tracing_on()) {
      category_ = category;
      name_ = name;
      start_ns_ = telemetry_now_ns();
    }
  }
  ~TraceSpan() {
    if (category_ != nullptr)
      trace_record_span(category_, name_, start_ns_, telemetry_now_ns() - start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// One recorded event, as seen by tests and the JSON exporter.
struct TraceEventView {
  const char* category;
  const char* name;
  int thread;               ///< telemetry_thread_id() of the recording thread
  std::uint64_t start_ns;   ///< offset from the telemetry epoch
  std::uint64_t dur_ns;     ///< 0 for instants
  bool instant;
};

/// Snapshot of every recorded event across all threads (stable order:
/// by thread id, then record order). Intended for tests and the exporter;
/// call while recording threads are quiescent for an exact picture.
std::vector<TraceEventView> trace_snapshot();

/// Number of threads that have registered a trace buffer. Stays 0 while
/// tracing has never been enabled — the disabled path allocates nothing.
std::size_t trace_registered_threads();

/// Number of events dropped because a per-thread buffer filled up.
std::uint64_t trace_dropped_events();

/// Export all recorded events as Chrome trace-format JSON
/// (`{"traceEvents": [...]}`), including thread-name metadata.
std::string trace_to_json();

/// Write `trace_to_json()` to `path`. Returns false (and logs a warning) on
/// I/O failure.
bool write_trace_json(const std::string& path);

/// Drop all recorded events and thread names (buffers stay registered).
/// Tests only; callers must be quiescent.
void trace_reset();

#if defined(GENFV_DISABLE_TELEMETRY)
#define GENFV_TRACE_SPAN(category, name)
#define GENFV_TRACE_INSTANT(category, name)
#else
#define GENFV_TELEMETRY_CONCAT2(a, b) a##b
#define GENFV_TELEMETRY_CONCAT(a, b) GENFV_TELEMETRY_CONCAT2(a, b)
#define GENFV_TRACE_SPAN(category, name) \
  ::genfv::util::TraceSpan GENFV_TELEMETRY_CONCAT(genfv_trace_span_, __LINE__)(category, name)
#define GENFV_TRACE_INSTANT(category, name) \
  do {                                      \
    if (::genfv::util::tracing_on())        \
      ::genfv::util::trace_record_instant(category, name); \
  } while (0)
#endif

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic counter. Callers cache the reference once (registry lookups
/// lock a mutex) and pay one relaxed atomic add per update.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed gauge (instantaneous quantity: queue depth, frontier level, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Exponential-bucket histogram. Bucket i covers values <=
/// `first_bound << i`; one extra overflow bucket catches the rest. All
/// updates are relaxed atomics; observe() is wait-free.
class Histogram {
 public:
  explicit Histogram(std::uint64_t first_bound = 1024, std::size_t buckets = 24);

  void observe(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max_seen() const noexcept { return max_.load(std::memory_order_relaxed); }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  /// Upper bound of bucket `i`; the last bucket is unbounded (returns ~0).
  std::uint64_t bucket_bound(std::size_t i) const noexcept;
  std::uint64_t bucket_value(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::uint64_t first_bound_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // last = overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-global registry of named metrics. Lookup locks a mutex and
/// returns a reference that stays valid for the process lifetime (reset()
/// zeroes values but never removes entries, so cached references survive).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::uint64_t first_bound = 1024,
                       std::size_t buckets = 24);

  /// Point-in-time copy of every counter/gauge value (histograms export
  /// count/sum/max under `<name>.count` etc.). Used for per-phase deltas in
  /// the shootout and by the heartbeat.
  std::map<std::string, std::int64_t> snapshot_values() const;

  /// Full JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, max, buckets: [[bound, n], ...]}}}.
  std::string to_json() const;

  /// Zero every metric (entries survive, references stay valid).
  void reset();

 private:
  MetricsRegistry() = default;
  // Deliberately unnamed: a named Mutex records contention through
  // mutex_contention_record(), which resolves counters through *this*
  // registry — naming mu_ would recurse into its own lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GENFV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GENFV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GENFV_GUARDED_BY(mu_);
};

/// Shorthand for MetricsRegistry::global().
MetricsRegistry& metrics();

/// Write `metrics().to_json()` to `path`. Returns false (and logs) on
/// failure.
bool write_metrics_json(const std::string& path);

/// RAII timer that adds elapsed nanoseconds to `counter` at scope exit.
/// Reads no clock when telemetry is off.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Counter& counter) noexcept {
    if (telemetry_on()) {
      counter_ = &counter;
      start_ns_ = telemetry_now_ns();
    }
  }
  ~ScopedTimerNs() {
    if (counter_ != nullptr) counter_->add(telemetry_now_ns() - start_ns_);
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Counter* counter_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

// ---------------------------------------------------------------------------
// Progress heartbeat
// ---------------------------------------------------------------------------

/// Background thread that invokes `status` every `interval_seconds` and
/// logs any non-empty result at Info level under the `progress` component.
/// The destructor stops and joins; stop() is idempotent.
class Heartbeat {
 public:
  using StatusFn = std::function<std::string()>;

  Heartbeat(double interval_seconds, StatusFn status);
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  void stop();

 private:
  void run(double interval_seconds);

  StatusFn status_;
  Mutex mu_{"telemetry.heartbeat"};
  CondVar cv_;
  bool stop_ GENFV_GUARDED_BY(mu_) = false;
  std::thread thread_;  // joined only by stop(); not guarded
};

/// Stateful status-line builder for the heartbeat: reads the global metrics
/// registry (pdr.frontier, pdr.obligations_queued, sat.conflicts, ...) and
/// reports rates against the previous invocation.
class ProgressStatus {
 public:
  std::string operator()();

 private:
  std::uint64_t last_conflicts_ = 0;
  std::uint64_t last_sat_calls_ = 0;
  std::uint64_t last_ns_ = 0;
};

}  // namespace genfv::util
