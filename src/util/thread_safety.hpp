#pragma once

/// \file thread_safety.hpp
/// Clang Thread Safety Analysis capability macros plus the project's
/// annotated mutex primitives. Every lock in genfv goes through this header
/// (enforced by scripts/lint_genfv.py: no bare `std::mutex` outside
/// thread_safety.hpp / lock_order.hpp), which buys three things at once:
///
///  1. **Compile-time lock checking** — under clang, `GENFV_GUARDED_BY` /
///     `GENFV_REQUIRES` / `GENFV_ACQUIRE` annotations turn the informal
///     "guarded by mu_" comments into `-Werror=thread-safety` diagnostics.
///     Non-clang compilers see empty macros and plain std::mutex behavior.
///  2. **Runtime lock-order checking** — Debug builds (GENFV_LOCK_ORDER
///     defined by CMake) route every acquire/release through the lockdep
///     layer in util/lock_order.hpp, which records the cross-class
///     acquisition graph and flags cycles (potential deadlocks).
///  3. **Contention telemetry** — a named Mutex attributes its lock-wait
///     time to `<name>_mutex_wait_ns` / `<name>_mutex_locks` when telemetry
///     is on (this subsumes the old FrameDb::lock_timed()).
///
/// Annotation conventions (docs/static-analysis.md):
///  * every mutex-protected field carries GENFV_GUARDED_BY(mu_);
///  * private helpers that expect the lock held carry GENFV_REQUIRES(mu_);
///  * scoped locking uses MutexLock (never raw lock()/unlock() pairs);
///  * condition waits go through CondVar, whose wait() requires the mutex.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

// --- capability macros -------------------------------------------------------
// Empty on non-clang compilers: gcc compiles the same code with the
// attributes erased, so the annotations cost nothing outside the clang
// `-Werror=thread-safety` CI leg.

#if defined(__clang__)
#define GENFV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GENFV_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define GENFV_CAPABILITY(x) GENFV_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction (MutexLock below).
#define GENFV_SCOPED_CAPABILITY GENFV_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written while holding the named capability.
#define GENFV_GUARDED_BY(x) GENFV_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed while holding the named capability.
#define GENFV_PT_GUARDED_BY(x) GENFV_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release it).
#define GENFV_REQUIRES(...) GENFV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability; held on return.
#define GENFV_ACQUIRE(...) GENFV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability; not held on return.
#define GENFV_RELEASE(...) GENFV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability when returning `ret`.
#define GENFV_TRY_ACQUIRE(ret, ...) \
  GENFV_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Caller must NOT hold the capability (deadlock guard for self-locking APIs).
#define GENFV_EXCLUDES(...) GENFV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define GENFV_RETURN_CAPABILITY(x) GENFV_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables analysis for one function. Use only for patterns
/// the analysis cannot express, with a comment saying why.
#define GENFV_NO_THREAD_SAFETY_ANALYSIS \
  GENFV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace genfv::util {

namespace lockdep {
// Hooks implemented in lock_order.cpp; no-op inline stubs otherwise so
// Release builds pay nothing. `site` identifies the lock *class* (all
// instances constructed with the same name share one node in the
// acquisition graph, like Linux lockdep's lock classes).
#if defined(GENFV_LOCK_ORDER)
void on_acquire(const void* mutex, const char* site) noexcept;
void on_release(const void* mutex, const char* site) noexcept;
#else
inline void on_acquire(const void*, const char*) noexcept {}
inline void on_release(const void*, const char*) noexcept {}
#endif
}  // namespace lockdep

// Implemented in telemetry.cpp; redeclared here so this header does not need
// to pull in telemetry.hpp (telemetry.hpp includes *us*).
bool telemetry_on_for_mutex() noexcept;
std::uint64_t mutex_now_ns() noexcept;
void mutex_contention_record(const char* name, std::uint64_t wait_ns) noexcept;

/// Annotated mutex. Wraps std::mutex; adds the capability attributes, the
/// Debug lock-order hooks, and (for named instances) contention telemetry:
/// a Mutex constructed with name "pdr.framedb" attributes its lock waits to
/// the `pdr.framedb_mutex_wait_ns` / `pdr.framedb_mutex_locks` counters
/// whenever telemetry is on.
class GENFV_CAPABILITY("mutex") Mutex {
 public:
  /// `name` doubles as the lockdep class and the telemetry metric prefix.
  /// It must be a string literal (or otherwise immortal). Unnamed mutexes
  /// get the shared "mutex" lockdep class and record no telemetry.
  constexpr Mutex() noexcept : name_(nullptr) {}
  constexpr explicit Mutex(const char* name) noexcept : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GENFV_ACQUIRE() {
    if (name_ != nullptr && telemetry_on_for_mutex()) {
      const std::uint64_t t0 = mutex_now_ns();
      mu_.lock();
      mutex_contention_record(name_, mutex_now_ns() - t0);
    } else {
      mu_.lock();
    }
    lockdep::on_acquire(this, site());
  }

  void unlock() GENFV_RELEASE() {
    lockdep::on_release(this, site());
    mu_.unlock();
  }

  bool try_lock() GENFV_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockdep::on_acquire(this, site());
    return true;
  }

  const char* site() const noexcept { return name_ != nullptr ? name_ : "mutex"; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_;
};

/// RAII scoped lock over Mutex — the only sanctioned way to hold one.
/// Supports the mid-scope Unlock()/Lock() cycle the sharded-PDR worker loop
/// needs (solver work happens unlocked), in the exact shape clang's analysis
/// understands for scoped capabilities.
class GENFV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GENFV_ACQUIRE(mu) : mu_(&mu), held_(true) {
    mu.lock();
  }

  ~MutexLock() GENFV_RELEASE() {
    if (held_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release (solver work, blocking I/O); pair with Lock().
  void Unlock() GENFV_RELEASE() {
    held_ = false;
    mu_->unlock();
  }

  void Lock() GENFV_ACQUIRE() {
    mu_->lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool held_;
};

/// Condition variable bound to the annotated Mutex. wait()/wait_for()
/// require the mutex held (the analysis sees the guarded predicate reads in
/// the caller's explicit wait loop — use `for (;;) { if (pred) break;
/// cv.wait(mu); }` instead of the predicate-lambda overloads, which the
/// analysis cannot look into).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and re-acquire before returning.
  /// The lockdep hooks see the release/re-acquire pair, so a wait can never
  /// masquerade as "held across" in the acquisition graph.
  void wait(Mutex& mu) GENFV_REQUIRES(mu) {
    lockdep::on_release(&mu, mu.site());
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
    lockdep::on_acquire(&mu, mu.site());
  }

  /// Returns false on timeout (mutex re-acquired either way).
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      GENFV_REQUIRES(mu) {
    lockdep::on_release(&mu, mu.site());
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(relock, dur);
    relock.release();
    lockdep::on_acquire(&mu, mu.site());
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace genfv::util
