#pragma once

/// \file log.hpp
/// Minimal leveled logging. Engines log at Debug/Trace; flows narrate at
/// Info. The level is process-global but explicitly settable, so tests can
/// silence output and examples can turn narration on.

#include <sstream>
#include <string>

namespace genfv::util {

enum class LogLevel : int { Silent = 0, Error = 1, Warn = 2, Info = 3, Debug = 4, Trace = 5 };

/// Set/get the process-wide log level.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line at `level` with a `[component]` prefix.
void log_line(LogLevel level, const std::string& component, const std::string& message);

/// Streaming helper: GENFV_LOG(Info, "flow") << "proved " << n << " lemmas";
class LogStream {
 public:
  LogStream(LogLevel level, std::string component) noexcept
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define GENFV_LOG(level, component) \
  ::genfv::util::LogStream(::genfv::util::LogLevel::level, component)

}  // namespace genfv::util
