#pragma once

/// \file stopwatch.hpp
/// Wall-clock timing for engine statistics and bench harnesses.

#include <chrono>

namespace genfv::util {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace genfv::util
