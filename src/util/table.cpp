#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/status.hpp"

namespace genfv::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GENFV_ASSERT(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GENFV_ASSERT(cells.size() == headers_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ' + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + '\n';
  };

  std::string rule = "+";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c] + 2, '-') + '+';
  }
  rule += '\n';

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_ratio(double numerator, double denominator) {
  if (denominator <= 0.0) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", numerator / denominator);
  return buf;
}

}  // namespace genfv::util
