#pragma once

/// \file rng.hpp
/// Deterministic, seedable pseudo-random number generation.
///
/// Every stochastic component in genfv (random simulation, simulated-LLM
/// sampling noise, property-test input generation) draws from an explicit
/// `Xoshiro256` stream so that runs are reproducible from a printed seed.
/// xoshiro256** is small, fast and has no global state.

#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace genfv::util {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    GENFV_ASSERT(bound != 0, "Xoshiro256::below bound must be nonzero");
    // Debiased multiply-shift (Lemire); the retry loop terminates with
    // overwhelming probability after one iteration.
    while (true) {
      const std::uint64_t x = next();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    GENFV_ASSERT(lo <= hi, "Xoshiro256::range requires lo <= hi");
    if (lo == 0 && hi == UINT64_MAX) return next();
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double real() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return real() < p;
  }

  /// Uniform value masked to `width` low bits (width in [1,64]).
  std::uint64_t bits(unsigned width) {
    GENFV_ASSERT(width >= 1 && width <= 64, "bit width out of range");
    return width == 64 ? next() : (next() & ((1ULL << width) - 1));
  }

  /// Pick a uniformly random element index for a container of size n.
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(below(n)); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent child stream (for per-component determinism).
  Xoshiro256 fork() noexcept { return Xoshiro256(next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace genfv::util
