#pragma once

/// \file strings.hpp
/// Small string utilities shared by the frontends, prompt rendering and
/// report formatting. Kept dependency-free.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace genfv::util {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Split `text` into non-empty whitespace-delimited tokens.
std::vector<std::string> split_ws(std::string_view text);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view text);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;
bool contains(std::string_view text, std::string_view needle) noexcept;

std::string to_lower(std::string_view text);

/// Format `value` (masked to `width` bits) as a Verilog-style sized hex
/// literal, e.g. 32'hdeadbeef.
std::string hex_literal(std::uint64_t value, unsigned width);

/// Format `value` as a `width`-character binary string, MSB first.
std::string bin_string(std::uint64_t value, unsigned width);

/// Render seconds as a human-friendly duration ("12.3 ms", "4.56 s").
std::string format_duration(double seconds);

/// Indent every line of `text` by `spaces` spaces.
std::string indent(std::string_view text, int spaces);

}  // namespace genfv::util
