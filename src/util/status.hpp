#pragma once

/// \file status.hpp
/// Error-handling primitives shared across genfv.
///
/// genfv follows the C++ Core Guidelines (I.10): failures to perform a
/// required task are reported with exceptions. `Error` carries a message and
/// an optional source-location string ("file.sv:12:4") so frontend
/// diagnostics stay attached to the offending text.

#include <stdexcept>
#include <string>
#include <utility>

namespace genfv {

/// Base exception for all genfv failures.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}

  Error(const std::string& location, const std::string& message)
      : std::runtime_error(location + ": " + message), location_(location) {}

  /// Location string ("file:line:col"), empty when not applicable.
  const std::string& location() const noexcept { return location_; }

 private:
  std::string location_;
};

/// Thrown by frontends (HDL/SVA parsers) on malformed input.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an IR operation is applied to operands of the wrong sort.
class SortError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an engine is used in an unsupported way (API misuse).
class UsageError : public Error {
 public:
  using Error::Error;
};

/// GENFV_ASSERT: internal-invariant check that stays on in release builds.
/// Internal invariants are programming errors, not user errors, so the
/// message names the condition rather than trying to be user-friendly.
#define GENFV_ASSERT(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      throw ::genfv::Error(std::string("internal error: ") + (msg) +    \
                           " [" #cond "]");                             \
    }                                                                   \
  } while (false)

}  // namespace genfv
