#pragma once

/// \file lock_order.hpp
/// Debug lockdep: runtime lock-order checking over the annotated mutexes of
/// thread_safety.hpp.
///
/// When compiled in (GENFV_LOCK_ORDER, defined by CMake for Debug builds),
/// every Mutex acquire/release reports to this layer, which maintains
///
///  * a per-thread stack of currently-held locks, and
///  * a global directed graph over lock *classes* (all Mutex instances
///    constructed with the same name share one node, like Linux lockdep):
///    an edge A -> B is recorded the first time some thread acquires a
///    B-class lock while holding an A-class lock.
///
/// A cycle in that graph is a potential deadlock — two threads taking the
/// same pair of locks in opposite orders will eventually interleave badly,
/// whether or not any observed schedule actually deadlocked. Unlike TSan
/// (which only sees the schedules that ran), the graph accumulates ordering
/// facts across the whole process, so one clean pass over the test suite
/// certifies an acyclic lock order for every schedule those code paths
/// admit.
///
/// The layer also checks the engine-specific hazard called out in PR 4:
/// `sat::SolverPool::rebuild()` invalidates the handle's solver, so invoking
/// it while holding any engine mutex risks both deadlock (rebuild takes the
/// pool accumulator lock) and use-after-free-by-design (another worker
/// observing the handle mid-swap). `check_no_locks_held` records a hazard
/// whenever rebuild runs with locks held.
///
/// Violations are counted, described (first occurrence per edge), and logged
/// at Error level; they never abort, so a full test run reports every
/// distinct violation at once. Tests assert `cycle_count() == 0` /
/// `hazard_count() == 0` and use `reset()` around seeded-violation cases.
///
/// In non-Debug builds every query below compiles to a zero/empty stub and
/// the Mutex hooks vanish (thread_safety.hpp), so Release pays nothing.

#include <cstddef>
#include <string>
#include <vector>

namespace genfv::util::lockdep {

/// True when the lockdep layer is compiled in (GENFV_LOCK_ORDER).
bool enabled() noexcept;

/// Number of distinct lock-order cycles detected so far.
std::size_t cycle_count() noexcept;

/// Human-readable description of every detected cycle, e.g.
/// "lock-order cycle: pdr.framedb -> shard_state -> pdr.framedb".
std::vector<std::string> cycle_reports();

/// Number of held-across-forbidden-region hazards (check_no_locks_held).
std::size_t hazard_count() noexcept;

std::vector<std::string> hazard_reports();

/// Record a hazard if the calling thread holds any instrumented mutex.
/// `what` names the forbidden region ("sat::SolverPool::rebuild").
/// No-op stub when lockdep is compiled out.
void check_no_locks_held(const char* what) noexcept;

/// Number of instrumented locks the calling thread currently holds.
std::size_t held_by_this_thread() noexcept;

/// Forget all recorded edges, cycles and hazards (held stacks are
/// per-thread state and survive). Tests only; callers must be quiescent.
void reset();

}  // namespace genfv::util::lockdep
