#pragma once

/// \file compiler.hpp
/// Compilation of SVA property ASTs into width-1 safety expressions over a
/// transition system. Temporal operators introduce auxiliary state:
///   $past(e[,n])  -> n chained registers (init 0, SVA default)
///   a |=> b       -> one register latching `a`, property (reg -> b)
/// so every property becomes "expr holds in every reachable state", which is
/// exactly what the BMC/k-induction engines check.

#include <map>
#include <string>

#include "hdl/elaborator.hpp"
#include "ir/transition_system.hpp"
#include "sva/parser.hpp"

namespace genfv::sva {

struct CompiledProperty {
  std::string name;
  ir::NodeRef expr = nullptr;
  std::string source;
};

class PropertyCompiler {
 public:
  /// The compiler may add auxiliary states to `ts`.
  explicit PropertyCompiler(ir::TransitionSystem& ts) : ts_(ts) {}

  /// Parse + compile one property text.
  CompiledProperty compile(const std::string& text);

  /// Compile an already-parsed property.
  CompiledProperty compile(const ParsedProperty& parsed);

  /// Compile a bare boolean expression (no implication layer).
  ir::NodeRef compile_expr(const std::string& text);

 private:
  ir::NodeRef build_property(const hdl::Expr& e);
  ir::NodeRef build_bool(const hdl::Expr& e);
  ir::NodeRef handle_call(const hdl::Expr& call, hdl::ExprBuilder& builder);

  /// e delayed by `cycles` (auxiliary registers, memoized).
  ir::NodeRef past_of(ir::NodeRef e, unsigned cycles);
  /// Population count of e, width ceil(log2(w+1)).
  ir::NodeRef popcount(ir::NodeRef e);

  ir::TransitionSystem& ts_;
  std::map<std::pair<ir::NodeRef, unsigned>, ir::NodeRef> past_cache_;
  int anon_counter_ = 0;
};

/// Convenience: parse, compile and register a property on `ts`.
std::size_t add_property(ir::TransitionSystem& ts, const std::string& text,
                         ir::PropertyRole role = ir::PropertyRole::Target,
                         const std::string& fallback_name = "");

}  // namespace genfv::sva
