#include "sva/compiler.hpp"

#include <cmath>

#include "util/status.hpp"

namespace genfv::sva {

using hdl::Expr;
using ir::NodeRef;

CompiledProperty PropertyCompiler::compile(const std::string& text) {
  return compile(parse_property(text));
}

CompiledProperty PropertyCompiler::compile(const ParsedProperty& parsed) {
  CompiledProperty out;
  out.name = parsed.name.empty() ? ("anon_prop_" + std::to_string(++anon_counter_))
                                 : parsed.name;
  out.source = parsed.source;
  out.expr = build_property(*parsed.expr);
  return out;
}

ir::NodeRef PropertyCompiler::compile_expr(const std::string& text) {
  const auto parsed = parse_property(text);
  return build_property(*parsed.expr);
}

ir::NodeRef PropertyCompiler::build_property(const Expr& e) {
  auto& nm = ts_.nm();
  // Top-level implication layer.
  if (e.kind == Expr::Kind::Binary && (e.text == "|->" || e.text == "|=>")) {
    const NodeRef ante = build_bool(*e.args[0]);
    const NodeRef cons = build_bool(*e.args[1]);
    if (e.text == "|->") {
      return nm.mk_implies(ante, cons);
    }
    // a |=> b  ==  $past(a) -> b, with the antecedent latched one cycle.
    return nm.mk_implies(past_of(ante, 1), cons);
  }
  return build_bool(e);
}

ir::NodeRef PropertyCompiler::build_bool(const Expr& e) {
  hdl::ExprBuilder builder(
      ts_.nm(),
      [this](const std::string& name, const Expr& at) -> NodeRef {
        const NodeRef n = ts_.lookup(name);
        if (n == nullptr) {
          throw ParseError(std::to_string(at.line) + ":" + std::to_string(at.col),
                           "property references unknown signal '" + name + "'");
        }
        return n;
      },
      [this](const Expr& call, hdl::ExprBuilder& b) { return handle_call(call, b); });
  return ts_.nm().mk_bool(builder.build(e));
}

ir::NodeRef PropertyCompiler::handle_call(const Expr& call, hdl::ExprBuilder& builder) {
  auto& nm = ts_.nm();
  auto arity_error = [&call](const char* what) -> ParseError {
    return ParseError(std::to_string(call.line) + ":" + std::to_string(call.col),
                      std::string(what) + ": wrong number of arguments");
  };

  if (call.text == "$past") {
    if (call.args.empty() || call.args.size() > 2) throw arity_error("$past");
    unsigned cycles = 1;
    if (call.args.size() == 2) {
      const Expr& n = *call.args[1];
      if (n.kind != Expr::Kind::Number || n.value == 0 || n.value > 64) {
        throw ParseError(std::to_string(call.line),
                         "$past depth must be a constant in [1,64]");
      }
      cycles = static_cast<unsigned>(n.value);
    }
    return past_of(builder.build(*call.args[0]), cycles);
  }
  if (call.text == "$stable") {
    if (call.args.size() != 1) throw arity_error("$stable");
    const NodeRef x = builder.build(*call.args[0]);
    return nm.mk_eq(x, past_of(x, 1));
  }
  if (call.text == "$changed") {
    if (call.args.size() != 1) throw arity_error("$changed");
    const NodeRef x = builder.build(*call.args[0]);
    return nm.mk_ne(x, past_of(x, 1));
  }
  if (call.text == "$rose" || call.text == "$fell") {
    if (call.args.size() != 1) throw arity_error(call.text.c_str());
    const NodeRef x = builder.build(*call.args[0]);
    const NodeRef bit = x->width() == 1 ? x : nm.mk_bit(x, 0);  // LSB per LRM
    const NodeRef prev = past_of(bit, 1);
    if (call.text == "$rose") return nm.mk_and(bit, nm.mk_not(prev));
    return nm.mk_and(nm.mk_not(bit), prev);
  }
  if (call.text == "$countones") {
    if (call.args.size() != 1) throw arity_error("$countones");
    return popcount(builder.build(*call.args[0]));
  }
  if (call.text == "$onehot") {
    if (call.args.size() != 1) throw arity_error("$onehot");
    const NodeRef pc = popcount(builder.build(*call.args[0]));
    return nm.mk_eq(pc, nm.mk_const(1, pc->width()));
  }
  if (call.text == "$onehot0") {
    if (call.args.size() != 1) throw arity_error("$onehot0");
    const NodeRef pc = popcount(builder.build(*call.args[0]));
    return nm.mk_ule(pc, nm.mk_const(1, pc->width()));
  }
  if (call.text == "$isunknown") {
    // Two-state model: nothing is ever X/Z.
    return nm.mk_false();
  }
  if (call.text == "$signed" || call.text == "$unsigned") {
    if (call.args.size() != 1) throw arity_error(call.text.c_str());
    return builder.build(*call.args[0]);
  }
  throw ParseError(std::to_string(call.line) + ":" + std::to_string(call.col),
                   "unsupported system function '" + call.text + "'");
}

ir::NodeRef PropertyCompiler::past_of(NodeRef e, unsigned cycles) {
  auto& nm = ts_.nm();
  NodeRef current = e;
  for (unsigned i = 0; i < cycles; ++i) {
    const auto key = std::make_pair(current, 1U);
    const auto it = past_cache_.find(key);
    if (it != past_cache_.end()) {
      current = it->second;
      continue;
    }
    const std::string name = "__sva_past" + std::to_string(ts_.states().size());
    const NodeRef reg = ts_.add_state(name, current->width());
    ts_.set_init(reg, nm.mk_const(0, current->width()));
    ts_.set_next(reg, current);
    past_cache_.emplace(key, reg);
    current = reg;
  }
  return current;
}

ir::NodeRef PropertyCompiler::popcount(NodeRef e) {
  auto& nm = ts_.nm();
  const unsigned w = e->width();
  unsigned out_width = 1;
  while ((1U << out_width) < w + 1) ++out_width;
  NodeRef acc = nm.mk_const(0, out_width);
  for (unsigned i = 0; i < w; ++i) {
    acc = nm.mk_add(acc, nm.mk_zext(nm.mk_bit(e, i), out_width));
  }
  return acc;
}

std::size_t add_property(ir::TransitionSystem& ts, const std::string& text,
                         ir::PropertyRole role, const std::string& fallback_name) {
  PropertyCompiler compiler(ts);
  CompiledProperty cp = compiler.compile(text);
  ir::Property p;
  p.name = (!fallback_name.empty() && cp.name.rfind("anon_prop_", 0) == 0) ? fallback_name
                                                                           : cp.name;
  p.expr = cp.expr;
  p.role = role;
  p.source_text = cp.source;
  return ts.add_property(std::move(p));
}

}  // namespace genfv::sva
