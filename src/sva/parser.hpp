#pragma once

/// \file parser.hpp
/// SVA property parsing. Accepts the three textual shapes that occur in the
/// paper and in LLM responses:
///   property name; <expr>; endproperty
///   assert property (<expr>);
///   <expr>
/// The expression grammar is the shared HDL grammar plus `|->` / `|=>` at
/// lowest precedence and $system functions ($past, $stable, $rose, $fell,
/// $onehot, $onehot0, $countones).

#include <string>

#include "hdl/ast.hpp"

namespace genfv::sva {

struct ParsedProperty {
  std::string name;       ///< from the property block; "" when anonymous
  hdl::ExprPtr expr;      ///< property expression AST
  std::string source;     ///< original text (for prompts/reports)
};

/// Parse one property. Throws ParseError on malformed input.
ParsedProperty parse_property(const std::string& text);

}  // namespace genfv::sva
