#include "sva/parser.hpp"

#include "hdl/lexer.hpp"
#include "hdl/parser.hpp"
#include "util/strings.hpp"

namespace genfv::sva {

ParsedProperty parse_property(const std::string& text) {
  ParsedProperty result;
  result.source = util::trim(text);

  hdl::Parser parser(hdl::lex(text));

  if (parser.accept_id("property")) {
    result.name = parser.expect_identifier();
    parser.expect_punct(";");
    result.expr = parser.expression();
    parser.expect_punct(";");
    parser.expect_id("endproperty");
    parser.accept_punct(";");
  } else if (parser.accept_id("assert")) {
    parser.expect_id("property");
    parser.expect_punct("(");
    result.expr = parser.expression();
    parser.expect_punct(")");
    parser.accept_punct(";");
  } else {
    result.expr = parser.expression();
    parser.accept_punct(";");
  }

  if (!parser.at_end()) {
    parser.fail("trailing tokens after property");
  }
  return result;
}

}  // namespace genfv::sva
