#include "sim/interpreter.hpp"

#include <vector>

#include "util/status.hpp"

namespace genfv::sim {

std::uint64_t evaluate(ir::NodeRef root, const Assignment& env,
                       std::unordered_map<ir::NodeRef, std::uint64_t>& memo) {
  // Iterative post-order evaluation (designs can produce deep DAGs).
  std::vector<std::pair<ir::NodeRef, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (memo.contains(node)) continue;

    if (node->is_leaf()) {
      if (node->is_const()) {
        memo[node] = node->value();
      } else {
        const auto it = env.find(node);
        if (it == env.end()) {
          throw UsageError("evaluate: unbound leaf '" + node->name() + "'");
        }
        memo[node] = it->second & ir::width_mask(node->width());
      }
      continue;
    }
    if (!expanded) {
      stack.push_back({node, true});
      for (const ir::NodeRef c : node->children()) {
        if (!memo.contains(c)) stack.push_back({c, false});
      }
      continue;
    }
    std::vector<std::uint64_t> vals;
    std::vector<unsigned> widths;
    vals.reserve(node->arity());
    widths.reserve(node->arity());
    for (const ir::NodeRef c : node->children()) {
      vals.push_back(memo.at(c));
      widths.push_back(c->width());
    }
    memo[node] = ir::eval_op(node->op(), node->width(), node->hi(), node->lo(), vals, widths);
  }
  return memo.at(root);
}

std::uint64_t evaluate(ir::NodeRef root, const Assignment& env) {
  std::unordered_map<ir::NodeRef, std::uint64_t> memo;
  return evaluate(root, env, memo);
}

Assignment step(const ir::TransitionSystem& ts, const Assignment& current_env) {
  Assignment next;
  std::unordered_map<ir::NodeRef, std::uint64_t> memo;
  for (const auto& s : ts.states()) {
    GENFV_ASSERT(s.next != nullptr, "step: state without next function");
    next[s.var] = evaluate(s.next, current_env, memo);
  }
  return next;
}

}  // namespace genfv::sim
