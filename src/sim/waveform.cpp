#include "sim/waveform.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace genfv::sim {

std::vector<WaveSignal> default_signals(const ir::TransitionSystem& ts) {
  std::vector<WaveSignal> signals;
  for (const ir::NodeRef in : ts.inputs()) signals.push_back({in->name(), in});
  for (const auto& s : ts.states()) signals.push_back({s.var->name(), s.var});
  return signals;
}

std::string render_waveform(const Trace& trace, const std::vector<WaveSignal>& signals,
                            const WaveformOptions& options) {
  const std::size_t frames = trace.size();
  std::ostringstream out;

  // Collect cell text first to compute column widths.
  std::vector<std::vector<std::string>> cells(signals.size());
  std::size_t label_width = 4;  // "time"
  for (std::size_t s = 0; s < signals.size(); ++s) {
    label_width = std::max(label_width, signals[s].label.size());
    cells[s].reserve(frames);
    for (std::size_t f = 0; f < frames; ++f) {
      const std::uint64_t v = trace.value(signals[s].expr, f);
      const unsigned w = signals[s].expr->width();
      if (options.binary || w == 1) {
        cells[s].push_back(w == 1 ? std::string(v ? "1" : "0") : util::bin_string(v, w));
      } else {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(v));
        cells[s].push_back(buf);
      }
    }
  }
  std::size_t cell_width = 2;
  for (const auto& row : cells) {
    for (const auto& cell : row) cell_width = std::max(cell_width, cell.size());
  }

  // Header: frame indices, with a failure marker when requested.
  out << std::string(label_width, ' ') << " |";
  for (std::size_t f = 0; f < frames; ++f) {
    std::string head = "t" + std::to_string(f);
    if (f == options.failure_frame) head += "*";
    out << ' ' << head << std::string(head.size() < cell_width ? cell_width - head.size() : 0, ' ')
        << " |";
  }
  out << '\n';
  out << std::string(label_width, '-') << "-+";
  for (std::size_t f = 0; f < frames; ++f) {
    out << std::string(cell_width + 2, '-') << '+';
  }
  out << '\n';

  for (std::size_t s = 0; s < signals.size(); ++s) {
    out << signals[s].label << std::string(label_width - signals[s].label.size(), ' ') << " |";
    for (std::size_t f = 0; f < frames; ++f) {
      const auto& cell = cells[s][f];
      out << ' ' << cell << std::string(cell_width - cell.size(), ' ') << " |";
    }
    out << '\n';
  }
  if (options.failure_frame != static_cast<std::size_t>(-1) &&
      options.failure_frame < frames) {
    out << "(* = frame where the property fails)\n";
  }
  return out.str();
}

std::string render_bit_diff(const Trace& trace, std::size_t frame, const std::string& label_a,
                            ir::NodeRef a, const std::string& label_b, ir::NodeRef b) {
  if (a->width() != b->width()) return {};
  const std::uint64_t va = trace.value(a, frame);
  const std::uint64_t vb = trace.value(b, frame);
  if (va == vb) return {};
  std::ostringstream out;
  out << "value mismatch at t" << frame << ": " << label_a << " = "
      << util::hex_literal(va, a->width()) << ", " << label_b << " = "
      << util::hex_literal(vb, b->width()) << "; differing bits:";
  for (unsigned i = a->width(); i-- > 0;) {
    const unsigned bit_a = (va >> i) & 1U;
    const unsigned bit_b = (vb >> i) & 1U;
    if (bit_a != bit_b) {
      out << " [bit " << i << ": " << label_a << "=" << bit_a << " " << label_b << "="
          << bit_b << "]";
    }
  }
  return out.str();
}

}  // namespace genfv::sim
