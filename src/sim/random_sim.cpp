#include "sim/random_sim.hpp"

namespace genfv::sim {

RandomSimulator::RandomSimulator(const ir::TransitionSystem& ts, std::uint64_t seed)
    : ts_(ts), rng_(seed) {}

Assignment RandomSimulator::random_inputs() {
  Assignment env;
  for (const ir::NodeRef in : ts_.inputs()) {
    env[in] = rng_.bits(in->width());
  }
  return env;
}

Assignment RandomSimulator::reset_state() {
  // Inits may reference inputs; bind a random input valuation for them.
  Assignment init_env = random_inputs();
  Assignment state;
  for (const auto& s : ts_.states()) {
    if (s.init != nullptr) {
      state[s.var] = evaluate(s.init, init_env);
    } else {
      state[s.var] = rng_.bits(s.var->width());
    }
  }
  return state;
}

Trace RandomSimulator::run(std::size_t steps) {
  return run_from(reset_state(), steps);
}

Trace RandomSimulator::run_from(Assignment state_values, std::size_t steps) {
  Trace trace(&ts_);
  for (std::size_t t = 0; t <= steps; ++t) {
    Assignment env = constrained_inputs(state_values);
    for (const auto& [k, v] : state_values) env[k] = v;
    if (t < steps) {
      Assignment next = step(ts_, env);
      trace.append(std::move(env));
      state_values = std::move(next);
    } else {
      trace.append(std::move(env));
    }
  }
  return trace;
}

Assignment RandomSimulator::constrained_inputs(const Assignment& state_values) {
  // Rejection-sample inputs against the environment constraints (e.g. the
  // elaborator's `rst == 0`); without this, random runs keep resetting the
  // design and never exercise reachable behaviour.
  Assignment env;
  for (int attempt = 0; attempt < 64; ++attempt) {
    env = random_inputs();
    for (const auto& [k, v] : state_values) env[k] = v;
    bool ok = true;
    for (const ir::NodeRef c : ts_.constraints()) {
      if (evaluate(c, env) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) break;
    // On the final failed attempt the last draw is used as-is: sampling is
    // only ever an under-approximation, never a soundness issue.
  }
  // Strip state bindings again; the caller overlays its own.
  Assignment inputs_only;
  for (const ir::NodeRef in : ts_.inputs()) inputs_only[in] = env[in];
  return inputs_only;
}

std::optional<Trace> RandomSimulator::falsify(ir::NodeRef expr, std::size_t steps,
                                              std::size_t restarts) {
  for (std::size_t r = 0; r < restarts; ++r) {
    Trace trace = run(steps);
    if (const auto frame = trace.first_violation(expr)) {
      // Truncate to end at the violation for a minimal witness.
      Trace witness(&ts_);
      for (std::size_t i = 0; i <= *frame; ++i) witness.append(trace.frame(i));
      return witness;
    }
  }
  return std::nullopt;
}

std::vector<Assignment> RandomSimulator::sample_states(std::size_t steps,
                                                       std::size_t restarts) {
  std::vector<Assignment> samples;
  samples.reserve((steps + 1) * restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    const Trace trace = run(steps);
    for (std::size_t f = 0; f < trace.size(); ++f) samples.push_back(trace.frame(f));
  }
  return samples;
}

}  // namespace genfv::sim
