#pragma once

/// \file interpreter.hpp
/// Reference interpreter for IR expressions and transition-system stepping.
/// This is the semantic ground truth: the bit-blaster is property-tested
/// against it, and counterexample traces are replayed through it.

#include <cstdint>
#include <unordered_map>

#include "ir/transition_system.hpp"

namespace genfv::sim {

/// Leaf environment: values for Input/State nodes (masked to their width).
using Assignment = std::unordered_map<ir::NodeRef, std::uint64_t>;

/// Evaluate `root` under `env`. Every Input/State leaf reachable from `root`
/// must be bound in `env`; throws UsageError otherwise.
std::uint64_t evaluate(ir::NodeRef root, const Assignment& env);

/// Evaluate with a shared memo table (for many queries against one env).
std::uint64_t evaluate(ir::NodeRef root, const Assignment& env,
                       std::unordered_map<ir::NodeRef, std::uint64_t>& memo);

/// Compute the successor state of `ts`: evaluates every state's next
/// expression under (current states + inputs).
Assignment step(const ir::TransitionSystem& ts, const Assignment& current_env);

}  // namespace genfv::sim
