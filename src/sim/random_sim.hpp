#pragma once

/// \file random_sim.hpp
/// Random simulation of transition systems. Three clients:
///  * invariant mining (state sampling for the simulated LLM),
///  * candidate screening (cheaply falsify hallucinated assertions before
///    wasting prover time — the mechanical part of "human-in-the-loop"),
///  * tests (proven properties must survive long random runs).

#include <cstdint>
#include <optional>

#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace genfv::sim {

class RandomSimulator {
 public:
  RandomSimulator(const ir::TransitionSystem& ts, std::uint64_t seed);

  /// Build a reset-state environment: init expressions are evaluated (they
  /// may reference inputs, which are randomized); uninitialized registers
  /// get random values.
  Assignment reset_state();

  /// Run `steps` cycles from reset, returning the full trace (frame 0 is the
  /// reset state).
  Trace run(std::size_t steps);

  /// Run from a caller-provided state (inputs are randomized per cycle).
  Trace run_from(Assignment state_values, std::size_t steps);

  /// Try to falsify a width-1 expression: up to `restarts` runs of `steps`
  /// cycles each; returns a witness trace ending at the violating frame.
  std::optional<Trace> falsify(ir::NodeRef expr, std::size_t steps, std::size_t restarts);

  /// Sample reachable states: `restarts` runs of `steps` cycles; every
  /// visited frame's environment is appended to the result.
  std::vector<Assignment> sample_states(std::size_t steps, std::size_t restarts);

 private:
  Assignment random_inputs();
  /// Inputs rejection-sampled so the environment constraints hold in the
  /// current state (e.g. reset held inactive).
  Assignment constrained_inputs(const Assignment& state_values);

  const ir::TransitionSystem& ts_;
  util::Xoshiro256 rng_;
};

}  // namespace genfv::sim
