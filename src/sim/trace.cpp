#include "sim/trace.hpp"

#include "util/status.hpp"

namespace genfv::sim {

std::optional<std::size_t> Trace::first_violation(ir::NodeRef prop) const {
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (value(prop, i) == 0) return i;
  }
  return std::nullopt;
}

bool Trace::is_consistent() const {
  GENFV_ASSERT(ts_ != nullptr, "trace has no system attached");
  for (std::size_t i = 0; i + 1 < frames_.size(); ++i) {
    const Assignment successor = step(*ts_, frames_[i]);
    for (const auto& s : ts_->states()) {
      const auto it = frames_[i + 1].find(s.var);
      if (it == frames_[i + 1].end()) return false;
      if (it->second != successor.at(s.var)) return false;
    }
  }
  return true;
}

}  // namespace genfv::sim
