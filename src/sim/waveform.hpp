#pragma once

/// \file waveform.hpp
/// ASCII waveform rendering of traces — the textual stand-in for the
/// waveform diagrams a commercial formal tool shows on an induction-step
/// failure (paper Fig. 3). The rendered text is what the (simulated) LLM
/// receives inside its prompt.

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace genfv::sim {

/// One displayed row: a label and the expression it tracks.
struct WaveSignal {
  std::string label;
  ir::NodeRef expr = nullptr;
};

struct WaveformOptions {
  /// Render values in hex (default) or binary.
  bool binary = false;
  /// Add a per-bit expansion row for signals whose width exceeds 1 and whose
  /// value changes between the last two frames (mimics Fig. 3's bit callout).
  bool annotate_bit_mismatch = true;
  /// Frame index to flag as the failure point (rendered with a marker);
  /// SIZE_MAX = none.
  std::size_t failure_frame = static_cast<std::size_t>(-1);
};

/// Render `signals` over all frames of `trace` as an aligned text table.
std::string render_waveform(const Trace& trace, const std::vector<WaveSignal>& signals,
                            const WaveformOptions& options = {});

/// Convenience: default signal list of a system (all inputs + states).
std::vector<WaveSignal> default_signals(const ir::TransitionSystem& ts);

/// Render a comparison callout between two same-width expressions at one
/// frame, highlighting differing bit positions (e.g. "bit 31: count1=1
/// count2=0"). Returns an empty string when the values are equal.
std::string render_bit_diff(const Trace& trace, std::size_t frame, const std::string& label_a,
                            ir::NodeRef a, const std::string& label_b, ir::NodeRef b);

}  // namespace genfv::sim
