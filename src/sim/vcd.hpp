#pragma once

/// \file vcd.hpp
/// Value-Change-Dump export of traces, so counterexamples (including the
/// spurious induction-step traces the flows analyze) open in any waveform
/// viewer — the tool-agnostic equivalent of the paper's Fig. 3 screenshot.

#include <string>
#include <vector>

#include "sim/waveform.hpp"

namespace genfv::sim {

/// Render `signals` over `trace` as VCD text (timescale 1ns, one timestep
/// per frame). Signal identifiers are assigned automatically.
std::string render_vcd(const Trace& trace, const std::vector<WaveSignal>& signals,
                       const std::string& module_name = "genfv");

}  // namespace genfv::sim
