#include "sim/vcd.hpp"

#include <sstream>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace genfv::sim {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id += static_cast<char>(33 + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

}  // namespace

std::string render_vcd(const Trace& trace, const std::vector<WaveSignal>& signals,
                       const std::string& module_name) {
  GENFV_ASSERT(!signals.empty(), "VCD export needs at least one signal");
  std::ostringstream out;
  out << "$date genfv trace export $end\n";
  out << "$version genfv 1.0 $end\n";
  out << "$timescale 1ns $end\n";
  out << "$scope module " << module_name << " $end\n";
  for (std::size_t i = 0; i < signals.size(); ++i) {
    out << "$var wire " << signals[i].expr->width() << ' ' << vcd_id(i) << ' '
        << signals[i].label << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  std::vector<std::uint64_t> previous(signals.size());
  for (std::size_t frame = 0; frame < trace.size(); ++frame) {
    out << '#' << frame << '\n';
    if (frame == 0) out << "$dumpvars\n";
    for (std::size_t i = 0; i < signals.size(); ++i) {
      const std::uint64_t value = trace.value(signals[i].expr, frame);
      if (frame > 0 && value == previous[i]) continue;
      previous[i] = value;
      const unsigned width = signals[i].expr->width();
      if (width == 1) {
        out << (value & 1u) << vcd_id(i) << '\n';
      } else {
        out << 'b' << util::bin_string(value, width) << ' ' << vcd_id(i) << '\n';
      }
    }
    if (frame == 0) out << "$end\n";
  }
  out << '#' << trace.size() << '\n';
  return out.str();
}

}  // namespace genfv::sim
