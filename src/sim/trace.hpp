#pragma once

/// \file trace.hpp
/// Execution traces: a sequence of frames, each binding every input and
/// state leaf of a transition system. Both simulator runs and SAT-model
/// counterexamples are materialized as traces, so replay/rendering code is
/// shared.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/interpreter.hpp"

namespace genfv::sim {

class Trace {
 public:
  Trace() = default;
  explicit Trace(const ir::TransitionSystem* ts) : ts_(ts) {}

  const ir::TransitionSystem* system() const noexcept { return ts_; }

  std::size_t size() const noexcept { return frames_.size(); }
  bool empty() const noexcept { return frames_.empty(); }

  void append(Assignment frame_env) { frames_.push_back(std::move(frame_env)); }

  const Assignment& frame(std::size_t i) const { return frames_.at(i); }
  Assignment& frame(std::size_t i) { return frames_.at(i); }

  /// Evaluate an arbitrary expression at frame `i`.
  std::uint64_t value(ir::NodeRef expr, std::size_t i) const {
    return evaluate(expr, frames_.at(i));
  }

  /// First frame where `prop` (width-1) evaluates to 0, if any.
  std::optional<std::size_t> first_violation(ir::NodeRef prop) const;

  /// Re-run the transition relation over the trace's inputs starting from
  /// frame 0's state values and verify each frame's state values match.
  /// Returns true iff the trace is a genuine execution of `ts` — used to
  /// validate counterexamples produced from SAT models.
  bool is_consistent() const;

 private:
  const ir::TransitionSystem* ts_ = nullptr;
  std::vector<Assignment> frames_;
};

}  // namespace genfv::sim
