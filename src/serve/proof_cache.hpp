#pragma once

/// \file proof_cache.hpp
/// Persistent proof cache for the verification server (docs/serve.md).
///
/// Every (transition system, target set) is keyed on `ir::struct_hash` — a
/// semantic-structural hash that survives renames, NodeManager clones and
/// serialize round trips, and changes under any semantic edit. A Proven
/// run's inductive invariant is stored in the manager-neutral clause form of
/// `mc::ExchangedClause` (state declaration index + bit + polarity), the
/// same currency the portfolio's lemma exchange uses: it carries no NodeRef,
/// so an entry written by one process materializes cleanly into any later
/// process's NodeManager.
///
/// Soundness story (the part that makes a *persistent* cache safe):
/// **cached invariants are candidates, never facts.**
///  * An **exact hit** (system and property hash both match) replays the
///    stored clauses through a one-step induction check over the *current*
///    system (`recertify`) — an independent SAT proof that the conjunction
///    is inductive and implies the targets. Only a passing check yields the
///    cached verdict; a failing one (corrupted entry, hash collision)
///    rejects the entry and falls back to a cold run.
///  * A **near miss** (state-signature similarity above the threshold)
///    feeds the surviving clause subset into PDR's *candidate* ("may") path
///    (`EngineOptions::pdr_candidate_lemmas`), where a wrong clause can cost
///    work but never soundness (docs/lemmas.md).
///  * A cache file that fails to parse — truncated, hand-edited, version
///    mismatch — is rejected and counted, never "best-effort" trusted.
///
/// Thread-safety: all methods are internally synchronized; lookups hand out
/// `shared_ptr<const CacheEntry>` so a concurrent store/invalidate can never
/// pull an entry out from under a reader.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/struct_hash.hpp"
#include "ir/transition_system.hpp"
#include "mc/engine.hpp"
#include "mc/exchange.hpp"
#include "util/thread_safety.hpp"

namespace genfv::serve {

/// One cached proof. `state_sigs` (per-state width + init/next structural
/// hash, declaration order) is what near-miss diffing runs against — the
/// original system is long gone when the edited design arrives.
struct CacheEntry {
  std::string design;  ///< informational only (reports, file headers)
  std::uint64_t sys_hash = 0;
  std::uint64_t prop_hash = 0;
  std::vector<ir::StateSig> state_sigs;
  std::size_t depth = 0;  ///< depth of the run that produced the proof
  std::vector<mc::ExchangedClause> clauses;  ///< the inductive invariant
};

enum class CacheOutcome {
  Miss,   ///< nothing usable
  Exact,  ///< sys+prop hash match; clauses are a recertification candidate
  Near,   ///< similar state space; clauses are PDR "may" candidates
};

std::string to_string(CacheOutcome outcome);

struct CacheLookup {
  CacheOutcome outcome = CacheOutcome::Miss;
  std::shared_ptr<const CacheEntry> entry;  ///< non-null unless Miss
  double similarity = 0.0;                  ///< state-signature match fraction
};

class ProofCache {
 public:
  struct Options {
    /// Directory for `<key>.pcache` files; "" = in-memory only.
    std::string dir;
    /// Minimum state-signature similarity for a near miss. Below it, warm
    /// starting would seed mostly-dead clauses — not unsound, just wasted
    /// candidate budget.
    double near_threshold = 0.5;
  };

  /// Loads every parseable entry under `options.dir` (when set); malformed
  /// files are counted as rejected and skipped.
  explicit ProofCache(Options options);

  /// Classify `ts` + targets against the cache. Exact beats Near; among
  /// near misses the highest-similarity entry wins.
  CacheLookup lookup(const ir::TransitionSystem& ts,
                     const std::vector<ir::NodeRef>& targets) const;

  /// Store a Proven result's invariant for `ts` + targets. Returns false —
  /// and stores nothing — unless the verdict is Proven and *every* invariant
  /// clause converts to the manager-neutral form (the set is only jointly
  /// inductive, so a partial store could never recertify).
  bool store(const std::string& design, const ir::TransitionSystem& ts,
             const std::vector<ir::NodeRef>& targets, const mc::EngineResult& result);

  /// Drop the entry for `sys_hash`/`prop_hash` (memory and disk) — called
  /// when recertification refutes it.
  void invalidate(std::uint64_t sys_hash, std::uint64_t prop_hash);

  std::size_t size() const;
  std::uint64_t rejected_files() const;

  /// Combined hash of a target set (order-sensitive: the target list is part
  /// of the job, not a bag).
  static std::uint64_t targets_hash(ir::StructHasher& hasher,
                                    const std::vector<ir::NodeRef>& targets);

  // --- entry (de)serialization, public for tests ----------------------------
  /// Text rendering of one entry (versioned header; line-based).
  static std::string render_entry(const CacheEntry& entry);
  /// Parse a rendering; throws ParseError (located "pcache:line N") on any
  /// malformed content — count mismatches, bad numbers, missing header.
  static CacheEntry parse_entry(const std::string& text);

 private:
  std::uint64_t load_dir();
  void persist(const CacheEntry& entry) const;
  static std::uint64_t entry_key(std::uint64_t sys_hash, std::uint64_t prop_hash);
  std::string entry_path(std::uint64_t key) const;

  const Options options_;
  mutable util::Mutex mu_{"serve.proof_cache"};
  std::map<std::uint64_t, std::shared_ptr<const CacheEntry>> entries_ GENFV_GUARDED_BY(mu_);
  std::uint64_t rejected_ GENFV_GUARDED_BY(mu_) = 0;
};

/// Independent re-certification of a cached invariant over the *current*
/// system: materialize every clause into `ts`'s manager and run a one-step
/// induction (`KInduction`, max_steps = 1) on targets ∧ clauses. Returns the
/// engine result — Proven means the cached verdict is re-established by a
/// fresh SAT proof; anything else means the entry must be rejected. Clauses
/// that do not fit `ts` (state index out of range) fail the certification
/// immediately rather than being silently dropped.
mc::EngineResult recertify(const ir::TransitionSystem& ts,
                           const std::vector<ir::NodeRef>& targets,
                           const CacheEntry& entry, const mc::EngineOptions& base);

/// Materialize the subset of `entry.clauses` that still fits `ts` — the
/// near-miss warm-start payload for `EngineOptions::pdr_candidate_lemmas`.
/// Out-of-range clauses are skipped (they name states the edit removed).
std::vector<ir::NodeRef> surviving_clauses(const ir::TransitionSystem& ts,
                                           const CacheEntry& entry);

}  // namespace genfv::serve
