#pragma once

/// \file json.hpp
/// Minimal JSON value + parser for the serve protocol (docs/serve.md).
///
/// The protocol is line-delimited JSON, one request/response object per
/// line, so the parser is a small recursive-descent over a single string.
/// Parse failures throw `ParseError` with a byte-offset location
/// ("json:byte 17") so every malformed-request class reported by the server
/// points at the offending byte — same located-error discipline as the
/// AIGER/BTOR2 frontends.
///
/// Numbers are stored as double (the protocol only carries small integers
/// and millisecond durations; 2^53 integer exactness is plenty). Object keys
/// keep insertion order so responses render deterministically.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace genfv::serve {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}          // NOLINT(google-explicit-constructor)
  Json(double n) : kind_(Kind::Number), num_(n) {}       // NOLINT(google-explicit-constructor)
  Json(std::int64_t n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(std::uint64_t n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(int n) : kind_(Kind::Number), num_(n) {}          // NOLINT(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : kind_(Kind::String), str_(s) {}  // NOLINT(google-explicit-constructor)
  Json(JsonArray a) : kind_(Kind::Array), arr_(std::move(a)) {}     // NOLINT(google-explicit-constructor)
  Json(JsonObject o) : kind_(Kind::Object), obj_(std::move(o)) {}   // NOLINT(google-explicit-constructor)

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* get(const std::string& key) const;

  /// Append/overwrite an object member (builder-style; requires Object or
  /// Null — a null value promotes to an empty object first).
  void set(const std::string& key, Json value);

  /// Compact single-line rendering (no trailing newline). Strings are
  /// escaped per RFC 8259; integral numbers render without a fraction.
  std::string dump() const;

  /// Parse exactly one JSON value from `text` (surrounding whitespace
  /// allowed, trailing garbage rejected). Throws ParseError, located as
  /// "json:byte N".
  static Json parse(const std::string& text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace genfv::serve
