#include "serve/worker_pool.hpp"

#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::serve {

WorkerPool::WorkerPool(std::size_t workers) {
  GENFV_ASSERT(workers >= 1, "WorkerPool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

WorkerPool::~WorkerPool() {
  drain();
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  watch_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  watchdog_.join();
}

bool WorkerPool::submit(const std::string& id, double deadline_ms, Work work) {
  auto control = std::make_shared<JobControl>();
  {
    util::MutexLock lock(mu_);
    if (draining_) return false;
    Job job;
    job.id = id;
    job.work = std::move(work);
    job.control = control;
    if (deadline_ms > 0) {
      job.has_deadline = true;
      job.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(
                         static_cast<std::int64_t>(deadline_ms * 1000.0));
      deadlines_.emplace_back(job.deadline, control);
    }
    queue_.push_back(std::move(job));
    util::metrics().counter("serve.pool.submitted").increment();
  }
  work_cv_.notify_one();
  watch_cv_.notify_one();
  return true;
}

bool WorkerPool::cancel(const std::string& id) {
  std::shared_ptr<JobControl> control;
  {
    util::MutexLock lock(mu_);
    for (const Job& job : queue_) {
      if (job.id == id) {
        control = job.control;
        break;
      }
    }
    if (control == nullptr) {
      for (const auto& [active_id, active_control] : active_) {
        if (active_id == id) {
          control = active_control;
          break;
        }
      }
    }
    if (control == nullptr) return false;
    ++cancelled_;
  }
  control->request_stop(StopReason::Cancel);
  return true;
}

void WorkerPool::drain() {
  util::MutexLock lock(mu_);
  draining_ = true;
  for (;;) {
    if (queue_.empty() && active_.empty()) break;
    idle_cv_.wait(mu_);
  }
}

WorkerPool::Stats WorkerPool::stats() const {
  util::MutexLock lock(mu_);
  Stats s;
  s.queued = queue_.size();
  s.active = active_.size();
  s.completed = completed_;
  s.cancelled = cancelled_;
  s.deadlined = deadlined_;
  return s;
}

void WorkerPool::worker_loop() {
  for (;;) {
    Job job;
    {
      util::MutexLock lock(mu_);
      for (;;) {
        if (!queue_.empty()) break;
        if (stopping_) return;
        work_cv_.wait(mu_);
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      active_.emplace_back(job.id, job.control);
    }
    job.work(*job.control);
    {
      util::MutexLock lock(mu_);
      for (auto it = active_.begin(); it != active_.end(); ++it) {
        if (it->second == job.control) {
          active_.erase(it);
          break;
        }
      }
      ++completed_;
      if (job.control->stop_reason() == StopReason::Deadline) ++deadlined_;
      for (auto it = deadlines_.begin(); it != deadlines_.end(); ++it) {
        if (it->second == job.control) {
          deadlines_.erase(it);
          break;
        }
      }
      util::metrics().counter("serve.pool.completed").increment();
      if (queue_.empty() && active_.empty()) idle_cv_.notify_all();
    }
  }
}

void WorkerPool::watchdog_loop() {
  util::MutexLock lock(mu_);
  for (;;) {
    if (stopping_) return;
    // Fire every deadline that has passed, forget controls of finished jobs
    // lazily (a fired control is harmless: request_stop is idempotent).
    const auto now = std::chrono::steady_clock::now();
    std::chrono::steady_clock::time_point next{};
    bool have_next = false;
    for (auto it = deadlines_.begin(); it != deadlines_.end();) {
      if (it->first <= now) {
        it->second->request_stop(StopReason::Deadline);
        it = deadlines_.erase(it);
      } else {
        if (!have_next || it->first < next) {
          next = it->first;
          have_next = true;
        }
        ++it;
      }
    }
    if (have_next) {
      const auto wait = next - std::chrono::steady_clock::now();
      if (wait > std::chrono::steady_clock::duration::zero()) {
        watch_cv_.wait_for(mu_, wait);
      }
    } else {
      watch_cv_.wait(mu_);
    }
  }
}

}  // namespace genfv::serve
