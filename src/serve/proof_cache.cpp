#include "serve/proof_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mc/pdr/cube.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

}  // namespace

std::string to_string(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::Miss: return "miss";
    case CacheOutcome::Exact: return "exact";
    case CacheOutcome::Near: return "near";
  }
  return "?";
}

std::uint64_t ProofCache::targets_hash(ir::StructHasher& hasher,
                                       const std::vector<ir::NodeRef>& targets) {
  // Chain property hashes order-sensitively; a different target list is a
  // different job even over the same system.
  std::uint64_t h = 0x7a26e75ULL;
  for (const ir::NodeRef t : targets) {
    h = h * 0x100000001b3ULL + hasher.property_hash(t);
  }
  return h;
}

std::uint64_t ProofCache::entry_key(std::uint64_t sys_hash, std::uint64_t prop_hash) {
  return sys_hash * 0x9e3779b97f4a7c15ULL + prop_hash;
}

std::string ProofCache::entry_path(std::uint64_t key) const {
  return options_.dir + "/" + hex64(key) + ".pcache";
}

ProofCache::ProofCache(Options options) : options_(std::move(options)) {
  if (!options_.dir.empty()) {
    std::filesystem::create_directories(options_.dir);
    const std::uint64_t rejected = load_dir();
    if (rejected > 0) {
      util::metrics().counter("serve.cache.rejected").add(rejected);
    }
  }
}

std::uint64_t ProofCache::load_dir() {
  std::uint64_t rejected = 0;
  std::map<std::uint64_t, std::shared_ptr<const CacheEntry>> loaded;
  for (const auto& dirent : std::filesystem::directory_iterator(options_.dir)) {
    if (dirent.path().extension() != ".pcache") continue;
    std::ifstream in(dirent.path());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      auto entry = std::make_shared<const CacheEntry>(parse_entry(buffer.str()));
      loaded[entry_key(entry->sys_hash, entry->prop_hash)] = std::move(entry);
    } catch (const Error&) {
      // Corrupted/truncated/foreign file: reject, never best-effort trust.
      ++rejected;
    }
  }
  util::MutexLock lock(mu_);
  entries_ = std::move(loaded);
  rejected_ += rejected;
  return rejected;
}

CacheLookup ProofCache::lookup(const ir::TransitionSystem& ts,
                               const std::vector<ir::NodeRef>& targets) const {
  ir::StructHasher hasher(ts);
  const std::uint64_t sys = hasher.system_hash();
  const std::uint64_t prop = targets_hash(hasher, targets);

  // Snapshot the table under the lock, then diff outside it: signature
  // diffing walks node DAGs and must not serialize concurrent lookups.
  std::vector<std::shared_ptr<const CacheEntry>> candidates;
  {
    util::MutexLock lock(mu_);
    const auto exact = entries_.find(entry_key(sys, prop));
    if (exact != entries_.end() && exact->second->sys_hash == sys &&
        exact->second->prop_hash == prop) {
      return CacheLookup{CacheOutcome::Exact, exact->second, 1.0};
    }
    candidates.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) candidates.push_back(entry);
  }

  CacheLookup best;
  for (const auto& entry : candidates) {
    const ir::StructDiff diff = ir::struct_diff(entry->state_sigs, ts);
    const double similarity = diff.similarity();
    if (similarity < options_.near_threshold || similarity <= best.similarity) {
      continue;
    }
    best = CacheLookup{CacheOutcome::Near, entry, similarity};
  }
  return best;
}

bool ProofCache::store(const std::string& design, const ir::TransitionSystem& ts,
                       const std::vector<ir::NodeRef>& targets,
                       const mc::EngineResult& result) {
  if (result.verdict != mc::Verdict::Proven || result.invariant.empty()) {
    return false;
  }
  auto entry = std::make_shared<CacheEntry>();
  entry->design = design;
  ir::StructHasher hasher(ts);
  entry->sys_hash = hasher.system_hash();
  entry->prop_hash = targets_hash(hasher, targets);
  entry->state_sigs = hasher.state_signatures();
  entry->depth = result.depth;
  entry->clauses.reserve(result.invariant.size());
  for (const ir::NodeRef expr : result.invariant) {
    const auto cube = mc::pdr::cube_of_clause(ts, expr);
    if (!cube.has_value()) {
      // The invariant is only *jointly* inductive; if one clause does not
      // round-trip through the neutral form, a partial store could never
      // recertify — store nothing.
      return false;
    }
    mc::ExchangedClause clause;
    clause.level = mc::kExchangeProvenLevel;
    clause.lits.reserve(cube->size());
    for (const auto& lit : *cube) {
      clause.lits.push_back(mc::ExchangedLit{lit.state, lit.bit, lit.negated});
    }
    entry->clauses.push_back(std::move(clause));
  }

  if (!options_.dir.empty()) persist(*entry);
  util::metrics().counter("serve.cache.stores").increment();
  util::MutexLock lock(mu_);
  entries_[entry_key(entry->sys_hash, entry->prop_hash)] = std::move(entry);
  return true;
}

void ProofCache::invalidate(std::uint64_t sys_hash, std::uint64_t prop_hash) {
  const std::uint64_t key = entry_key(sys_hash, prop_hash);
  {
    util::MutexLock lock(mu_);
    entries_.erase(key);
    ++rejected_;
  }
  util::metrics().counter("serve.cache.rejected").increment();
  if (!options_.dir.empty()) {
    std::error_code ec;  // removal failure is not an error: entry is gone from memory
    std::filesystem::remove(entry_path(key), ec);
  }
}

std::size_t ProofCache::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

std::uint64_t ProofCache::rejected_files() const {
  util::MutexLock lock(mu_);
  return rejected_;
}

void ProofCache::persist(const CacheEntry& entry) const {
  const std::uint64_t key = entry_key(entry.sys_hash, entry.prop_hash);
  const std::string path = entry_path(key);
  // Write-then-rename so a concurrent reader / crashed writer can never
  // observe a truncated entry (it would be rejected anyway, but noisily).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw UsageError("proof cache: cannot write '" + tmp + "'");
    out << render_entry(entry);
  }
  std::filesystem::rename(tmp, path);
}

std::string ProofCache::render_entry(const CacheEntry& entry) {
  std::ostringstream out;
  out << "# genfv-proof-cache 1\n";
  out << "design " << entry.design << "\n";
  out << "sys " << hex64(entry.sys_hash) << "\n";
  out << "prop " << hex64(entry.prop_hash) << "\n";
  out << "depth " << entry.depth << "\n";
  out << "states " << entry.state_sigs.size() << "\n";
  for (const auto& sig : entry.state_sigs) {
    out << "sig " << sig.width << " " << hex64(sig.sig) << "\n";
  }
  out << "clauses " << entry.clauses.size() << "\n";
  for (const auto& clause : entry.clauses) {
    out << "clause";
    for (const auto& lit : clause.lits) {
      out << " " << lit.state << "." << lit.bit << (lit.negated ? "-" : "+");
    }
    out << "\n";
  }
  return out.str();
}

namespace {

/// Line-based parser with located errors ("pcache:line N").
class EntryParser {
 public:
  explicit EntryParser(const std::string& text) : in_(text) {}

  CacheEntry run() {
    expect_line("# genfv-proof-cache 1");
    CacheEntry entry;
    entry.design = rest_of(next_line(), "design ");
    entry.sys_hash = parse_hex(rest_of(next_line(), "sys "));
    entry.prop_hash = parse_hex(rest_of(next_line(), "prop "));
    entry.depth = parse_count(rest_of(next_line(), "depth "));
    const std::size_t num_states = parse_count(rest_of(next_line(), "states "));
    entry.state_sigs.reserve(num_states);
    for (std::size_t i = 0; i < num_states; ++i) {
      std::istringstream fields(rest_of(next_line(), "sig "));
      ir::StateSig sig;
      std::string hex;
      if (!(fields >> sig.width >> hex) || sig.width == 0 || sig.width > 64) {
        fail("malformed state signature");
      }
      sig.sig = parse_hex(hex);
      entry.state_sigs.push_back(sig);
    }
    const std::size_t num_clauses = parse_count(rest_of(next_line(), "clauses "));
    entry.clauses.reserve(num_clauses);
    for (std::size_t i = 0; i < num_clauses; ++i) {
      entry.clauses.push_back(parse_clause(rest_of(next_line(), "clause")));
    }
    std::string trailing;
    if (std::getline(in_, trailing) && !trailing.empty()) {
      ++line_no_;
      fail("trailing content after the clause list");
    }
    return entry;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("pcache:line " + std::to_string(line_no_), what);
  }

  std::string next_line() {
    std::string line;
    if (!std::getline(in_, line)) fail("unexpected end of entry");
    ++line_no_;
    return line;
  }

  void expect_line(const std::string& expected) {
    if (next_line() != expected) fail("expected '" + expected + "'");
  }

  std::string rest_of(const std::string& line, const std::string& prefix) {
    if (line.size() < prefix.size() || line.compare(0, prefix.size(), prefix) != 0) {
      fail("expected a '" + prefix + "' line");
    }
    return line.substr(prefix.size());
  }

  std::uint64_t parse_hex(const std::string& text) {
    std::uint64_t v = 0;
    if (text.empty() || text.size() > 16) fail("malformed hash");
    for (const char c : text) {
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
      else fail("malformed hash");
    }
    return v;
  }

  std::size_t parse_count(const std::string& text) {
    if (text.empty()) fail("malformed count");
    std::size_t v = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') fail("malformed count");
      if (v > (std::size_t(-1) - 9) / 10) fail("count out of range");
      v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    return v;
  }

  mc::ExchangedClause parse_clause(const std::string& body) {
    mc::ExchangedClause clause;
    clause.level = mc::kExchangeProvenLevel;
    std::istringstream fields(body);
    std::string token;
    while (fields >> token) {
      const std::size_t dot = token.find('.');
      if (dot == std::string::npos || dot == 0 || dot + 2 > token.size()) {
        fail("malformed clause literal");
      }
      const char polarity = token.back();
      if (polarity != '+' && polarity != '-') fail("malformed clause literal");
      mc::ExchangedLit lit;
      lit.state = static_cast<std::uint32_t>(
          parse_count(token.substr(0, dot)));
      lit.bit = static_cast<std::uint32_t>(
          parse_count(token.substr(dot + 1, token.size() - dot - 2)));
      lit.negated = polarity == '-';
      clause.lits.push_back(lit);
    }
    if (clause.lits.empty()) fail("empty clause");
    return clause;
  }

  std::istringstream in_;
  std::size_t line_no_ = 0;
};

}  // namespace

CacheEntry ProofCache::parse_entry(const std::string& text) {
  return EntryParser(text).run();
}

mc::EngineResult recertify(const ir::TransitionSystem& ts,
                           const std::vector<ir::NodeRef>& targets,
                           const CacheEntry& entry, const mc::EngineOptions& base) {
  std::vector<ir::NodeRef> goals = targets;
  goals.reserve(targets.size() + entry.clauses.size());
  for (const auto& clause : entry.clauses) {
    const ir::NodeRef expr = mc::materialize(clause, ts);
    if (expr == nullptr) {
      // The clause names a state this system does not have: the entry cannot
      // certify here, report the refutation without burning SAT time.
      mc::EngineResult failed;
      failed.verdict = mc::Verdict::Unknown;
      return failed;
    }
    goals.push_back(expr);
  }
  // One-step induction over targets ∧ clauses: init ⊨ all, and all at frame
  // k force all at frame k+1 — the textbook inductive-invariant check,
  // discharged by an independent SAT run over the *current* system.
  mc::EngineOptions options = base;
  options.max_steps = 1;
  options.lemmas.clear();
  options.pdr_candidate_lemmas.clear();
  options.pdr_seed_candidates = false;
  const auto engine = mc::make_engine(mc::EngineKind::KInduction, ts, options);
  return engine->prove_all(goals);
}

std::vector<ir::NodeRef> surviving_clauses(const ir::TransitionSystem& ts,
                                           const CacheEntry& entry) {
  std::vector<ir::NodeRef> survivors;
  survivors.reserve(entry.clauses.size());
  for (const auto& clause : entry.clauses) {
    const ir::NodeRef expr = mc::materialize(clause, ts);
    if (expr != nullptr) survivors.push_back(expr);
  }
  return survivors;
}

}  // namespace genfv::serve
