#pragma once

/// \file server.hpp
/// The resident verification server behind `tools/genfv_serve.cpp`.
///
/// Transport-agnostic core: `handle_line` consumes one request line and
/// emits every response line — immediate protocol errors and asynchronous
/// job completions alike — through a caller-supplied sink. `run_stdio` and
/// `run_socket` are thin transports over it (stdin/stdout pipe mode for
/// scripting, an AF_UNIX stream socket for concurrent clients).
///
/// Protocol (one JSON object per line; full schema in docs/serve.md):
///   {"id": ..., "op": "verify", "design"|"file"|"rtl": ..., ...}
///   {"id": ..., "op": "cancel", "job": <verify id>}
///   {"id": ..., "op": "status"}
///   {"id": ..., "op": "shutdown"}
///
/// Every request is answered by exactly one response object carrying the
/// request's `id`; malformed requests get `"ok": false` with a stable
/// `error` class and a located `message`. Verify responses report the
/// verdict plus the run's effort counters and how the proof cache
/// participated ("cache": "miss" | "hit" | "near" | "rejected" | "off").
///
/// Session reuse: tasks are expensive to elaborate, so finished jobs return
/// their `flow::EngineSession` to a per-source idle pool; a resubmission
/// checks the session out instead of re-elaborating. The pool key covers
/// everything that feeds elaboration: the source (design name; file path +
/// on-disk mtime/size, so an edited file re-elaborates; RTL text + the full
/// 'properties' list) plus the 'property' filter. Sessions move between
/// threads but are only ever *used* by one job at a time (the checkout
/// hand-off is the synchronization point); concurrent jobs on one source
/// each get their own session.

#include <atomic>
#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "flow/session.hpp"
#include "serve/json.hpp"
#include "serve/proof_cache.hpp"
#include "serve/worker_pool.hpp"
#include "util/thread_safety.hpp"

namespace genfv::serve {

struct ServerOptions {
  /// Worker-pool width (concurrent verify jobs).
  std::size_t workers = 2;
  /// Proof cache on by default; "cache": false per request opts out too.
  bool cache = true;
  /// Cache persistence directory; "" keeps the cache in memory only.
  std::string cache_dir;
  /// Near-miss similarity threshold (ProofCache::Options).
  double near_threshold = 0.5;
  /// Default engine bound when a request carries no "max_k".
  std::size_t default_max_steps = 32;
  /// Default engine when a request carries no "engine".
  std::string default_engine = "pdr";
};

class Server {
 public:
  /// Emits one complete response line (no trailing newline). Worker threads
  /// call it for job completions, so implementations must be thread-safe.
  using Sink = std::function<void(const std::string&)>;

  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parse and dispatch one request line. Thread-safe; never throws —
  /// malformed input becomes an error response through `send`.
  void handle_line(const std::string& line, const Sink& send);

  /// Serve `in` line by line until EOF or a shutdown op; responses to `out`.
  void run_stdio(std::istream& in, std::ostream& out);

  /// Bind an AF_UNIX stream socket at `path` and serve concurrent clients
  /// until a shutdown op (or begin_shutdown). Each connection gets a reader
  /// thread; responses are written per-connection under a send mutex.
  /// Throws UsageError when the socket cannot be bound.
  void run_socket(const std::string& path);

  /// Stop admitting verify jobs and drain the in-flight ones (the shutdown
  /// op). Idempotent; blocks until drained.
  void begin_shutdown();
  /// Async-signal-safe half of begin_shutdown: flip the flag, touch no
  /// locks. The transport loops notice within their poll timeout and finish
  /// the drain on their own thread.
  void request_shutdown() noexcept {
    shutting_down_.store(true, std::memory_order_relaxed);
  }
  bool shutting_down() const noexcept {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  ProofCache& cache() noexcept { return cache_; }
  WorkerPool& pool() noexcept { return pool_; }

  /// Cache-participation counters, exposed for the status op and tests.
  std::uint64_t cache_hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t cache_near_hits() const noexcept { return near_.load(std::memory_order_relaxed); }
  std::uint64_t cache_misses() const noexcept { return misses_.load(std::memory_order_relaxed); }
  /// Verify responses emitted. Unlike the pool's `completed` (which counts a
  /// job only once the worker retires it, so it can lag a just-received
  /// response by one), this is incremented *before* the response is sent: a
  /// client that has N verify responses in hand always reads `answered` >= N.
  std::uint64_t jobs_answered() const noexcept {
    return answered_.load(std::memory_order_relaxed);
  }

 private:
  struct PreparedJob;

  void dispatch(const Json& request, const Sink& send);
  void handle_verify(const Json& request, const std::string& id, const Sink& send);
  void run_verify_job(const std::shared_ptr<PreparedJob>& job, JobControl& control);
  /// Count + emit a verify job's response (see jobs_answered).
  void answer(const PreparedJob& job, const Json& response);

  std::shared_ptr<flow::EngineSession> checkout_session(const std::string& key,
                                                        const Json& request);
  void return_session(const std::string& key, std::shared_ptr<flow::EngineSession> session);

  const ServerOptions options_;
  ProofCache cache_;
  WorkerPool pool_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> near_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> answered_{0};
  util::Mutex sessions_mu_{"serve.sessions"};
  std::map<std::string, std::vector<std::shared_ptr<flow::EngineSession>>> idle_sessions_
      GENFV_GUARDED_BY(sessions_mu_);
};

}  // namespace genfv::serve
