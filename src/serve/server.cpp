#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <exception>
#include <filesystem>
#include <thread>
#include <utility>

#include "designs/design.hpp"
#include "util/log.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::serve {

namespace {

/// A request that failed validation. `code` is the stable machine-readable
/// error class the protocol documents (docs/serve.md); the message carries
/// the located human detail.
class ProtocolError : public Error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : Error(message), code_(std::move(code)) {}
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

Json error_response(const Json& id, const std::string& code, const std::string& message) {
  Json response;
  response.set("id", id);
  response.set("ok", false);
  response.set("error", code);
  response.set("message", message);
  return response;
}

/// The request id, echoed on every response. Restricted to strings and
/// numbers so it can double as the cancel handle.
Json request_id(const Json& request) {
  const Json* id = request.get("id");
  if (id == nullptr) throw ProtocolError("missing-id", "request carries no 'id'");
  if (!id->is_string() && !id->is_number()) {
    throw ProtocolError("bad-id", "'id' must be a string or a number");
  }
  return *id;
}

std::string id_key(const Json& id) { return id.dump(); }

const Json* optional_field(const Json& request, const std::string& name,
                           Json::Kind kind, const char* kind_name) {
  const Json* field = request.get(name);
  if (field == nullptr) return nullptr;
  if (field->kind() != kind) {
    throw ProtocolError("bad-field", "'" + name + "' must be " + kind_name);
  }
  return field;
}

double job_wall_ms(const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::None: return "";
    case StopReason::Cancel: return "cancel";
    case StopReason::Deadline: return "deadline";
    case StopReason::Shutdown: return "shutdown";
  }
  return "";
}

}  // namespace

struct Server::PreparedJob {
  Json id;
  std::string id_text;
  Sink send;
  std::string session_key;
  std::shared_ptr<flow::EngineSession> session;
  mc::EngineKind kind = mc::EngineKind::Pdr;
  std::string engine_name;
  std::size_t max_steps = 32;
  bool use_cache = true;
  std::string design_label;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(ProofCache::Options{options_.cache_dir, options_.near_threshold}),
      pool_(options_.workers == 0 ? 1 : options_.workers) {}

Server::~Server() { begin_shutdown(); }

void Server::begin_shutdown() {
  shutting_down_.store(true, std::memory_order_relaxed);
  pool_.drain();
}

void Server::handle_line(const std::string& line, const Sink& send) {
  // Blank lines are keep-alives, not protocol errors.
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;

  Json request;
  try {
    request = Json::parse(line);
  } catch (const ParseError& e) {
    send(error_response(Json(), "bad-json", e.what()).dump());
    return;
  }
  if (!request.is_object()) {
    send(error_response(Json(), "not-an-object",
                        "request must be a JSON object").dump());
    return;
  }

  Json id;
  try {
    id = request_id(request);
  } catch (const ProtocolError& e) {
    send(error_response(Json(), e.code(), e.what()).dump());
    return;
  }

  try {
    dispatch(request, send);
  } catch (const ProtocolError& e) {
    send(error_response(id, e.code(), e.what()).dump());
  } catch (const Error& e) {
    // Anything the validation layer did not classify (an engine-layer throw
    // during eager task construction) still answers the request.
    send(error_response(id, "internal", e.what()).dump());
  }
}

void Server::dispatch(const Json& request, const Sink& send) {
  const Json id = request_id(request);
  const Json* op = request.get("op");
  if (op == nullptr) throw ProtocolError("missing-op", "request carries no 'op'");
  if (!op->is_string()) throw ProtocolError("missing-op", "'op' must be a string");
  const std::string& name = op->as_string();

  if (name == "verify") {
    handle_verify(request, id_key(id), send);
    return;
  }
  if (name == "cancel") {
    const Json* job = request.get("job");
    if (job == nullptr || (!job->is_string() && !job->is_number())) {
      throw ProtocolError("bad-field", "'job' must name a verify request id");
    }
    Json response;
    response.set("id", id);
    response.set("ok", true);
    response.set("cancelled", pool_.cancel(id_key(*job)));
    send(response.dump());
    return;
  }
  if (name == "status") {
    const WorkerPool::Stats stats = pool_.stats();
    Json response;
    response.set("id", id);
    response.set("ok", true);
    response.set("workers", static_cast<std::uint64_t>(pool_.worker_count()));
    response.set("queued", static_cast<std::uint64_t>(stats.queued));
    response.set("active", static_cast<std::uint64_t>(stats.active));
    response.set("completed", stats.completed);
    response.set("answered", jobs_answered());
    response.set("cancelled", stats.cancelled);
    response.set("deadlined", stats.deadlined);
    response.set("cache_size", static_cast<std::uint64_t>(cache_.size()));
    response.set("cache_hits", cache_hits());
    response.set("cache_near_hits", cache_near_hits());
    response.set("cache_misses", cache_misses());
    response.set("cache_rejected", cache_.rejected_files());
    response.set("draining", shutting_down());
    send(response.dump());
    return;
  }
  if (name == "shutdown") {
    Json response;
    response.set("id", id);
    response.set("ok", true);
    response.set("draining", true);
    send(response.dump());
    // Drain *after* acknowledging: in-flight jobs still emit their own
    // responses while we block here; transports exit once this returns.
    begin_shutdown();
    return;
  }
  throw ProtocolError("unknown-op", "unknown op '" + name + "'");
}

std::shared_ptr<flow::EngineSession> Server::checkout_session(const std::string& key,
                                                              const Json& request) {
  {
    util::MutexLock lock(sessions_mu_);
    auto it = idle_sessions_.find(key);
    if (it != idle_sessions_.end() && !it->second.empty()) {
      auto session = std::move(it->second.back());
      it->second.pop_back();
      util::metrics().counter("serve.sessions.reused").increment();
      return session;
    }
  }

  // Build a fresh task for the request source. Source errors surface as the
  // protocol's located error classes.
  flow::VerificationTask task;
  if (const Json* design = optional_field(request, "design", Json::Kind::String,
                                          "a string")) {
    try {
      task = designs::make_task(design->as_string());
    } catch (const Error& e) {
      throw ProtocolError("unknown-design", e.what());
    }
  } else if (const Json* file = optional_field(request, "file", Json::Kind::String,
                                               "a string")) {
    try {
      task = flow::VerificationTask::from_file(file->as_string());
    } catch (const Error& e) {
      throw ProtocolError("bad-file", e.what());
    }
  } else if (const Json* rtl = optional_field(request, "rtl", Json::Kind::String,
                                              "a string")) {
    std::vector<flow::TargetSpec> targets;
    const Json* properties = request.get("properties");
    if (properties != nullptr) {
      if (!properties->is_array()) {
        throw ProtocolError("bad-field", "'properties' must be an array");
      }
      for (const Json& p : properties->as_array()) {
        if (p.is_string()) {
          targets.push_back(flow::TargetSpec{
              "p" + std::to_string(targets.size()), p.as_string()});
        } else if (p.is_object() && p.get("sva") != nullptr &&
                   p.get("sva")->is_string()) {
          const Json* prop_name = p.get("name");
          targets.push_back(flow::TargetSpec{
              prop_name != nullptr && prop_name->is_string()
                  ? prop_name->as_string()
                  : "p" + std::to_string(targets.size()),
              p.get("sva")->as_string()});
        } else {
          throw ProtocolError("bad-field",
                              "'properties' entries must be SVA strings or "
                              "{name, sva} objects");
        }
      }
    }
    try {
      task = flow::VerificationTask::from_rtl("serve_rtl", "", rtl->as_string(),
                                              targets);
    } catch (const Error& e) {
      throw ProtocolError("bad-rtl", e.what());
    }
  } else {
    throw ProtocolError("missing-source",
                        "verify needs exactly one of 'design', 'file', 'rtl'");
  }

  // Optional target filter by property name.
  if (const Json* property = optional_field(request, "property", Json::Kind::String,
                                            "a string")) {
    std::vector<std::size_t> filtered;
    for (const std::size_t i : task.target_indices) {
      if (task.ts.property(i).name == property->as_string()) filtered.push_back(i);
    }
    if (filtered.empty()) {
      throw ProtocolError("unknown-property",
                          "no target property named '" + property->as_string() + "'");
    }
    task.target_indices = std::move(filtered);
  }
  if (task.target_indices.empty()) {
    throw ProtocolError("no-targets", "the source carries no target properties");
  }
  util::metrics().counter("serve.sessions.created").increment();
  return std::make_shared<flow::EngineSession>(std::move(task));
}

void Server::return_session(const std::string& key,
                            std::shared_ptr<flow::EngineSession> session) {
  util::MutexLock lock(sessions_mu_);
  idle_sessions_[key].push_back(std::move(session));
}

void Server::handle_verify(const Json& request, const std::string& id_text,
                           const Sink& send) {
  if (shutting_down()) {
    throw ProtocolError("server-draining",
                        "server is draining; new verify jobs are rejected");
  }

  auto job = std::make_shared<PreparedJob>();
  job->id = request_id(request);
  job->id_text = id_text;
  job->send = send;

  // Exactly one source selector.
  int sources = 0;
  for (const char* field : {"design", "file", "rtl"}) {
    if (request.get(field) != nullptr) ++sources;
  }
  if (sources > 1) {
    throw ProtocolError("conflicting-source",
                        "give exactly one of 'design', 'file', 'rtl'");
  }

  job->engine_name = options_.default_engine;
  if (const Json* engine = optional_field(request, "engine", Json::Kind::String,
                                          "a string")) {
    job->engine_name = engine->as_string();
  }
  const auto kind = mc::engine_kind_from_string(job->engine_name);
  if (!kind.has_value()) {
    throw ProtocolError("unknown-engine", "unknown engine '" + job->engine_name + "'");
  }
  job->kind = *kind;

  job->max_steps = options_.default_max_steps;
  if (const Json* max_k = optional_field(request, "max_k", Json::Kind::Number,
                                         "a number")) {
    if (max_k->as_number() < 0) {
      throw ProtocolError("bad-field", "'max_k' must be non-negative");
    }
    job->max_steps = static_cast<std::size_t>(max_k->as_number());
  }

  job->use_cache = options_.cache;
  if (const Json* cache = optional_field(request, "cache", Json::Kind::Bool,
                                         "a boolean")) {
    job->use_cache = cache->as_bool();
  }

  double deadline_ms = 0.0;
  if (const Json* deadline = optional_field(request, "deadline_ms", Json::Kind::Number,
                                            "a number")) {
    if (deadline->as_number() <= 0) {
      throw ProtocolError("bad-field", "'deadline_ms' must be positive");
    }
    deadline_ms = deadline->as_number();
  }

  // Session key: everything that feeds elaboration (different keys must
  // never share an elaborated session; a stale reuse answers for the wrong
  // design or the wrong property set).
  const Json* design = request.get("design");
  const Json* file = request.get("file");
  const Json* rtl = request.get("rtl");
  if (design != nullptr && design->is_string()) {
    job->session_key = "design:" + design->as_string();
    job->design_label = design->as_string();
  } else if (file != nullptr && file->is_string()) {
    // Mix the file's on-disk identity (mtime + size) into the key: the
    // regression-farm loop this server targets edits files in place between
    // submissions, and a reused session must not pin the old content. When
    // the stat fails the key stays path-only and checkout_session's
    // from_file reports the located bad-file error.
    job->session_key = "file:" + file->as_string();
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(file->as_string(), ec);
    if (!ec) {
      const std::uintmax_t size = std::filesystem::file_size(file->as_string(), ec);
      if (!ec) {
        job->session_key += "@" +
                            std::to_string(mtime.time_since_epoch().count()) +
                            "." + std::to_string(size);
      }
    }
    job->design_label = file->as_string();
  } else if (rtl != nullptr && rtl->is_string()) {
    // The property list is part of the key: identical RTL verified against
    // different property sets elaborates different target sets. The dump
    // goes first, newline-terminated — Json::dump never emits a raw
    // newline, so the free-form RTL text cannot forge another key.
    const Json* properties = request.get("properties");
    job->session_key =
        "rtl:" + (properties != nullptr ? properties->dump() : std::string()) +
        "\n" + rtl->as_string();
    job->design_label = "rtl";
  }
  if (const Json* property = request.get("property")) {
    if (property->is_string()) {
      job->session_key += "|property=" + property->as_string();
    }
  }

  // Eager task construction: source errors answer the request synchronously
  // (and located), instead of surfacing later from a worker thread.
  job->session = checkout_session(job->session_key, request);

  const bool submitted = pool_.submit(
      job->id_text, deadline_ms,
      [this, job](JobControl& control) { run_verify_job(job, control); });
  if (!submitted) {
    return_session(job->session_key, std::move(job->session));
    throw ProtocolError("server-draining",
                        "server is draining; new verify jobs are rejected");
  }
}

void Server::answer(const PreparedJob& job, const Json& response) {
  // Incremented before the send: a client holding N verify responses always
  // reads `answered` >= N from a later status op, with no retirement lag.
  answered_.fetch_add(1, std::memory_order_relaxed);
  job.send(response.dump());
}

void Server::run_verify_job(const std::shared_ptr<PreparedJob>& job,
                            JobControl& control) {
  const auto start = std::chrono::steady_clock::now();
  Json response;
  response.set("id", job->id);

  // Cancelled while still queued: answer without spinning up an engine.
  if (control.stopped()) {
    response.set("ok", true);
    response.set("verdict", "unknown");
    response.set("cache", job->use_cache ? "miss" : "off");
    response.set("stopped", stop_reason_name(control.stop_reason()));
    response.set("wall_ms", job_wall_ms(start));
    return_session(job->session_key, job->session);
    answer(*job, response);
    return;
  }

  try {
    flow::EngineSession& session = *job->session;
    // Hash/lookup must see the pristine system, not a previous job's residue.
    session.reset();
    const ir::TransitionSystem& ts = session.task().ts;
    const std::vector<ir::NodeRef> targets = session.task().target_exprs();

    mc::EngineOptions options;
    options.max_steps = job->max_steps;
    options.stop = control.stop;

    std::string cache_status = job->use_cache ? "miss" : "off";
    CacheLookup lookup;
    if (job->use_cache) {
      GENFV_TRACE_SPAN("serve", "cache_lookup");
      lookup = cache_.lookup(ts, targets);
    }

    if (lookup.outcome == CacheOutcome::Exact) {
      GENFV_TRACE_SPAN("serve", "recertify");
      mc::EngineResult certified = recertify(ts, targets, *lookup.entry, options);
      if (certified.verdict == mc::Verdict::Proven) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        util::metrics().counter("serve.cache.hits").increment();
        certified.stats.publish_metrics("serve.job.");
        response.set("ok", true);
        response.set("verdict", "proven");
        response.set("depth", static_cast<std::uint64_t>(lookup.entry->depth));
        response.set("engine", "cache+recertify");
        response.set("cache", "hit");
        response.set("conflicts", certified.stats.conflicts);
        response.set("sat_calls", static_cast<std::uint64_t>(certified.stats.sat_calls));
        response.set("candidates_seeded", std::uint64_t{0});
        response.set("wall_ms", job_wall_ms(start));
        return_session(job->session_key, job->session);
        answer(*job, response);
        return;
      }
      // The entry failed its independent re-certification. Only a check
      // that ran to completion refutes it (corrupted store, hash
      // collision): drop those. A check interrupted by the stop flag
      // (cancel/deadline trips options.stop mid-induction) says nothing
      // about the entry — keep it for the next request and fall through
      // to the cold/stopped path.
      if (!control.stopped()) {
        cache_.invalidate(lookup.entry->sys_hash, lookup.entry->prop_hash);
        cache_status = "rejected";
      }
      lookup = CacheLookup{};
    }

    if (lookup.outcome == CacheOutcome::Near) {
      near_.fetch_add(1, std::memory_order_relaxed);
      util::metrics().counter("serve.cache.near_hits").increment();
      // Surviving clauses enter as *candidates* under the may-proof
      // discipline — a stale clause costs work, never soundness.
      options.pdr_seed_candidates = true;
      options.pdr_candidate_lemmas = surviving_clauses(ts, *lookup.entry);
      cache_status = "near";
    } else if (job->use_cache && cache_status == "miss") {
      misses_.fetch_add(1, std::memory_order_relaxed);
      util::metrics().counter("serve.cache.misses").increment();
    }

    mc::EngineResult result;
    {
      GENFV_TRACE_SPAN("serve", "job");
      result = session.run_job(job->kind, options);
    }
    result.stats.publish_metrics("serve.job.");

    if (job->use_cache && result.verdict == mc::Verdict::Proven &&
        !control.stopped()) {
      cache_.store(job->design_label, ts, targets, result);
    }

    response.set("ok", true);
    response.set("verdict", mc::to_string(result.verdict));
    response.set("depth", static_cast<std::uint64_t>(result.depth));
    response.set("engine", job->engine_name);
    response.set("cache", cache_status);
    response.set("conflicts", result.stats.conflicts);
    response.set("sat_calls", static_cast<std::uint64_t>(result.stats.sat_calls));
    response.set("candidates_seeded", result.stats.candidates_seeded);
    response.set("candidates_graduated", result.stats.candidates_graduated);
    if (!result.winner.empty()) response.set("winner", result.winner);
    const StopReason reason = control.stop_reason();
    if (reason != StopReason::None) {
      response.set("stopped", stop_reason_name(reason));
    }
    response.set("wall_ms", job_wall_ms(start));
  } catch (const Error& e) {
    response = error_response(job->id, "job-failed", e.what());
    response.set("wall_ms", job_wall_ms(start));
  } catch (const std::exception& e) {
    // Engine code throws genfv Error, but the stdlib underneath it may not
    // (bad_alloc, filesystem): a worker thread must still answer the
    // request and return the session, never std::terminate the daemon.
    response = error_response(job->id, "internal", e.what());
    response.set("wall_ms", job_wall_ms(start));
  } catch (...) {
    response = error_response(job->id, "internal", "unrecognized exception");
    response.set("wall_ms", job_wall_ms(start));
  }
  return_session(job->session_key, job->session);
  answer(*job, response);
}

void Server::run_stdio(std::istream& in, std::ostream& out) {
  util::Mutex out_mu("serve.stdio_out");
  const Sink sink = [&out, &out_mu](const std::string& line) {
    util::MutexLock lock(out_mu);
    out << line << "\n" << std::flush;
  };
  std::string line;
  while (!shutting_down() && std::getline(in, line)) {
    handle_line(line, sink);
  }
  begin_shutdown();
}

// --- AF_UNIX socket transport ------------------------------------------------

namespace {

/// Per-connection state shared between the accept loop (which reaps it and
/// may shut the socket down), the reader thread, and any in-flight job's
/// sink. shared_ptr-owned: a job submitted just before the client hung up
/// keeps the state (and fd) alive until its response is delivered; the last
/// owner closes the fd.
struct Connection {
  int fd = -1;
  util::Mutex send_mu{"serve.conn_send"};
  std::thread reader;
  /// Set by the reader as its last action; tells the accept loop this
  /// connection is ready to be joined and dropped.
  std::atomic<bool> done{false};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; its responses die with it
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

void Server::run_socket(const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) throw UsageError("serve: cannot create a unix socket");
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(listen_fd);
    throw UsageError("serve: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    throw UsageError("serve: cannot bind '" + path + "'");
  }
  GENFV_LOG(Info, "serve") << "listening on " << path;

  std::vector<std::shared_ptr<Connection>> connections;
  const auto reap_finished = [&connections] {
    for (auto it = connections.begin(); it != connections.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->reader.join();
        // Dropping our reference closes the fd — unless a still-running job
        // holds the sink, in which case the fd lives until that response.
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!shutting_down()) {
    // A resident daemon serves many short-lived clients: sweep hung-up
    // connections every loop iteration or each one leaks a joinable thread
    // and (once its jobs finish) an fd until shutdown.
    reap_finished();
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->reader = std::thread([this, conn] {
      const Sink sink = [conn](const std::string& line) {
        util::MutexLock lock(conn->send_mu);
        send_all(conn->fd, line + "\n");
      };
      std::string buffer;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = buffer.find('\n')) != std::string::npos) {
          const std::string line = buffer.substr(0, newline);
          buffer.erase(0, newline + 1);
          handle_line(line, sink);
        }
      }
      conn->done.store(true, std::memory_order_release);
    });
    connections.push_back(std::move(conn));
  }

  // Graceful close: drain in-flight jobs (idempotent after a shutdown op,
  // necessary after a signal-driven request_shutdown), then shut the
  // sockets down to unblock the reader threads' recv.
  begin_shutdown();
  for (const auto& conn : connections) ::shutdown(conn->fd, SHUT_RDWR);
  for (const auto& conn : connections) conn->reader.join();
  connections.clear();
  ::close(listen_fd);
  ::unlink(path.c_str());
}

}  // namespace genfv::serve
