#pragma once

/// \file worker_pool.hpp
/// Bounded worker pool for the verification server: FIFO job queue, per-job
/// cooperative cancellation, per-job deadlines, graceful drain.
///
/// Cancellation model — cooperative all the way down, matching the engine
/// stack: every job owns a `std::shared_ptr<std::atomic<bool>>` stop flag
/// (the exact object `mc::EngineOptions::stop` takes) plus a reason code.
/// `cancel()` and the deadline watchdog only ever *set* the flag; the job
/// body polls it (the engines poll between SAT queries). A job cancelled
/// while still queued is not skipped — its body runs with the flag already
/// set, so it can still emit its response ("stopped": "cancel") through
/// whatever sink it captured; the pool never needs a response channel of its
/// own.
///
/// Drain model: `drain()` stops admitting (`submit` returns false), then
/// blocks until queue and in-flight jobs hit zero — in-flight jobs finish
/// normally, which is what "graceful shutdown drains in-flight jobs" means.
/// The destructor drains and joins.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace genfv::serve {

/// Why a job's stop flag was raised. Engines only see the bool; the server
/// reads the reason afterwards to label the response.
enum class StopReason : int { None = 0, Cancel = 1, Deadline = 2, Shutdown = 3 };

/// Per-job cancellation handle, shared between the pool (which sets it) and
/// the job body (which polls it).
struct JobControl {
  std::shared_ptr<std::atomic<bool>> stop = std::make_shared<std::atomic<bool>>(false);
  std::atomic<int> reason{static_cast<int>(StopReason::None)};

  bool stopped() const noexcept { return stop->load(std::memory_order_relaxed); }
  StopReason stop_reason() const noexcept {
    return static_cast<StopReason>(reason.load(std::memory_order_relaxed));
  }
  /// First caller wins: a job cannot be "cancelled" after its deadline fired.
  void request_stop(StopReason why) noexcept {
    int expected = static_cast<int>(StopReason::None);
    reason.compare_exchange_strong(expected, static_cast<int>(why),
                                   std::memory_order_relaxed);
    stop->store(true, std::memory_order_relaxed);
  }
};

class WorkerPool {
 public:
  using Work = std::function<void(JobControl& control)>;

  struct Stats {
    std::size_t queued = 0;
    std::size_t active = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;   ///< jobs whose flag was raised by cancel()
    std::uint64_t deadlined = 0;   ///< jobs whose flag was raised by the watchdog
  };

  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueue a job. `id` is the caller's handle for cancel(); duplicates are
  /// allowed (cancel hits the oldest live one). `deadline_ms <= 0` means no
  /// deadline. Returns false (job not enqueued) once draining started.
  bool submit(const std::string& id, double deadline_ms, Work work);

  /// Raise the stop flag of the oldest queued-or-running job with this id.
  /// Returns false when no live job matches (already finished or never seen).
  bool cancel(const std::string& id);

  /// Stop admitting and wait for every queued + in-flight job to finish.
  /// Idempotent; concurrent callers all block until empty.
  void drain();

  Stats stats() const;

 private:
  struct Job {
    std::string id;
    Work work;
    std::shared_ptr<JobControl> control;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void worker_loop();
  void watchdog_loop();

  mutable util::Mutex mu_{"serve.pool"};
  util::CondVar work_cv_;   // workers wait: queue non-empty or stopping
  util::CondVar idle_cv_;   // drain() waits: queue empty and nothing active
  util::CondVar watch_cv_;  // watchdog waits: next deadline or new job
  std::deque<Job> queue_ GENFV_GUARDED_BY(mu_);
  /// Controls of jobs currently being executed, still addressable by cancel.
  std::vector<std::pair<std::string, std::shared_ptr<JobControl>>> active_
      GENFV_GUARDED_BY(mu_);
  bool draining_ GENFV_GUARDED_BY(mu_) = false;
  bool stopping_ GENFV_GUARDED_BY(mu_) = false;
  std::uint64_t completed_ GENFV_GUARDED_BY(mu_) = 0;
  std::uint64_t cancelled_ GENFV_GUARDED_BY(mu_) = 0;
  std::uint64_t deadlined_ GENFV_GUARDED_BY(mu_) = 0;
  /// Deadlines the watchdog still tracks (queued or running jobs).
  std::vector<std::pair<std::chrono::steady_clock::time_point,
                        std::shared_ptr<JobControl>>>
      deadlines_ GENFV_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // joined by the destructor; not guarded
  std::thread watchdog_;              // joined by the destructor; not guarded
};

}  // namespace genfv::serve
