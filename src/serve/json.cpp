#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/status.hpp"

namespace genfv::serve {

const Json* Json::get(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  GENFV_ASSERT(kind_ == Kind::Object, "Json::set on a non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(key, std::move(value));
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Json& v, std::string& out) {
  switch (v.kind()) {
    case Json::Kind::Null:
      out += "null";
      break;
    case Json::Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Kind::Number: {
      const double n = v.as_number();
      char buf[32];
      if (std::floor(n) == n && std::abs(n) < 9.0e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", n);
      }
      out += buf;
      break;
    }
    case Json::Kind::String:
      dump_string(v.as_string(), out);
      break;
    case Json::Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      break;
    }
    case Json::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        dump_value(e, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json:byte " + std::to_string(pos_), what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t i = 0;
    while (w[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != w[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_word("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Json();
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
    }
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed here).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      fail("leading zeros are not allowed");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    return Json(std::strtod(text_.c_str() + start, nullptr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by the protocol; lone surrogates pass through as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          --pos_;
          fail("invalid escape character");
      }
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace genfv::serve
