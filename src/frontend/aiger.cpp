#include "frontend/aiger.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "frontend/symbols.hpp"
#include "util/status.hpp"

namespace genfv::frontend {

namespace {

/// Refuse absurd headers before allocating anything: a fuzzed or corrupt
/// header must produce a located error, not an OOM.
constexpr std::uint64_t kMaxVariables = 50'000'000;

[[noreturn]] void fail_at(const std::string& file, std::size_t line,
                          const std::string& message) {
  throw ParseError(file + ":" + std::to_string(line), message);
}

[[noreturn]] void fail_byte(const std::string& file, std::size_t offset,
                            const std::string& message) {
  throw ParseError(file + ":<byte " + std::to_string(offset) + ">", message);
}

/// Strict decimal parse — anything but [0-9]+ is a located error, which is
/// what turns "non-numeric fields" from UB into diagnostics.
std::uint64_t parse_uint(std::string_view token, const std::string& file,
                         std::size_t line, const char* what) {
  if (token.empty()) fail_at(file, line, std::string("missing ") + what);
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail_at(file, line,
              std::string("non-numeric ") + what + " '" + std::string(token) + "'");
    }
    if (value > (UINT64_MAX - 9) / 10) {
      fail_at(file, line, std::string(what) + " '" + std::string(token) + "' overflows");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::string_view> split_tokens(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t' || text[i] == '\r')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t' && text[i] != '\r') ++i;
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

/// A latch before the transition system is built: literals only.
struct RawLatch {
  std::uint32_t lit = 0;       ///< the latch's own (even) literal
  std::uint32_t next = 0;      ///< next-state literal
  std::uint32_t reset = 0;     ///< 0, 1, or `lit` (= uninitialized)
  std::size_t line = 0;
};

struct RawAnd {
  std::uint32_t rhs0 = 0;
  std::uint32_t rhs1 = 0;
  std::size_t line = 0;
  bool defined = false;
};

class AigerParser {
 public:
  AigerParser(std::string_view text, std::string file)
      : text_(text), file_(std::move(file)) {}

  ir::TransitionSystem parse() {
    if (text_.find_first_not_of(" \t\r\n") == std::string_view::npos) {
      fail_at(file_, 1, "empty file");
    }
    parse_header();
    if (binary_) {
      read_binary_prelude();
    } else {
      read_ascii_body();
    }
    parse_symbols_and_comments();
    return build();
  }

 private:
  // --- line-oriented cursor -------------------------------------------------

  bool eof() const { return pos_ >= text_.size(); }

  /// Next line (without the terminator); `line_` names it for errors.
  std::string_view next_line() {
    line_ = ++lines_read_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    std::string_view line = text_.substr(start, pos_ - start);
    if (pos_ < text_.size()) ++pos_;  // consume '\n'
    return line;
  }

  std::vector<std::string_view> next_tokens(const char* what) {
    if (eof()) fail_at(file_, lines_read_ + 1,
                       std::string("unexpected end of file: expected ") + what);
    const auto tokens = split_tokens(next_line());
    if (tokens.empty()) fail_at(file_, line_, std::string("blank line where ") + what +
                                                  " was expected");
    return tokens;
  }

  std::uint32_t parse_literal(std::string_view token, const char* what) {
    const std::uint64_t lit = parse_uint(token, file_, line_, what);
    if (lit > 2 * max_var_ + 1) {
      fail_at(file_, line_, std::string("dangling ") + what + " " + std::to_string(lit) +
                                " (header allows at most " +
                                std::to_string(2 * max_var_ + 1) + ")");
    }
    return static_cast<std::uint32_t>(lit);
  }

  // --- header ---------------------------------------------------------------

  void parse_header() {
    const auto tokens = next_tokens("header");
    const std::string_view magic = tokens[0];
    if (magic == "aag") binary_ = false;
    else if (magic == "aig") binary_ = true;
    else fail_at(file_, line_, "not an AIGER file (header must start with 'aag' or 'aig')");
    if (tokens.size() < 6) fail_at(file_, line_, "truncated header: need 'aag M I L O A'");
    if (tokens.size() > 10) fail_at(file_, line_, "header has too many fields");
    std::uint64_t fields[9] = {0};
    static const char* kNames[9] = {"M", "I", "L", "O", "A", "B", "C", "J", "F"};
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      fields[i - 1] = parse_uint(tokens[i], file_, line_, kNames[i - 1]);
    }
    max_var_ = fields[0];
    num_inputs_ = fields[1];
    num_latches_ = fields[2];
    num_outputs_ = fields[3];
    num_ands_ = fields[4];
    num_bads_ = fields[5];
    num_constraints_ = fields[6];
    has_bad_section_ = tokens.size() > 6;
    if (fields[7] != 0 || fields[8] != 0) {
      fail_at(file_, line_, "justice/fairness properties are not supported "
                            "(liveness is out of scope)");
    }
    if (max_var_ > kMaxVariables) {
      fail_at(file_, line_, "header declares " + std::to_string(max_var_) +
                                " variables; refusing (limit " +
                                std::to_string(kMaxVariables) + ")");
    }
    // Each field parses up to 2^64-1, so the sum I + L + A can wrap; check
    // every field against M individually first (M <= kMaxVariables here, so
    // the sum of in-range fields cannot overflow). Without this, a crafted
    // binary header passes the consistency check and the implicit-variable
    // loops below index far beyond var_kind_.
    if (num_inputs_ > max_var_ || num_latches_ > max_var_ || num_ands_ > max_var_ ||
        num_inputs_ + num_latches_ + num_ands_ > max_var_) {
      fail_at(file_, line_, "inconsistent header: I + L + A exceeds M");
    }
    var_kind_.assign(static_cast<std::size_t>(max_var_) + 1, Kind::Undefined);
    ands_.resize(static_cast<std::size_t>(max_var_) + 1);
  }

  // --- ASCII body -----------------------------------------------------------

  void define_input(std::uint32_t lit) {
    if (lit < 2 || (lit & 1) != 0) {
      fail_at(file_, line_, "input literal must be even and nonzero, got " +
                                std::to_string(lit));
    }
    claim_var(lit >> 1, Kind::Input, "input");
    input_lits_.push_back(lit);
  }

  void define_latch(std::uint32_t lit, const std::vector<std::string_view>& tokens,
                    std::size_t next_index) {
    if (lit < 2 || (lit & 1) != 0) {
      fail_at(file_, line_, "latch literal must be even and nonzero, got " +
                                std::to_string(lit));
    }
    claim_var(lit >> 1, Kind::Latch, "latch");
    RawLatch latch;
    latch.lit = lit;
    latch.line = line_;
    if (tokens.size() <= next_index) fail_at(file_, line_, "latch line is missing its next-state literal");
    if (tokens.size() > next_index + 2) fail_at(file_, line_, "latch line has trailing fields");
    latch.next = parse_literal(tokens[next_index], "next-state literal");
    latch.reset = 0;  // AIGER default: latches reset to 0
    if (tokens.size() == next_index + 2) {
      latch.reset = parse_literal(tokens[next_index + 1], "reset literal");
      if (latch.reset != 0 && latch.reset != 1 && latch.reset != lit) {
        fail_at(file_, line_, "latch reset must be 0, 1 or the latch literal itself, got " +
                                  std::to_string(latch.reset));
      }
    }
    latches_.push_back(latch);
  }

  void read_ascii_body() {
    for (std::uint64_t i = 0; i < num_inputs_; ++i) {
      const auto tokens = next_tokens("input definition");
      if (tokens.size() != 1) fail_at(file_, line_, "input line must hold exactly one literal");
      define_input(parse_literal(tokens[0], "input literal"));
    }
    for (std::uint64_t i = 0; i < num_latches_; ++i) {
      const auto tokens = next_tokens("latch definition");
      define_latch(parse_literal(tokens[0], "latch literal"), tokens, 1);
    }
    read_literal_section(num_outputs_, output_lits_, "output literal");
    read_literal_section(num_bads_, bad_lits_, "bad-state literal");
    read_literal_section(num_constraints_, constraint_lits_, "constraint literal");
    for (std::uint64_t i = 0; i < num_ands_; ++i) {
      const auto tokens = next_tokens("and-gate definition");
      if (tokens.size() != 3) fail_at(file_, line_, "and-gate line needs 'lhs rhs0 rhs1'");
      const std::uint32_t lhs = parse_literal(tokens[0], "and-gate literal");
      if (lhs < 2 || (lhs & 1) != 0) {
        fail_at(file_, line_, "and-gate literal must be even and nonzero, got " +
                                  std::to_string(lhs));
      }
      claim_var(lhs >> 1, Kind::And, "and gate");
      RawAnd& gate = ands_[lhs >> 1];
      gate.rhs0 = parse_literal(tokens[1], "and-gate operand");
      gate.rhs1 = parse_literal(tokens[2], "and-gate operand");
      gate.line = line_;
      gate.defined = true;
    }
  }

  void read_literal_section(std::uint64_t count, std::vector<std::uint32_t>& out,
                            const char* what) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto tokens = next_tokens(what);
      if (tokens.size() != 1) {
        fail_at(file_, line_, std::string(what) + " line must hold exactly one literal");
      }
      out.push_back(parse_literal(tokens[0], what));
    }
  }

  // --- binary body ----------------------------------------------------------

  void read_binary_prelude() {
    // Inputs are implicit: variables 1..I in order.
    for (std::uint64_t i = 0; i < num_inputs_; ++i) {
      const std::uint32_t var = static_cast<std::uint32_t>(i + 1);
      var_kind_[var] = Kind::Input;
      input_lits_.push_back(2 * var);
    }
    // Latches are implicit variables I+1..I+L; their lines carry only the
    // next-state (and optional reset) literal.
    for (std::uint64_t i = 0; i < num_latches_; ++i) {
      const std::uint32_t var = static_cast<std::uint32_t>(num_inputs_ + i + 1);
      const auto tokens = next_tokens("latch definition");
      var_kind_[var] = Kind::Latch;
      RawLatch latch;
      latch.lit = 2 * var;
      latch.line = line_;
      if (tokens.size() > 2) fail_at(file_, line_, "latch line has trailing fields");
      latch.next = parse_literal(tokens[0], "next-state literal");
      latch.reset = 0;
      if (tokens.size() == 2) {
        latch.reset = parse_literal(tokens[1], "reset literal");
        if (latch.reset != 0 && latch.reset != 1 && latch.reset != latch.lit) {
          fail_at(file_, line_, "latch reset must be 0, 1 or the latch literal itself");
        }
      }
      latches_.push_back(latch);
    }
    read_literal_section(num_outputs_, output_lits_, "output literal");
    read_literal_section(num_bads_, bad_lits_, "bad-state literal");
    read_literal_section(num_constraints_, constraint_lits_, "constraint literal");
    // Delta-encoded gate section: gate g defines variable I+L+g+1 as
    // lhs = 2*var, rhs0 = lhs - delta0, rhs1 = rhs0 - delta1.
    for (std::uint64_t g = 0; g < num_ands_; ++g) {
      const std::uint32_t var =
          static_cast<std::uint32_t>(num_inputs_ + num_latches_ + g + 1);
      const std::uint64_t lhs = 2ULL * var;
      const std::uint64_t delta0 = decode_varint();
      const std::uint64_t delta1 = decode_varint();
      if (delta0 == 0 || delta0 > lhs) {
        fail_byte(file_, pos_, "binary and-gate " + std::to_string(g) +
                                   " has an out-of-order operand (delta0)");
      }
      const std::uint64_t rhs0 = lhs - delta0;
      if (delta1 > rhs0) {
        fail_byte(file_, pos_, "binary and-gate " + std::to_string(g) +
                                   " has an out-of-order operand (delta1)");
      }
      var_kind_[var] = Kind::And;
      RawAnd& gate = ands_[var];
      gate.rhs0 = static_cast<std::uint32_t>(rhs0);
      gate.rhs1 = static_cast<std::uint32_t>(rhs0 - delta1);
      gate.line = line_;
      gate.defined = true;
    }
    // The symbol/comment sections after the gates are text lines again.
  }

  std::uint64_t decode_varint() {
    std::uint64_t value = 0;
    unsigned shift = 0;
    while (true) {
      if (eof()) fail_byte(file_, pos_, "unexpected end of binary gate section");
      const auto byte = static_cast<unsigned char>(text_[pos_++]);
      if (shift >= 63) fail_byte(file_, pos_, "binary gate delta overflows");
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  // --- symbols and comments --------------------------------------------------

  void parse_symbols_and_comments() {
    while (!eof()) {
      const std::string_view line = next_line();
      if (line == "c" || line == "c\r") return;  // comment section: rest is free text
      const auto tokens = split_tokens(line);
      if (tokens.empty()) continue;
      const std::string_view head = tokens[0];
      const char kind = head.empty() ? '\0' : head[0];
      if (kind != 'i' && kind != 'l' && kind != 'o' && kind != 'b' && kind != 'c' &&
          kind != 'j' && kind != 'f') {
        fail_at(file_, line_, "expected a symbol table entry or the comment marker 'c', "
                              "got '" + std::string(line.substr(0, 32)) + "'");
      }
      const std::uint64_t pos = parse_uint(head.substr(1), file_, line_, "symbol position");
      if (tokens.size() < 2) fail_at(file_, line_, "symbol entry is missing its name");
      // The name is everything after the first token (may contain blanks;
      // the sanitizer flattens them later).
      std::string name;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (i > 1) name += '_';
        name += std::string(tokens[i]);
      }
      std::unordered_map<std::uint64_t, std::string>* table = nullptr;
      std::uint64_t limit = 0;
      switch (kind) {
        case 'i': table = &input_names_; limit = num_inputs_; break;
        case 'l': table = &latch_names_; limit = num_latches_; break;
        case 'o': table = &output_names_; limit = num_outputs_; break;
        case 'b': table = &bad_names_; limit = num_bads_; break;
        case 'c': table = &constraint_names_; limit = num_constraints_; break;
        default: continue;  // j/f symbols can only appear with J=F=0 rejected above
      }
      if (pos >= limit) {
        fail_at(file_, line_, "symbol '" + std::string(head) + "' is out of range");
      }
      if (!table->emplace(pos, std::move(name)).second) {
        fail_at(file_, line_, "duplicate symbol '" + std::string(head) + "'");
      }
    }
  }

  // --- building the transition system ----------------------------------------

  enum class Kind : std::uint8_t { Undefined, Input, Latch, And };

  void claim_var(std::uint64_t var, Kind kind, const char* what) {
    if (var == 0 || var > max_var_) {
      fail_at(file_, line_, std::string(what) + " variable out of range");
    }
    if (var_kind_[var] != Kind::Undefined) {
      fail_at(file_, line_, "variable " + std::to_string(var) +
                                " is defined twice (as " + std::string(what) + ")");
    }
    var_kind_[var] = kind;
  }

  /// Expression for a literal; gates are built on demand, iteratively, with
  /// cycle detection (the ASCII format allows gates in any order).
  ir::NodeRef lit_expr(ir::TransitionSystem& ts, std::uint32_t lit, std::size_t line) {
    const std::uint32_t var = lit >> 1;
    if (var == 0) {
      return (lit & 1) != 0 ? ts.nm().mk_true() : ts.nm().mk_false();
    }
    if (var_expr_[var] == nullptr) build_gate(ts, var, line);
    ir::NodeRef expr = var_expr_[var];
    return (lit & 1) != 0 ? ts.nm().mk_not(expr) : expr;
  }

  void build_gate(ir::TransitionSystem& ts, std::uint32_t root, std::size_t line) {
    enum : std::uint8_t { kNew = 0, kOpen = 1 };
    std::vector<std::uint32_t> stack{root};
    std::vector<std::uint8_t> open(var_kind_.size(), kNew);
    while (!stack.empty()) {
      const std::uint32_t var = stack.back();
      if (var_expr_[var] != nullptr) {
        stack.pop_back();
        continue;
      }
      if (var_kind_[var] != Kind::And) {
        fail_at(file_, line, "literal " + std::to_string(2 * var) +
                                 " references undefined variable " + std::to_string(var));
      }
      const RawAnd& gate = ands_[var];
      if (!gate.defined) {
        fail_at(file_, line, "and gate for variable " + std::to_string(var) +
                                 " is never defined");
      }
      const std::uint32_t c0 = gate.rhs0 >> 1;
      const std::uint32_t c1 = gate.rhs1 >> 1;
      bool ready = true;
      for (const std::uint32_t child : {c0, c1}) {
        if (child != 0 && var_expr_[child] == nullptr) {
          if (open[child] == kOpen) {
            fail_at(file_, gate.line, "combinational cycle through and gate " +
                                          std::to_string(2 * var));
          }
          if (ready) ready = false;
          stack.push_back(child);
        }
      }
      if (!ready) {
        open[var] = kOpen;
        continue;
      }
      ir::NodeRef a = lit_expr(ts, gate.rhs0, gate.line);
      ir::NodeRef b = lit_expr(ts, gate.rhs1, gate.line);
      var_expr_[var] = ts.nm().mk_and(a, b);
      stack.pop_back();
    }
  }

  std::string name_of(const std::unordered_map<std::uint64_t, std::string>& table,
                      std::uint64_t pos) const {
    const auto it = table.find(pos);
    return it == table.end() ? "" : it->second;
  }

  ir::TransitionSystem build() {
    ir::TransitionSystem ts;
    var_expr_.assign(var_kind_.size(), nullptr);

    SymbolTable symbols;
    for (std::size_t i = 0; i < input_lits_.size(); ++i) {
      const std::string name = symbols.claim(name_of(input_names_, i), "in_", i);
      var_expr_[input_lits_[i] >> 1] = ts.add_input(name, 1);
    }
    std::vector<ir::NodeRef> latch_vars;
    latch_vars.reserve(latches_.size());
    for (std::size_t i = 0; i < latches_.size(); ++i) {
      const std::string name = symbols.claim(name_of(latch_names_, i), "latch_", i);
      latch_vars.push_back(ts.add_state(name, 1));
      var_expr_[latches_[i].lit >> 1] = latch_vars.back();
    }
    for (std::size_t i = 0; i < latches_.size(); ++i) {
      const RawLatch& latch = latches_[i];
      ts.set_next(latch_vars[i], lit_expr(ts, latch.next, latch.line));
      if (latch.reset == 0) ts.set_init(latch_vars[i], ts.nm().mk_false());
      else if (latch.reset == 1) ts.set_init(latch_vars[i], ts.nm().mk_true());
      // reset == its own literal: uninitialized, init stays null.
    }

    // HWMCC'10 convention: an AIGER 1.0 file (no B/C header fields) uses its
    // outputs as bad-state literals; a 1.9 file keeps them as named signals.
    const bool outputs_are_bad = !has_bad_section_ && num_bads_ == 0;
    std::vector<std::uint32_t>& bads = outputs_are_bad ? output_lits_ : bad_lits_;
    const auto& bad_name_table = outputs_are_bad ? output_names_ : bad_names_;
    if (!outputs_are_bad) {
      for (std::size_t i = 0; i < output_lits_.size(); ++i) {
        const std::string name = symbols.claim(name_of(output_names_, i), "output_", i);
        ts.add_signal(name, lit_expr(ts, output_lits_[i], line_));
      }
    }
    for (std::size_t i = 0; i < bads.size(); ++i) {
      // Stable synthesized names (`bad_N`) unless the symbol table names the
      // property — the anchor for per-property engine overrides and lemma
      // files on parsed designs.
      const std::string name = symbols.claim(name_of(bad_name_table, i), "bad_", i);
      ir::Property property;
      property.name = name;
      property.expr = ts.nm().mk_not(lit_expr(ts, bads[i], line_));
      property.role = ir::PropertyRole::Target;
      property.source_text = name;
      ts.add_property(std::move(property));
    }
    for (const std::uint32_t lit : constraint_lits_) {
      ts.add_constraint(lit_expr(ts, lit, line_));
    }
    ts.validate();
    return ts;
  }

  std::string_view text_;
  std::string file_;
  std::size_t pos_ = 0;
  std::size_t line_ = 0;        ///< line number of the line most recently read
  std::size_t lines_read_ = 0;
  bool binary_ = false;

  std::uint64_t max_var_ = 0;
  std::uint64_t num_inputs_ = 0, num_latches_ = 0, num_outputs_ = 0, num_ands_ = 0;
  std::uint64_t num_bads_ = 0, num_constraints_ = 0;
  bool has_bad_section_ = false;

  std::vector<Kind> var_kind_;
  std::vector<RawAnd> ands_;
  std::vector<RawLatch> latches_;
  std::vector<std::uint32_t> input_lits_, output_lits_, bad_lits_, constraint_lits_;
  std::unordered_map<std::uint64_t, std::string> input_names_, latch_names_,
      output_names_, bad_names_, constraint_names_;
  std::vector<ir::NodeRef> var_expr_;
};

}  // namespace

ir::TransitionSystem parse_aiger(std::string_view text, const std::string& filename) {
  AigerParser parser(text, filename);
  ir::TransitionSystem ts = parser.parse();
  // "path/to/foo.aag" -> "foo"
  std::string stem = filename;
  if (const std::size_t slash = stem.find_last_of("/\\"); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const std::size_t dot = stem.rfind('.'); dot != std::string::npos && dot > 0) {
    stem = stem.substr(0, dot);
  }
  ts.set_name(stem);
  return ts;
}

ir::TransitionSystem read_aiger_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError(path, "cannot open AIGER file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_aiger(buffer.str(), path);
}

// --- writer ---------------------------------------------------------------------

namespace {

/// AIGER literal algebra over plain uint32 (0 = false, 1 = true, lit^1 =
/// negation) with structural hashing and the same local simplifications the
/// CNF bit-blaster applies — the decompositions below mirror
/// bitblast::BitBlaster so the emitted AIG and the solver see the same
/// circuit shapes.
class AigBuilder {
 public:
  using Lit = std::uint32_t;
  using Bits = std::vector<Lit>;  // LSB first

  static constexpr Lit kFalse = 0;
  static constexpr Lit kTrue = 1;

  Lit new_leaf() { return 2 * next_var_++; }
  std::uint32_t num_vars() const { return next_var_ - 1; }
  const std::vector<std::pair<Lit, Lit>>& ands() const { return ands_; }

  Lit gate_and(Lit a, Lit b) {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
    if (a == b) return a;
    if (a == (b ^ 1U)) return kFalse;
    if (a < b) std::swap(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    const auto it = cons_.find(key);
    if (it != cons_.end()) return it->second;
    const Lit lit = 2 * next_var_++;
    ands_.emplace_back(a, b);
    cons_.emplace(key, lit);
    return lit;
  }

  Lit gate_or(Lit a, Lit b) { return gate_and(a ^ 1U, b ^ 1U) ^ 1U; }
  Lit gate_xor(Lit a, Lit b) {
    return gate_and(gate_and(a, b ^ 1U) ^ 1U, gate_and(a ^ 1U, b) ^ 1U) ^ 1U;
  }
  Lit gate_iff(Lit a, Lit b) { return gate_xor(a, b) ^ 1U; }
  Lit gate_mux(Lit cond, Lit t, Lit e) {
    return gate_and(gate_and(cond, t) ^ 1U, gate_and(cond ^ 1U, e) ^ 1U) ^ 1U;
  }
  Lit gate_and_all(const Bits& xs) {
    Lit acc = kTrue;
    for (const Lit x : xs) acc = gate_and(acc, x);
    return acc;
  }
  Lit gate_or_all(const Bits& xs) {
    Lit acc = kFalse;
    for (const Lit x : xs) acc = gate_or(acc, x);
    return acc;
  }
  Lit gate_xor_all(const Bits& xs) {
    Lit acc = kFalse;
    for (const Lit x : xs) acc = gate_xor(acc, x);
    return acc;
  }

  // --- word-level circuits (bitblaster.cpp shapes) --------------------------

  Bits circuit_add(const Bits& a, const Bits& b, Lit carry_in) {
    Bits sum;
    sum.reserve(a.size());
    Lit carry = carry_in;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Lit axb = gate_xor(a[i], b[i]);
      sum.push_back(gate_xor(axb, carry));
      carry = gate_or(gate_and(a[i], b[i]), gate_and(carry, axb));
    }
    return sum;
  }

  Bits circuit_mul(const Bits& a, const Bits& b) {
    const std::size_t w = a.size();
    Bits acc(w, kFalse);
    for (std::size_t i = 0; i < w; ++i) {
      Bits partial(w, kFalse);
      for (std::size_t j = 0; i + j < w; ++j) partial[i + j] = gate_and(a[j], b[i]);
      acc = circuit_add(acc, partial, kFalse);
    }
    return acc;
  }

  std::pair<Bits, Bits> circuit_divmod(const Bits& a, const Bits& b) {
    const std::size_t w = a.size();
    Bits b_ext = b;
    b_ext.push_back(kFalse);
    Bits r(w + 1, kFalse);
    Bits q(w, kFalse);
    for (std::size_t step = w; step-- > 0;) {
      Bits shifted;
      shifted.reserve(w + 1);
      shifted.push_back(a[step]);
      for (std::size_t i = 0; i < w; ++i) shifted.push_back(r[i]);
      const Lit geq = circuit_ult(shifted, b_ext) ^ 1U;
      Bits neg_b;
      neg_b.reserve(w + 1);
      for (const Lit p : b_ext) neg_b.push_back(p ^ 1U);
      const Bits diff = circuit_add(shifted, neg_b, kTrue);
      for (std::size_t i = 0; i <= w; ++i) r[i] = gate_mux(geq, diff[i], shifted[i]);
      q[step] = geq;
    }
    const Lit b_zero = gate_or_all(b) ^ 1U;
    Bits quotient(w, kFalse);
    Bits remainder(w, kFalse);
    for (std::size_t i = 0; i < w; ++i) {
      quotient[i] = gate_mux(b_zero, kTrue, q[i]);
      remainder[i] = gate_mux(b_zero, a[i], r[i]);
    }
    return {quotient, remainder};
  }

  Bits circuit_shift(const Bits& a, const Bits& amount, bool left, Lit fill) {
    const std::size_t w = a.size();
    Bits current = a;
    for (std::size_t j = 0; j < amount.size() && (1ULL << j) < w; ++j) {
      const std::uint64_t dist = 1ULL << j;
      Bits shifted(w, fill);
      for (std::size_t i = 0; i < w; ++i) {
        if (left) {
          if (i >= dist) shifted[i] = current[i - dist];
        } else {
          if (i + dist < w) shifted[i] = current[i + dist];
        }
      }
      for (std::size_t i = 0; i < w; ++i) {
        current[i] = gate_mux(amount[j], shifted[i], current[i]);
      }
    }
    Bits high_bits;
    for (std::size_t j = 0; j < amount.size(); ++j) {
      if ((1ULL << j) >= w || j >= 63) high_bits.push_back(amount[j]);
    }
    if (!high_bits.empty()) {
      const Lit overshoot = gate_or_all(high_bits);
      for (std::size_t i = 0; i < w; ++i) current[i] = gate_mux(overshoot, fill, current[i]);
    }
    return current;
  }

  Lit circuit_ult(const Bits& a, const Bits& b) {
    Lit lt = kFalse;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Lit differ = gate_xor(a[i], b[i]);
      lt = gate_mux(differ, b[i], lt);
    }
    return lt;
  }

  Lit circuit_ule(const Bits& a, const Bits& b) { return circuit_ult(b, a) ^ 1U; }

  Lit circuit_eq(const Bits& a, const Bits& b) {
    Bits iffs;
    iffs.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) iffs.push_back(gate_iff(a[i], b[i]));
    return gate_and_all(iffs);
  }

 private:
  std::uint32_t next_var_ = 1;
  std::vector<std::pair<Lit, Lit>> ands_;
  std::unordered_map<std::uint64_t, Lit> cons_;
};

using Bits = AigBuilder::Bits;

/// Blast a word-level node into AIG literals, memoized; leaves must already
/// be bound in `cache`.
const Bits& blast(AigBuilder& aig, ir::NodeRef node,
                  std::unordered_map<ir::NodeRef, Bits>& cache) {
  std::vector<ir::NodeRef> stack{node};
  while (!stack.empty()) {
    const ir::NodeRef n = stack.back();
    if (cache.contains(n)) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const ir::NodeRef c : n->children()) {
      if (!cache.contains(c)) {
        if (ready) ready = false;
        stack.push_back(c);
      }
    }
    if (!ready) continue;
    stack.pop_back();

    const unsigned w = n->width();
    auto bits_of = [&cache](ir::NodeRef c) -> const Bits& { return cache.at(c); };
    Bits bits;
    switch (n->op()) {
      case ir::Op::Const:
        bits.reserve(w);
        for (unsigned i = 0; i < w; ++i) {
          bits.push_back(((n->value() >> i) & 1ULL) != 0 ? AigBuilder::kTrue
                                                         : AigBuilder::kFalse);
        }
        break;
      case ir::Op::Input:
      case ir::Op::State:
        throw UsageError("aiger writer: leaf '" + n->name() + "' is not bound");
      case ir::Op::Not:
        bits = bits_of(n->child(0));
        for (auto& b : bits) b ^= 1U;
        break;
      case ir::Op::And:
      case ir::Op::Or:
      case ir::Op::Xor: {
        const Bits& a = bits_of(n->child(0));
        const Bits& b = bits_of(n->child(1));
        bits.reserve(w);
        for (unsigned i = 0; i < w; ++i) {
          if (n->op() == ir::Op::And) bits.push_back(aig.gate_and(a[i], b[i]));
          else if (n->op() == ir::Op::Or) bits.push_back(aig.gate_or(a[i], b[i]));
          else bits.push_back(aig.gate_xor(a[i], b[i]));
        }
        break;
      }
      case ir::Op::Neg: {
        Bits nota = bits_of(n->child(0));
        for (auto& b : nota) b ^= 1U;
        bits = aig.circuit_add(nota, Bits(w, AigBuilder::kFalse), AigBuilder::kTrue);
        break;
      }
      case ir::Op::Add:
        bits = aig.circuit_add(bits_of(n->child(0)), bits_of(n->child(1)),
                               AigBuilder::kFalse);
        break;
      case ir::Op::Sub: {
        Bits notb = bits_of(n->child(1));
        for (auto& b : notb) b ^= 1U;
        bits = aig.circuit_add(bits_of(n->child(0)), notb, AigBuilder::kTrue);
        break;
      }
      case ir::Op::Mul:
        bits = aig.circuit_mul(bits_of(n->child(0)), bits_of(n->child(1)));
        break;
      case ir::Op::Udiv:
        bits = aig.circuit_divmod(bits_of(n->child(0)), bits_of(n->child(1))).first;
        break;
      case ir::Op::Urem:
        bits = aig.circuit_divmod(bits_of(n->child(0)), bits_of(n->child(1))).second;
        break;
      case ir::Op::Shl:
        bits = aig.circuit_shift(bits_of(n->child(0)), bits_of(n->child(1)),
                                 /*left=*/true, AigBuilder::kFalse);
        break;
      case ir::Op::Lshr:
        bits = aig.circuit_shift(bits_of(n->child(0)), bits_of(n->child(1)),
                                 /*left=*/false, AigBuilder::kFalse);
        break;
      case ir::Op::Ashr: {
        const Bits& a = bits_of(n->child(0));
        bits = aig.circuit_shift(a, bits_of(n->child(1)), /*left=*/false, a.back());
        break;
      }
      case ir::Op::Eq:
        bits = {aig.circuit_eq(bits_of(n->child(0)), bits_of(n->child(1)))};
        break;
      case ir::Op::Ult:
        bits = {aig.circuit_ult(bits_of(n->child(0)), bits_of(n->child(1)))};
        break;
      case ir::Op::Ule:
        bits = {aig.circuit_ule(bits_of(n->child(0)), bits_of(n->child(1)))};
        break;
      case ir::Op::Slt:
      case ir::Op::Sle: {
        Bits a = bits_of(n->child(0));
        Bits b = bits_of(n->child(1));
        a.back() ^= 1U;
        b.back() ^= 1U;
        bits = {n->op() == ir::Op::Slt ? aig.circuit_ult(a, b) : aig.circuit_ule(a, b)};
        break;
      }
      case ir::Op::Concat: {
        const Bits& hi = bits_of(n->child(0));
        const Bits& lo = bits_of(n->child(1));
        bits = lo;
        bits.insert(bits.end(), hi.begin(), hi.end());
        break;
      }
      case ir::Op::Extract: {
        const Bits& a = bits_of(n->child(0));
        bits.assign(a.begin() + n->lo(), a.begin() + n->hi() + 1);
        break;
      }
      case ir::Op::ZExt:
        bits = bits_of(n->child(0));
        bits.resize(w, AigBuilder::kFalse);
        break;
      case ir::Op::SExt: {
        bits = bits_of(n->child(0));
        const AigBuilder::Lit msb = bits.back();
        bits.resize(w, msb);
        break;
      }
      case ir::Op::Ite: {
        const AigBuilder::Lit cond = bits_of(n->child(0))[0];
        const Bits& t = bits_of(n->child(1));
        const Bits& e = bits_of(n->child(2));
        bits.reserve(w);
        for (unsigned i = 0; i < w; ++i) bits.push_back(aig.gate_mux(cond, t[i], e[i]));
        break;
      }
      case ir::Op::RedAnd:
        bits = {aig.gate_and_all(bits_of(n->child(0)))};
        break;
      case ir::Op::RedOr:
        bits = {aig.gate_or_all(bits_of(n->child(0)))};
        break;
      case ir::Op::RedXor:
        bits = {aig.gate_xor_all(bits_of(n->child(0)))};
        break;
      case ir::Op::Implies:
        bits = {aig.gate_or(bits_of(n->child(0))[0] ^ 1U, bits_of(n->child(1))[0])};
        break;
    }
    cache.emplace(n, std::move(bits));
  }
  return cache.at(node);
}

std::string bit_name(SymbolTable& symbols, const std::string& base, unsigned width,
                     unsigned bit) {
  const std::string desired = width == 1 ? base : base + "_" + std::to_string(bit);
  return symbols.claim(desired, "v_", bit);
}

/// LEB128-style varint the binary gate section uses (7 payload bits per
/// byte, high bit = continuation).
void put_varint(std::ostream& out, std::uint32_t value) {
  while (value >= 0x80U) {
    out.put(static_cast<char>((value & 0x7FU) | 0x80U));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

/// Shared writer core: builds the AIG once, serializes as ASCII "aag" or
/// binary "aig". The builder already keeps the standard variable ordering
/// (inputs, latches, gates — consecutively numbered) and stores each AND's
/// larger operand first, which is exactly the normal form the binary
/// delta encoding requires, so the two renderings differ only in syntax.
std::string render_aiger(const ir::TransitionSystem& ts, bool binary) {
  AigBuilder aig;
  std::unordered_map<ir::NodeRef, Bits> cache;
  SymbolTable symbols;

  // Inputs first, latches second: the writer keeps AIGER's conventional
  // contiguous variable layout, which also keeps the file binary-convertible.
  std::vector<std::string> input_names;
  for (const ir::NodeRef input : ts.inputs()) {
    Bits bits;
    bits.reserve(input->width());
    for (unsigned b = 0; b < input->width(); ++b) {
      input_names.push_back(bit_name(symbols, input->name(), input->width(), b));
      bits.push_back(aig.new_leaf());
    }
    cache.emplace(input, std::move(bits));
  }
  const std::uint32_t num_inputs = aig.num_vars();

  std::vector<std::string> latch_names;
  for (const ir::StateVar& state : ts.states()) {
    Bits bits;
    bits.reserve(state.var->width());
    for (unsigned b = 0; b < state.var->width(); ++b) {
      latch_names.push_back(bit_name(symbols, state.var->name(), state.var->width(), b));
      bits.push_back(aig.new_leaf());
    }
    cache.emplace(state.var, std::move(bits));
  }
  const std::uint32_t num_latches = aig.num_vars() - num_inputs;

  // Latch next/reset per bit. Init expressions must fold to constants — the
  // format has no richer reset language (AIGER 1.9 resets are 0/1/self).
  struct LatchLine {
    AigBuilder::Lit next;
    int reset;  // 0, 1, or -1 = uninitialized (emitted as the latch's own literal)
  };
  std::vector<LatchLine> latch_lines;
  for (const ir::StateVar& state : ts.states()) {
    const Bits& next_bits = blast(aig, state.next, cache);
    int init_kind = -1;  // uninitialized
    std::uint64_t init_value = 0;
    if (state.init != nullptr) {
      if (!state.init->is_const()) {
        throw UsageError("aiger writer: register '" + state.var->name() +
                         "' has a non-constant init expression, which AIGER resets "
                         "cannot express");
      }
      init_kind = 0;
      init_value = state.init->value();
    }
    for (unsigned b = 0; b < state.var->width(); ++b) {
      LatchLine line;
      line.next = next_bits[b];
      line.reset = init_kind < 0 ? -1 : static_cast<int>((init_value >> b) & 1ULL);
      latch_lines.push_back(line);
    }
  }

  // Named signals -> AIGER outputs, one per bit, so a parse -> write round
  // trip of a 1.9 file with an O section is not silently lossy.
  std::vector<std::pair<std::string, AigBuilder::Lit>> outputs;
  for (const auto& [signal_name, expr] : ts.signals()) {
    const Bits& bits = blast(aig, expr, cache);
    for (unsigned b = 0; b < expr->width(); ++b) {
      outputs.emplace_back(bit_name(symbols, signal_name, expr->width(), b), bits[b]);
    }
  }

  // Target properties -> bad-state literals (bad = NOT property). Names go
  // through the same claim order the reader uses (inputs, latches, outputs,
  // bads), so collisions resolve identically on both sides and emitted files
  // round-trip with stable names — sanitize alone could produce an empty or
  // duplicate name the reader would reject or rename.
  std::vector<std::pair<std::string, AigBuilder::Lit>> bads;
  std::size_t bad_index = 0;
  for (const ir::Property& property : ts.properties()) {
    if (property.role != ir::PropertyRole::Target) continue;
    const Bits& bits = blast(aig, property.expr, cache);
    bads.emplace_back(symbols.claim(property.name, "bad_", bad_index++), bits[0] ^ 1U);
  }
  std::vector<AigBuilder::Lit> constraint_lits;
  for (const ir::NodeRef constraint : ts.constraints()) {
    constraint_lits.push_back(blast(aig, constraint, cache)[0]);
  }

  std::ostringstream out;
  out << (binary ? "aig " : "aag ") << aig.num_vars() << ' ' << num_inputs << ' '
      << num_latches << ' ' << outputs.size() << ' ' << aig.ands().size();
  // The B field is mandatory whenever outputs exist: without it a reader
  // following the HWMCC'10 convention would reinterpret the outputs as
  // bad-state literals.
  if (!constraint_lits.empty()) {
    out << ' ' << bads.size() << ' ' << constraint_lits.size();
  } else if (!bads.empty() || !outputs.empty()) {
    out << ' ' << bads.size();
  }
  out << '\n';
  // Binary files imply the input literals (2, 4, ...) and the latch lhs.
  if (!binary) {
    for (std::uint32_t v = 1; v <= num_inputs; ++v) out << 2 * v << '\n';
  }
  for (std::size_t i = 0; i < latch_lines.size(); ++i) {
    const std::uint32_t lit = 2 * (num_inputs + static_cast<std::uint32_t>(i) + 1);
    if (!binary) out << lit << ' ';
    out << latch_lines[i].next;
    if (latch_lines[i].reset == 1) out << " 1";
    else if (latch_lines[i].reset < 0) out << ' ' << lit;
    out << '\n';
  }
  for (const auto& [name, lit] : outputs) out << lit << '\n';
  for (const auto& [name, lit] : bads) out << lit << '\n';
  for (const AigBuilder::Lit lit : constraint_lits) out << lit << '\n';
  for (std::size_t g = 0; g < aig.ands().size(); ++g) {
    const std::uint32_t lhs = 2 * (num_inputs + num_latches + static_cast<std::uint32_t>(g) + 1);
    // gate_and stores the larger operand first, so first/second are already
    // the (hi, lo) pair the delta encoding wants; structural ordering
    // guarantees hi < lhs.
    const std::uint32_t hi = aig.ands()[g].first;
    const std::uint32_t lo = aig.ands()[g].second;
    if (binary) {
      put_varint(out, lhs - hi);
      put_varint(out, hi - lo);
    } else {
      out << lhs << ' ' << hi << ' ' << lo << '\n';
    }
  }
  for (std::size_t i = 0; i < input_names.size(); ++i) {
    out << 'i' << i << ' ' << input_names[i] << '\n';
  }
  for (std::size_t i = 0; i < latch_names.size(); ++i) {
    out << 'l' << i << ' ' << latch_names[i] << '\n';
  }
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    out << 'o' << i << ' ' << outputs[i].first << '\n';
  }
  for (std::size_t i = 0; i < bads.size(); ++i) {
    out << 'b' << i << ' ' << bads[i].first << '\n';
  }
  out << "c\ngenfv aiger writer: " << ts.name() << '\n';
  return out.str();
}

}  // namespace

std::string write_aiger(const ir::TransitionSystem& ts) {
  return render_aiger(ts, /*binary=*/false);
}

std::string write_aiger_binary(const ir::TransitionSystem& ts) {
  return render_aiger(ts, /*binary=*/true);
}

void write_aiger_file(const std::string& path, const ir::TransitionSystem& ts) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw UsageError("cannot write AIGER file '" + path + "'");
  // Extension picks the variant, matching read-side dispatch: .aig is the
  // binary format, everything else the ASCII one.
  const std::size_t dot = path.rfind('.');
  const bool binary = dot != std::string::npos && path.substr(dot) == ".aig";
  out << render_aiger(ts, binary);
}

}  // namespace genfv::frontend
