#pragma once

/// \file btor2.hpp
/// BTOR2 frontend: the word-level HWMCC interchange format (Niemetz et al.,
/// CAV'18). BTOR2 is line-oriented — `<id> <op> <args...>` — and
/// definitional: every node id is defined before it is used, which makes a
/// strict single-pass reader possible.
///
/// Supported subset (docs/frontends.md has the full table):
///  * `sort bitvec <w>` with 1 <= w <= 64 — wider sorts are rejected with a
///    located error, the same >64-bit discipline the HDL elaborator applies
///    to register declarations; `sort array` is rejected (no memories yet),
///  * `input` / `state` (named or anonymous)   -> TS inputs / states,
///  * `init` / `next`                          -> StateVar init/next; a state
///    without a `next` gets a fresh input as its next function (BTOR2
///    semantics: the state evolves unconstrained),
///  * `bad <n>`                                -> safety property `!(n)` with
///    a stable synthesized name `bad_N`,
///  * `constraint <n>`                         -> TS environment constraint,
///  * `output`                                 -> named TS signal,
///  * constants (`const[dh]?`, `zero`, `one`, `ones`) and the bit-vector
///    operator core (bitwise, arithmetic, shifts, comparisons, concat/slice/
///    ext, ite, reductions, implies/iff),
///  * `justice` / `fairness`, signed div/rem, rotates and array ops are
///    rejected with located errors naming the construct.
///
/// Every malformed input is a located, non-crashing ParseError
/// ("file:line: message").

#include <string>
#include <string_view>

#include "ir/transition_system.hpp"

namespace genfv::frontend {

/// Parse BTOR2 text into a transition system. `filename` seeds error
/// locations and the system name.
ir::TransitionSystem parse_btor2(std::string_view text,
                                 const std::string& filename = "<btor2>");

/// Read + parse a .btor/.btor2 file. Throws Error on I/O failure,
/// ParseError on malformed content.
ir::TransitionSystem read_btor2_file(const std::string& path);

}  // namespace genfv::frontend
