#pragma once

/// \file aiger.hpp
/// AIGER frontend: the HWMCC and-inverter-graph interchange format, both the
/// ASCII variant ("aag" header) and the binary variant ("aig" header, delta-
/// encoded gate section). AIGER is the lingua franca of hardware model
/// checking, so this reader is what lets every engine in the repo run real
/// competition designs instead of only the built-in zoo.
///
/// Model mapping (docs/frontends.md has the full table):
///  * AIGER inputs            -> width-1 TS inputs,
///  * latches                 -> width-1 TS states; reset 0/1 -> constant
///                               init, reset == the latch's own literal ->
///                               uninitialized (AIGER 1.9 semantics),
///  * bad-state literals (B)  -> safety properties `!bad` with stable
///                               synthesized names `bad_N` (symbol-table
///                               names win when present),
///  * outputs (O)             -> treated as bad-state literals when the file
///                               has no B section (the HWMCC'10 convention
///                               for AIGER 1.0 files); named signals
///                               otherwise,
///  * invariant constraints (C) -> TS environment constraints,
///  * justice / fairness      -> rejected (liveness is out of scope).
///
/// Every malformed input is reported as a located, non-crashing
/// `ParseError` ("file:line: message"; the binary gate section reports
/// "file:<byte N>").

#include <string>
#include <string_view>

#include "ir/transition_system.hpp"

namespace genfv::frontend {

/// Parse AIGER text/bytes (ASCII "aag" or binary "aig") into a transition
/// system. `filename` seeds error locations and the system name.
ir::TransitionSystem parse_aiger(std::string_view text,
                                 const std::string& filename = "<aiger>");

/// Read + parse an AIGER file (binary-safe). Throws Error on I/O failure,
/// ParseError on malformed content.
ir::TransitionSystem read_aiger_file(const std::string& path);

/// Render `ts` as an ASCII AIGER 1.9 "aag" file: word-level expressions are
/// bit-blasted into AND/NOT gates (one AIGER input/latch per bit, LSB
/// first, named `<name>_<bit>`; width-1 objects keep their plain name),
/// Target properties become bad-state literals carrying the property name
/// as a `b<pos>` symbol, and environment constraints become the C section.
/// Throws UsageError for systems the format cannot express (a register
/// whose init expression does not fold to a constant).
std::string write_aiger(const ir::TransitionSystem& ts);

/// Same model mapping as write_aiger, rendered as the binary "aig" variant
/// (implied input/latch literals, delta-varint gate section). The writer's
/// contiguous variable layout is already the normal form the binary format
/// demands, so this needs no external conversion step.
std::string write_aiger_binary(const ir::TransitionSystem& ts);

/// File output; a ".aig" extension selects the binary variant, anything
/// else the ASCII one. Throws UsageError on I/O failure.
void write_aiger_file(const std::string& path, const ir::TransitionSystem& ts);

}  // namespace genfv::frontend
