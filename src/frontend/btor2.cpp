#include "frontend/btor2.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "frontend/symbols.hpp"
#include "util/status.hpp"

namespace genfv::frontend {

namespace {

[[noreturn]] void fail_at(const std::string& file, std::size_t line,
                          const std::string& message) {
  throw ParseError(file + ":" + std::to_string(line), message);
}

std::uint64_t parse_uint(std::string_view token, const std::string& file,
                         std::size_t line, const char* what) {
  if (token.empty()) fail_at(file, line, std::string("missing ") + what);
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail_at(file, line,
              std::string("non-numeric ") + what + " '" + std::string(token) + "'");
    }
    if (value > (UINT64_MAX - 9) / 10) {
      fail_at(file, line, std::string(what) + " '" + std::string(token) + "' overflows");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

class Btor2Parser {
 public:
  Btor2Parser(std::string_view text, std::string file)
      : text_(text), file_(std::move(file)) {}

  ir::TransitionSystem parse() {
    bool saw_line = false;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < text_.size()) {
      const std::size_t start = pos;
      while (pos < text_.size() && text_[pos] != '\n') ++pos;
      std::string_view line = text_.substr(start, pos - start);
      if (pos < text_.size()) ++pos;
      ++line_no;
      // ';' starts a comment (whole-line or trailing).
      if (const std::size_t semi = line.find(';'); semi != std::string_view::npos) {
        line = line.substr(0, semi);
      }
      line_ = line_no;
      const auto tokens = tokenize(line);
      if (tokens.empty()) continue;
      saw_line = true;
      parse_line(tokens);
    }
    if (!saw_line) fail_at(file_, 1, "empty file");
    finish_states();
    ts_.validate();
    return std::move(ts_);
  }

 private:
  static std::vector<std::string_view> tokenize(std::string_view text) {
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
      while (i < text.size() &&
             (text[i] == ' ' || text[i] == '\t' || text[i] == '\r')) {
        ++i;
      }
      const std::size_t start = i;
      while (i < text.size() && text[i] != ' ' && text[i] != '\t' && text[i] != '\r') ++i;
      if (i > start) tokens.push_back(text.substr(start, i - start));
    }
    return tokens;
  }

  [[noreturn]] void fail(const std::string& message) const { fail_at(file_, line_, message); }

  void need_args(const std::vector<std::string_view>& tokens, std::size_t count,
                 const char* shape) const {
    if (tokens.size() != count) {
      fail("'" + std::string(tokens[1]) + "' line needs '" + shape + "'");
    }
  }

  unsigned sort_width(std::string_view token) const {
    const std::uint64_t sid = parse_uint(token, file_, line_, "sort id");
    const auto it = sorts_.find(sid);
    if (it == sorts_.end()) fail("references undefined sort " + std::to_string(sid));
    return it->second;
  }

  /// Operand reference: an optional '-' prefix denotes bitwise negation.
  ir::NodeRef operand(std::string_view token) {
    bool negate = false;
    if (!token.empty() && token[0] == '-') {
      negate = true;
      token.remove_prefix(1);
    }
    const std::uint64_t id = parse_uint(token, file_, line_, "node id");
    const auto it = nodes_.find(id);
    if (it == nodes_.end()) fail("references undefined node " + std::to_string(id));
    return negate ? ts_.nm().mk_not(it->second) : it->second;
  }

  ir::NodeRef bool_operand(std::string_view token, const char* what) {
    ir::NodeRef node = operand(token);
    if (node->width() != 1) {
      fail(std::string(what) + " must have width 1, got width " +
           std::to_string(node->width()));
    }
    return node;
  }

  void define(std::uint64_t id, ir::NodeRef node) {
    if (!nodes_.emplace(id, node).second) {
      fail("node id " + std::to_string(id) + " is defined twice");
    }
  }

  void check_width(ir::NodeRef node, unsigned expected, const char* what) const {
    if (node->width() != expected) {
      fail(std::string(what) + " has width " + std::to_string(node->width()) +
           ", expected " + std::to_string(expected));
    }
  }

  struct StateRec {
    ir::NodeRef var = nullptr;
    bool has_init = false;
    bool has_next = false;
    std::string name;
  };

  StateRec& state_operand(std::string_view token) {
    const std::uint64_t id = parse_uint(token, file_, line_, "state id");
    const auto it = states_.find(id);
    if (it == states_.end()) {
      fail("node " + std::to_string(id) + " is not a state");
    }
    return it->second;
  }

  void parse_line(const std::vector<std::string_view>& tokens) {
    const std::uint64_t id = parse_uint(tokens[0], file_, line_, "node id");
    if (tokens.size() < 2) fail("line has an id but no operator");
    const std::string_view tag = tokens[1];

    if (tag == "sort") {
      if (tokens.size() < 3) fail("'sort' line needs a sort kind");
      if (tokens[2] == "array") {
        fail("array sorts are not supported (no memories yet)");
      }
      if (tokens[2] != "bitvec") fail("unknown sort kind '" + std::string(tokens[2]) + "'");
      need_args(tokens, 4, "<id> sort bitvec <width>");
      const std::uint64_t width = parse_uint(tokens[3], file_, line_, "sort width");
      if (width < 1 || width > 64) {
        // Same discipline as the HDL elaborator's register-width rejection:
        // everything downstream models values as uint64.
        fail("sort is " + std::to_string(width) +
             " bits wide; supported widths are 1..64");
      }
      if (!sorts_.emplace(id, static_cast<unsigned>(width)).second) {
        fail("sort id " + std::to_string(id) + " is defined twice");
      }
      return;
    }

    if (tag == "input" || tag == "state") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        fail("'" + std::string(tag) + "' line needs '<id> " + std::string(tag) +
             " <sort> [name]'");
      }
      const unsigned width = sort_width(tokens[2]);
      const std::string raw = tokens.size() == 4 ? std::string(tokens[3]) : "";
      if (tag == "input") {
        const std::string name = symbols_.claim(raw, "in_", input_count_++);
        define(id, ts_.add_input(name, width));
      } else {
        StateRec rec;
        rec.name = symbols_.claim(raw, "state_", state_count_++);
        rec.var = ts_.add_state(rec.name, width);
        define(id, rec.var);
        states_.emplace(id, std::move(rec));
        state_order_.push_back(id);
      }
      return;
    }

    if (tag == "init" || tag == "next") {
      need_args(tokens, 5, "<id> init/next <sort> <state> <value>");
      const unsigned width = sort_width(tokens[2]);
      StateRec& state = state_operand(tokens[3]);
      check_width(state.var, width, "state");
      ir::NodeRef value = operand(tokens[4]);
      check_width(value, width, "value");
      if (tag == "init") {
        if (state.has_init) fail("duplicate init for state '" + state.name + "'");
        state.has_init = true;
        ts_.set_init(state.var, value);
      } else {
        if (state.has_next) fail("duplicate next for state '" + state.name + "'");
        state.has_next = true;
        ts_.set_next(state.var, value);
      }
      return;
    }

    if (tag == "bad") {
      if (tokens.size() != 3 && tokens.size() != 4) fail("'bad' line needs '<id> bad <node> [name]'");
      ir::NodeRef bad = bool_operand(tokens[2], "bad-state node");
      // Stable synthesized names (`bad_N`): the anchor for per-property
      // engine overrides and lemma files on parsed designs.
      const std::string raw = tokens.size() == 4 ? std::string(tokens[3]) : "";
      const std::string name = symbols_.claim(raw, "bad_", bad_count_++);
      ir::Property property;
      property.name = name;
      property.expr = ts_.nm().mk_not(bad);
      property.role = ir::PropertyRole::Target;
      property.source_text = name;
      ts_.add_property(std::move(property));
      return;
    }

    if (tag == "constraint") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        fail("'constraint' line needs '<id> constraint <node> [name]'");
      }
      ts_.add_constraint(bool_operand(tokens[2], "constraint node"));
      return;
    }

    if (tag == "output") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        fail("'output' line needs '<id> output <node> [name]'");
      }
      ir::NodeRef node = operand(tokens[2]);
      const std::string raw = tokens.size() == 4 ? std::string(tokens[3]) : "";
      ts_.add_signal(symbols_.claim(raw, "output_", output_count_++), node);
      return;
    }

    if (tag == "fair" || tag == "justice") {
      fail("'" + std::string(tag) + "' properties are not supported "
           "(liveness is out of scope)");
    }
    if (tag == "sdivo") {
      fail("signed-division overflow ('sdivo') is not supported");
    }
    if (tag == "read" || tag == "write") {
      fail("array operations ('" + std::string(tag) + "') are not supported");
    }

    // --- constants ------------------------------------------------------------
    if (tag == "zero" || tag == "one" || tag == "ones") {
      need_args(tokens, 3, "<id> zero/one/ones <sort>");
      const unsigned width = sort_width(tokens[2]);
      if (tag == "zero") define(id, ts_.nm().mk_const(0, width));
      else if (tag == "one") define(id, ts_.nm().mk_const(1, width));
      else define(id, ts_.nm().mk_ones(width));
      return;
    }
    if (tag == "const" || tag == "constd" || tag == "consth") {
      need_args(tokens, 4, "<id> const/constd/consth <sort> <value>");
      const unsigned width = sort_width(tokens[2]);
      define(id, ts_.nm().mk_const(parse_const(tag, tokens[3], width), width));
      return;
    }

    // --- operators ------------------------------------------------------------
    if (parse_operator(id, tag, tokens)) return;
    fail("unknown BTOR2 operator '" + std::string(tag) + "'");
  }

  std::uint64_t parse_const(std::string_view tag, std::string_view token,
                            unsigned width) {
    bool negate = false;
    if (tag == "constd" && !token.empty() && token[0] == '-') {
      negate = true;
      token.remove_prefix(1);
    }
    if (token.empty()) fail("missing constant value");
    std::uint64_t value = 0;
    if (tag == "const") {
      if (token.size() != width) {
        fail("binary constant has " + std::to_string(token.size()) +
             " digits, sort is " + std::to_string(width) + " bits");
      }
      for (const char c : token) {
        if (c != '0' && c != '1') fail("binary constant has a non-binary digit");
        value = (value << 1) | static_cast<std::uint64_t>(c - '0');
      }
    } else if (tag == "constd") {
      value = parse_uint(token, file_, line_, "decimal constant");
    } else {
      for (const char c : token) {
        unsigned digit = 0;
        if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
        else fail("hex constant has a non-hex digit");
        if (value >> 60 != 0) fail("hex constant overflows 64 bits");
        value = (value << 4) | digit;
      }
    }
    if (negate) value = ~value + 1;
    const std::uint64_t masked = value & ir::width_mask(width);
    if (!negate && masked != value) {
      fail("constant does not fit in " + std::to_string(width) + " bits");
    }
    return masked;
  }

  bool parse_operator(std::uint64_t id, std::string_view tag,
                      const std::vector<std::string_view>& tokens) {
    ir::NodeManager& nm = ts_.nm();

    // Unary: <id> op <sort> <a>
    static const std::unordered_map<std::string_view, int> kUnary = {
        {"not", 0}, {"neg", 1},    {"inc", 2},    {"dec", 3},
        {"redand", 4}, {"redor", 5}, {"redxor", 6}};
    if (const auto it = kUnary.find(tag); it != kUnary.end()) {
      need_args(tokens, 4, "<id> <op> <sort> <a>");
      const unsigned width = sort_width(tokens[2]);
      ir::NodeRef a = operand(tokens[3]);
      ir::NodeRef result = nullptr;
      switch (it->second) {
        case 0: check_width(a, width, "operand"); result = nm.mk_not(a); break;
        case 1: check_width(a, width, "operand"); result = nm.mk_neg(a); break;
        case 2:
          check_width(a, width, "operand");
          result = nm.mk_add(a, nm.mk_const(1, a->width()));
          break;
        case 3:
          check_width(a, width, "operand");
          result = nm.mk_sub(a, nm.mk_const(1, a->width()));
          break;
        case 4: result = nm.mk_redand(a); break;
        case 5: result = nm.mk_redor(a); break;
        case 6: result = nm.mk_redxor(a); break;
      }
      check_width(result, width, "result");
      define(id, result);
      return true;
    }

    // Binary: <id> op <sort> <a> <b>
    using BinFn = ir::NodeRef (*)(ir::NodeManager&, ir::NodeRef, ir::NodeRef);
    static const std::unordered_map<std::string_view, BinFn> kBinary = {
        {"and", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_and(a, b); }},
        {"or", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_or(a, b); }},
        {"xor", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_xor(a, b); }},
        {"nand", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_nand(a, b); }},
        {"nor", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_nor(a, b); }},
        {"xnor", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_xnor(a, b); }},
        {"add", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_add(a, b); }},
        {"sub", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_sub(a, b); }},
        {"mul", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_mul(a, b); }},
        {"udiv", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_udiv(a, b); }},
        {"urem", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_urem(a, b); }},
        {"sll", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_shl(a, b); }},
        {"srl", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_lshr(a, b); }},
        {"sra", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_ashr(a, b); }},
        {"eq", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_eq(a, b); }},
        {"neq", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_ne(a, b); }},
        {"ult", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_ult(a, b); }},
        {"ulte", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_ule(a, b); }},
        {"ugt", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_ugt(a, b); }},
        {"ugte", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_uge(a, b); }},
        {"slt", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_slt(a, b); }},
        {"slte", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_sle(a, b); }},
        {"sgt", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_sgt(a, b); }},
        {"sgte", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_sge(a, b); }},
        {"concat", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_concat(a, b); }},
        {"implies", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_implies(a, b); }},
        {"iff", [](ir::NodeManager& m, ir::NodeRef a, ir::NodeRef b) { return m.mk_iff(a, b); }},
    };
    if (const auto it = kBinary.find(tag); it != kBinary.end()) {
      need_args(tokens, 5, "<id> <op> <sort> <a> <b>");
      const unsigned width = sort_width(tokens[2]);
      ir::NodeRef a = operand(tokens[3]);
      ir::NodeRef b = operand(tokens[4]);
      // Width discipline: everything except concat and the shifts requires
      // equal operand widths; the SortError from the NodeManager would name
      // no line, so check here first.
      if (tag != "concat" && tag != "sll" && tag != "srl" && tag != "sra" &&
          a->width() != b->width()) {
        fail("operand widths differ (" + std::to_string(a->width()) + " vs " +
             std::to_string(b->width()) + ")");
      }
      if (tag == "implies" || tag == "iff") {
        if (a->width() != 1) fail("'" + std::string(tag) + "' needs width-1 operands");
      }
      ir::NodeRef result = it->second(nm, a, b);
      check_width(result, width, "result");
      define(id, result);
      return true;
    }

    // Derived binary operators, lowered to the base IR instead of growing the
    // Op enum: rotates via a complementary shift pair, signed div/rem/mod via
    // their SMT-LIB definitional expansions over udiv/urem.
    if (tag == "rol" || tag == "ror" || tag == "sdiv" || tag == "srem" ||
        tag == "smod") {
      need_args(tokens, 5, "<id> <op> <sort> <a> <b>");
      const unsigned width = sort_width(tokens[2]);
      ir::NodeRef a = operand(tokens[3]);
      ir::NodeRef b = operand(tokens[4]);
      if (a->width() != b->width()) {
        fail("operand widths differ (" + std::to_string(a->width()) + " vs " +
             std::to_string(b->width()) + ")");
      }
      const unsigned w = a->width();
      ir::NodeRef result = nullptr;
      if (tag == "rol" || tag == "ror") {
        // Rotate by s = b mod w. The complementary shift amount w - s lies in
        // [1, w]; shifts >= width fold to zero (fold.cpp / the bitblaster
        // agree), so the s == 0 case degenerates correctly to the identity.
        ir::NodeRef s = nm.mk_urem(b, nm.mk_const(w, w));
        ir::NodeRef back = nm.mk_sub(nm.mk_const(w, w), s);
        result = tag == "rol"
                     ? nm.mk_or(nm.mk_shl(a, s), nm.mk_lshr(a, back))
                     : nm.mk_or(nm.mk_lshr(a, s), nm.mk_shl(a, back));
      } else {
        // SMT-LIB bvsdiv / bvsrem / bvsmod. udiv/urem by zero follow the
        // SMT-LIB totalization (all-ones / the dividend), which makes these
        // expansions match the standard's division-by-zero cases too.
        ir::NodeRef msb_a = nm.mk_bit(a, w - 1);
        ir::NodeRef msb_b = nm.mk_bit(b, w - 1);
        ir::NodeRef abs_a = nm.mk_ite(msb_a, nm.mk_neg(a), a);
        ir::NodeRef abs_b = nm.mk_ite(msb_b, nm.mk_neg(b), b);
        if (tag == "sdiv") {
          // Quotient magnitude, negated exactly when the signs differ.
          ir::NodeRef q = nm.mk_udiv(abs_a, abs_b);
          result = nm.mk_ite(nm.mk_xor(msb_a, msb_b), nm.mk_neg(q), q);
        } else if (tag == "srem") {
          // Remainder takes the sign of the dividend.
          ir::NodeRef r = nm.mk_urem(abs_a, abs_b);
          result = nm.mk_ite(msb_a, nm.mk_neg(r), r);
        } else {
          // bvsmod: result takes the sign of the divisor.
          ir::NodeRef u = nm.mk_urem(abs_a, abs_b);
          ir::NodeRef zero = nm.mk_const(0, w);
          ir::NodeRef pos_pos = nm.mk_and(nm.mk_not(msb_a), nm.mk_not(msb_b));
          ir::NodeRef neg_pos = nm.mk_and(msb_a, nm.mk_not(msb_b));
          ir::NodeRef pos_neg = nm.mk_and(nm.mk_not(msb_a), msb_b);
          result = nm.mk_ite(
              nm.mk_eq(u, zero), u,
              nm.mk_ite(pos_pos, u,
                        nm.mk_ite(neg_pos, nm.mk_add(nm.mk_neg(u), b),
                                  nm.mk_ite(pos_neg, nm.mk_add(u, b),
                                            nm.mk_neg(u)))));
        }
      }
      check_width(result, width, "result");
      define(id, result);
      return true;
    }

    if (tag == "ite") {
      need_args(tokens, 6, "<id> ite <sort> <cond> <then> <else>");
      const unsigned width = sort_width(tokens[2]);
      ir::NodeRef cond = bool_operand(tokens[3], "ite condition");
      ir::NodeRef t = operand(tokens[4]);
      ir::NodeRef e = operand(tokens[5]);
      if (t->width() != e->width()) fail("ite branches have different widths");
      ir::NodeRef result = nm.mk_ite(cond, t, e);
      check_width(result, width, "result");
      define(id, result);
      return true;
    }

    if (tag == "slice") {
      need_args(tokens, 6, "<id> slice <sort> <a> <hi> <lo>");
      const unsigned width = sort_width(tokens[2]);
      ir::NodeRef a = operand(tokens[3]);
      const std::uint64_t hi = parse_uint(tokens[4], file_, line_, "slice upper bound");
      const std::uint64_t lo = parse_uint(tokens[5], file_, line_, "slice lower bound");
      if (hi < lo) fail("slice bounds are reversed");
      if (hi >= a->width()) {
        fail("slice upper bound " + std::to_string(hi) + " exceeds operand width " +
             std::to_string(a->width()));
      }
      ir::NodeRef result = nm.mk_extract(a, static_cast<unsigned>(hi),
                                         static_cast<unsigned>(lo));
      check_width(result, width, "result");
      define(id, result);
      return true;
    }

    if (tag == "uext" || tag == "sext") {
      need_args(tokens, 5, "<id> uext/sext <sort> <a> <pad>");
      const unsigned width = sort_width(tokens[2]);
      ir::NodeRef a = operand(tokens[3]);
      const std::uint64_t pad = parse_uint(tokens[4], file_, line_, "extension width");
      if (a->width() + pad != width) {
        fail("extension width mismatch: operand " + std::to_string(a->width()) +
             " + pad " + std::to_string(pad) + " != sort " + std::to_string(width));
      }
      ir::NodeRef result = tag == "uext" ? nm.mk_zext(a, width) : nm.mk_sext(a, width);
      define(id, result);
      return true;
    }

    return false;
  }

  /// BTOR2 semantics for a state without `next`: the state evolves
  /// unconstrained. Model that as a fresh input feeding the register, which
  /// keeps TransitionSystem::validate()'s every-state-has-next contract.
  void finish_states() {
    // Iterate in declaration order, not unordered_map order: the synthesized
    // inputs' positions (and thus --dump-aiger output and counterexample
    // columns) must not depend on hash-table iteration order.
    for (const std::uint64_t id : state_order_) {
      StateRec& rec = states_.at(id);
      if (rec.has_next) continue;
      const std::string name = symbols_.claim(rec.name + "_next", "next_", id);
      ts_.set_next(rec.var, ts_.add_input(name, rec.var->width()));
    }
  }

  std::string_view text_;
  std::string file_;
  std::size_t line_ = 0;

  ir::TransitionSystem ts_;
  SymbolTable symbols_;
  std::unordered_map<std::uint64_t, unsigned> sorts_;
  std::unordered_map<std::uint64_t, ir::NodeRef> nodes_;
  std::unordered_map<std::uint64_t, StateRec> states_;
  std::vector<std::uint64_t> state_order_;  ///< state ids in declaration order
  std::size_t input_count_ = 0, state_count_ = 0, bad_count_ = 0, output_count_ = 0;
};

}  // namespace

ir::TransitionSystem parse_btor2(std::string_view text, const std::string& filename) {
  Btor2Parser parser(text, filename);
  ir::TransitionSystem ts = parser.parse();
  std::string stem = filename;
  if (const std::size_t slash = stem.find_last_of("/\\"); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const std::size_t dot = stem.rfind('.'); dot != std::string::npos && dot > 0) {
    stem = stem.substr(0, dot);
  }
  ts.set_name(stem);
  return ts;
}

ir::TransitionSystem read_btor2_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError(path, "cannot open BTOR2 file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_btor2(buffer.str(), path);
}

}  // namespace genfv::frontend
