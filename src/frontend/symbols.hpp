#pragma once

/// \file symbols.hpp
/// Shared name hygiene for the standard-format frontends (AIGER, BTOR2).
///
/// Both formats allow symbol names that are not legal genfv identifiers
/// (brackets, dots, arbitrary bytes) or that collide with each other; both
/// also allow symbols to be absent entirely. Every name that enters an
/// `ir::TransitionSystem` through a frontend goes through a SymbolTable,
/// which guarantees two things the rest of the pipeline depends on:
///
///  * every claimed name is a valid SVA identifier ([A-Za-z_][A-Za-z0-9_]*),
///    so `ir::to_string` output for frontend-sourced systems re-parses
///    through the SVA compiler — this is what makes `--emit-lemmas` /
///    `--use-lemmas` files work for parsed designs;
///  * names are unique within the system (collisions get a numeric suffix),
///    and unnamed objects get stable synthesized names (`in_3`, `latch_0`,
///    `bad_1`) keyed on their position, so per-property engine overrides
///    (`--property pdr:bad_0`) address the same property run after run.

#include <string>
#include <unordered_set>

namespace genfv::frontend {

class SymbolTable {
 public:
  /// Sanitize `desired` into a fresh legal identifier; when `desired` is
  /// empty, synthesize `<fallback_prefix><index>`. Either way the returned
  /// name is unique among all names this table has handed out.
  std::string claim(const std::string& desired, const std::string& fallback_prefix,
                    std::size_t index) {
    std::string base = sanitize(desired);
    if (base.empty()) base = fallback_prefix + std::to_string(index);
    std::string name = base;
    for (int suffix = 2; !taken_.insert(name).second; ++suffix) {
      name = base + "_" + std::to_string(suffix);
    }
    return name;
  }

  /// True when `name` has already been handed out.
  bool contains(const std::string& name) const { return taken_.count(name) != 0; }

  /// Turn an arbitrary byte string into a legal identifier ("" when nothing
  /// survives). Illegal characters become '_'; a leading digit gets a '_'
  /// prefix.
  static std::string sanitize(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out.push_back(ok ? c : '_');
    }
    // All-underscore results carry no information; synthesize instead.
    if (out.find_first_not_of('_') == std::string::npos) return "";
    if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
    return out;
  }

 private:
  std::unordered_set<std::string> taken_;
};

}  // namespace genfv::frontend
