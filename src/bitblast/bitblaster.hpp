#pragma once

/// \file bitblaster.hpp
/// Tseitin bit-blasting of word-level IR expressions into a CDCL solver.
///
/// Conventions:
///  * A blasted vector stores literals LSB-first: bits[0] is bit 0.
///  * Leaves (Input/State) must be pre-bound in the per-query cache by the
///    caller (the unroller binds them per time frame); constants map to the
///    solver's constant-true literal and its negation.
///  * The blaster itself is stateless across queries: all memoization lives
///    in the caller-provided cache, so one blaster serves many frames.

#include <unordered_map>
#include <vector>

#include "ir/node_manager.hpp"
#include "sat/backend.hpp"

namespace genfv::bitblast {

using Bits = std::vector<sat::Lit>;
using BlastCache = std::unordered_map<ir::NodeRef, Bits>;

class BitBlaster {
 public:
  explicit BitBlaster(sat::Backend& solver) : solver_(solver) {}

  sat::Backend& solver() noexcept { return solver_; }

  /// Blast `node` into literals, memoizing in `cache`. Leaf nodes other than
  /// constants must already be present in `cache`.
  const Bits& blast(ir::NodeRef node, BlastCache& cache);

  /// Single literal for a width-1 expression.
  sat::Lit blast_bit(ir::NodeRef node, BlastCache& cache);

  /// Fresh unconstrained vector of `width` solver variables.
  Bits fresh_vector(unsigned width);

  /// Assert bit-wise equality of two same-size vectors.
  void assert_equal(const Bits& a, const Bits& b);

  /// Constant-true literal of the underlying solver.
  sat::Lit lit_true() { return solver_.true_lit(); }
  sat::Lit lit_false() { return ~solver_.true_lit(); }

  // --- gate-level helpers (exposed for the unroller's glue logic) -----------
  sat::Lit gate_and(sat::Lit a, sat::Lit b);
  sat::Lit gate_or(sat::Lit a, sat::Lit b);
  sat::Lit gate_xor(sat::Lit a, sat::Lit b);
  sat::Lit gate_iff(sat::Lit a, sat::Lit b) { return ~gate_xor(a, b); }
  /// mux: cond ? t : e
  sat::Lit gate_mux(sat::Lit cond, sat::Lit t, sat::Lit e);
  sat::Lit gate_and_all(const Bits& xs);
  sat::Lit gate_or_all(const Bits& xs);
  sat::Lit gate_xor_all(const Bits& xs);

 private:
  Bits blast_uncached(ir::NodeRef node, BlastCache& cache);

  // --- word-level circuit constructions ---------------------------------------
  Bits circuit_add(const Bits& a, const Bits& b, sat::Lit carry_in);
  Bits circuit_mul(const Bits& a, const Bits& b);
  /// Restoring division; returns {quotient, remainder}.
  std::pair<Bits, Bits> circuit_divmod(const Bits& a, const Bits& b);
  Bits circuit_shift(const Bits& a, const Bits& amount, bool left, sat::Lit fill);
  sat::Lit circuit_ult(const Bits& a, const Bits& b);
  sat::Lit circuit_ule(const Bits& a, const Bits& b);
  sat::Lit circuit_eq(const Bits& a, const Bits& b);

  bool is_const(sat::Lit p, bool value) const {
    // Recognize the canonical constant literals only (sufficient: all
    // constants funnel through lit_true()).
    return value ? p == truth_ : p == ~truth_;
  }

  sat::Backend& solver_;
  sat::Lit truth_ = sat::kUndefLit;  // cached constant-true literal
};

}  // namespace genfv::bitblast
