#include "bitblast/bitblaster.hpp"

#include "util/status.hpp"

namespace genfv::bitblast {

using sat::Lit;

Bits BitBlaster::fresh_vector(unsigned width) {
  Bits bits;
  bits.reserve(width);
  for (unsigned i = 0; i < width; ++i) bits.push_back(sat::mk_lit(solver_.new_var()));
  return bits;
}

void BitBlaster::assert_equal(const Bits& a, const Bits& b) {
  GENFV_ASSERT(a.size() == b.size(), "assert_equal: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    solver_.add_clause(~a[i], b[i]);
    solver_.add_clause(a[i], ~b[i]);
  }
}

Lit BitBlaster::gate_and(Lit a, Lit b) {
  if (truth_ == sat::kUndefLit) truth_ = solver_.true_lit();
  if (is_const(a, false) || is_const(b, false)) return ~truth_;
  if (is_const(a, true)) return b;
  if (is_const(b, true)) return a;
  if (a == b) return a;
  if (a == ~b) return ~truth_;
  const Lit o = sat::mk_lit(solver_.new_var(/*decision=*/true));
  solver_.add_clause(~a, ~b, o);
  solver_.add_clause(a, ~o);
  solver_.add_clause(b, ~o);
  return o;
}

Lit BitBlaster::gate_or(Lit a, Lit b) { return ~gate_and(~a, ~b); }

Lit BitBlaster::gate_xor(Lit a, Lit b) {
  if (truth_ == sat::kUndefLit) truth_ = solver_.true_lit();
  if (is_const(a, false)) return b;
  if (is_const(b, false)) return a;
  if (is_const(a, true)) return ~b;
  if (is_const(b, true)) return ~a;
  if (a == b) return ~truth_;
  if (a == ~b) return truth_;
  const Lit o = sat::mk_lit(solver_.new_var(/*decision=*/true));
  solver_.add_clause(~a, ~b, ~o);
  solver_.add_clause(a, b, ~o);
  solver_.add_clause(~a, b, o);
  solver_.add_clause(a, ~b, o);
  return o;
}

Lit BitBlaster::gate_mux(Lit cond, Lit t, Lit e) {
  if (truth_ == sat::kUndefLit) truth_ = solver_.true_lit();
  if (is_const(cond, true)) return t;
  if (is_const(cond, false)) return e;
  if (t == e) return t;
  const Lit o = sat::mk_lit(solver_.new_var(/*decision=*/true));
  solver_.add_clause(~cond, ~t, o);
  solver_.add_clause(~cond, t, ~o);
  solver_.add_clause(cond, ~e, o);
  solver_.add_clause(cond, e, ~o);
  return o;
}

Lit BitBlaster::gate_and_all(const Bits& xs) {
  if (truth_ == sat::kUndefLit) truth_ = solver_.true_lit();
  Lit acc = truth_;
  for (const Lit x : xs) acc = gate_and(acc, x);
  return acc;
}

Lit BitBlaster::gate_or_all(const Bits& xs) {
  if (truth_ == sat::kUndefLit) truth_ = solver_.true_lit();
  Lit acc = ~truth_;
  for (const Lit x : xs) acc = gate_or(acc, x);
  return acc;
}

Lit BitBlaster::gate_xor_all(const Bits& xs) {
  if (truth_ == sat::kUndefLit) truth_ = solver_.true_lit();
  Lit acc = ~truth_;
  for (const Lit x : xs) acc = gate_xor(acc, x);
  return acc;
}

// --- word-level circuits --------------------------------------------------------

Bits BitBlaster::circuit_add(const Bits& a, const Bits& b, Lit carry_in) {
  GENFV_ASSERT(a.size() == b.size(), "adder: size mismatch");
  Bits sum;
  sum.reserve(a.size());
  Lit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit axb = gate_xor(a[i], b[i]);
    sum.push_back(gate_xor(axb, carry));
    // carry-out = (a & b) | (carry & (a ^ b))
    carry = gate_or(gate_and(a[i], b[i]), gate_and(carry, axb));
  }
  return sum;
}

Bits BitBlaster::circuit_mul(const Bits& a, const Bits& b) {
  const std::size_t w = a.size();
  Bits acc(w, lit_false());
  for (std::size_t i = 0; i < w; ++i) {
    // Partial product: (a << i) & replicate(b[i]), truncated to w bits.
    Bits partial(w, lit_false());
    for (std::size_t j = 0; i + j < w; ++j) {
      partial[i + j] = gate_and(a[j], b[i]);
    }
    acc = circuit_add(acc, partial, lit_false());
  }
  return acc;
}

std::pair<Bits, Bits> BitBlaster::circuit_divmod(const Bits& a, const Bits& b) {
  const std::size_t w = a.size();
  // Work with a (w+1)-bit remainder so `2r + bit` never overflows.
  Bits b_ext = b;
  b_ext.push_back(lit_false());
  Bits r(w + 1, lit_false());
  Bits q(w, lit_false());
  for (std::size_t step = w; step-- > 0;) {
    // r = (r << 1) | a[step]
    Bits shifted;
    shifted.reserve(w + 1);
    shifted.push_back(a[step]);
    for (std::size_t i = 0; i < w; ++i) shifted.push_back(r[i]);
    // geq = shifted >= b_ext  <=>  !(shifted < b_ext)
    const Lit geq = ~circuit_ult(shifted, b_ext);
    // diff = shifted - b_ext
    Bits neg_b;
    neg_b.reserve(w + 1);
    for (const Lit p : b_ext) neg_b.push_back(~p);
    const Bits diff = circuit_add(shifted, neg_b, lit_true());
    for (std::size_t i = 0; i <= w; ++i) r[i] = gate_mux(geq, diff[i], shifted[i]);
    q[step] = geq;
  }
  // SMT-LIB semantics for division by zero.
  const Lit b_zero = ~gate_or_all(b);
  Bits quotient(w, lit_false());
  Bits remainder(w, lit_false());
  for (std::size_t i = 0; i < w; ++i) {
    quotient[i] = gate_mux(b_zero, lit_true(), q[i]);
    remainder[i] = gate_mux(b_zero, a[i], r[i]);
  }
  return {quotient, remainder};
}

Bits BitBlaster::circuit_shift(const Bits& a, const Bits& amount, bool left, Lit fill) {
  const std::size_t w = a.size();
  Bits current = a;
  // Barrel shifter: stage j shifts by 2^j when amount bit j is set.
  for (std::size_t j = 0; j < amount.size() && (1ULL << j) < w; ++j) {
    const std::uint64_t dist = 1ULL << j;
    Bits shifted(w, fill);
    for (std::size_t i = 0; i < w; ++i) {
      if (left) {
        if (i >= dist) shifted[i] = current[i - dist];
      } else {
        if (i + dist < w) shifted[i] = current[i + dist];
      }
    }
    Bits next(w, lit_false());
    for (std::size_t i = 0; i < w; ++i) {
      next[i] = gate_mux(amount[j], shifted[i], current[i]);
    }
    current = next;
  }
  // If any amount bit at or above log2(w) is set, the result saturates to
  // the fill value.
  Bits high_bits;
  for (std::size_t j = 0; j < amount.size(); ++j) {
    if ((1ULL << j) >= w || j >= 63) high_bits.push_back(amount[j]);
  }
  if (!high_bits.empty()) {
    const Lit overshoot = gate_or_all(high_bits);
    for (std::size_t i = 0; i < w; ++i) {
      current[i] = gate_mux(overshoot, fill, current[i]);
    }
  }
  return current;
}

Lit BitBlaster::circuit_ult(const Bits& a, const Bits& b) {
  GENFV_ASSERT(a.size() == b.size(), "ult: size mismatch");
  // LSB-to-MSB fold: at each bit, differing bits decide, else defer lower.
  Lit lt = lit_false();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit differ = gate_xor(a[i], b[i]);
    lt = gate_mux(differ, b[i], lt);
  }
  return lt;
}

Lit BitBlaster::circuit_ule(const Bits& a, const Bits& b) { return ~circuit_ult(b, a); }

Lit BitBlaster::circuit_eq(const Bits& a, const Bits& b) {
  GENFV_ASSERT(a.size() == b.size(), "eq: size mismatch");
  Bits iffs;
  iffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) iffs.push_back(gate_iff(a[i], b[i]));
  return gate_and_all(iffs);
}

// --- expression dispatch ----------------------------------------------------------

const Bits& BitBlaster::blast(ir::NodeRef node, BlastCache& cache) {
  const auto it = cache.find(node);
  if (it != cache.end()) return it->second;

  // Blast children iteratively to bound stack depth on deep expressions.
  std::vector<ir::NodeRef> stack{node};
  while (!stack.empty()) {
    const ir::NodeRef n = stack.back();
    if (cache.contains(n)) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const ir::NodeRef c : n->children()) {
      if (!cache.contains(c)) {
        if (ready) ready = false;
        stack.push_back(c);
      }
    }
    if (!ready) continue;
    stack.pop_back();
    cache.emplace(n, blast_uncached(n, cache));
  }
  return cache.at(node);
}

sat::Lit BitBlaster::blast_bit(ir::NodeRef node, BlastCache& cache) {
  GENFV_ASSERT(node->width() == 1, "blast_bit requires a width-1 node");
  return blast(node, cache)[0];
}

Bits BitBlaster::blast_uncached(ir::NodeRef n, BlastCache& cache) {
  if (truth_ == sat::kUndefLit) truth_ = solver_.true_lit();
  const unsigned w = n->width();

  auto bits_of = [&cache, this](ir::NodeRef c) -> const Bits& {
    const auto it = cache.find(c);
    GENFV_ASSERT(it != cache.end(), "child not blasted");
    (void)this;
    return it->second;
  };

  switch (n->op()) {
    case ir::Op::Const: {
      Bits bits;
      bits.reserve(w);
      for (unsigned i = 0; i < w; ++i) {
        bits.push_back(((n->value() >> i) & 1ULL) != 0 ? truth_ : ~truth_);
      }
      return bits;
    }
    case ir::Op::Input:
    case ir::Op::State:
      throw UsageError("bitblast: leaf '" + n->name() +
                       "' is not bound in the blast cache");

    case ir::Op::Not: {
      Bits bits = bits_of(n->child(0));
      for (auto& b : bits) b = ~b;
      return bits;
    }
    case ir::Op::And:
    case ir::Op::Or:
    case ir::Op::Xor: {
      const Bits& a = bits_of(n->child(0));
      const Bits& b = bits_of(n->child(1));
      Bits bits;
      bits.reserve(w);
      for (unsigned i = 0; i < w; ++i) {
        if (n->op() == ir::Op::And) bits.push_back(gate_and(a[i], b[i]));
        else if (n->op() == ir::Op::Or) bits.push_back(gate_or(a[i], b[i]));
        else bits.push_back(gate_xor(a[i], b[i]));
      }
      return bits;
    }

    case ir::Op::Neg: {
      const Bits& a = bits_of(n->child(0));
      Bits nota;
      nota.reserve(w);
      for (const Lit p : a) nota.push_back(~p);
      return circuit_add(nota, Bits(w, ~truth_), truth_);
    }
    case ir::Op::Add:
      return circuit_add(bits_of(n->child(0)), bits_of(n->child(1)), ~truth_);
    case ir::Op::Sub: {
      const Bits& a = bits_of(n->child(0));
      const Bits& b = bits_of(n->child(1));
      Bits notb;
      notb.reserve(w);
      for (const Lit p : b) notb.push_back(~p);
      return circuit_add(a, notb, truth_);
    }
    case ir::Op::Mul:
      return circuit_mul(bits_of(n->child(0)), bits_of(n->child(1)));
    case ir::Op::Udiv:
      return circuit_divmod(bits_of(n->child(0)), bits_of(n->child(1))).first;
    case ir::Op::Urem:
      return circuit_divmod(bits_of(n->child(0)), bits_of(n->child(1))).second;

    case ir::Op::Shl:
      return circuit_shift(bits_of(n->child(0)), bits_of(n->child(1)), /*left=*/true,
                           ~truth_);
    case ir::Op::Lshr:
      return circuit_shift(bits_of(n->child(0)), bits_of(n->child(1)), /*left=*/false,
                           ~truth_);
    case ir::Op::Ashr: {
      const Bits& a = bits_of(n->child(0));
      return circuit_shift(a, bits_of(n->child(1)), /*left=*/false, a.back());
    }

    case ir::Op::Eq:
      return {circuit_eq(bits_of(n->child(0)), bits_of(n->child(1)))};
    case ir::Op::Ult:
      return {circuit_ult(bits_of(n->child(0)), bits_of(n->child(1)))};
    case ir::Op::Ule:
      return {circuit_ule(bits_of(n->child(0)), bits_of(n->child(1)))};
    case ir::Op::Slt:
    case ir::Op::Sle: {
      // Signed comparison == unsigned comparison with MSBs flipped.
      Bits a = bits_of(n->child(0));
      Bits b = bits_of(n->child(1));
      a.back() = ~a.back();
      b.back() = ~b.back();
      if (n->op() == ir::Op::Slt) return {circuit_ult(a, b)};
      return {circuit_ule(a, b)};
    }

    case ir::Op::Concat: {
      // child(0) supplies the MSBs: LSB-first result = lo bits ++ hi bits.
      const Bits& hi = bits_of(n->child(0));
      const Bits& lo = bits_of(n->child(1));
      Bits bits = lo;
      bits.insert(bits.end(), hi.begin(), hi.end());
      return bits;
    }
    case ir::Op::Extract: {
      const Bits& a = bits_of(n->child(0));
      return Bits(a.begin() + n->lo(), a.begin() + n->hi() + 1);
    }
    case ir::Op::ZExt: {
      Bits bits = bits_of(n->child(0));
      bits.resize(w, ~truth_);
      return bits;
    }
    case ir::Op::SExt: {
      Bits bits = bits_of(n->child(0));
      const Lit msb = bits.back();
      bits.resize(w, msb);
      return bits;
    }
    case ir::Op::Ite: {
      const Lit cond = bits_of(n->child(0))[0];
      const Bits& t = bits_of(n->child(1));
      const Bits& e = bits_of(n->child(2));
      Bits bits;
      bits.reserve(w);
      for (unsigned i = 0; i < w; ++i) bits.push_back(gate_mux(cond, t[i], e[i]));
      return bits;
    }

    case ir::Op::RedAnd:
      return {gate_and_all(bits_of(n->child(0)))};
    case ir::Op::RedOr:
      return {gate_or_all(bits_of(n->child(0)))};
    case ir::Op::RedXor:
      return {gate_xor_all(bits_of(n->child(0)))};

    case ir::Op::Implies:
      return {gate_or(~bits_of(n->child(0))[0], bits_of(n->child(1))[0])};
  }
  throw UsageError("bitblast: unhandled operator");
}

}  // namespace genfv::bitblast
