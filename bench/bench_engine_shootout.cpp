/// Engine shootout — the case for an engine-selection layer: BMC,
/// k-induction and IC3/PDR attack the same zoo designs at the same step
/// budget through the uniform `mc::Engine` interface. BMC never proves,
/// k-induction needs the design to be inductive (or externally supplied
/// lemmas), and PDR discovers clause strengthenings on its own — each wins
/// somewhere, which is why the portfolio races them, the sharded PDR rows
/// (`pdr w=2`, `pdr w=4`) show the obligation/propagation sharding paying
/// for itself on blocking-heavy designs, and the `+lift` rows show
/// ternary-simulation cube lifting (--pdr-ternary) cutting SAT conflicts by
/// shrinking every extracted cube before generalization.
///
/// `--json <path>` additionally writes machine-readable records (design,
/// engine, workers, verdict, wall-ms, solver stats, and per-phase wall
/// times read as metrics-registry deltas around each cell) for
/// BENCH_*.json trajectory tracking; scripts/check_shootout.py consumes
/// them in CI. `--trace-out <path>` records every cell's spans and writes
/// one Perfetto-loadable Chrome trace for the whole shootout; without
/// either flag telemetry stays off, so the wall-time columns measure the
/// disabled-overhead configuration.
///
/// `--dir <path>` additionally sweeps every standard-format design file
/// (.aag / .aig / .btor / .btor2) found in <path> through the same engine
/// matrix — the frontends turn a directory of HWMCC-style files into
/// shootout rows next to the built-in zoo (tests/corpus/ in CI).

#include <algorithm>
#include <filesystem>

#include "bench_common.hpp"
#include "flow/session.hpp"
#include "mc/engine.hpp"
#include "serve/proof_cache.hpp"
#include "util/telemetry.hpp"

namespace genfv {
namespace {

constexpr std::size_t kMaxSteps = 12;

/// A shootout row source: a zoo design (empty path) or a standard-format
/// file loaded through the frontends. `max_steps` is the per-design step
/// budget — kMaxSteps unless the design needs a smaller bound to keep the
/// matrix affordable (deep unrollings of wide datapaths explode long before
/// the budget adds information).
struct DesignSource {
  std::string name;
  std::string path;
  std::size_t max_steps = kMaxSteps;
};

/// Every .aag/.aig/.btor/.btor2 file in `dir`, sorted by name so row order
/// (and the committed BENCH_*.json) is stable across filesystems.
std::vector<DesignSource> scan_corpus_dir(const std::string& dir) {
  std::vector<DesignSource> sources;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".aag" && ext != ".aig" && ext != ".btor" && ext != ".btor2") continue;
    sources.push_back({entry.path().stem().string(), entry.path().string()});
  }
  std::sort(sources.begin(), sources.end(),
            [](const DesignSource& a, const DesignSource& b) { return a.name < b.name; });
  return sources;
}

void run_experiment(bench::JsonRecords* json, const std::string& corpus_dir) {
  bench::print_header(
      "E8: engine shootout over the mc::Engine interface",
      "Peled et al. IJCAI'26 motivation, Kumar-Gadde §II-A background",
      "BMC / k-induction / IC3-PDR on identical designs and step budgets; "
      "PDR proves designs the others cannot at this bound, and sharded PDR "
      "(--pdr-workers) cuts wall-clock on blocking-heavy designs.");

  const bool phases = util::telemetry_on();
  std::vector<std::string> columns = {"design",    "engine",    "verdict", "depth",
                                      "SAT calls", "conflicts", "time"};
  // With telemetry on, break the wall time down by engine phase straight
  // from the metrics registry (blocking / propagate / SAT-solve time).
  if (phases) columns.push_back("b/p/s ms");
  util::Table table(columns);

  struct Contender {
    const char* label;
    mc::EngineKind kind;
    bool exchange;
    std::size_t pdr_workers;
    bool pdr_ternary = false;
    bool sat_inprocess = true;
  };
  const std::vector<Contender> contenders = {
      {"bmc", mc::EngineKind::Bmc, false, 1},
      {"k-induction", mc::EngineKind::KInduction, false, 1},
      {"pdr", mc::EngineKind::Pdr, false, 1},
      // The SAT-tier ablation: the same single-worker PDR with inprocessing
      // and the LBD-tiered clause DB switched off (--sat-inprocess off) —
      // bit-for-bit the pre-tier solver. The conflict delta against the
      // plain "pdr" row is what check_shootout.py gates.
      {"pdr -inproc", mc::EngineKind::Pdr, false, 1, false, false},
      {"pdr +lift", mc::EngineKind::Pdr, false, 1, true},
      {"pdr w=2", mc::EngineKind::Pdr, false, 2},
      {"pdr w=4", mc::EngineKind::Pdr, false, 4},
      {"pdr w=4 +lift", mc::EngineKind::Pdr, false, 4, true},
      {"portfolio -exch", mc::EngineKind::Portfolio, false, 1},
      {"portfolio +exch", mc::EngineKind::Portfolio, true, 1},
  };

  // fifo_ctrl is the blocking-heavy row: thousands of obligations at this
  // bound, which is exactly the workload the sharded engine spreads out.
  // dual_accumulator is the SAT-heavy row — 16-bit adder chains make every
  // query a real CDCL fight, which is where the SAT-tier ablation (pdr vs
  // pdr -inproc) shows up. Its budget is 6: PDR closes the proof at depth 4
  // either way, while BMC/k-induction unrollings past 6 frames of the wide
  // datapath burn minutes without changing any verdict.
  std::vector<DesignSource> sources = {
      {"sync_counters", ""}, {"sequencer", ""},    {"token_ring", ""},
      {"updown_pair", ""},   {"lfsr16", ""},       {"gray_counter", ""},
      {"fifo_ctrl", ""},     {"dual_accumulator", "", 6}};
  if (!corpus_dir.empty()) {
    // Corpus rows ride after the zoo rows, so one JSON holds both.
    for (auto& src : scan_corpus_dir(corpus_dir)) sources.push_back(std::move(src));
  }
  for (const DesignSource& source : sources) {
    const std::string& name = source.name;
    for (const Contender& contender : contenders) {
      auto task = source.path.empty() ? designs::make_task(name)
                                      : flow::VerificationTask::from_file(source.path);
      mc::EngineOptions options;
      options.max_steps = source.max_steps;
      options.exchange = contender.exchange;
      options.pdr_workers = contender.pdr_workers;
      options.pdr_ternary_lifting = contender.pdr_ternary;
      options.sat_inprocess = contender.sat_inprocess;
      auto engine = mc::make_engine(contender.kind, task.ts, options);
      const auto before = phases ? util::metrics().snapshot_values()
                                 : std::map<std::string, std::int64_t>{};
      const mc::EngineResult r = engine->prove_all(task.target_exprs());
      const auto after = phases ? util::metrics().snapshot_values()
                                : std::map<std::string, std::int64_t>{};
      // Registry delta across this cell, in milliseconds. The counters are
      // process-global and every cell runs sequentially, so the delta is
      // exactly this (design, engine) pair's share.
      const auto delta_ms = [&](const std::string& key) -> double {
        const auto b = before.find(key);
        const auto a = after.find(key);
        const std::int64_t bv = b == before.end() ? 0 : b->second;
        const std::int64_t av = a == after.end() ? 0 : a->second;
        return static_cast<double>(av - bv) / 1e6;
      };
      std::string shown = contender.label;
      if (!r.winner.empty()) shown += " (" + r.winner + ")";
      std::vector<std::string> row = {name, shown, mc::to_string(r.verdict),
                                      std::to_string(r.depth),
                                      std::to_string(r.stats.sat_calls),
                                      std::to_string(r.stats.conflicts),
                                      util::format_duration(r.stats.seconds)};
      if (phases) {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.0f/%.0f/%.0f",
                      delta_ms("pdr.blocking_ns"), delta_ms("pdr.propagate_ns"),
                      delta_ms("sat.solve_ns"));
        row.push_back(cell);
      }
      table.add_row(row);
      if (json != nullptr) {
        json->record()
            .field("design", name)
            .field("engine", std::string(contender.label))
            .field("kind", mc::to_string(contender.kind))
            .field("workers", static_cast<std::uint64_t>(contender.pdr_workers))
            .field("exchange", contender.exchange)
            .field("ternary", contender.pdr_ternary)
            .field("inprocess", contender.sat_inprocess)
            .field("verdict", mc::to_string(r.verdict))
            .field("depth", static_cast<std::uint64_t>(r.depth))
            .field("wall_ms", r.stats.seconds * 1e3)
            .field("sat_calls", static_cast<std::uint64_t>(r.stats.sat_calls))
            .field("conflicts", r.stats.conflicts)
            .field("learnt_clauses", r.stats.learnt_clauses)
            .field("retired_gates", r.stats.retired_gates)
            .field("solver_rebuilds", r.stats.solver_rebuilds)
            .field("lifted_bits", r.stats.lifted_bits)
            .field("inprocessings", r.stats.inprocessings)
            .field("subsumed_clauses", r.stats.subsumed_clauses)
            .field("strengthened_clauses", r.stats.strengthened_clauses)
            .field("eliminated_vars", r.stats.eliminated_vars)
            .field("vivified_clauses", r.stats.vivified_clauses);
        if (phases) {
          json->field("blocking_ms", delta_ms("pdr.blocking_ns"))
              .field("propagate_ms", delta_ms("pdr.propagate_ns"))
              .field("may_proof_ms", delta_ms("pdr.may_proof_ns"))
              .field("push_infinity_ms", delta_ms("pdr.push_infinity_ns"))
              .field("sat_solve_ms", delta_ms("sat.solve_ns"))
              .field("framedb_wait_ms", delta_ms("pdr.framedb_mutex_wait_ns"));
        }
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Same bound, same designs: PDR closes proofs k-induction leaves "
              "open because it mines its own frame strengthenings; live "
              "exchange (+exch) feeds those clauses to the other members "
              "mid-race, and the sharded rows spread obligation blocking and "
              "clause propagation across a concurrent solver pool.\n\n");
}

/// The proof-cache experiment behind genfv_serve (docs/serve.md): for every
/// zoo design PDR proves at its budget, compare a cold run against (a) an
/// exact cache hit replayed through one-step recertification and (b) a
/// near-miss warm start on an edited copy of the design, where the cached
/// clauses enter PDR as retractable candidates. Rows carry kind="pdr-cache"
/// so the PDR sharding/lifting/inprocessing reports in
/// scripts/check_shootout.py ignore them; the checker instead gates the
/// warm rows directly (verdict parity everywhere, >=5x fewer conflicts on
/// the recertified hits for at least two designs, candidates seeded on
/// every warm-edit row).
void run_cache_experiment(bench::JsonRecords* json) {
  bench::print_header(
      "E9: structural proof cache — cold runs vs warm re-verification",
      "Kumar-Gadde §V incremental flows, docs/serve.md",
      "An exact struct_hash hit re-certifies the stored invariant with one "
      "induction step instead of re-discovering it; a near miss seeds PDR "
      "with the surviving clauses as retractable candidates.");

  util::Table table({"design", "engine", "verdict", "depth", "SAT calls",
                     "conflicts", "seeded", "time"});

  // Only designs PDR proves at its budget can populate the cache
  // (ProofCache::store refuses anything but a Proven invariant), so the
  // budgets here differ from the main matrix: gray_counter, lfsr16 and
  // fifo_ctrl need deeper frame limits than kMaxSteps before PDR closes
  // their proofs — which also makes them the rows where recertification
  // pays off the hardest (fifo_ctrl: tens of thousands of cold conflicts
  // against one induction step). dual_accumulator keeps its reduced budget.
  const std::vector<DesignSource> sources = {
      {"sequencer", ""},        {"token_ring", ""}, {"updown_pair", ""},
      {"gray_counter", "", 16}, {"lfsr16", "", 16}, {"dual_accumulator", "", 6},
      {"fifo_ctrl", "", 24}};
  serve::ProofCache cache({/*dir=*/"", /*near_threshold=*/0.4});

  const auto emit = [&](const std::string& design, const char* label,
                        const mc::EngineResult& r, const std::string& outcome,
                        double similarity) {
    table.add_row({design, label, mc::to_string(r.verdict),
                   std::to_string(r.depth), std::to_string(r.stats.sat_calls),
                   std::to_string(r.stats.conflicts),
                   std::to_string(r.stats.candidates_seeded),
                   util::format_duration(r.stats.seconds)});
    if (json != nullptr) {
      json->record()
          .field("design", design)
          .field("engine", std::string(label))
          .field("kind", std::string("pdr-cache"))
          .field("workers", static_cast<std::uint64_t>(1))
          .field("cache", outcome)
          .field("similarity", similarity)
          .field("verdict", mc::to_string(r.verdict))
          .field("depth", static_cast<std::uint64_t>(r.depth))
          .field("wall_ms", r.stats.seconds * 1e3)
          .field("sat_calls", static_cast<std::uint64_t>(r.stats.sat_calls))
          .field("conflicts", r.stats.conflicts)
          .field("candidates_seeded", r.stats.candidates_seeded)
          .field("candidates_graduated", r.stats.candidates_graduated);
    }
  };

  for (const DesignSource& source : sources) {
    mc::EngineOptions options;
    options.max_steps = source.max_steps;

    // Cold: discover the proof from scratch and store its invariant.
    auto cold = designs::make_task(source.name);
    auto engine = mc::make_engine(mc::EngineKind::Pdr, cold.ts, options);
    const mc::EngineResult cold_result = engine->prove_all(cold.target_exprs());
    const bool stored =
        cache.store(source.name, cold.ts, cold.target_exprs(), cold_result);
    emit(source.name, "pdr-cache cold+store", cold_result,
         stored ? "stored" : "store-failed", 1.0);

    // Warm, unmodified: a fresh elaboration of the same design must be an
    // exact hit, and the stored invariant must recertify in one induction
    // step — that conflict gap is the cache's reason to exist.
    auto warm = designs::make_task(source.name);
    const auto hit = cache.lookup(warm.ts, warm.target_exprs());
    if (hit.outcome == serve::CacheOutcome::Exact) {
      const mc::EngineResult recert =
          serve::recertify(warm.ts, warm.target_exprs(), *hit.entry, options);
      emit(source.name, "pdr-cache warm", recert, serve::to_string(hit.outcome),
           hit.similarity);
    } else {
      emit(source.name, "pdr-cache warm", cold_result, "unexpected-" + serve::to_string(hit.outcome),
           hit.similarity);
    }

    // Warm, edited: graft an extra register onto a fresh elaboration so the
    // system hash changes but every original state signature still matches —
    // the near-miss shape a source edit produces. The surviving clauses ride
    // into PDR as candidates (may-proof discipline, docs/lemmas.md).
    auto edited = designs::make_task(source.name);
    ir::TransitionSystem& ts = edited.ts;
    const ir::NodeRef probe = ts.add_state("edit$probe", 4);
    ts.set_init(probe, ts.nm().mk_const(0, 4));
    ts.set_next(probe, probe);
    const auto near = cache.lookup(ts, edited.target_exprs());
    mc::EngineOptions warm_options = options;
    if (near.outcome == serve::CacheOutcome::Near) {
      warm_options.pdr_seed_candidates = true;
      warm_options.pdr_candidate_lemmas = serve::surviving_clauses(ts, *near.entry);
    }
    auto warm_engine = mc::make_engine(mc::EngineKind::Pdr, ts, warm_options);
    const mc::EngineResult edit_result = warm_engine->prove_all(edited.target_exprs());
    emit(source.name, "pdr-cache warm-edit", edit_result, serve::to_string(near.outcome),
         near.similarity);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("The warm rows answer from the cache: an exact hit trades the "
              "whole IC3 frame trajectory for a single induction check over "
              "the stored clauses, and the edited-design rows show those same "
              "clauses surviving a source edit as seeded candidates.\n\n");
}

void BM_EngineProve(benchmark::State& state) {
  const auto kind = static_cast<mc::EngineKind>(state.range(0));
  for (auto _ : state) {
    auto task = designs::make_task("sequencer");
    mc::EngineOptions options;
    options.max_steps = kMaxSteps;
    auto engine = mc::make_engine(kind, task.ts, options);
    benchmark::DoNotOptimize(engine->prove_all(task.target_exprs()));
  }
}
BENCHMARK(BM_EngineProve)
    ->Arg(static_cast<int>(mc::EngineKind::Bmc))
    ->Arg(static_cast<int>(mc::EngineKind::KInduction))
    ->Arg(static_cast<int>(mc::EngineKind::Pdr))
    ->Arg(static_cast<int>(mc::EngineKind::Portfolio));

void BM_PdrWorkers(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto task = designs::make_task("fifo_ctrl");
    mc::EngineOptions options;
    options.max_steps = kMaxSteps;
    options.pdr_workers = workers;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    benchmark::DoNotOptimize(engine->prove_all(task.target_exprs()));
  }
}
BENCHMARK(BM_PdrWorkers)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  const std::string json_path = genfv::bench::take_flag_value(&argc, argv, "--json");
  const std::string trace_path = genfv::bench::take_flag_value(&argc, argv, "--trace-out");
  const std::string corpus_dir = genfv::bench::take_flag_value(&argc, argv, "--dir");
  // --trace-out wants spans; --json wants the registry for the per-phase
  // columns. Neither flag leaves telemetry off, which keeps the default
  // shootout measuring the disabled-overhead configuration.
  if (!trace_path.empty()) {
    genfv::util::set_telemetry_level(genfv::util::TelemetryLevel::Tracing);
    genfv::util::set_trace_thread_name("shootout");
  } else if (!json_path.empty()) {
    genfv::util::set_telemetry_level(genfv::util::TelemetryLevel::Metrics);
  }
  genfv::bench::JsonRecords json;
  genfv::run_experiment(json_path.empty() ? nullptr : &json, corpus_dir);
  genfv::run_cache_experiment(json_path.empty() ? nullptr : &json);
  if (!json_path.empty() && !json.write(json_path)) return 1;
  if (!trace_path.empty()) {
    if (!genfv::util::write_trace_json(trace_path)) return 1;
    std::printf("wrote trace to %s\n", trace_path.c_str());
  }
  return genfv::bench::run_benchmarks(argc, argv);
}
