/// Engine shootout — the case for an engine-selection layer: BMC,
/// k-induction and IC3/PDR attack the same zoo designs at the same step
/// budget through the uniform `mc::Engine` interface. BMC never proves,
/// k-induction needs the design to be inductive (or externally supplied
/// lemmas), and PDR discovers clause strengthenings on its own — each wins
/// somewhere, which is exactly why a portfolio over `mc::Engine` is the
/// next scaling step.

#include "bench_common.hpp"
#include "mc/engine.hpp"

namespace genfv {
namespace {

constexpr std::size_t kMaxSteps = 12;

void run_experiment() {
  bench::print_header(
      "E8: engine shootout over the mc::Engine interface",
      "Peled et al. IJCAI'26 motivation, Kumar-Gadde §II-A background",
      "BMC / k-induction / IC3-PDR on identical designs and step budgets; "
      "PDR proves designs the others cannot at this bound.");

  util::Table table(
      {"design", "engine", "verdict", "depth", "SAT calls", "conflicts", "time"});

  struct Contender {
    const char* label;
    mc::EngineKind kind;
    bool exchange;
  };
  const std::vector<Contender> contenders = {
      {"bmc", mc::EngineKind::Bmc, false},
      {"k-induction", mc::EngineKind::KInduction, false},
      {"pdr", mc::EngineKind::Pdr, false},
      {"portfolio -exch", mc::EngineKind::Portfolio, false},
      {"portfolio +exch", mc::EngineKind::Portfolio, true},
  };

  const std::vector<std::string> names = {"sync_counters", "sequencer", "token_ring",
                                          "updown_pair",   "lfsr16",    "gray_counter"};
  for (const std::string& name : names) {
    for (const Contender& contender : contenders) {
      auto task = designs::make_task(name);
      mc::EngineOptions options;
      options.max_steps = kMaxSteps;
      options.exchange = contender.exchange;
      auto engine = mc::make_engine(contender.kind, task.ts, options);
      const mc::EngineResult r = engine->prove_all(task.target_exprs());
      std::string shown = contender.label;
      if (!r.winner.empty()) shown += " (" + r.winner + ")";
      table.add_row({name, shown, mc::to_string(r.verdict),
                     std::to_string(r.depth), std::to_string(r.stats.sat_calls),
                     std::to_string(r.stats.conflicts),
                     util::format_duration(r.stats.seconds)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Same bound, same designs: PDR closes proofs k-induction leaves "
              "open because it mines its own frame strengthenings — and with "
              "live exchange (+exch) the other members absorb those clauses "
              "mid-race instead of waiting for PDR to converge.\n\n");
}

void BM_EngineProve(benchmark::State& state) {
  const auto kind = static_cast<mc::EngineKind>(state.range(0));
  for (auto _ : state) {
    auto task = designs::make_task("sequencer");
    auto engine = mc::make_engine(kind, task.ts, {.max_steps = kMaxSteps});
    benchmark::DoNotOptimize(engine->prove_all(task.target_exprs()));
  }
}
BENCHMARK(BM_EngineProve)
    ->Arg(static_cast<int>(mc::EngineKind::Bmc))
    ->Arg(static_cast<int>(mc::EngineKind::KInduction))
    ->Arg(static_cast<int>(mc::EngineKind::Pdr))
    ->Arg(static_cast<int>(mc::EngineKind::Portfolio));

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  genfv::run_experiment();
  return genfv::bench::run_benchmarks(argc, argv);
}
