/// E6 — paper §II-A background claim: "BMC can find bugs in large designs.
/// However, the correctness of a property is guaranteed only for the
/// analysis bound. Induction-based proof must be applied to prove the design
/// will work all the time."
///
/// Sweep BMC bounds on true properties (cost grows with the bound, verdict
/// stays Unknown forever), and contrast with k-induction: unaided it also
/// stays Unknown on these designs, but with the GenAI-mined lemma each
/// closes immediately at k=1.

#include "bench_common.hpp"
#include "mc/bmc.hpp"
#include "mc/kinduction.hpp"
#include "sva/compiler.hpp"

namespace genfv {
namespace {

void run_experiment() {
  bench::print_header(
      "E6: bounded checking vs unbounded induction",
      "Section II-A",
      "BMC is bug-finding only; induction (helped by lemmas) concludes for "
      "all time.");

  util::Table table({"design", "method", "bound/k", "verdict", "time", "conflicts"});

  for (const char* name : {"sync_counters", "sequencer", "gray_counter"}) {
    // BMC sweep.
    for (const std::size_t depth : {8u, 16u, 32u, 64u}) {
      auto task = designs::make_task(name);
      ir::NodeRef conjunction = task.ts.nm().mk_true();
      for (const ir::NodeRef t : task.target_exprs()) {
        conjunction = task.ts.nm().mk_and(conjunction, t);
      }
      mc::BmcEngine bmc(task.ts, {.max_depth = depth});
      const auto r = bmc.check(conjunction);
      table.add_row({name, "BMC", std::to_string(depth), mc::to_string(r.verdict),
                     util::format_duration(r.stats.seconds),
                     std::to_string(r.stats.conflicts)});
    }
    // Plain k-induction (generous k).
    {
      auto task = designs::make_task(name);
      mc::KInductionEngine engine(task.ts, {.max_k = 16});
      const auto r = engine.prove_all(task.target_exprs());
      table.add_row({name, "k-induction", "k<=16", mc::to_string(r.verdict),
                     util::format_duration(r.stats.seconds),
                     std::to_string(r.stats.conflicts)});
    }
    // k-induction with GenAI lemmas.
    {
      auto task = designs::make_task(name);
      genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), bench::kSeed);
      flow::CexRepairFlow flow(llm, bench::default_flow_options());
      const auto report = flow.run(task);
      const auto& r = report.targets.empty() ? mc::InductionResult{}
                                             : report.targets[0].result;
      table.add_row({name, "k-induction + GenAI lemmas", "k=" + std::to_string(r.k),
                     mc::to_string(r.verdict), util::format_duration(r.stats.seconds),
                     std::to_string(r.stats.conflicts)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("BMC never concludes on a true property, at any bound; induction "
              "does — immediately, once the right lemma is assumed.\n\n");
}

void BM_BmcDepthSweep(benchmark::State& state) {
  for (auto _ : state) {
    auto task = designs::make_task("sync_counters");
    mc::BmcEngine bmc(task.ts, {.max_depth = static_cast<std::size_t>(state.range(0))});
    benchmark::DoNotOptimize(bmc.check(task.target_exprs()[0]));
  }
}
BENCHMARK(BM_BmcDepthSweep)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  genfv::run_experiment();
  return genfv::bench::run_benchmarks(argc, argv);
}
