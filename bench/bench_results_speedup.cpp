/// E4 — Results §V, claim 1: "the flow was able to figure out necessary
/// helper assertions that helped in faster proof for complex properties".
///
/// Three provers per design:
///   * plain k-induction (no lemmas),
///   * k-induction with simple-path constraints (the classical, non-AI
///     strengthening — our baseline comparator),
///   * the GenAI repair flow (engine time only; model latency reported
///     separately by E2/E3).
/// The shape to reproduce: most zoo targets are UNREACHABLE for the plain
/// prover at practical k, the simple-path baseline closes only small designs
/// at much higher cost, and the GenAI flow closes everything at k=1 with
/// millisecond proofs.

#include "bench_common.hpp"
#include "flow/direct_miner_flow.hpp"
#include "mc/kinduction.hpp"

namespace genfv {
namespace {

std::string verdict_cell(const mc::InductionResult& r) {
  if (r.verdict == mc::Verdict::Proven) {
    return "proven k=" + std::to_string(r.k) + " " + util::format_duration(r.stats.seconds);
  }
  return mc::to_string(r.verdict) + " @k=" + std::to_string(r.k) + " " +
         util::format_duration(r.stats.seconds);
}

void run_experiment() {
  bench::print_header(
      "E4: proof throughput — plain vs simple-path vs GenAI lemmas",
      "Results (V), claim 1",
      "Proven helper assertions unlock and accelerate induction proofs.");

  util::Table table({"design", "plain k-ind (k<=12)", "simple-path (k<=12)",
                     "direct miner (no LLM)", "GenAI flow", "GenAI engine time"});
  for (const auto& info : designs::all_designs()) {
    auto plain_task = designs::make_task(info);
    mc::KInductionEngine plain(plain_task.ts, {.max_k = 12});
    const auto r_plain = plain.prove_all(plain_task.target_exprs());

    auto sp_task = designs::make_task(info);
    mc::KInductionEngine simple_path(sp_task.ts, {.max_k = 12, .simple_path = true,
                                                  .conflict_budget = 2'000'000});
    const auto r_sp = simple_path.prove_all(sp_task.target_exprs());

    // The classical comparator: same analyses, no LLM in the loop.
    auto miner_task = designs::make_task(info);
    flow::DirectMinerOptions miner_options;
    miner_options.engine = bench::default_flow_options().engine;
    flow::DirectMinerFlow miner(miner_options);
    const auto miner_report = miner.run(miner_task);
    const std::string miner_cell =
        std::string(miner_report.all_targets_proven() ? "proven" : "unproven") + " " +
        util::format_duration(miner_report.prove_seconds);

    auto genai_task = designs::make_task(info);
    genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), bench::kSeed);
    flow::CexRepairFlow flow(llm, bench::default_flow_options());
    const auto report = flow.run(genai_task);
    std::string genai_cell = report.all_targets_proven() ? "proven" : "unproven";
    if (!report.targets.empty()) {
      genai_cell += " k=" + std::to_string(report.targets[0].result.k);
    }

    table.add_row({info.name, verdict_cell(r_plain), verdict_cell(r_sp), miner_cell,
                   genai_cell, util::format_duration(report.prove_seconds)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: plain induction closes only lfsr16; the simple-path "
      "baseline additionally closes the hold-dominated designs (sequencer, "
      "parity_codec, hamming74, secded84) but not the large-orbit ones "
      "(counters, gray, token_ring, fifo, accumulator); the GenAI flow closes "
      "every design at k=1 and is orders of magnitude cheaper than plain "
      "induction on the heavy designs (fifo_ctrl, dual_accumulator).\n\n");
}

void BM_PlainInductionSequencer(benchmark::State& state) {
  for (auto _ : state) {
    auto task = designs::make_task("sequencer");
    mc::KInductionEngine engine(task.ts,
                                {.max_k = static_cast<std::size_t>(state.range(0))});
    benchmark::DoNotOptimize(engine.prove_all(task.target_exprs()));
  }
}
BENCHMARK(BM_PlainInductionSequencer)->Arg(4)->Arg(12)->Arg(16);

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  genfv::run_experiment();
  return genfv::bench::run_benchmarks(argc, argv);
}
