/// E3 — paper Fig. 2 flow ("Helper assertion generation for induction step
/// failure using LLM").
///
/// Runs the iterative prove -> step-CEX -> LLM -> prove-lemma -> retry loop
/// on every zoo design and reports convergence: repair iterations (= CEXes
/// analyzed), candidates seen, lemmas admitted, and the final verdict.

#include "bench_common.hpp"

namespace genfv {
namespace {

void run_experiment() {
  bench::print_header(
      "E3: CEX-guided repair flow over the design zoo",
      "Fig. 2 + Results (V)",
      "Induction-step CEXes are rendered as waveforms, analyzed by the model, "
      "and repaired with proven lemmas.");

  util::Table table({"design", "iterations", "candidates", "lemmas", "verdict",
                     "prove time", "model latency"});
  for (const auto& info : designs::all_designs()) {
    auto task = designs::make_task(info);
    genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), bench::kSeed);
    flow::CexRepairFlow flow(llm, bench::default_flow_options());
    const flow::FlowReport report = flow.run(task);
    table.add_row({info.name, std::to_string(report.iterations.size()),
                   std::to_string(report.candidates_total()),
                   std::to_string(report.admitted_lemmas.size()),
                   report.all_targets_proven() ? "proven" : "UNPROVEN",
                   util::format_duration(report.prove_seconds),
                   util::format_duration(report.llm_seconds)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Iterations = LLM round trips; 0 means plain k-induction already "
              "closed the target (no CEX to analyze).\n\n");
}

void BM_CexRepairHamming74(benchmark::State& state) {
  for (auto _ : state) {
    auto task = designs::make_task("hamming74");
    genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), bench::kSeed);
    flow::CexRepairFlow flow(llm, bench::default_flow_options());
    benchmark::DoNotOptimize(flow.run(task));
  }
}
BENCHMARK(BM_CexRepairHamming74);

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  genfv::run_experiment();
  return genfv::bench::run_benchmarks(argc, argv);
}
