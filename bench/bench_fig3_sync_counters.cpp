/// E1 — paper Fig. 3 + Listings 1–3.
///
/// Reproduces the worked example end to end: the induction step of
/// `&count1 |-> &count2` fails on the synchronized-counters design with a
/// spurious trace whose final frame has count1 all-ones while count2 is not
/// (the paper highlights bit 31 of count2 = 0); the Listing 3 helper
/// `count1 == count2` is inductive at k=1 and closes the proof immediately.
/// google-benchmark timings compare the proof attempt without and with the
/// helper lemma.

#include "bench_common.hpp"
#include "mc/kinduction.hpp"
#include "sim/waveform.hpp"
#include "sva/compiler.hpp"
#include "util/strings.hpp"

namespace genfv {
namespace {

flow::VerificationTask make_paper_task() { return designs::make_task("sync_counters"); }

void run_experiment() {
  bench::print_header(
      "E1: induction-step failure on sync_counters",
      "Fig. 3, Listings 1-3",
      "Step CEX shows count1 saturated while count2 is not; helper repairs it.");

  auto task = make_paper_task();
  auto& nm = task.ts.nm();
  const ir::NodeRef target = task.target_exprs()[0];
  const ir::NodeRef helper =
      nm.mk_eq(task.ts.lookup("count1"), task.ts.lookup("count2"));

  util::Table table({"proof attempt", "verdict", "k", "SAT calls", "conflicts", "time"});

  mc::KInductionEngine without(task.ts, {.max_k = 10});
  const auto r_without = without.prove(target);
  table.add_row({"target, no helper", mc::to_string(r_without.verdict),
                 std::to_string(r_without.k), std::to_string(r_without.stats.sat_calls),
                 std::to_string(r_without.stats.conflicts),
                 util::format_duration(r_without.stats.seconds)});

  mc::KInductionEngine helper_engine(task.ts, {.max_k = 10});
  const auto r_helper = helper_engine.prove(helper);
  table.add_row({"helper (Listing 3)", mc::to_string(r_helper.verdict),
                 std::to_string(r_helper.k), std::to_string(r_helper.stats.sat_calls),
                 std::to_string(r_helper.stats.conflicts),
                 util::format_duration(r_helper.stats.seconds)});

  mc::KInductionEngine with(task.ts, {.max_k = 10, .lemmas = {helper}});
  const auto r_with = with.prove(target);
  table.add_row({"target + helper lemma", mc::to_string(r_with.verdict),
                 std::to_string(r_with.k), std::to_string(r_with.stats.sat_calls),
                 std::to_string(r_with.stats.conflicts),
                 util::format_duration(r_with.stats.seconds)});

  std::printf("%s\n", table.to_string().c_str());

  if (r_without.step_cex.has_value()) {
    const auto& cex = *r_without.step_cex;
    const std::size_t last = cex.size() - 1;
    std::printf("Induction-step counterexample (Fig. 3 artefact; state at t0 is "
                "arbitrary/unreachable):\n\n");
    sim::WaveformOptions wave_opts;
    wave_opts.failure_frame = last;
    std::printf("%s\n", sim::render_waveform(cex, sim::default_signals(task.ts),
                                             wave_opts)
                            .c_str());
    std::printf("%s\n\n",
                sim::render_bit_diff(cex, last, "count1", task.ts.lookup("count1"),
                                     "count2", task.ts.lookup("count2"))
                    .c_str());
  }
}

void BM_ProveTargetWithoutHelper(benchmark::State& state) {
  auto task = make_paper_task();
  const ir::NodeRef target = task.target_exprs()[0];
  for (auto _ : state) {
    mc::KInductionEngine engine(task.ts,
                                {.max_k = static_cast<std::size_t>(state.range(0))});
    benchmark::DoNotOptimize(engine.prove(target));
  }
}
BENCHMARK(BM_ProveTargetWithoutHelper)->Arg(2)->Arg(5)->Arg(10);

void BM_ProveTargetWithHelper(benchmark::State& state) {
  auto task = make_paper_task();
  auto& nm = task.ts.nm();
  const ir::NodeRef target = task.target_exprs()[0];
  const ir::NodeRef helper =
      nm.mk_eq(task.ts.lookup("count1"), task.ts.lookup("count2"));
  for (auto _ : state) {
    mc::KInductionEngine engine(task.ts, {.max_k = 10, .lemmas = {helper}});
    benchmark::DoNotOptimize(engine.prove(target));
  }
}
BENCHMARK(BM_ProveTargetWithHelper);

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  genfv::run_experiment();
  return genfv::bench::run_benchmarks(argc, argv);
}
