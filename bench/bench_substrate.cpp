/// Substrate microbenchmarks (not tied to a paper figure): throughput of the
/// layers everything else stands on — CDCL solving, bit-blasting, frame
/// unrolling, simulation, elaboration and one simulated-LLM round trip.
/// Used to catch performance regressions in the engine stack.

#include "bench_common.hpp"
#include "bitblast/bitblaster.hpp"
#include "genai/prompt.hpp"
#include "hdl/elaborator.hpp"
#include "mc/bmc.hpp"
#include "mc/kinduction.hpp"
#include "mc/unroller.hpp"
#include "sat/solver.hpp"
#include "sim/random_sim.hpp"
#include "util/rng.hpp"

namespace genfv {
namespace {

void BM_SatRandom3Cnf(benchmark::State& state) {
  // Fixed random instance family near the phase transition.
  const int num_vars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    util::Xoshiro256 rng(7);
    sat::Solver solver;
    for (int v = 0; v < num_vars; ++v) (void)solver.new_var();
    bool ok = true;
    for (int c = 0; c < num_vars * 4; ++c) {
      std::vector<sat::Lit> clause;
      for (int l = 0; l < 3; ++l) {
        clause.push_back(sat::mk_lit(
            static_cast<sat::Var>(rng.below(static_cast<std::uint64_t>(num_vars))),
            rng.chance(0.5)));
      }
      ok = solver.add_clause(std::move(clause)) && ok;
    }
    state.ResumeTiming();
    if (ok) benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SatRandom3Cnf)->Arg(50)->Arg(100)->Arg(200);

void BM_BitblastMul(benchmark::State& state) {
  const unsigned width = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    ir::NodeManager nm;
    sat::Solver solver;
    bitblast::BitBlaster blaster(solver);
    bitblast::BlastCache cache;
    const ir::NodeRef a = nm.mk_input("a", width);
    const ir::NodeRef b = nm.mk_input("b", width);
    cache.emplace(a, blaster.fresh_vector(width));
    cache.emplace(b, blaster.fresh_vector(width));
    benchmark::DoNotOptimize(blaster.blast(nm.mk_mul(a, b), cache));
  }
}
BENCHMARK(BM_BitblastMul)->Arg(8)->Arg(16)->Arg(32);

void BM_UnrollFrames(benchmark::State& state) {
  auto task = designs::make_task("secded84");
  for (auto _ : state) {
    sat::Solver solver;
    mc::Unroller unroller(task.ts, solver);
    unroller.extend_to(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(unroller.frame_count());
  }
}
BENCHMARK(BM_UnrollFrames)->Arg(4)->Arg(16)->Arg(64);

void BM_SimulatorStep(benchmark::State& state) {
  auto task = designs::make_task("secded84");
  sim::RandomSimulator simulator(task.ts, 11);
  sim::Assignment env = simulator.reset_state();
  for (const ir::NodeRef in : task.ts.inputs()) env[in] = 0;
  for (auto _ : state) {
    auto next = sim::step(task.ts, env);
    for (auto& [k, v] : next) env[k] = v;
    benchmark::DoNotOptimize(env);
  }
}
BENCHMARK(BM_SimulatorStep);

void BM_RandomSimRun(benchmark::State& state) {
  auto task = designs::make_task("fifo_ctrl");
  for (auto _ : state) {
    sim::RandomSimulator simulator(task.ts, 13);
    benchmark::DoNotOptimize(simulator.run(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_RandomSimRun)->Arg(64)->Arg(256);

void BM_ElaborateListing1(benchmark::State& state) {
  const std::string rtl = designs::design_by_name("sync_counters").rtl;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdl::elaborate_source(rtl));
  }
}
BENCHMARK(BM_ElaborateListing1);

void BM_KInductionWithLemma(benchmark::State& state) {
  auto task = designs::make_task("sync_counters");
  auto& nm = task.ts.nm();
  const ir::NodeRef helper =
      nm.mk_eq(task.ts.lookup("count1"), task.ts.lookup("count2"));
  for (auto _ : state) {
    mc::KInductionEngine engine(task.ts, {.max_k = 4, .lemmas = {helper}});
    benchmark::DoNotOptimize(engine.prove(task.target_exprs()[0]));
  }
}
BENCHMARK(BM_KInductionWithLemma);

void BM_SimulatedLlmRoundTrip(benchmark::State& state) {
  const auto& info = designs::design_by_name("hamming74");
  genai::PromptInputs inputs;
  inputs.design_name = info.name;
  inputs.spec = info.spec;
  inputs.rtl = info.rtl;
  const genai::Prompt prompt = genai::render_helper_generation_prompt(inputs);
  genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm.complete(prompt));
  }
}
BENCHMARK(BM_SimulatedLlmRoundTrip);

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  genfv::bench::print_header("Substrate microbenchmarks", "n/a (regression tracking)",
                             "SAT / bit-blast / unroll / simulate / elaborate / LLM.");
  return genfv::bench::run_benchmarks(argc, argv);
}
