/// E7 — paper Conclusion: "one must be aware of the limitations of using
/// GenAI especially for artificial hallucinations that produce vulnerable
/// results. It is recommended to analyze the output from the LLM before
/// using it productively."
///
/// Ablates the mechanical review gate using the noisiest model profile:
/// with the simulation screen ON, hallucinations die cheaply in simulation;
/// with it OFF they reach the prover and burn SAT time there. Either way the
/// mandatory proof gate admits zero unsound lemmas — the soundness firewall
/// the paper's human-in-the-loop recommendation asks for, made mechanical.

#include "bench_common.hpp"

namespace genfv {
namespace {

struct GateStats {
  std::size_t candidates = 0;
  std::size_t sim_falsified = 0;
  std::size_t proof_failed = 0;
  std::size_t admitted = 0;
  double prove_seconds = 0;
  std::size_t proven_designs = 0;
};

GateStats run_zoo(bool sim_screen) {
  GateStats stats;
  for (const auto& info : designs::all_designs()) {
    for (const std::uint64_t seed : {3ull, 1337ull}) {
      auto task = designs::make_task(info);
      genai::SimulatedLlm llm(genai::profile_by_name("llama-3-70b"), seed);
      flow::FlowOptions options = bench::default_flow_options();
      options.review.sim_screen = sim_screen;
      flow::CexRepairFlow flow(llm, options);
      const flow::FlowReport report = flow.run(task);
      stats.candidates += report.candidates_total();
      stats.sim_falsified += report.candidates_with(flow::CandidateStatus::SimFalsified);
      stats.proof_failed += report.candidates_with(flow::CandidateStatus::ProofFailed);
      stats.admitted += report.admitted_lemmas.size();
      stats.prove_seconds += report.prove_seconds;
      if (report.all_targets_proven()) ++stats.proven_designs;
    }
  }
  return stats;
}

void run_experiment() {
  bench::print_header(
      "E7: review-gate ablation (llama-3-70b profile, 2 seeds x full zoo)",
      "Conclusion (hallucination risk / human-in-the-loop)",
      "The simulation screen kills hallucinations cheaply; the proof gate "
      "keeps every verdict sound either way.");

  util::Table table({"configuration", "candidates", "sim-falsified", "proof-failed",
                     "lemmas admitted", "prover time", "designs proven"});
  const GateStats with_screen = run_zoo(/*sim_screen=*/true);
  const GateStats without_screen = run_zoo(/*sim_screen=*/false);
  auto add = [&table](const char* name, const GateStats& s) {
    table.add_row({name, std::to_string(s.candidates), std::to_string(s.sim_falsified),
                   std::to_string(s.proof_failed), std::to_string(s.admitted),
                   util::format_duration(s.prove_seconds),
                   std::to_string(s.proven_designs) + "/" +
                       std::to_string(2 * designs::all_designs().size())});
  };
  add("sim screen + proof gate", with_screen);
  add("proof gate only", without_screen);
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Without the screen, the gate still admits only proven lemmas (soundness "
      "is engine-enforced) but unsound candidates now consume prover time as "
      "proof-failed entries instead of dying in microsecond simulations.\n\n");
}

}  // namespace
}  // namespace genfv

int main(int, char**) {
  genfv::run_experiment();
  return 0;  // table-only experiment: no micro-timing registrations
}
