/// E5 — Results §V, claim 2: "the quality of generated assertions was much
/// better in the case of LLMs from OpenAI such as GPT-4-Turbo and GPT-4o
/// compared to Llama or Gemini".
///
/// Runs the Fig. 2 repair flow for every (model, design, seed) triple and
/// aggregates per model: designs solved (majority over seeds), useful-
/// assertion rate (proven / generated), hallucination rate caught by the
/// gate, and syntax-level rejects. The ranking emerges from the profiles'
/// insight depth and noise levels — it is not hard-coded in the flow.

#include "bench_common.hpp"

namespace genfv {
namespace {

void run_experiment() {
  bench::print_header(
      "E5: model-quality comparison over the design zoo (3 seeds per cell)",
      "Results (V), claim 2",
      "OpenAI-profile models out-generate Llama/Gemini profiles on deep "
      "(XOR/one-hot) invariants and hallucinate less.");

  const std::uint64_t seeds[] = {1, 7, 42};

  util::Table per_design({"design", "gpt-4-turbo", "gpt-4o", "llama-3-70b",
                          "gemini-1.5-pro"});
  struct Aggregate {
    std::size_t solved = 0;
    std::size_t candidates = 0;
    std::size_t proven = 0;
    std::size_t sim_falsified = 0;
    std::size_t syntax = 0;
    double iterations = 0;
    double runs = 0;
  };
  std::vector<Aggregate> agg(genai::known_models().size());

  for (const auto& info : designs::all_designs()) {
    std::vector<std::string> row{info.name};
    std::size_t model_index = 0;
    for (const auto& model : genai::known_models()) {
      std::size_t wins = 0;
      for (const std::uint64_t seed : seeds) {
        auto task = designs::make_task(info);
        genai::SimulatedLlm llm(genai::profile_by_name(model), seed);
        flow::CexRepairFlow flow(llm, bench::default_flow_options());
        const flow::FlowReport report = flow.run(task);
        if (report.all_targets_proven()) ++wins;
        auto& a = agg[model_index];
        a.candidates += report.candidates_total();
        a.proven += report.candidates_with(flow::CandidateStatus::Proven);
        a.sim_falsified += report.candidates_with(flow::CandidateStatus::SimFalsified);
        a.syntax += report.candidates_with(flow::CandidateStatus::SyntaxRejected) +
                    report.candidates_with(flow::CandidateStatus::CompileRejected);
        a.iterations += static_cast<double>(report.iterations.size());
        a.runs += 1;
      }
      if (wins >= 2) ++agg[model_index].solved;
      row.push_back(std::to_string(wins) + "/3");
      ++model_index;
    }
    per_design.add_row(std::move(row));
  }
  std::printf("Per-design convergence (seeds solved out of 3):\n%s\n",
              per_design.to_string().c_str());

  util::Table summary({"model", "designs solved", "useful-assertion rate",
                       "gate-caught hallucinations", "syntax/compile rejects",
                       "avg iterations"});
  std::size_t model_index = 0;
  for (const auto& model : genai::known_models()) {
    const auto& a = agg[model_index++];
    const double useful =
        a.candidates == 0 ? 0.0
                          : 100.0 * static_cast<double>(a.proven) /
                                static_cast<double>(a.candidates);
    summary.add_row({model,
                     std::to_string(a.solved) + "/" +
                         std::to_string(designs::all_designs().size()),
                     util::fmt_double(useful, 1) + "%", std::to_string(a.sim_falsified),
                     std::to_string(a.syntax),
                     util::fmt_double(a.iterations / std::max(a.runs, 1.0), 2)});
  }
  std::printf("Aggregate model quality:\n%s\n", summary.to_string().c_str());
  std::printf("Expected shape (paper): OpenAI profiles solve the full zoo with "
              ">70%% useful assertions; Llama/Gemini miss the ECC/Gray designs "
              "and produce several times more gate-rejected output.\n\n");
}

}  // namespace
}  // namespace genfv

int main(int, char**) {
  genfv::run_experiment();
  return 0;  // table-only experiment: no micro-timing registrations
}
