#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment benches: deterministic seeds, default
/// flow options, and a tiny helper to run google-benchmark registrations
/// after the experiment tables have been printed.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "flow/helper_gen_flow.hpp"
#include "genai/simulated_llm.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace genfv::bench {

/// Every bench prints its seed so results are reproducible by construction.
inline constexpr std::uint64_t kSeed = 42;

inline flow::FlowOptions default_flow_options() {
  flow::FlowOptions options;
  options.engine.max_k = 8;
  return options;
}

inline void print_header(const char* experiment, const char* paper_source,
                         const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces: %s)\n", experiment, paper_source);
  std::printf("%s\n", claim);
  std::printf("seed = %llu\n", static_cast<unsigned long long>(kSeed));
  std::printf("==============================================================\n");
}

/// Print the experiment tables, then hand over to google-benchmark for the
/// micro-timing registrations (if any).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace genfv::bench
