#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the experiment benches: deterministic seeds, default
/// flow options, and a tiny helper to run google-benchmark registrations
/// after the experiment tables have been printed.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "flow/helper_gen_flow.hpp"
#include "genai/simulated_llm.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace genfv::bench {

/// Every bench prints its seed so results are reproducible by construction.
inline constexpr std::uint64_t kSeed = 42;

inline flow::FlowOptions default_flow_options() {
  flow::FlowOptions options;
  options.engine.max_k = 8;
  return options;
}

inline void print_header(const char* experiment, const char* paper_source,
                         const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s  (reproduces: %s)\n", experiment, paper_source);
  std::printf("%s\n", claim);
  std::printf("seed = %llu\n", static_cast<unsigned long long>(kSeed));
  std::printf("==============================================================\n");
}

/// Print the experiment tables, then hand over to google-benchmark for the
/// micro-timing registrations (if any).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Consume a `--flag <path>` / `--flag=<path>` pair from argv (so the
/// remaining arguments can be handed to google-benchmark untouched).
/// Returns the value, or "" when the flag is absent.
inline std::string take_flag_value(int* argc, char** argv, const std::string& flag) {
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < *argc) {
      value = argv[++i];
      continue;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
      value = arg.substr(flag.size() + 1);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

/// Machine-readable bench results: a flat JSON array of records, one per
/// experiment row, written with no third-party dependency so every bench
/// binary can emit trajectory-tracking data (BENCH_*.json) by itself.
class JsonRecords {
 public:
  using Value = std::variant<std::string, std::int64_t, std::uint64_t, double, bool>;

  /// Start a new record; subsequent field() calls fill it.
  JsonRecords& record() {
    records_.emplace_back();
    return *this;
  }

  JsonRecords& field(const std::string& key, Value value) {
    records_.back().emplace_back(key, std::move(value));
    return *this;
  }

  std::string to_string() const {
    std::ostringstream out;
    out << "[\n";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << "  {";
      for (std::size_t f = 0; f < records_[r].size(); ++f) {
        if (f != 0) out << ", ";
        write_string(out, records_[r][f].first);
        out << ": ";
        write_value(out, records_[r][f].second);
      }
      out << (r + 1 < records_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
    return out.str();
  }

  /// Write the array to `path`; returns false (with a message on stderr)
  /// when the file cannot be opened.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write JSON results to '%s'\n", path.c_str());
      return false;
    }
    out << to_string();
    std::printf("wrote %zu result record(s) to %s\n", records_.size(), path.c_str());
    return true;
  }

 private:
  static void write_string(std::ostringstream& out, const std::string& s) {
    out << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out << buf;
          } else {
            out << c;
          }
      }
    }
    out << '"';
  }

  static void write_value(std::ostringstream& out, const Value& value) {
    if (const auto* s = std::get_if<std::string>(&value)) {
      write_string(out, *s);
    } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
      out << *i;
    } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
      out << *u;
    } else if (const auto* d = std::get_if<double>(&value)) {
      out << *d;
    } else {
      out << (std::get<bool>(value) ? "true" : "false");
    }
  }

  std::vector<std::vector<std::pair<std::string, Value>>> records_;
};

}  // namespace genfv::bench
