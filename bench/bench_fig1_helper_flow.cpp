/// E2 — paper Fig. 1 flow ("Helper assertion generation using LLM").
///
/// Runs the one-shot spec+RTL -> LLM -> prove -> assume pipeline on every
/// zoo design with a GPT-4o-profile model, and reports per design how many
/// assertions were generated, how many survived the review gate as proven
/// lemmas, and whether the targets closed with them.

#include "bench_common.hpp"

namespace genfv {
namespace {

void run_experiment() {
  bench::print_header(
      "E2: helper-assertion generation flow over the design zoo",
      "Fig. 1 + Results (V)",
      "Generated helpers are proven first, then used as assumptions for the "
      "target proofs.");

  util::Table table({"design", "category", "candidates", "lemmas", "targets proven",
                     "target k", "prove time", "model latency"});
  for (const auto& info : designs::all_designs()) {
    auto task = designs::make_task(info);
    genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), bench::kSeed);
    flow::HelperGenFlow flow(llm, bench::default_flow_options());
    const flow::FlowReport report = flow.run(task);

    std::size_t max_k = 0;
    for (const auto& t : report.targets) max_k = std::max(max_k, t.result.k);
    table.add_row({info.name, info.category, std::to_string(report.candidates_total()),
                   std::to_string(report.admitted_lemmas.size()),
                   report.all_targets_proven() ? "yes" : "NO", std::to_string(max_k),
                   util::format_duration(report.prove_seconds),
                   util::format_duration(report.llm_seconds)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Note: designs whose targets are inductive without lemmas (lfsr16) "
              "close regardless of what the model proposes.\n\n");
}

void BM_HelperGenFlowSyncCounters(benchmark::State& state) {
  for (auto _ : state) {
    auto task = designs::make_task("sync_counters");
    genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), bench::kSeed);
    flow::HelperGenFlow flow(llm, bench::default_flow_options());
    benchmark::DoNotOptimize(flow.run(task));
  }
}
BENCHMARK(BM_HelperGenFlowSyncCounters);

}  // namespace
}  // namespace genfv

int main(int argc, char** argv) {
  genfv::run_experiment();
  return genfv::bench::run_benchmarks(argc, argv);
}
