file(REMOVE_RECURSE
  "CMakeFiles/test_elaborator.dir/tests/test_elaborator.cpp.o"
  "CMakeFiles/test_elaborator.dir/tests/test_elaborator.cpp.o.d"
  "test_elaborator"
  "test_elaborator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elaborator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
