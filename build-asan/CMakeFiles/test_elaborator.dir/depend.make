# Empty dependencies file for test_elaborator.
# This may be replaced when dependencies are built.
