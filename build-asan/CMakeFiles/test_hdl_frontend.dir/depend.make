# Empty dependencies file for test_hdl_frontend.
# This may be replaced when dependencies are built.
