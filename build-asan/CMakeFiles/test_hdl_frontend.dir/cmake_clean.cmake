file(REMOVE_RECURSE
  "CMakeFiles/test_hdl_frontend.dir/tests/test_hdl_frontend.cpp.o"
  "CMakeFiles/test_hdl_frontend.dir/tests/test_hdl_frontend.cpp.o.d"
  "test_hdl_frontend"
  "test_hdl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
