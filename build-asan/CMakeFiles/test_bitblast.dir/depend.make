# Empty dependencies file for test_bitblast.
# This may be replaced when dependencies are built.
