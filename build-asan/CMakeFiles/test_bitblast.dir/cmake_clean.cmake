file(REMOVE_RECURSE
  "CMakeFiles/test_bitblast.dir/tests/test_bitblast.cpp.o"
  "CMakeFiles/test_bitblast.dir/tests/test_bitblast.cpp.o.d"
  "test_bitblast"
  "test_bitblast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitblast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
