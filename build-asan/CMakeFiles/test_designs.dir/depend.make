# Empty dependencies file for test_designs.
# This may be replaced when dependencies are built.
