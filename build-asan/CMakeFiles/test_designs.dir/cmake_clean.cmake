file(REMOVE_RECURSE
  "CMakeFiles/test_designs.dir/tests/test_designs.cpp.o"
  "CMakeFiles/test_designs.dir/tests/test_designs.cpp.o.d"
  "test_designs"
  "test_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
