# Empty dependencies file for genfv_cli.
# This may be replaced when dependencies are built.
