file(REMOVE_RECURSE
  "CMakeFiles/genfv_cli.dir/tools/genfv_cli.cpp.o"
  "CMakeFiles/genfv_cli.dir/tools/genfv_cli.cpp.o.d"
  "genfv_cli"
  "genfv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genfv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
