file(REMOVE_RECURSE
  "CMakeFiles/test_miners.dir/tests/test_miners.cpp.o"
  "CMakeFiles/test_miners.dir/tests/test_miners.cpp.o.d"
  "test_miners"
  "test_miners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
