# Empty dependencies file for test_miners.
# This may be replaced when dependencies are built.
