file(REMOVE_RECURSE
  "CMakeFiles/test_mc.dir/tests/test_mc.cpp.o"
  "CMakeFiles/test_mc.dir/tests/test_mc.cpp.o.d"
  "test_mc"
  "test_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
