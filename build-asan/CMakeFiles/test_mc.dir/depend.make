# Empty dependencies file for test_mc.
# This may be replaced when dependencies are built.
