file(REMOVE_RECURSE
  "CMakeFiles/test_sva.dir/tests/test_sva.cpp.o"
  "CMakeFiles/test_sva.dir/tests/test_sva.cpp.o.d"
  "test_sva"
  "test_sva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
