# Empty dependencies file for test_sva.
# This may be replaced when dependencies are built.
