file(REMOVE_RECURSE
  "CMakeFiles/test_sat.dir/tests/test_sat.cpp.o"
  "CMakeFiles/test_sat.dir/tests/test_sat.cpp.o.d"
  "test_sat"
  "test_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
