# Empty dependencies file for test_sat.
# This may be replaced when dependencies are built.
