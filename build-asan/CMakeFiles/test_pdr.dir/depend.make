# Empty dependencies file for test_pdr.
# This may be replaced when dependencies are built.
