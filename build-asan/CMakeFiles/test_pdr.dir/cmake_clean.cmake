file(REMOVE_RECURSE
  "CMakeFiles/test_pdr.dir/tests/test_pdr.cpp.o"
  "CMakeFiles/test_pdr.dir/tests/test_pdr.cpp.o.d"
  "test_pdr"
  "test_pdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
