file(REMOVE_RECURSE
  "CMakeFiles/test_genai.dir/tests/test_genai.cpp.o"
  "CMakeFiles/test_genai.dir/tests/test_genai.cpp.o.d"
  "test_genai"
  "test_genai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
