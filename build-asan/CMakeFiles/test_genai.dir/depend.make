# Empty dependencies file for test_genai.
# This may be replaced when dependencies are built.
