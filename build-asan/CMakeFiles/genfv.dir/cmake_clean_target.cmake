file(REMOVE_RECURSE
  "libgenfv.a"
)
