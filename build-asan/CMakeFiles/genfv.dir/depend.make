# Empty dependencies file for genfv.
# This may be replaced when dependencies are built.
