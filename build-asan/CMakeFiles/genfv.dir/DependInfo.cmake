
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitblast/bitblaster.cpp" "CMakeFiles/genfv.dir/src/bitblast/bitblaster.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/bitblast/bitblaster.cpp.o.d"
  "/root/repo/src/designs/counters.cpp" "CMakeFiles/genfv.dir/src/designs/counters.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/designs/counters.cpp.o.d"
  "/root/repo/src/designs/datapath.cpp" "CMakeFiles/genfv.dir/src/designs/datapath.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/designs/datapath.cpp.o.d"
  "/root/repo/src/designs/ecc.cpp" "CMakeFiles/genfv.dir/src/designs/ecc.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/designs/ecc.cpp.o.d"
  "/root/repo/src/designs/fsm.cpp" "CMakeFiles/genfv.dir/src/designs/fsm.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/designs/fsm.cpp.o.d"
  "/root/repo/src/designs/registry.cpp" "CMakeFiles/genfv.dir/src/designs/registry.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/designs/registry.cpp.o.d"
  "/root/repo/src/flow/cex_repair_flow.cpp" "CMakeFiles/genfv.dir/src/flow/cex_repair_flow.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/flow/cex_repair_flow.cpp.o.d"
  "/root/repo/src/flow/direct_miner_flow.cpp" "CMakeFiles/genfv.dir/src/flow/direct_miner_flow.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/flow/direct_miner_flow.cpp.o.d"
  "/root/repo/src/flow/helper_gen_flow.cpp" "CMakeFiles/genfv.dir/src/flow/helper_gen_flow.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/flow/helper_gen_flow.cpp.o.d"
  "/root/repo/src/flow/lemma_manager.cpp" "CMakeFiles/genfv.dir/src/flow/lemma_manager.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/flow/lemma_manager.cpp.o.d"
  "/root/repo/src/flow/report.cpp" "CMakeFiles/genfv.dir/src/flow/report.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/flow/report.cpp.o.d"
  "/root/repo/src/flow/review_policy.cpp" "CMakeFiles/genfv.dir/src/flow/review_policy.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/flow/review_policy.cpp.o.d"
  "/root/repo/src/flow/session.cpp" "CMakeFiles/genfv.dir/src/flow/session.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/flow/session.cpp.o.d"
  "/root/repo/src/genai/mining/bounds.cpp" "CMakeFiles/genfv.dir/src/genai/mining/bounds.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/bounds.cpp.o.d"
  "/root/repo/src/genai/mining/difference.cpp" "CMakeFiles/genfv.dir/src/genai/mining/difference.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/difference.cpp.o.d"
  "/root/repo/src/genai/mining/equality.cpp" "CMakeFiles/genfv.dir/src/genai/mining/equality.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/equality.cpp.o.d"
  "/root/repo/src/genai/mining/implication.cpp" "CMakeFiles/genfv.dir/src/genai/mining/implication.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/implication.cpp.o.d"
  "/root/repo/src/genai/mining/miner.cpp" "CMakeFiles/genfv.dir/src/genai/mining/miner.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/miner.cpp.o.d"
  "/root/repo/src/genai/mining/onehot.cpp" "CMakeFiles/genfv.dir/src/genai/mining/onehot.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/onehot.cpp.o.d"
  "/root/repo/src/genai/mining/reset_value.cpp" "CMakeFiles/genfv.dir/src/genai/mining/reset_value.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/reset_value.cpp.o.d"
  "/root/repo/src/genai/mining/xor_linear.cpp" "CMakeFiles/genfv.dir/src/genai/mining/xor_linear.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/mining/xor_linear.cpp.o.d"
  "/root/repo/src/genai/model_profile.cpp" "CMakeFiles/genfv.dir/src/genai/model_profile.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/model_profile.cpp.o.d"
  "/root/repo/src/genai/prompt.cpp" "CMakeFiles/genfv.dir/src/genai/prompt.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/prompt.cpp.o.d"
  "/root/repo/src/genai/response_parser.cpp" "CMakeFiles/genfv.dir/src/genai/response_parser.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/response_parser.cpp.o.d"
  "/root/repo/src/genai/simulated_llm.cpp" "CMakeFiles/genfv.dir/src/genai/simulated_llm.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/genai/simulated_llm.cpp.o.d"
  "/root/repo/src/hdl/elaborator.cpp" "CMakeFiles/genfv.dir/src/hdl/elaborator.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/hdl/elaborator.cpp.o.d"
  "/root/repo/src/hdl/lexer.cpp" "CMakeFiles/genfv.dir/src/hdl/lexer.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/hdl/lexer.cpp.o.d"
  "/root/repo/src/hdl/parser.cpp" "CMakeFiles/genfv.dir/src/hdl/parser.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/hdl/parser.cpp.o.d"
  "/root/repo/src/ir/fold.cpp" "CMakeFiles/genfv.dir/src/ir/fold.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/ir/fold.cpp.o.d"
  "/root/repo/src/ir/node_manager.cpp" "CMakeFiles/genfv.dir/src/ir/node_manager.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/ir/node_manager.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "CMakeFiles/genfv.dir/src/ir/printer.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/ir/printer.cpp.o.d"
  "/root/repo/src/ir/serialize.cpp" "CMakeFiles/genfv.dir/src/ir/serialize.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/ir/serialize.cpp.o.d"
  "/root/repo/src/ir/substitute.cpp" "CMakeFiles/genfv.dir/src/ir/substitute.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/ir/substitute.cpp.o.d"
  "/root/repo/src/ir/transition_system.cpp" "CMakeFiles/genfv.dir/src/ir/transition_system.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/ir/transition_system.cpp.o.d"
  "/root/repo/src/mc/bmc.cpp" "CMakeFiles/genfv.dir/src/mc/bmc.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/bmc.cpp.o.d"
  "/root/repo/src/mc/engine.cpp" "CMakeFiles/genfv.dir/src/mc/engine.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/engine.cpp.o.d"
  "/root/repo/src/mc/kinduction.cpp" "CMakeFiles/genfv.dir/src/mc/kinduction.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/kinduction.cpp.o.d"
  "/root/repo/src/mc/pdr/cube.cpp" "CMakeFiles/genfv.dir/src/mc/pdr/cube.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/pdr/cube.cpp.o.d"
  "/root/repo/src/mc/pdr/frames.cpp" "CMakeFiles/genfv.dir/src/mc/pdr/frames.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/pdr/frames.cpp.o.d"
  "/root/repo/src/mc/pdr/pdr.cpp" "CMakeFiles/genfv.dir/src/mc/pdr/pdr.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/pdr/pdr.cpp.o.d"
  "/root/repo/src/mc/result.cpp" "CMakeFiles/genfv.dir/src/mc/result.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/result.cpp.o.d"
  "/root/repo/src/mc/unroller.cpp" "CMakeFiles/genfv.dir/src/mc/unroller.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/mc/unroller.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "CMakeFiles/genfv.dir/src/sat/dimacs.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "CMakeFiles/genfv.dir/src/sat/solver.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sat/solver.cpp.o.d"
  "/root/repo/src/sim/interpreter.cpp" "CMakeFiles/genfv.dir/src/sim/interpreter.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sim/interpreter.cpp.o.d"
  "/root/repo/src/sim/random_sim.cpp" "CMakeFiles/genfv.dir/src/sim/random_sim.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sim/random_sim.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "CMakeFiles/genfv.dir/src/sim/trace.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sim/trace.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "CMakeFiles/genfv.dir/src/sim/vcd.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sim/vcd.cpp.o.d"
  "/root/repo/src/sim/waveform.cpp" "CMakeFiles/genfv.dir/src/sim/waveform.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sim/waveform.cpp.o.d"
  "/root/repo/src/sva/compiler.cpp" "CMakeFiles/genfv.dir/src/sva/compiler.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sva/compiler.cpp.o.d"
  "/root/repo/src/sva/parser.cpp" "CMakeFiles/genfv.dir/src/sva/parser.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/sva/parser.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/genfv.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/genfv.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/genfv.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/genfv.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
