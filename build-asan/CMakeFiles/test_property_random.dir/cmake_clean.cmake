file(REMOVE_RECURSE
  "CMakeFiles/test_property_random.dir/tests/test_property_random.cpp.o"
  "CMakeFiles/test_property_random.dir/tests/test_property_random.cpp.o.d"
  "test_property_random"
  "test_property_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
