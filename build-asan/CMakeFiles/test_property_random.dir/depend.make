# Empty dependencies file for test_property_random.
# This may be replaced when dependencies are built.
