file(REMOVE_RECURSE
  "CMakeFiles/test_flow.dir/tests/test_flow.cpp.o"
  "CMakeFiles/test_flow.dir/tests/test_flow.cpp.o.d"
  "test_flow"
  "test_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
