# Empty dependencies file for test_flow.
# This may be replaced when dependencies are built.
