/// genfv_cli — command-line front door to the library.
///
///   genfv_cli prove --rtl design.sv --property "<sva>" [options]
///       Verify RTL from a file: elaborate, compile the target properties,
///       and run the selected flow.
///   genfv_cli prove --rtl design.aag [options]
///       Verify a standard-format design: .aag/.aig go through the AIGER
///       frontend, .btor/.btor2 through the BTOR2 frontend. Targets are the
///       file's embedded properties; --property then *selects* properties by
///       name ("bad_0", with an optional engine prefix "pdr:bad_0") instead
///       of compiling SVA.
///   genfv_cli <file.aag|file.aig|file.btor|file.btor2|file.sv> [options]
///       Shorthand for `prove --rtl <file>`.
///   genfv_cli demo <design> [options]
///       Run a built-in zoo design through the selected flow.
///   genfv_cli sat <file.cnf> [options]
///       Solve a DIMACS CNF with the SAT backend directly (no model
///       checking). Prints "s SATISFIABLE" / "s UNSATISFIABLE"; honours
///       --sat-backend, --sat-inprocess and --drat-out, which makes it the
///       harness the DRAT-certificate CI check drives (scripts/check_drat.py).
///   genfv_cli designs
///       List the built-in design zoo.
///   genfv_cli models
///       List the simulated model profiles.
///
/// Options (--opt value and --opt=value are both accepted):
///   --flow cex|helper|direct|plain   (default: cex — the paper's Fig. 2 loop)
///   --engine bmc|kind|pdr|portfolio  target-proof engine (default: kind)
///   --exchange on|off                live lemma exchange between portfolio
///                                    members (default: on; no effect on
///                                    single engines)
///   --pdr-workers <n>|auto           PDR worker shards for obligation
///                                    blocking / clause propagation
///                                    (default: auto — small designs stay on
///                                    the single-threaded engine, larger ones
///                                    shard; 1 forces single-threaded PDR)
///   --pdr-ternary on|off             PDR ternary-simulation cube lifting:
///                                    shrink extracted cubes before
///                                    generalization (default: off)
///   --seed-candidates on|off         seed PDR frames with unproven candidate
///                                    lemmas under the may-proof discipline
///                                    (default: off; see docs/lemmas.md)
///   --pdr-strikes <n>                retract a seeded candidate after it is
///                                    struck by <n> refuting obligations
///                                    (default: 2; min 1; see docs/lemmas.md)
///   --sat-backend <name>             SAT backend for every engine solver
///                                    (default: internal — the in-tree CDCL
///                                    core; see docs/sat.md)
///   --sat-inprocess on|off           inprocessing between restarts plus the
///                                    LBD-tiered learnt-clause DB (default:
///                                    on; off pins the plain-CDCL behavior)
///   --drat-out <path>                log DRAT proofs: each solver writes
///                                    <path>[-p..][-r..].cnf/.drat; check
///                                    with scripts/check_drat.py (docs/sat.md)
///   --property "<sva>"               may repeat; an `<engine>:` prefix (e.g.
///                                    "pdr:count <= 8") overrides the engine
///                                    for that property (plain flow only)
///   --emit-lemmas <file>             export proven lemmas / the winning
///                                    engine's inductive invariant as a lemma
///                                    file (docs/cli.md) for later re-use
///   --use-lemmas <file>              re-ingest a lemma file: every line is
///                                    re-proven via LemmaManager before it is
///                                    assumed (sound even for stale files)
///   --model <name>                   (default: gpt-4o)
///   --seed <n>                       (default: 42)
///   --max-k <n>                      step bound: BMC depth / induction k /
///                                    PDR frames (default: 8)
///   --no-screen                      disable the simulation review screen
///   --dump-aiger <file.aag|file.aig> bit-blast the design and write it as an
///                                    AIGER 1.9 file — ASCII, or binary when
///                                    the extension is .aig (corpus
///                                    generation; docs/frontends.md)
///   --dump-ts <file>                 serialize the elaborated system
///   --vcd <file>                     dump the last step-CEX (plain flow) as VCD
///   --trace-out <file.json>          record trace spans across the whole run
///                                    and write Chrome trace-format JSON
///                                    (open in Perfetto; docs/observability.md)
///   --metrics-out <file.json>        snapshot the metrics registry (counters,
///                                    gauges, histograms) to JSON at exit
///   --progress <seconds>             live one-line status heartbeat at Info
///                                    level every <seconds> (implies metrics)
///   --verbose                        info-level logging

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "frontend/aiger.hpp"
#include "flow/direct_miner_flow.hpp"
#include "flow/helper_gen_flow.hpp"
#include "flow/lemma_io.hpp"
#include "genai/simulated_llm.hpp"
#include "ir/printer.hpp"
#include "ir/serialize.hpp"
#include "mc/engine.hpp"
#include "sat/backend.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "sim/vcd.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace genfv;

struct CliOptions {
  std::string command;
  std::string rtl_path;
  std::vector<std::string> properties;
  /// Parallel to `properties`: per-property engine override (plain flow).
  std::vector<std::optional<mc::EngineKind>> property_engines;
  std::string design;
  std::string flow = "cex";
  mc::EngineKind engine = mc::EngineKind::KInduction;
  bool exchange = true;
  std::size_t pdr_workers = 0;  ///< 0 = auto (mc::auto_pdr_workers per design)
  bool pdr_ternary = false;
  bool seed_candidates = false;
  std::size_t pdr_strikes = 2;
  std::string sat_backend = "internal";
  bool sat_inprocess = true;
  std::string drat_out;
  std::string model = "gpt-4o";
  std::uint64_t seed = 42;
  std::size_t max_k = 8;
  bool sim_screen = true;
  std::string dump_ts_path;
  std::string dump_aiger_path;
  std::string vcd_path;
  std::string emit_lemmas_path;
  std::string use_lemmas_path;
  std::string trace_out_path;
  std::string metrics_out_path;
  double progress_seconds = 0.0;  // 0 = no heartbeat
  bool verbose = false;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  genfv_cli prove --rtl <file.sv> --property \"[engine:]<sva>\" [options]\n"
               "  genfv_cli prove --rtl <file.aag|aig|btor|btor2> [--property \"[engine:]<name>\"]\n"
               "  genfv_cli <file.aag|aig|btor|btor2|sv> [options]   (prove shorthand)\n"
               "  genfv_cli demo <design> [options]\n"
               "  genfv_cli sat <file.cnf> [--sat-backend <name>] [--drat-out <path>]\n"
               "  genfv_cli designs | models\n"
               "options: --flow cex|helper|direct|plain  --engine bmc|kind|pdr|portfolio\n"
               "         --exchange on|off  --pdr-workers <n>|auto  --pdr-ternary on|off\n"
               "         --seed-candidates on|off  --pdr-strikes <n>\n"
               "         --sat-backend <name>  --sat-inprocess on|off  --drat-out <path>\n"
               "         --emit-lemmas <file>  --use-lemmas <file>\n"
               "         --model <name>  --seed <n>  --max-k <n>  --no-screen\n"
               "         --dump-ts <file>  --dump-aiger <file.aag>  --vcd <file>  --verbose\n"
               "         --trace-out <file.json>  --metrics-out <file.json>\n"
               "         --progress <seconds>\n"
               "full reference: docs/cli.md\n");
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opts;
  if (argc < 2) usage();
  opts.command = argv[1];
  int i = 2;
  // Bare-file shorthand: `genfv_cli foo.aag` == `genfv_cli prove --rtl foo.aag`.
  if (opts.command != "prove" && opts.command != "demo" && opts.command != "sat" &&
      opts.command != "designs" && opts.command != "models" &&
      opts.command.rfind("--", 0) != 0 &&
      opts.command.find('.') != std::string::npos) {
    opts.rtl_path = opts.command;
    opts.command = "prove";
  }
  if (opts.command == "demo") {
    if (i >= argc) usage("demo requires a design name");
    opts.design = argv[i++];
  }
  if (opts.command == "sat") {
    if (i >= argc) usage("sat requires a DIMACS CNF file");
    opts.rtl_path = argv[i++];
  }
  // Support both "--opt value" and "--opt=value".
  std::string inline_value;
  bool has_inline_value = false;
  auto need_value = [&](const char* flag) -> std::string {
    if (has_inline_value) return inline_value;
    if (i >= argc) usage((std::string(flag) + " requires a value").c_str());
    return argv[i++];
  };
  while (i < argc) {
    std::string arg = argv[i++];
    has_inline_value = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg = arg.substr(0, eq);
      }
    }
    auto no_value = [&](const char* flag) {
      if (has_inline_value) usage((std::string(flag) + " takes no value").c_str());
    };
    if (arg == "--rtl") opts.rtl_path = need_value("--rtl");
    else if (arg == "--property") {
      // Optional per-property engine override: "<engine>:<sva>". Only a
      // prefix that names a known engine is treated as an override, so SVA
      // containing ':' elsewhere is unaffected.
      std::string value = need_value("--property");
      std::optional<mc::EngineKind> override_kind;
      const std::size_t colon = value.find(':');
      if (colon != std::string::npos) {
        if (const auto kind = mc::engine_kind_from_string(value.substr(0, colon))) {
          override_kind = *kind;
          value = value.substr(colon + 1);
        }
      }
      opts.properties.push_back(value);
      opts.property_engines.push_back(override_kind);
    }
    else if (arg == "--flow") opts.flow = need_value("--flow");
    else if (arg == "--engine") {
      const std::string name = need_value("--engine");
      const auto kind = mc::engine_kind_from_string(name);
      if (!kind.has_value()) usage(("unknown engine '" + name + "'").c_str());
      opts.engine = *kind;
    }
    else if (arg == "--exchange") {
      const std::string value = need_value("--exchange");
      if (value == "on") opts.exchange = true;
      else if (value == "off") opts.exchange = false;
      else usage("--exchange takes 'on' or 'off'");
    }
    else if (arg == "--pdr-workers") {
      const std::string value = need_value("--pdr-workers");
      if (value == "auto") opts.pdr_workers = 0;
      else {
        opts.pdr_workers = std::stoull(value);
        if (opts.pdr_workers == 0) {
          usage("--pdr-workers takes a worker count >= 1 or 'auto'");
        }
      }
    }
    else if (arg == "--pdr-ternary") {
      const std::string value = need_value("--pdr-ternary");
      if (value == "on") opts.pdr_ternary = true;
      else if (value == "off") opts.pdr_ternary = false;
      else usage("--pdr-ternary takes 'on' or 'off'");
    }
    else if (arg == "--seed-candidates") {
      const std::string value = need_value("--seed-candidates");
      if (value == "on") opts.seed_candidates = true;
      else if (value == "off") opts.seed_candidates = false;
      else usage("--seed-candidates takes 'on' or 'off'");
    }
    else if (arg == "--pdr-strikes") {
      opts.pdr_strikes = std::stoull(need_value("--pdr-strikes"));
      if (opts.pdr_strikes == 0) usage("--pdr-strikes takes a strike limit >= 1");
    }
    else if (arg == "--sat-backend") opts.sat_backend = need_value("--sat-backend");
    else if (arg == "--sat-inprocess") {
      const std::string value = need_value("--sat-inprocess");
      if (value == "on") opts.sat_inprocess = true;
      else if (value == "off") opts.sat_inprocess = false;
      else usage("--sat-inprocess takes 'on' or 'off'");
    }
    else if (arg == "--drat-out") opts.drat_out = need_value("--drat-out");
    else if (arg == "--model") opts.model = need_value("--model");
    else if (arg == "--seed") opts.seed = std::stoull(need_value("--seed"));
    else if (arg == "--max-k") opts.max_k = std::stoull(need_value("--max-k"));
    else if (arg == "--no-screen") { no_value("--no-screen"); opts.sim_screen = false; }
    else if (arg == "--dump-ts") opts.dump_ts_path = need_value("--dump-ts");
    else if (arg == "--dump-aiger") opts.dump_aiger_path = need_value("--dump-aiger");
    else if (arg == "--vcd") opts.vcd_path = need_value("--vcd");
    else if (arg == "--trace-out") opts.trace_out_path = need_value("--trace-out");
    else if (arg == "--metrics-out") opts.metrics_out_path = need_value("--metrics-out");
    else if (arg == "--progress") {
      opts.progress_seconds = std::stod(need_value("--progress"));
      if (opts.progress_seconds <= 0.0) usage("--progress requires a positive interval");
    }
    else if (arg == "--emit-lemmas") opts.emit_lemmas_path = need_value("--emit-lemmas");
    else if (arg == "--use-lemmas") opts.use_lemmas_path = need_value("--use-lemmas");
    else if (arg == "--verbose") { no_value("--verbose"); opts.verbose = true; }
    else usage(("unknown option " + arg).c_str());
  }
  return opts;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    std::exit(1);
  }
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

/// Re-ingest a lemma file: every line goes through the full LemmaManager
/// gate (parse -> screen -> prove -> admit), so only re-proven lemmas come
/// back. Returns the admitted expressions; prints a one-line summary.
std::vector<ir::NodeRef> ingest_lemma_file(flow::VerificationTask& task,
                                           const std::string& path, std::size_t max_k) {
  const std::vector<std::string> texts = flow::read_lemma_file(path);
  flow::LemmaManagerOptions options;
  options.engine.max_k = max_k;
  flow::LemmaManager manager(task, options);
  manager.process(texts);
  std::printf("lemma file %s: %zu line(s), %zu re-proven and assumed\n", path.c_str(),
              texts.size(), manager.lemma_exprs().size());
  return manager.lemma_exprs();
}

void emit_lemmas(const std::string& path, const std::string& design,
                 const std::vector<std::string>& lemma_svas) {
  flow::write_lemma_file(path, design, lemma_svas);
  std::printf("wrote %s (%zu lemma(s))\n", path.c_str(), lemma_svas.size());
}

/// One-line engine summary sourced from the metrics registry — the same
/// numbers --metrics-out exports, not a second hand-copied set.
std::string telemetry_summary_line() {
  auto& reg = util::metrics();
  const std::uint64_t solves = reg.counter("sat.solves").value();
  const std::uint64_t solve_ms = reg.counter("sat.solve_ns").value() / 1000000;
  const std::uint64_t blocking_ms = reg.counter("pdr.blocking_ns").value() / 1000000;
  const std::uint64_t propagate_ms = reg.counter("pdr.propagate_ns").value() / 1000000;
  const std::uint64_t lock_wait_us = reg.counter("pdr.framedb_mutex_wait_ns").value() / 1000;
  const std::uint64_t published = reg.counter("exchange.published").value();
  const std::uint64_t absorbed = reg.counter("exchange.absorbed").value();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "telemetry: sat %llu solves / %llu ms, pdr blocking %llu ms propagate %llu ms, "
                "framedb wait %llu us, exchange %llu pub / %llu abs",
                static_cast<unsigned long long>(solves),
                static_cast<unsigned long long>(solve_ms),
                static_cast<unsigned long long>(blocking_ms),
                static_cast<unsigned long long>(propagate_ms),
                static_cast<unsigned long long>(lock_wait_us),
                static_cast<unsigned long long>(published),
                static_cast<unsigned long long>(absorbed));
  return buf;
}

void print_result(const std::string& label, const mc::EngineResult& result) {
  std::printf("%s: %s\n", label.c_str(), result.summary().c_str());
  if (util::telemetry_on()) {
    result.stats.publish_metrics("engine.");
    std::printf("%s\n", telemetry_summary_line().c_str());
  }
  for (const mc::EngineBreakdown& member : result.breakdown) {
    std::string exchange;
    if (member.lemmas_published != 0 || member.lemmas_absorbed != 0) {
      exchange = ", published " + std::to_string(member.lemmas_published) +
                 " / absorbed " + std::to_string(member.lemmas_absorbed) + " lemmas";
    }
    std::printf("  %-12s %s (depth=%zu, %zu SAT calls%s)%s%s\n", member.engine.c_str(),
                mc::to_string(member.verdict).c_str(), member.depth,
                member.stats.sat_calls, exchange.c_str(),
                member.note.empty() ? "" : " — ", member.note.c_str());
  }
}

int run_plain(flow::VerificationTask& task, const CliOptions& opts) {
  mc::EngineOptions base;
  base.max_steps = opts.max_k;
  base.exchange = opts.exchange;
  base.pdr_workers = opts.pdr_workers;
  base.pdr_ternary_lifting = opts.pdr_ternary;
  base.pdr_seed_candidates = opts.seed_candidates;
  base.pdr_candidate_strikes = opts.pdr_strikes;
  base.sat_backend = opts.sat_backend;
  base.sat_inprocess = opts.sat_inprocess;
  base.drat_path = opts.drat_out;
  if (!opts.use_lemmas_path.empty()) {
    base.lemmas = ingest_lemma_file(task, opts.use_lemmas_path, opts.max_k);
  }

  const bool has_overrides = [&] {
    for (const auto& e : opts.property_engines) {
      if (e.has_value()) return true;
    }
    return false;
  }();

  bool all_proven = true;
  std::vector<std::string> exported;
  const sim::Trace* wave_trace = nullptr;
  mc::EngineResult joint;  // keeps the trace alive for waveform rendering
  std::vector<mc::EngineResult> per_target;

  if (!has_overrides) {
    auto engine = mc::make_engine(opts.engine, task.ts, base);
    joint = engine->prove_all(task.target_exprs());
    print_result("plain " + engine->name(), joint);
    all_proven = joint.verdict == mc::Verdict::Proven;
    for (const ir::NodeRef clause : joint.invariant) {
      exported.push_back(ir::to_string(clause));
    }
    if (joint.cex.has_value()) wave_trace = &*joint.cex;
    else if (joint.step_cex.has_value()) wave_trace = &*joint.step_cex;
  } else {
    // Per-property engine overrides: prove each target on its own engine.
    per_target.reserve(task.target_indices.size());
    for (std::size_t t = 0; t < task.target_indices.size(); ++t) {
      const auto& prop = task.ts.property(task.target_indices[t]);
      const mc::EngineKind kind = t < opts.property_engines.size() &&
                                          opts.property_engines[t].has_value()
                                      ? *opts.property_engines[t]
                                      : opts.engine;
      auto engine = mc::make_engine(kind, task.ts, base);
      per_target.push_back(engine->prove(prop.expr));
      const mc::EngineResult& result = per_target.back();
      print_result(prop.name + " [" + engine->name() + "]", result);
      all_proven = all_proven && result.verdict == mc::Verdict::Proven;
      for (const ir::NodeRef clause : result.invariant) {
        exported.push_back(ir::to_string(clause));
      }
      if (wave_trace == nullptr) {
        if (result.cex.has_value()) wave_trace = &*result.cex;
        else if (result.step_cex.has_value()) wave_trace = &*result.step_cex;
      }
    }
  }

  if (!exported.empty()) {
    std::printf("inductive invariant (%zu clauses, reusable as proven lemmas):\n",
                exported.size());
    for (const std::string& clause : exported) {
      std::printf("  assert property (%s);\n", clause.c_str());
    }
  }
  if (!opts.emit_lemmas_path.empty()) {
    emit_lemmas(opts.emit_lemmas_path, task.name, exported);
  }
  if (wave_trace != nullptr) {
    sim::WaveformOptions wave;
    wave.failure_frame = wave_trace->size() - 1;
    std::printf("%s\n", sim::render_waveform(*wave_trace,
                                             sim::default_signals(task.ts), wave)
                            .c_str());
    if (!opts.vcd_path.empty()) {
      write_file(opts.vcd_path, sim::render_vcd(*wave_trace,
                                                sim::default_signals(task.ts),
                                                task.name));
    }
  }
  return all_proven ? 0 : 1;
}

int run_task(flow::VerificationTask& task, const CliOptions& opts) {
  if (!opts.dump_ts_path.empty()) {
    write_file(opts.dump_ts_path, ir::serialize(task.ts));
  }
  if (!opts.dump_aiger_path.empty()) {
    const std::string& path = opts.dump_aiger_path;
    const bool binary = path.size() >= 4 && path.compare(path.size() - 4, 4, ".aig") == 0;
    write_file(path, binary ? frontend::write_aiger_binary(task.ts)
                            : frontend::write_aiger(task.ts));
  }
  if (opts.flow == "plain") return run_plain(task, opts);
  for (const auto& e : opts.property_engines) {
    if (e.has_value()) usage("per-property engine overrides require --flow plain");
  }

  flow::FlowOptions options;
  options.engine.max_k = opts.max_k;
  options.review.sim_screen = opts.sim_screen;
  options.target_engine = opts.engine;
  options.exchange = opts.exchange;
  options.pdr_workers = opts.pdr_workers;
  options.pdr_ternary = opts.pdr_ternary;
  options.pdr_seed_candidates = opts.seed_candidates;
  options.pdr_candidate_strikes = opts.pdr_strikes;
  options.engine.sat_backend = opts.sat_backend;
  options.engine.sat_inprocess = opts.sat_inprocess;
  options.engine.drat_path = opts.drat_out;
  if (!opts.use_lemmas_path.empty()) {
    options.engine.lemmas = ingest_lemma_file(task, opts.use_lemmas_path, opts.max_k);
  }

  flow::FlowReport report;
  if (opts.flow == "direct") {
    flow::DirectMinerFlow direct({options.engine, options.review, true, 48, 6, opts.seed});
    report = direct.run(task);
  } else {
    genai::SimulatedLlm llm(genai::profile_by_name(opts.model), opts.seed);
    if (opts.flow == "helper") {
      flow::HelperGenFlow helper(llm, options);
      report = helper.run(task);
    } else if (opts.flow == "cex") {
      flow::CexRepairFlow repair(llm, options);
      report = repair.run(task);
    } else {
      usage(("unknown flow '" + opts.flow + "'").c_str());
    }
  }
  report.seed = opts.seed;
  std::printf("%s\n", report.to_string().c_str());
  if (!opts.emit_lemmas_path.empty()) {
    emit_lemmas(opts.emit_lemmas_path, task.name, report.admitted_lemmas);
  }
  return report.all_targets_proven() ? 0 : 1;
}

/// True when the path names a standard-format design (AIGER / BTOR2) rather
/// than HDL source.
bool is_frontend_path(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  std::string ext = path.substr(dot + 1);
  for (char& c : ext) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return ext == "aag" || ext == "aig" || ext == "btor" || ext == "btor2";
}

/// On frontend files --property selects embedded properties by name (order
/// follows the flags, so per-property engine overrides stay aligned).
void select_targets(flow::VerificationTask& task, const std::vector<std::string>& names) {
  std::vector<std::size_t> selected;
  for (const std::string& name : names) {
    bool found = false;
    for (const std::size_t idx : task.target_indices) {
      if (task.ts.property(idx).name == name) {
        selected.push_back(idx);
        found = true;
        break;
      }
    }
    if (!found) {
      std::string known;
      for (const std::size_t idx : task.target_indices) {
        if (!known.empty()) known += ", ";
        known += task.ts.property(idx).name;
      }
      throw UsageError("no property named '" + name + "' in this design (has: " +
                       (known.empty() ? "none" : known) + ")");
    }
  }
  task.target_indices = std::move(selected);
}

/// `genfv_cli sat <file.cnf>` — solve a DIMACS CNF directly through the
/// pluggable backend. This is the smallest possible harness around the SAT
/// core: the CI DRAT check runs it with --drat-out and validates the
/// resulting certificate with scripts/check_drat.py.
int cmd_sat(const CliOptions& opts) {
  const sat::Cnf cnf = sat::parse_dimacs(read_file(opts.rtl_path));
  const std::unique_ptr<sat::Backend> backend = sat::make_backend(opts.sat_backend);
  backend->set_inprocessing(opts.sat_inprocess);
  if (!opts.drat_out.empty() && !backend->start_proof(opts.drat_out)) {
    std::fprintf(stderr, "error: backend '%s' cannot write a proof to '%s'\n",
                 opts.sat_backend.c_str(), opts.drat_out.c_str());
    return 2;
  }
  sat::LBool verdict = sat::LBool::Undef;
  if (!sat::load_cnf(cnf, *backend)) {
    verdict = sat::LBool::False;
  } else {
    // A standalone solve has no assumptions to protect, so let the in-tree
    // solver run one deterministic inprocessing session up front — the same
    // passes the incremental path runs between restarts.
    if (auto* solver = dynamic_cast<sat::Solver*>(backend.get());
        solver != nullptr && opts.sat_inprocess) {
      solver->simplify_now();
    }
    verdict = backend->inconsistent() ? sat::LBool::False : backend->solve();
  }
  switch (verdict) {
    case sat::LBool::True: std::printf("s SATISFIABLE\n"); return 0;
    case sat::LBool::False: std::printf("s UNSATISFIABLE\n"); return 0;
    case sat::LBool::Undef: break;
  }
  std::printf("s UNKNOWN\n");
  return 1;
}

int cmd_designs() {
  std::printf("%-18s %-10s %-12s %s\n", "name", "category", "key insight", "description");
  for (const auto& d : designs::all_designs()) {
    std::printf("%-18s %-10s %-12s %s\n", d.name.c_str(), d.category.c_str(),
                d.key_insight.empty() ? "-" : d.key_insight.c_str(),
                d.description.c_str());
  }
  return 0;
}

int cmd_models() {
  for (const auto& name : genai::known_models()) {
    const auto& p = genai::profile_by_name(name);
    std::printf("%-16s vendor=%-7s insight=%d/7 hallucination=%.0f%% syntax-err=%.0f%% "
                "self-check=%s\n",
                p.name.c_str(), p.vendor.c_str(), p.insight,
                p.hallucination_rate * 100, p.syntax_error_rate * 100,
                p.self_check ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_args(argc, argv);
  if (opts.verbose) util::set_log_level(util::LogLevel::Info);

  // Telemetry is process-global: one switch arms every layer's
  // instrumentation at once (docs/observability.md).
  if (!opts.trace_out_path.empty()) {
    util::set_telemetry_level(util::TelemetryLevel::Tracing);
  } else if (!opts.metrics_out_path.empty() || opts.progress_seconds > 0.0) {
    util::set_telemetry_level(util::TelemetryLevel::Metrics);
  }
  if (util::tracing_on()) util::set_trace_thread_name("main");
  if (opts.progress_seconds > 0.0 &&
      static_cast<int>(util::log_level()) < static_cast<int>(util::LogLevel::Info)) {
    util::set_log_level(util::LogLevel::Info);  // heartbeat logs at Info
  }

  std::optional<util::Heartbeat> heartbeat;
  if (opts.progress_seconds > 0.0) {
    heartbeat.emplace(opts.progress_seconds, util::ProgressStatus{});
  }

  int rc = 1;
  try {
    if (opts.command == "designs") rc = cmd_designs();
    else if (opts.command == "models") rc = cmd_models();
    else if (opts.command == "sat") rc = cmd_sat(opts);
    else if (opts.command == "demo") {
      auto task = designs::make_task(opts.design);
      rc = run_task(task, opts);
    }
    else if (opts.command == "prove") {
      if (opts.rtl_path.empty()) usage("prove requires --rtl");
      if (is_frontend_path(opts.rtl_path)) {
        // Standard-format designs carry their own properties; --property
        // selects among them by name instead of compiling SVA.
        auto task = flow::VerificationTask::from_file(opts.rtl_path);
        if (!opts.properties.empty()) select_targets(task, opts.properties);
        if (task.target_indices.empty()) {
          throw UsageError("'" + opts.rtl_path + "' has no properties to prove");
        }
        rc = run_task(task, opts);
      } else {
        if (opts.properties.empty()) usage("prove requires at least one --property");
        std::vector<flow::TargetSpec> targets;
        for (std::size_t i = 0; i < opts.properties.size(); ++i) {
          targets.push_back({"target_" + std::to_string(i + 1), opts.properties[i]});
        }
        auto task = flow::VerificationTask::from_rtl(
            opts.rtl_path, /*spec=*/"", read_file(opts.rtl_path), targets);
        rc = run_task(task, opts);
      }
    }
    else usage(("unknown command '" + opts.command + "'").c_str());
  } catch (const genfv::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  // Flush observability artefacts even when the run failed — a trace of the
  // failing run is exactly what one wants to look at.
  heartbeat.reset();
  if (!opts.trace_out_path.empty() && util::write_trace_json(opts.trace_out_path)) {
    std::printf("wrote trace %s (%zu events)\n", opts.trace_out_path.c_str(),
                util::trace_snapshot().size());
  }
  if (!opts.metrics_out_path.empty() && util::write_metrics_json(opts.metrics_out_path)) {
    std::printf("wrote metrics %s\n", opts.metrics_out_path.c_str());
  }
  return rc;
}
