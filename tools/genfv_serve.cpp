/// \file genfv_serve.cpp
/// The resident verification daemon (docs/serve.md).
///
/// Two transports over one server core:
///   genfv_serve                       # line-delimited JSON on stdin/stdout
///   genfv_serve --socket /tmp/g.sock  # AF_UNIX socket, concurrent clients
///
/// A regression farm keeps one daemon resident: re-submitting an unmodified
/// design costs a cache hit plus a one-step re-certification instead of a
/// full proof, and an edited design starts PDR warm from the surviving
/// clauses of the previous invariant (scripts/serve_client.py is the
/// reference client).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/log.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace {

genfv::serve::Server* g_server = nullptr;

void handle_signal(int) {
  // Async-signal-safe: flip the drain flag only; the accept/stdio loops
  // notice within their poll timeout and drain on their own thread.
  if (g_server != nullptr) g_server->request_shutdown();
}

struct ServeCliOptions {
  genfv::serve::ServerOptions server;
  std::string socket_path;
  std::string metrics_out_path;
  bool verbose = false;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: genfv_serve [options]\n"
               "\n"
               "Resident verification server; line-delimited JSON protocol\n"
               "(docs/serve.md). Without --socket, serves stdin/stdout.\n"
               "\n"
               "options:\n"
               "  --socket <path>      serve an AF_UNIX socket instead of stdio\n"
               "  --workers <n|auto>   worker pool width (default 2)\n"
               "  --cache <on|off>     proof cache (default on)\n"
               "  --cache-dir <dir>    persist cache entries under <dir>\n"
               "  --near-threshold <f> near-miss similarity threshold (default 0.5)\n"
               "  --max-k <n>          default step bound for jobs (default 32)\n"
               "  --engine <name>      default engine for jobs (default pdr)\n"
               "  --metrics-out <file> write the metrics registry JSON at exit\n"
               "  --verbose            log at Info\n");
  std::exit(2);
}

ServeCliOptions parse_args(int argc, char** argv) {
  ServeCliOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    const std::size_t eq = arg.find('=');
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const auto need_value = [&](const char* flag) -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage((std::string(flag) + " requires a value").c_str());
      return argv[++i];
    };

    if (arg == "--socket") opts.socket_path = need_value("--socket");
    else if (arg == "--workers") {
      const std::string value = need_value("--workers");
      if (value == "auto") {
        const unsigned hw = std::thread::hardware_concurrency();
        opts.server.workers = hw > 1 ? hw / 2 : 1;
      } else {
        opts.server.workers = std::stoull(value);
        if (opts.server.workers == 0) usage("--workers takes a count >= 1 or 'auto'");
      }
    }
    else if (arg == "--cache") {
      const std::string value = need_value("--cache");
      if (value == "on") opts.server.cache = true;
      else if (value == "off") opts.server.cache = false;
      else usage("--cache takes 'on' or 'off'");
    }
    else if (arg == "--cache-dir") opts.server.cache_dir = need_value("--cache-dir");
    else if (arg == "--near-threshold") {
      opts.server.near_threshold = std::stod(need_value("--near-threshold"));
      if (opts.server.near_threshold <= 0.0 || opts.server.near_threshold > 1.0) {
        usage("--near-threshold takes a fraction in (0, 1]");
      }
    }
    else if (arg == "--max-k") {
      opts.server.default_max_steps = std::stoull(need_value("--max-k"));
    }
    else if (arg == "--engine") opts.server.default_engine = need_value("--engine");
    else if (arg == "--metrics-out") opts.metrics_out_path = need_value("--metrics-out");
    else if (arg == "--verbose") opts.verbose = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace genfv;

  const ServeCliOptions opts = parse_args(argc, argv);
  if (opts.verbose) util::set_log_level(util::LogLevel::Info);
  if (!opts.metrics_out_path.empty()) {
    util::set_telemetry_level(util::TelemetryLevel::Metrics);
  }

  int rc = 0;
  try {
    serve::Server server(opts.server);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (opts.socket_path.empty()) {
      server.run_stdio(std::cin, std::cout);
    } else {
      server.run_socket(opts.socket_path);
    }
    g_server = nullptr;
  } catch (const genfv::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  if (!opts.metrics_out_path.empty() && util::write_metrics_json(opts.metrics_out_path)) {
    std::fprintf(stderr, "wrote metrics %s\n", opts.metrics_out_path.c_str());
  }
  return rc;
}
