# Empty dependencies file for bench_bmc_vs_induction.
# This may be replaced when dependencies are built.
