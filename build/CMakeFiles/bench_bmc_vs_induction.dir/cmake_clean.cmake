file(REMOVE_RECURSE
  "CMakeFiles/bench_bmc_vs_induction.dir/bench/bench_bmc_vs_induction.cpp.o"
  "CMakeFiles/bench_bmc_vs_induction.dir/bench/bench_bmc_vs_induction.cpp.o.d"
  "bench_bmc_vs_induction"
  "bench_bmc_vs_induction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bmc_vs_induction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
