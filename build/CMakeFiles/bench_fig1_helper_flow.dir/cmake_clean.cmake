file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_helper_flow.dir/bench/bench_fig1_helper_flow.cpp.o"
  "CMakeFiles/bench_fig1_helper_flow.dir/bench/bench_fig1_helper_flow.cpp.o.d"
  "bench_fig1_helper_flow"
  "bench_fig1_helper_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_helper_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
