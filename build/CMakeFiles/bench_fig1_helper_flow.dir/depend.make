# Empty dependencies file for bench_fig1_helper_flow.
# This may be replaced when dependencies are built.
