# Empty dependencies file for bench_fig2_cex_repair.
# This may be replaced when dependencies are built.
