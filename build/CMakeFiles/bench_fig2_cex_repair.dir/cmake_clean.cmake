file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cex_repair.dir/bench/bench_fig2_cex_repair.cpp.o"
  "CMakeFiles/bench_fig2_cex_repair.dir/bench/bench_fig2_cex_repair.cpp.o.d"
  "bench_fig2_cex_repair"
  "bench_fig2_cex_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cex_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
