# Empty dependencies file for example_ecc_verification.
# This may be replaced when dependencies are built.
